// Name-indexed construction of allocation schemes, so CLI flags like
// `--schemes hydra,single-core,optimal` and config files can pick strategies
// without compiling against their option structs.
//
// The global registry ships the paper's three schemes plus the documented
// ablation variants as named entries:
//
//     hydra                  Algorithm 1, paper defaults
//     hydra/gp               GP subproblem solver instead of the closed form
//     hydra/exact-rta        exact response-time analysis (tighter periods)
//     hydra/first-fit        first feasible core instead of argmax tightness
//     hydra/least-loaded     least-loaded feasible core
//     hydra/worst-tightness  adversarial argmin-tightness baseline
//     hydra/tie=lowest-index lowest-index tie break (default spreads load)
//     single-core            dedicated security core
//     single-core/joint      + joint GP refinement of the dedicated core
//     optimal                exhaustive assignment search, signomial SCP
//     optimal/sum-surrogate  exhaustive search, sum-surrogate GP objective
//     contego                Contego-style adaptive allocation (minimum-mode
//                            placement + slack-aware opportunistic tightening)
//     contego/no-adapt       ablation: every monitor stays in minimum mode
//     period-adapt           period-adaptation-only baseline (fixed first-fit
//                            partition, per-core period optimization)
//     period-adapt/gp        + joint GP (signomial SCP) refinement
//     util/worst-fit         place on the least security-loaded feasible core
//     util/best-fit          place on the most security-loaded feasible core
//
// New schemes register with `add` (typically at startup); registered names
// are stable identifiers that appear verbatim in result rows and sinks.
// docs/allocator-authoring.md walks through adding one end to end;
// docs/scheme-catalog.md is the generated catalog of this registry.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"

namespace hydra::core {

class AllocatorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Allocator>()>;

  /// Registers a scheme.  Throws std::invalid_argument on duplicate names.
  void add(std::string name, std::string description, Factory factory);

  bool contains(const std::string& name) const;

  /// Constructs the scheme registered under `name` (the result's
  /// Allocator::name() reports exactly `name`).  Throws std::invalid_argument
  /// for unknown names, listing the registered ones.
  std::unique_ptr<Allocator> make(const std::string& name) const;

  /// Constructs every named scheme, in order (CLI callers split their
  /// comma-separated spec with util::CliParser::get_string_list first).
  /// Throws std::invalid_argument when `names` is empty or contains an
  /// unknown name.
  std::vector<std::unique_ptr<Allocator>> make_all(
      const std::vector<std::string>& names) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The registration-time description of `name` (throws when unknown).
  const std::string& description(const std::string& name) const;

  /// The process-wide registry pre-populated with the built-in schemes.
  static AllocatorRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// Renders the registry as the markdown scheme catalog committed at
/// docs/scheme-catalog.md (name + description, registration order).  A pure
/// function of the registry contents, so `test_scheme_catalog` can diff the
/// committed file against the live registry byte for byte.  Regenerate with
/// `bench_table1_catalog --catalog-out docs/scheme-catalog.md` (or
/// `HYDRA_UPDATE_CATALOG=1 ./build/test_scheme_catalog`).
std::string scheme_catalog_markdown(const AllocatorRegistry& registry);

}  // namespace hydra::core
