// Tests for DBF (paper Eq. 1) and exact response-time analysis, including
// hand-worked textbook examples and property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/analysis.h"
#include "rt/task.h"
#include "util/rng.h"

namespace rt = hydra::rt;

TEST(Dbf, StepsAtDeadlinePoints) {
  const auto t = rt::make_rt_task("a", 2.0, 10.0);  // D = 10
  EXPECT_DOUBLE_EQ(rt::dbf(t, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 9.999), 0.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 19.999), 2.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 20.0), 4.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 100.0), 20.0);
}

TEST(Dbf, ConstrainedDeadlineShiftsSteps) {
  const rt::RtTask t{"a", 2.0, 10.0, 6.0};
  EXPECT_DOUBLE_EQ(rt::dbf(t, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 6.0), 2.0);
  EXPECT_DOUBLE_EQ(rt::dbf(t, 16.0), 4.0);
}

TEST(Dbf, IsMonotoneNonDecreasing) {
  const auto t = rt::make_rt_task("a", 3.0, 7.0);
  double prev = 0.0;
  for (double x = 0.0; x < 100.0; x += 0.5) {
    const double v = rt::dbf(t, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(NecessaryCondition, PassesLightLoad) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("a", 1.0, 10.0),
                                      rt::make_rt_task("b", 2.0, 20.0)};
  EXPECT_TRUE(rt::dbf_necessary_condition(tasks, 1));
  EXPECT_TRUE(rt::dbf_necessary_condition(tasks, 4));
}

TEST(NecessaryCondition, FailsWhenUtilizationExceedsCores) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("a", 9.0, 10.0),
                                      rt::make_rt_task("b", 9.0, 10.0),
                                      rt::make_rt_task("c", 9.0, 10.0)};
  EXPECT_FALSE(rt::dbf_necessary_condition(tasks, 2));  // U = 2.7 > 2
  EXPECT_TRUE(rt::dbf_necessary_condition(tasks, 3));
}

TEST(NecessaryCondition, EmptySetTriviallyHolds) {
  EXPECT_TRUE(rt::dbf_necessary_condition({}, 1));
}

TEST(NecessaryCondition, ChecksTheDeadlinePointNearestTheHorizon) {
  // Regression for the `t += period` checkpoint drift: 0.1 is not
  // representable in binary, and 10^5 repeated additions overshoot the exact
  // k-th deadline point D + k·T by ~1.9e-8 — enough to push task a's LAST
  // checkpoint past a horizon that the multiplication form lands on exactly,
  // silently skipping the one demand point that violates Eq. (1).
  const double period = 0.1;
  const std::uint64_t k = 99999;
  const rt::RtTask a{"a", 0.09, period, period};
  const double t_star = a.deadline + static_cast<double>(k) * a.period;

  double t_acc = a.deadline;
  for (std::uint64_t j = 0; j < k; ++j) t_acc += a.period;
  ASSERT_GT(t_acc, t_star);  // the drift regime this test exists for

  // Task b places the FIRST violation exactly at a's t* checkpoint: at b's
  // own (exact, drift-free) deadline t* − 0.05 the demand is 0.02 under
  // capacity, one more job of a at t* puts it 0.02 over — margins far wider
  // than kTimeEpsilon and any accumulation noise.
  const rt::RtTask b{"b", 0.1 * t_star + 0.02, 1e9, t_star - 0.05};
  EXPECT_FALSE(rt::dbf_necessary_condition({a, b}, 1, t_star));
  // A horizon short of t* never sees the violation: the verdict flips on
  // exactly that last checkpoint.
  EXPECT_TRUE(rt::dbf_necessary_condition({a, b}, 1, t_star - 0.01));
}

TEST(NecessaryCondition, MatchesBruteForceOnRandomTaskSets) {
  // The event-sweep implementation must agree with the definitional check:
  // Σ dbf(τ, t) ≤ M·t evaluated at every multiplication-form deadline point.
  hydra::util::Xoshiro256 rng(424242);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<rt::RtTask> tasks;
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 4.0));
    for (int i = 0; i < n; ++i) {
      const double p = rng.uniform(0.05, 12.0);
      const double d = rng.uniform(0.5, 1.0) * p;  // constrained deadlines too
      const double c = rng.uniform(0.1, 0.9) * d;
      tasks.push_back(rt::RtTask{"t" + std::to_string(i), c, p, d});
    }
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(0.0, 2.0));

    double h = 0.0;
    for (const auto& task : tasks) h = std::max(h, 2.0 * (task.deadline + task.period));
    bool reference = true;
    double total_util = 0.0;
    for (const auto& task : tasks) total_util += task.utilization();
    if (total_util > static_cast<double>(m) + 1e-6) reference = false;
    for (const auto& task : tasks) {
      if (!reference) break;
      for (std::uint64_t j = 0;; ++j) {
        const double t = task.deadline + static_cast<double>(j) * task.period;
        if (t > h) break;
        double demand = 0.0;
        for (const auto& other : tasks) demand += rt::dbf(other, t);
        if (demand > static_cast<double>(m) * t + 1e-6) {
          reference = false;
          break;
        }
      }
    }
    EXPECT_EQ(rt::dbf_necessary_condition(tasks, m), reference) << "rep " << rep;
  }
}

TEST(ResponseTime, NoInterferenceEqualsWcet) {
  const auto t = rt::make_rt_task("a", 3.0, 10.0);
  const auto r = rt::response_time(t, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 3.0);
}

TEST(ResponseTime, ClassicTextbookExample) {
  // Liu & Layland style: τ1 = (1, 4), τ2 = (2, 6), τ3 = (3, 12) — RM.
  // R1 = 1. R2 = 2 + ceil(R2/4)·1 → 3. R3 = 3 + ceil(R3/4)·1 + ceil(R3/6)·2:
  //   R = 3 → 3+1+2 = 6 → 3+2+2 = 7 → 3+2+4 = 9 → 3+3+4 = 10 → 3+3+4 = 10. ✓
  const auto t1 = rt::make_rt_task("t1", 1.0, 4.0);
  const auto t2 = rt::make_rt_task("t2", 2.0, 6.0);
  const auto t3 = rt::make_rt_task("t3", 3.0, 12.0);
  EXPECT_DOUBLE_EQ(*rt::response_time(t2, {t1}), 3.0);
  const auto r3 = rt::response_time(t3, {t1, t2});
  ASSERT_TRUE(r3.has_value());
  EXPECT_DOUBLE_EQ(*r3, 10.0);
}

TEST(ResponseTime, UnschedulableReturnsNullopt) {
  const auto hp = rt::make_rt_task("hp", 5.0, 10.0);
  const auto lo = rt::make_rt_task("lo", 6.0, 10.0);  // 0.5 + 0.6 > 1
  EXPECT_FALSE(rt::response_time(lo, {hp}).has_value());
}

TEST(ResponseTime, ExactlyFullUtilizationBoundary) {
  // τ1 = (5, 10), τ2 = (5, 10): U = 1.0; R2 would never converge below D.
  const auto hp = rt::make_rt_task("hp", 5.0, 10.0);
  const auto lo = rt::make_rt_task("lo", 5.0, 10.0);
  const auto r = rt::response_time(lo, {hp});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 10.0);  // completes exactly at the deadline
}

TEST(CoreSchedulable, AcceptsAndRejects) {
  EXPECT_TRUE(rt::core_schedulable_rm({rt::make_rt_task("a", 1.0, 4.0),
                                       rt::make_rt_task("b", 2.0, 6.0),
                                       rt::make_rt_task("c", 3.0, 12.0)}));
  EXPECT_FALSE(rt::core_schedulable_rm({rt::make_rt_task("a", 5.0, 10.0),
                                        rt::make_rt_task("b", 5.1, 10.0)}));
  EXPECT_TRUE(rt::core_schedulable_rm({}));
}

TEST(LiuLayland, KnownValues) {
  EXPECT_DOUBLE_EQ(rt::liu_layland_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(rt::liu_layland_bound(1), 1.0);
  EXPECT_NEAR(rt::liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(rt::liu_layland_bound(3), 0.7798, 1e-4);
  // Limit: ln 2 ≈ 0.6931.
  EXPECT_NEAR(rt::liu_layland_bound(1000), std::log(2.0), 1e-3);
}

TEST(LiuLayland, SufficiencyAgreesWithExactRta) {
  // Any random set below the LL bound must pass exact RTA (sufficiency).
  hydra::util::Xoshiro256 rng(2024);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<rt::RtTask> tasks;
    double budget = rt::liu_layland_bound(n) * 0.98;
    for (std::size_t i = 0; i < n; ++i) {
      const double u = budget / static_cast<double>(n);
      const double period = rng.uniform(5.0, 500.0);
      tasks.push_back(rt::make_rt_task("t" + std::to_string(i), u * period, period));
    }
    EXPECT_TRUE(rt::core_schedulable_rm(tasks));
  }
}

TEST(ResponseTime, MonotoneInInterferenceSweep) {
  // Adding interferers can only increase the response time.
  const auto task = rt::make_rt_task("x", 2.0, 50.0);
  std::vector<rt::RtTask> hp;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto r = rt::response_time(task, hp);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, prev);
    prev = *r;
    hp.push_back(rt::make_rt_task("hp" + std::to_string(i), 1.0, 10.0 + i));
  }
}

TEST(HyperbolicBound, DominatesLiuLayland) {
  // Any set passing LL also passes the hyperbolic bound (strict dominance).
  hydra::util::Xoshiro256 rng(606);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    std::vector<rt::RtTask> tasks;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double period = rng.uniform(5.0, 500.0);
      const double u = rng.uniform(0.01, 0.3);
      total += u;
      tasks.push_back(rt::make_rt_task("t" + std::to_string(i), u * period, period));
    }
    if (total <= rt::liu_layland_bound(n)) {
      EXPECT_TRUE(rt::hyperbolic_bound_holds(tasks));
    }
    if (rt::hyperbolic_bound_holds(tasks)) {
      EXPECT_TRUE(rt::core_schedulable_rm(tasks));  // sufficiency
    }
  }
}

TEST(HyperbolicBound, KnownCases) {
  // Two tasks at u = 0.41 each: (1.41)² = 1.9881 <= 2 → holds.
  std::vector<rt::RtTask> ok{rt::make_rt_task("a", 4.1, 10.0),
                             rt::make_rt_task("b", 8.2, 20.0)};
  EXPECT_TRUE(rt::hyperbolic_bound_holds(ok));
  // Two at 0.45: (1.45)² = 2.1025 > 2 → fails (though RM may still work).
  std::vector<rt::RtTask> no{rt::make_rt_task("a", 4.5, 10.0),
                             rt::make_rt_task("b", 9.0, 20.0)};
  EXPECT_FALSE(rt::hyperbolic_bound_holds(no));
}

TEST(SecurityResponseTime, HandWorkedExample) {
  // Security task C = 3 below RT (2, 10) and hp security (1, 20):
  // R = 3 + ceil(R/10)·2 + ceil(R/20)·1 → R = 3+2+1 = 6 → 6 ✓.
  const auto task = rt::make_security_task("s", 3.0, 50.0, 500.0);
  const auto r = rt::security_response_time(task, 500.0, {rt::make_rt_task("r", 2.0, 10.0)},
                                            {{1.0, 20.0}});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 6.0);
}

TEST(SecurityResponseTime, BlockingShiftsResponse) {
  const auto task = rt::make_security_task("s", 3.0, 50.0, 500.0);
  const auto plain = rt::security_response_time(task, 500.0, {}, {});
  const auto blocked = rt::security_response_time(task, 500.0, {}, {}, 5.0);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(blocked.has_value());
  EXPECT_DOUBLE_EQ(*plain, 3.0);
  EXPECT_DOUBLE_EQ(*blocked, 8.0);
}

TEST(SecurityResponseTime, DeadlineExceededReturnsNullopt) {
  const auto task = rt::make_security_task("s", 3.0, 50.0, 500.0);
  // RT load 0.9: R = 3 + ceil(R/10)·9 → grows past any small deadline.
  EXPECT_FALSE(
      rt::security_response_time(task, 20.0, {rt::make_rt_task("r", 9.0, 10.0)}, {}).has_value());
}

// Property: the paper's linear Eq. (5) bound is conservative with respect to
// exact RTA — whenever the bound admits a period, exact RTA admits it too,
// and the exact response never exceeds the bound's implied demand.
class BoundVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundVsExact, LinearBoundIsConservative) {
  hydra::util::Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<rt::RtTask> rts;
    const int nr = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < nr; ++i) {
      const double period = rng.uniform(10.0, 300.0);
      rts.push_back(rt::make_rt_task("r" + std::to_string(i),
                                     rng.uniform(0.05, 0.2) * period, period));
    }
    std::vector<rt::PlacedSecurityTask> hp;
    const int nh = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < nh; ++i) {
      const double period = rng.uniform(500.0, 3000.0);
      hp.push_back({rng.uniform(0.05, 0.25) * period, period});
    }
    const double t_des = rng.uniform(500.0, 2000.0);
    const auto task =
        rt::make_security_task("s", rng.uniform(0.05, 0.4) * t_des, t_des, 10.0 * t_des);

    const auto bound = rt::interference_bound(rts, hp);
    for (double period = t_des; period <= 10.0 * t_des; period *= 1.7) {
      if (rt::security_schedulable(task, period, bound)) {
        const auto exact = rt::security_response_time(task, period, rts, hp);
        ASSERT_TRUE(exact.has_value())
            << "linear bound admits period " << period << " but exact RTA rejects it";
        EXPECT_LE(*exact, task.wcet + bound.eval(period) + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundVsExact, ::testing::Values(71, 72, 73, 74, 75, 76));

// Property sweep: response time computed by RTA satisfies its own fixed-point
// equation R = C + Σ ceil(R/T)·C.
class RtaFixedPoint : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaFixedPoint, FixedPointHolds) {
  hydra::util::Xoshiro256 rng(GetParam());
  std::vector<rt::RtTask> hp;
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  double util = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double period = rng.uniform(10.0, 100.0);
    const double u = rng.uniform(0.02, 0.15);
    util += u;
    hp.push_back(rt::make_rt_task("hp" + std::to_string(i), u * period, period));
  }
  if (util >= 0.85) return;  // keep the low-priority task feasible
  const double period = rng.uniform(100.0, 1000.0);
  const auto task = rt::make_rt_task("x", 0.1 * period, period);
  const auto r = rt::response_time(task, hp);
  ASSERT_TRUE(r.has_value());
  double expected = task.wcet;
  for (const auto& h : hp) {
    expected += std::ceil(*r / h.period - 1e-9) * h.wcet;
  }
  EXPECT_NEAR(*r, expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaFixedPoint,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));
