#include "rt/task.h"

#include <cmath>

namespace hydra::rt {

void validate(const RtTask& task) {
  HYDRA_REQUIRE(std::isfinite(task.wcet) && task.wcet > 0.0,
                "RT task '" + task.name + "': WCET must be positive");
  HYDRA_REQUIRE(std::isfinite(task.period) && task.period > 0.0,
                "RT task '" + task.name + "': period must be positive");
  HYDRA_REQUIRE(std::isfinite(task.deadline) && task.deadline > 0.0,
                "RT task '" + task.name + "': deadline must be positive");
  HYDRA_REQUIRE(task.wcet <= task.deadline,
                "RT task '" + task.name + "': WCET exceeds deadline");
  HYDRA_REQUIRE(task.deadline <= task.period,
                "RT task '" + task.name + "': constrained deadlines only (D <= T)");
}

void validate(const SecurityTask& task) {
  HYDRA_REQUIRE(std::isfinite(task.wcet) && task.wcet > 0.0,
                "security task '" + task.name + "': WCET must be positive");
  HYDRA_REQUIRE(std::isfinite(task.period_des) && task.period_des > 0.0,
                "security task '" + task.name + "': desired period must be positive");
  HYDRA_REQUIRE(std::isfinite(task.period_max) && task.period_max >= task.period_des,
                "security task '" + task.name + "': Tmax must be >= Tdes");
  HYDRA_REQUIRE(task.wcet <= task.period_des,
                "security task '" + task.name + "': WCET exceeds desired period");
  HYDRA_REQUIRE(std::isfinite(task.weight) && task.weight > 0.0,
                "security task '" + task.name + "': weight must be positive");
}

void validate(const std::vector<RtTask>& tasks) {
  for (const auto& t : tasks) validate(t);
}

void validate(const std::vector<SecurityTask>& tasks) {
  for (const auto& t : tasks) validate(t);
}

double total_utilization(const std::vector<RtTask>& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.utilization();
  return u;
}

double total_max_utilization(const std::vector<SecurityTask>& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.max_utilization();
  return u;
}

}  // namespace hydra::rt
