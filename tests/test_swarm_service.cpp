// Allocation-service contract: request parsing, batched evaluation through
// the exp engine, the fingerprint-keyed LRU cache (hit == cold bytes,
// hit/miss visible only via stats), and the Unix-socket transport.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "swarm/proto.h"
#include "swarm/service.h"
#include "swarm/socket.h"

namespace swarm = hydra::swarm;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string json_string(const std::string& raw) {
  std::string out = "\"";
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

std::string allocate_line(const std::string& corpus_file,
                          const std::string& schemes_json = "") {
  std::string line = "{\"op\":\"allocate\",\"taskset_text\":" +
                     json_string(slurp(kCorpusDir + "/" + corpus_file));
  if (!schemes_json.empty()) line += ",\"schemes\":" + schemes_json;
  line += "}";
  return line;
}

swarm::ServiceOptions small_options() {
  swarm::ServiceOptions options;
  options.default_schemes = {"hydra", "single-core"};
  return options;
}

}  // namespace

TEST(SwarmProto, ParsesFlatObjects) {
  const auto fields = swarm::parse_flat_json(
      "{\"op\":\"allocate\",\"n\":4.5,\"flag\":true,\"none\":null,"
      "\"schemes\":[\"a\",\"b\"],\"esc\":\"x\\n\\\"y\\u0041\"}");
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(*fields->at("op").string_value, "allocate");
  EXPECT_DOUBLE_EQ(*fields->at("n").number_value, 4.5);
  EXPECT_TRUE(*fields->at("flag").bool_value);
  EXPECT_FALSE(fields->at("none").string_value.has_value());
  EXPECT_EQ(fields->at("schemes").string_array->size(), 2u);
  EXPECT_EQ(*fields->at("esc").string_value, "x\n\"yA");
}

TEST(SwarmProto, RejectsMalformedLines) {
  EXPECT_FALSE(swarm::parse_flat_json("").has_value());
  EXPECT_FALSE(swarm::parse_flat_json("not json").has_value());
  EXPECT_FALSE(swarm::parse_flat_json("{\"a\":1").has_value());
  EXPECT_FALSE(swarm::parse_flat_json("{\"a\":{\"nested\":1}}").has_value());
  EXPECT_FALSE(swarm::parse_flat_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(swarm::parse_flat_json("{\"a\":\"unterminated").has_value());
  EXPECT_TRUE(swarm::parse_flat_json("{}").has_value());
}

TEST(SwarmService, SecondIdenticalRequestIsAByteIdenticalCacheHit) {
  swarm::AllocationService service(small_options());
  const std::string line = allocate_line("mid_2core_b.txt");

  const std::string cold = service.handle_line(line);
  ASSERT_EQ(cold.rfind("{\"ok\":true,\"op\":\"allocate\"", 0), 0u) << cold;
  EXPECT_EQ(service.stats().misses, 1u);
  EXPECT_EQ(service.stats().hits, 0u);
  EXPECT_EQ(service.stats().engine_batches, 1u);

  const std::string hot = service.handle_line(line);
  // The acceptance criterion: byte-identical response, no engine invocation,
  // the hit observable only through the counters.
  EXPECT_EQ(hot, cold);
  EXPECT_EQ(service.stats().hits, 1u);
  EXPECT_EQ(service.stats().misses, 1u);
  EXPECT_EQ(service.stats().engine_batches, 1u);
  EXPECT_EQ(hot.find("cache"), std::string::npos);
}

TEST(SwarmService, ResponseCarriesPlacementsAndModeTable) {
  swarm::AllocationService service(small_options());
  const std::string response = service.handle_line(allocate_line("mid_2core_b.txt"));
  EXPECT_NE(response.find("\"scheme\":\"hydra\""), std::string::npos);
  EXPECT_NE(response.find("\"placements\":["), std::string::npos);
  EXPECT_NE(response.find("\"modes\":["), std::string::npos);
  EXPECT_NE(response.find("\"min_period_ms\":"), std::string::npos);
  EXPECT_NE(response.find("\"adapted_period_ms\":"), std::string::npos);
  EXPECT_NE(response.find("\"fingerprint\":\""), std::string::npos);
}

TEST(SwarmService, DistinctTasksetsAndSchemesMissSeparately) {
  swarm::AllocationService service(small_options());
  const std::string a = service.handle_line(allocate_line("mid_2core_b.txt"));
  const std::string b = service.handle_line(allocate_line("easy_2core_a.txt"));
  EXPECT_NE(a, b);
  EXPECT_EQ(service.stats().misses, 2u);

  // Same taskset, different scheme list → different fingerprint → miss.
  service.handle_line(allocate_line("mid_2core_b.txt", "[\"hydra\"]"));
  EXPECT_EQ(service.stats().misses, 3u);
  EXPECT_EQ(service.stats().hits, 0u);
}

TEST(SwarmService, InfeasibleTasksetsAreServedAndCached) {
  swarm::AllocationService service(small_options());
  const std::string line = allocate_line("overload_2core_f.txt");
  const std::string cold = service.handle_line(line);
  EXPECT_EQ(cold.rfind("{\"ok\":true", 0), 0u) << cold;
  EXPECT_NE(cold.find("\"feasible\":false"), std::string::npos);
  // Negative results are results: the second ask is a hit too.
  EXPECT_EQ(service.handle_line(line), cold);
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(SwarmService, MalformedAndUnknownRequestsError) {
  swarm::AllocationService service(small_options());
  EXPECT_EQ(service.handle_line("garbage").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(service.handle_line("{\"no_op\":1}").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(service.handle_line("{\"op\":\"dance\"}").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(service.handle_line("{\"op\":\"allocate\"}").rfind("{\"ok\":false", 0),
            0u);  // no taskset
  const std::string bad_scheme = service.handle_line(
      allocate_line("mid_2core_b.txt", "[\"no-such-scheme\"]"));
  EXPECT_EQ(bad_scheme.rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(service.stats().errors, 5u);
  EXPECT_EQ(service.stats().engine_batches, 0u);
}

TEST(SwarmService, BatchCoalescesDuplicatesAndGroupsSchemes) {
  swarm::AllocationService service(small_options());
  const std::string mid = allocate_line("mid_2core_b.txt");
  const std::string easy = allocate_line("easy_2core_a.txt");

  const auto responses =
      service.handle_batch({mid, easy, mid, "{\"op\":\"ping\"}"});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0], responses[2]);  // in-batch duplicate, same bytes
  EXPECT_NE(responses[0], responses[1]);
  EXPECT_EQ(responses[3], "{\"ok\":true,\"op\":\"ping\"}");
  EXPECT_EQ(service.stats().coalesced, 1u);
  EXPECT_EQ(service.stats().misses, 2u);
  // Same scheme list ⇒ the two unique tasksets share ONE engine pass.
  EXPECT_EQ(service.stats().engine_batches, 1u);

  // Batch composition must not leak into response bytes: the same requests
  // served individually produce the same responses.
  swarm::AllocationService solo(small_options());
  EXPECT_EQ(solo.handle_line(mid), responses[0]);
  EXPECT_EQ(solo.handle_line(easy), responses[1]);
}

TEST(SwarmService, StatsRideAlongAfterTheBatchComputes) {
  swarm::AllocationService service(small_options());
  const auto responses =
      service.handle_batch({"{\"op\":\"stats\"}", allocate_line("mid_2core_b.txt")});
  // The stats line observes the batch it rode in on.
  EXPECT_NE(responses[0].find("\"misses\":1"), std::string::npos) << responses[0];
  EXPECT_NE(responses[0].find("\"engine_batches\":1"), std::string::npos);
}

TEST(SwarmService, LruEvictsUnderByteBudget) {
  auto options = small_options();
  options.default_schemes = {"hydra"};
  swarm::AllocationService probe(options);
  const std::string mid = allocate_line("mid_2core_b.txt");
  const std::size_t response_bytes = probe.handle_line(mid).size();

  // Budget fits ~1.5 responses: the second distinct request evicts the first.
  options.cache_budget_bytes = response_bytes * 3 / 2 + 64;
  swarm::AllocationService service(options);
  const std::string easy = allocate_line("easy_2core_a.txt");
  service.handle_line(mid);
  service.handle_line(easy);
  EXPECT_EQ(service.stats().evictions, 1u);
  EXPECT_EQ(service.stats().cache_entries, 1u);

  service.handle_line(mid);  // evicted → recomputed
  EXPECT_EQ(service.stats().misses, 3u);
  EXPECT_EQ(service.stats().hits, 0u);
  service.handle_line(mid);  // still resident → hit
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(SwarmService, OversizedResponsesAreServedButNotCached) {
  auto options = small_options();
  options.cache_budget_bytes = 16;  // smaller than any real response
  swarm::AllocationService service(options);
  const std::string line = allocate_line("mid_2core_b.txt");
  EXPECT_EQ(service.handle_line(line).rfind("{\"ok\":true", 0), 0u);
  EXPECT_EQ(service.stats().uncacheable, 1u);
  EXPECT_EQ(service.stats().cache_entries, 0u);
  service.handle_line(line);
  EXPECT_EQ(service.stats().misses, 2u);  // nothing was retained
}

TEST(SwarmService, ReinsertingAKeyKeepsByteAccountingExact) {
  // A journal with the same fingerprint twice (an entry re-cached after an
  // eviction in a prior daemon life) replays through the duplicate-insert
  // path: the old entry's bytes and LRU node must be retired, or
  // cache_bytes drifts upward and the stale node later evicts the live one.
  const std::string dir = testing::TempDir() + "swarm_dup_key";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/cache.jsonl";
  {
    std::ofstream out(journal, std::ios::binary);
    out << "{\"fingerprint\":\"k1\",\"response\":\"aaaaaaaa\"}\n";
    out << "{\"fingerprint\":\"k2\",\"response\":\"bbbbbbbb\"}\n";
    out << "{\"fingerprint\":\"k1\",\"response\":\"cccc\"}\n";  // supersedes
  }
  auto options = small_options();
  options.cache_journal_path = journal;
  swarm::AllocationService service(options);

  EXPECT_EQ(service.stats().journal_replayed, 3u);
  EXPECT_EQ(service.stats().cache_entries, 2u);
  // Exact bytes: k1→cccc (2+4) + k2→bbbbbbbb (2+8).  The drifting bug
  // counted k1's first response too.
  EXPECT_EQ(service.stats().cache_bytes, 16u);
  // No phantom eviction: both entries are live, nothing was over budget.
  EXPECT_EQ(service.stats().evictions, 0u);
  // The startup compaction rewrote the journal to the two live records.
  std::size_t lines = 0;
  std::ifstream in(journal);
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 2u);
  std::filesystem::remove_all(dir);
}

TEST(SwarmService, JournalSurvivesARestartWithZeroEngineInvocations) {
  const std::string dir = testing::TempDir() + "swarm_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto options = small_options();
  options.cache_journal_path = dir + "/cache.jsonl";
  const std::string line = allocate_line("mid_2core_b.txt");

  std::string cold;
  {
    swarm::AllocationService first(options);
    cold = first.handle_line(line);
    ASSERT_EQ(cold.rfind("{\"ok\":true,\"op\":\"allocate\"", 0), 0u) << cold;
    EXPECT_EQ(first.stats().engine_batches, 1u);
  }  // daemon dies

  swarm::AllocationService restarted(options);
  EXPECT_GE(restarted.stats().journal_replayed, 1u);
  const std::string hot = restarted.handle_line(line);
  // THE acceptance criterion: byte-identical to the pre-restart response,
  // with zero engine work — the journal alone served it.
  EXPECT_EQ(hot, cold);
  EXPECT_EQ(restarted.stats().hits, 1u);
  EXPECT_EQ(restarted.stats().misses, 0u);
  EXPECT_EQ(restarted.stats().engine_batches, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SwarmService, JournalTornTailIsDiscardedNotFatal) {
  const std::string dir = testing::TempDir() + "swarm_journal_torn";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto options = small_options();
  options.cache_journal_path = dir + "/cache.jsonl";
  const std::string line = allocate_line("mid_2core_b.txt");
  std::string cold;
  {
    swarm::AllocationService first(options);
    cold = first.handle_line(line);
  }
  {
    // A crash mid-append leaves a torn, newline-less fragment.
    std::ofstream out(options.cache_journal_path,
                      std::ios::binary | std::ios::app);
    out << "{\"fingerprint\":\"torn\",\"response\":\"never fini";
  }
  swarm::AllocationService restarted(options);
  EXPECT_EQ(restarted.stats().journal_replayed, 1u);  // the fragment is not
  EXPECT_EQ(restarted.handle_line(line), cold);
  EXPECT_EQ(restarted.stats().engine_batches, 0u);
  // The startup compaction scrubbed the fragment: a THIRD daemon replays a
  // clean journal.
  swarm::AllocationService third(options);
  EXPECT_EQ(third.stats().journal_replayed, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SwarmService, JournalCompactsOnceDeadRecordsDominate) {
  const std::string dir = testing::TempDir() + "swarm_journal_compact";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto options = small_options();
  options.default_schemes = {"hydra"};
  swarm::AllocationService probe(options);
  const std::string mid = allocate_line("mid_2core_b.txt");
  const std::string easy = allocate_line("easy_2core_a.txt");
  const std::size_t response_bytes = probe.handle_line(mid).size();

  // Budget fits ~1.5 responses, so alternating requests evict each other:
  // every round appends a fresh record while the live set stays at one
  // entry — the journal fills with dead records until the compaction rule
  // (bytes > factor x live) fires.
  options.cache_budget_bytes = response_bytes * 3 / 2 + 64;
  options.cache_journal_path = dir + "/cache.jsonl";
  swarm::AllocationService service(options);
  for (int round = 0; round < 6; ++round) {
    service.handle_line(round % 2 == 0 ? mid : easy);
  }
  EXPECT_GE(service.stats().evictions, 5u);
  EXPECT_GE(service.stats().journal_compactions, 2u);  // startup + at least one

  // Whatever survived is exactly what a restart restores: the last request
  // (easy, round 5) must hit without engine work.
  swarm::AllocationService restarted(options);
  EXPECT_EQ(restarted.stats().cache_entries, 1u);
  restarted.handle_line(easy);
  EXPECT_EQ(restarted.stats().hits, 1u);
  EXPECT_EQ(restarted.stats().engine_batches, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SwarmSocket, RejectsBusySpinAndForeverBlockingPollIntervals) {
  swarm::AllocationService service(small_options());
  swarm::EventLog log;
  swarm::ServerOptions options;
  options.socket_path = testing::TempDir() + "hydra_poll_validate.sock";
  options.poll_interval_s = 0.0;  // would busy-spin
  EXPECT_THROW(swarm::ServiceServer(service, options, log),
               std::invalid_argument);
  options.poll_interval_s = -1.0;  // poll(-1) blocks forever, masks shutdown
  EXPECT_THROW(swarm::ServiceServer(service, options, log),
               std::invalid_argument);
}

TEST(SwarmService, ShutdownOpFlagsTheTransportLoop)
{
  swarm::AllocationService service(small_options());
  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle_line("{\"op\":\"shutdown\"}"),
            "{\"ok\":true,\"op\":\"shutdown\"}");
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(SwarmSocket, RoundTripOverUnixSocket) {
  const std::string socket_path =
      testing::TempDir() + "hydra_swarm_service_test.sock";
  std::remove(socket_path.c_str());

  swarm::AllocationService service(small_options());
  swarm::EventLog log;
  swarm::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.poll_interval_s = 0.02;
  swarm::ServiceServer server(service, server_options, log);
  std::thread server_thread([&server] { server.run(); });

  {
    swarm::ServiceClient client(socket_path);
    EXPECT_EQ(client.request("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");
    const std::string cold = client.request(allocate_line("mid_2core_b.txt"));
    const std::string hot = client.request(allocate_line("mid_2core_b.txt"));
    EXPECT_EQ(cold, hot);
    const std::string stats = client.request("{\"op\":\"stats\"}");
    EXPECT_NE(stats.find("\"hits\":1"), std::string::npos) << stats;
    EXPECT_EQ(client.request("{\"op\":\"shutdown\"}"),
              "{\"ok\":true,\"op\":\"shutdown\"}");
  }
  server_thread.join();
  EXPECT_GE(log.count("service-batch"), 4u);
  EXPECT_EQ(log.count("service-stopped"), 1u);
}
