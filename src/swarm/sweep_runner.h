// Sweep mode of hydra_swarm: fan one sharded sweep command out over N local
// worker processes, babysit them to completion, and emit the merged row
// stream — byte-identical to a single-process `--jobs 1` run of the same
// command (tests/test_swarm_sweep.cpp and the swarm-smoke CI job lock this,
// SIGKILL included).
//
// The runner owns the orchestration loop only; policy lives in the
// Supervisor and merging in exp::merge_checkpoints:
//
//   * each shard runs `worker_command... --shard i/N --out <dir>/shard_i.jsonl
//     --resume <dir>/shard_i.jsonl` — the resume-from-own-output idiom the
//     Sweep layer supports (checkpoint is read before the sink truncates), so
//     the SAME argv both cold-starts and resumes: a restarted worker splices
//     every durable cell of its dead predecessor and recomputes nothing;
//   * progress is the shard checkpoint itself: the runner tails each file's
//     growth (rows vs the header's declared cell count) and feeds byte sizes
//     to the supervisor's stall detector — no worker-side protocol at all;
//   * partial results: on a timer, the surviving rows of all shards are
//     unioned via merge_checkpoints(allow-partial) into `partial_path`
//     (atomic rename), usable as a --resume checkpoint at any moment;
//   * the final merge runs with require_complete and the spec fingerprint
//     pinned, so a retry-exhausted swarm CANNOT silently present a partial
//     stream as complete — it fails loudly and points at the salvage path.
//
// Chaos injection (`chaos_kill_shard`) SIGKILLs one shard the first time its
// checkpoint holds >= chaos_after_rows durable rows: a deterministic
// mid-checkpoint crash for CI smoke tests, exercised through exactly the
// production restart path.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "swarm/supervisor.h"

namespace hydra::swarm {

struct SweepRunnerOptions {
  std::size_t shards = 2;
  /// The sweep command template (executable + its own flags).  The runner
  /// appends --shard/--out/--resume; the template must not set them.
  std::vector<std::string> worker_command;
  std::string dir;           ///< shard checkpoints + per-worker logs live here
  std::string out_path;      ///< final merged stream; "" = stdout
  std::string partial_path;  ///< periodic allow-partial merge target; "" = off
  double poll_interval_s = 0.25;   ///< must be finite and > 0 (validated)
  double merge_interval_s = 5.0;   ///< must be finite and > 0 (validated)
  SupervisorPolicy policy;
  /// Non-empty: pin every shard header (and the final merge) to this spec
  /// fingerprint.
  std::string expect_fingerprint;
  int chaos_kill_shard = -1;         ///< SIGKILL this shard once (see above)
  std::size_t chaos_after_rows = 1;  ///< ...once it has this many durable rows
};

/// What tailing one shard checkpoint revealed.
struct ShardProbe {
  bool exists = false;
  std::size_t bytes = 0;
  std::size_t durable_rows = 0;  ///< newline-terminated row lines (header excluded)
  std::optional<exp::SweepShardHeader> header;
};

/// Cheap single-pass probe: file size, durable (newline-terminated) row
/// count, and the shard header if present.  A torn trailing fragment is not
/// counted — it would be discarded by resume/merge anyway.
ShardProbe probe_shard_checkpoint(const std::string& path);

struct SweepRunResult {
  bool ok = false;
  std::size_t cells = 0;
  std::size_t rows = 0;
  std::size_t restarts = 0;
  std::string error;  ///< terminal failure description when !ok
};

class SweepRunner {
 public:
  /// `backend` and `log` are borrowed.  Throws std::invalid_argument on a
  /// malformed option set (no command, zero shards, missing dir).
  SweepRunner(SweepRunnerOptions options, ProcessBackend& backend, EventLog& log);

  /// Blocks until the swarm completes or fails.  `status` receives
  /// one-per-poll progress lines ("shard 2/3: 40/117 cells ...); pass a
  /// null-sink stream for quiet runs.  The merged stream is written to
  /// out_path (or stdout) only on success.
  SweepRunResult run(std::ostream& status);

 private:
  SweepRunnerOptions options_;
  ProcessBackend& backend_;
  EventLog& log_;
};

}  // namespace hydra::swarm
