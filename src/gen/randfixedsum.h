// Randfixedsum (Roger Stafford, 2006; adopted for multiprocessor taskset
// synthesis by Emberson, Stafford & Davis, WATERS 2010 [23]).
//
// Draws n values, each in [lo, hi], whose sum is exactly `sum`, uniformly
// over that (n−1)-simplex slice.  This is the paper's §IV-B "unbiased set of
// utilization values" generator: naive normalize-to-sum approaches bias the
// marginal distribution, Randfixedsum does not.
//
// Port of the original MATLAB randfixedsum.m (probability-table + conditional
// sampling), specialized to one sample per call.
#pragma once

#include <vector>

#include "util/rng.h"

namespace hydra::gen {

/// Requires n >= 1, lo < hi, and n·lo <= sum <= n·hi (throws otherwise).
/// The returned vector is randomly permuted (exchangeable components).
std::vector<double> randfixedsum(std::size_t n, double sum, double lo, double hi,
                                 util::Xoshiro256& rng);

}  // namespace hydra::gen
