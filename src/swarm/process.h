// The pluggable process backend: how the swarm turns "run shard i" into an
// actual child somewhere.  The supervisor only ever talks to this interface,
// so the local fork/exec pool shipped here is merely the first
// implementation — a job-array or container backend slots in by implementing
// three methods, and every restart/backoff/stall policy above it is reused
// unchanged (tests exercise the supervisor against an in-memory fake the
// same way).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hydra::swarm {

/// What to run: argv[0] is the executable (resolved via PATH like execvp),
/// stdout/stderr are redirected to files so worker output survives the
/// worker and never interleaves with the orchestrator's own streams.
struct WorkerSpec {
  std::vector<std::string> argv;
  std::string stdout_path;  ///< "" inherits the parent's stdout
  std::string stderr_path;  ///< "" inherits the parent's stderr
};

/// How a worker ended.  `signaled` distinguishes "exited with code" from
/// "killed by signal" (SIGKILL'd workers — crashes, stall kills, chaos
/// injection — report signaled=true, value=SIGKILL).
struct ExitStatus {
  bool signaled = false;
  int value = 0;  ///< exit code, or the terminating signal number

  bool success() const { return !signaled && value == 0; }
  std::string describe() const;
};

using WorkerId = std::size_t;

/// Backend contract (single-threaded: the supervisor calls from one thread):
///   * start() launches the worker and returns a handle, throwing
///     std::runtime_error when the launch itself fails;
///   * poll() is non-blocking; it returns the exit status once the worker
///     has ended (reaping it), nullopt while it runs, and keeps returning
///     the same status for an already-reaped worker;
///   * stop() requests immediate termination (SIGKILL-equivalent); the death
///     is still observed through poll(), like any other.
class ProcessBackend {
 public:
  virtual ~ProcessBackend() = default;
  virtual WorkerId start(const WorkerSpec& spec) = 0;
  virtual std::optional<ExitStatus> poll(WorkerId id) = 0;
  virtual void stop(WorkerId id) = 0;
};

/// The local pool: fork + execvp per worker, children reaped synchronously
/// with waitpid(WNOHANG) inside poll() — no SIGCHLD handler, so the backend
/// composes with any host process (gtest binaries included) without
/// installing global signal state.
class LocalProcessBackend : public ProcessBackend {
 public:
  ~LocalProcessBackend() override;

  WorkerId start(const WorkerSpec& spec) override;
  std::optional<ExitStatus> poll(WorkerId id) override;
  void stop(WorkerId id) override;

 private:
  WorkerId next_id_ = 1;
  std::map<WorkerId, int> running_;       ///< id -> pid
  std::map<WorkerId, ExitStatus> reaped_; ///< id -> final status
};

}  // namespace hydra::swarm
