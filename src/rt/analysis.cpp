#include "rt/analysis.h"

#include <algorithm>
#include <cmath>

#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::rt {

double dbf(const RtTask& task, util::Millis t) {
  if (t < task.deadline) return 0.0;
  const double jobs = std::floor((t - task.deadline) / task.period) + 1.0;
  return jobs * task.wcet;
}

bool dbf_necessary_condition(const std::vector<RtTask>& tasks, std::size_t num_cores,
                             std::optional<util::Millis> horizon) {
  HYDRA_REQUIRE(num_cores >= 1, "need at least one core");
  if (tasks.empty()) return true;

  const double m = static_cast<double>(num_cores);
  // Asymptotic limit of Eq. (1): total utilization at most M.
  if (total_utilization(tasks) > m + util::kTimeEpsilon) return false;

  util::Millis h = 0.0;
  if (horizon.has_value()) {
    h = *horizon;
  } else {
    for (const auto& task : tasks) h = std::max(h, 2.0 * (task.deadline + task.period));
  }

  // Demand only changes at absolute deadline points, so those are the only
  // t values worth checking.
  std::vector<util::Millis> checkpoints;
  for (const auto& task : tasks) {
    for (util::Millis t = task.deadline; t <= h; t += task.period) checkpoints.push_back(t);
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()), checkpoints.end());

  for (const util::Millis t : checkpoints) {
    double demand = 0.0;
    for (const auto& task : tasks) demand += dbf(task, t);
    if (demand > m * t + util::kTimeEpsilon) return false;
  }
  return true;
}

std::optional<util::Millis> response_time(const RtTask& task, const std::vector<RtTask>& hp,
                                          util::Millis blocking) {
  HYDRA_REQUIRE(blocking >= 0.0, "blocking must be non-negative");
  double hp_util = 0.0;
  for (const auto& h : hp) hp_util += h.utilization();
  if (hp_util >= 1.0) return std::nullopt;

  double r = task.wcet + blocking;
  for (int iter = 0; iter < 10000; ++iter) {
    double next = task.wcet + blocking;
    for (const auto& h : hp) next += std::ceil(r / h.period - util::kTimeEpsilon) * h.wcet;
    if (next > task.deadline + util::kTimeEpsilon) return std::nullopt;
    if (util::approx_equal(next, r, util::kTimeEpsilon, 0.0)) return next;
    r = next;
  }
  // Non-convergence with hp_util < 1 would indicate a numeric pathology;
  // treat conservatively as unschedulable.
  return std::nullopt;
}

bool core_schedulable_rm(const std::vector<RtTask>& tasks_on_core) {
  return core_schedulable_rm_with_blocking(tasks_on_core, 0.0);
}

bool core_schedulable_rm_with_blocking(const std::vector<RtTask>& tasks_on_core,
                                       util::Millis blocking) {
  const auto order = rm_priority_order(tasks_on_core);
  std::vector<RtTask> hp;
  hp.reserve(tasks_on_core.size());
  for (const std::size_t idx : order) {
    if (!response_time(tasks_on_core[idx], hp, blocking).has_value()) return false;
    hp.push_back(tasks_on_core[idx]);
  }
  return true;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool hyperbolic_bound_holds(const std::vector<RtTask>& tasks) {
  double product = 1.0;
  for (const auto& t : tasks) product *= t.utilization() + 1.0;
  return product <= 2.0 + util::kTimeEpsilon;
}

std::optional<util::Millis> security_response_time(
    const SecurityTask& task, util::Millis period, const std::vector<RtTask>& rt_on_core,
    const std::vector<PlacedSecurityTask>& hp_security_on_core, util::Millis blocking) {
  HYDRA_REQUIRE(period > 0.0, "candidate period must be positive");
  double hp_util = 0.0;
  for (const auto& r : rt_on_core) hp_util += r.utilization();
  for (const auto& h : hp_security_on_core) hp_util += h.wcet / h.period;
  if (hp_util >= 1.0) return std::nullopt;

  double r = task.wcet + blocking;
  for (int iter = 0; iter < 10000; ++iter) {
    double next = task.wcet + blocking;
    for (const auto& hp : rt_on_core) {
      next += std::ceil(r / hp.period - util::kTimeEpsilon) * hp.wcet;
    }
    for (const auto& hp : hp_security_on_core) {
      next += std::ceil(r / hp.period - util::kTimeEpsilon) * hp.wcet;
    }
    if (next > period + util::kTimeEpsilon) return std::nullopt;  // deadline = period
    if (util::approx_equal(next, r, util::kTimeEpsilon, 0.0)) return next;
    r = next;
  }
  return std::nullopt;
}

}  // namespace hydra::rt
