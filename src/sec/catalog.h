// The paper's Table I: the six Tripwire/Bro security tasks used in the UAV
// case study, plus optional precedence chains (paper §V: "the security
// application's own binary may need to be examined first before checking the
// system binary files").
//
// SUBSTITUTION NOTE (DESIGN.md §6): the paper measured WCETs of real Tripwire
// and Bro runs on a 1 GHz ARM Cortex-A8 with ARM cycle counters.  We ship
// representative WCETs of the same order (tens to hundreds of ms for hash
// scans over directory trees) chosen so that detection times land in the
// 0–50 s range of the paper's Fig. 1.  Desired periods follow the synthetic
// setup of §IV-B (1000–3000 ms, Tmax = 10·Tdes).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rt/task.h"

namespace hydra::sec {

/// Which application a Table-I task belongs to.
enum class SecurityApp { kTripwire, kBro };

/// One catalog row: a security task plus its Table-I metadata.
struct CatalogEntry {
  rt::SecurityTask task;
  SecurityApp app = SecurityApp::kTripwire;
  std::string function;  ///< the "Function" column of Table I
};

/// The six Table-I tasks, priority-ordered by ascending Tmax as the paper
/// prescribes (§II-C).
std::vector<CatalogEntry> tripwire_bro_catalog();

/// Just the SecurityTask part of the catalog, in the same order.
std::vector<rt::SecurityTask> tripwire_bro_tasks();

/// A precedence chain over security-task indices: members must be checked in
/// order (§V).  `respects_chain` verifies a priority ranking is consistent
/// with every chain (predecessors at higher priority).
struct Chain {
  std::vector<std::size_t> members;  ///< indices into the task vector, in order
};

/// The paper's motivating chain: Tripwire checks its own binary before the
/// system binaries (catalog indices 0 → 1).
std::vector<Chain> default_chains();

/// True iff for every chain each member has higher priority (smaller rank)
/// than its successor.  `rank` maps task index → priority rank (0 highest).
bool respects_chains(const std::vector<Chain>& chains, const std::vector<std::size_t>& rank);

/// A priority order (highest first) that follows the paper's ascending-Tmax
/// rule wherever possible while honouring every chain edge: a stable
/// topological sort with the Tmax order as the tie-breaking base order.
/// Throws std::invalid_argument when the chains contain a cycle.
std::vector<std::size_t> chain_consistent_order(const std::vector<rt::SecurityTask>& tasks,
                                                const std::vector<Chain>& chains);

}  // namespace hydra::sec
