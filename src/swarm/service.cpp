#include "swarm/service.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/mode_table.h"
#include "core/registry.h"
#include "exp/sinks.h"
#include "exp/sweep.h"
#include "io/taskset_io.h"
#include "swarm/proto.h"

namespace hydra::swarm {

namespace {

std::string error_response(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + exp::json_escape(message) + "\"}";
}

/// One allocate request after validation, before evaluation.
struct PendingRequest {
  std::string key;                  ///< spec fingerprint (the cache key)
  std::vector<std::string> schemes;
  core::Instance instance;
  std::string instance_text;        ///< io::to_text canonical form
  std::vector<std::size_t> slots;   ///< batch lines awaiting this response
};

/// The canonical single-request spec whose exp::sweep_fingerprint is the
/// cache key.  Every field that can change the response is in here (schemes,
/// full task parameters via the preset instance, optimal_budget); every
/// execution knob that cannot (jobs, sharding, resume) is excluded by
/// sweep_fingerprint itself.
exp::SweepSpec canonical_spec(const std::vector<std::string>& schemes,
                              const core::Instance& instance,
                              std::size_t optimal_budget) {
  exp::SweepSpec spec;
  spec.schemes = schemes;
  exp::SweepPoint point;
  point.label = "request";
  point.instance = instance;
  spec.points.push_back(std::move(point));
  spec.replications = 1;
  spec.base_seed = 1;
  spec.optimal_budget = optimal_budget;
  return spec;
}

}  // namespace

AllocationService::AllocationService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.default_schemes.empty()) {
    throw std::invalid_argument("service needs at least one default scheme");
  }
  if (options_.journal_compact_factor < 2) {
    throw std::invalid_argument("journal_compact_factor must be >= 2");
  }
  // Validate the defaults now, not on the first request.
  core::AllocatorRegistry::global().make_all(options_.default_schemes);

  if (!options_.cache_journal_path.empty()) {
    journal_replay();
    // Startup compaction: drop every dead append accumulated across prior
    // daemon lifetimes, and leave the journal exactly mirroring the live
    // cache.  Also (re)creates the file and opens the append stream.
    journal_compact();
  }
}

/// One journal record.  The response is itself a JSON line, so it rides as
/// an escaped string through the same flat-JSON grammar the request
/// protocol uses — parse_flat_json replays it exactly.
static std::string journal_record(const std::string& key,
                                  const std::string& response) {
  return "{\"fingerprint\":\"" + exp::json_escape(key) + "\",\"response\":\"" +
         exp::json_escape(response) + "\"}";
}

void AllocationService::journal_replay() {
  std::ifstream in(options_.cache_journal_path, std::ios::binary);
  if (!in) return;  // first boot: no journal yet
  replaying_ = true;
  std::string line;
  while (std::getline(in, line)) {
    if (!in.eof() && in.fail()) break;
    // A torn final record (crash mid-append) has no terminating newline;
    // getline still returns it, so require a parse to accept anything.  A
    // record that fails to parse ends the replay — everything after a
    // corrupt region is suspect, and the startup compaction rewrites the
    // file from what WAS restored.
    const auto fields = parse_flat_json(line);
    if (!fields.has_value()) break;
    const auto key_it = fields->find("fingerprint");
    const auto response_it = fields->find("response");
    if (key_it == fields->end() || !key_it->second.string_value.has_value() ||
        response_it == fields->end() ||
        !response_it->second.string_value.has_value()) {
      break;
    }
    cache_insert(*key_it->second.string_value, *response_it->second.string_value);
    ++stats_.journal_replayed;
  }
  replaying_ = false;
}

void AllocationService::journal_append(const std::string& key,
                                       const std::string& response) {
  if (!journal_.is_open()) return;
  const std::string record = journal_record(key, response) + "\n";
  journal_ << record;
  journal_.flush();  // a served response must be durable before the next poll
  journal_bytes_ += record.size();
  if (journal_bytes_ >
      options_.journal_compact_factor * std::max<std::size_t>(stats_.cache_bytes, 1)) {
    journal_compact();
  }
}

void AllocationService::journal_compact() {
  const std::string& path = options_.cache_journal_path;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open journal tmp: " + tmp);
    // Least-recent first, so a sequential replay reconstructs the same LRU
    // recency order this daemon is holding now.
    std::size_t bytes = 0;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const auto entry = cache_.find(*it);
      const std::string record = journal_record(*it, entry->second.response) + "\n";
      out << record;
      bytes += record.size();
    }
    out.flush();
    if (!out) throw std::runtime_error("cannot write journal tmp: " + tmp);
    journal_bytes_ = bytes;
  }
  if (journal_.is_open()) journal_.close();
  std::filesystem::rename(tmp, path);
  journal_.open(path, std::ios::binary | std::ios::app);
  if (!journal_) throw std::runtime_error("cannot reopen journal: " + path);
  ++stats_.journal_compactions;
}

std::string AllocationService::cache_lookup(const std::string& key) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return "";
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.response;
}

void AllocationService::cache_insert(const std::string& key,
                                     const std::string& response) {
  const std::size_t entry_bytes = key.size() + response.size();
  if (entry_bytes > options_.cache_budget_bytes) {
    ++stats_.uncacheable;
    return;
  }
  // A key can legitimately re-insert (journal replay after an eviction wrote
  // the same fingerprint twice); the old entry's bytes and LRU node must go
  // first, or cache_bytes drifts upward and the orphaned stale node later
  // "evicts" the live entry.
  const auto existing = cache_.find(key);
  if (existing != cache_.end()) {
    stats_.cache_bytes -= key.size() + existing->second.response.size();
    lru_.erase(existing->second.lru_position);
    cache_.erase(existing);
  }
  lru_.push_front(key);
  cache_[key] = CacheEntry{response, lru_.begin()};
  stats_.cache_bytes += entry_bytes;
  while (stats_.cache_bytes > options_.cache_budget_bytes && !lru_.empty()) {
    const std::string& victim = lru_.back();
    const auto vit = cache_.find(victim);
    stats_.cache_bytes -= victim.size() + vit->second.response.size();
    cache_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.cache_entries = cache_.size();
  // Journal only entries that survived their own insertion (a tiny budget
  // can evict the newcomer immediately) — and never during replay, which
  // would double every record it reads.
  if (!replaying_ && cache_.count(key) != 0) journal_append(key, response);
}

std::string AllocationService::stats_response() const {
  std::string out = "{\"ok\":true,\"op\":\"stats\"";
  const auto put = [&out](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":" + std::to_string(value);
  };
  put("requests", stats_.requests);
  put("allocate_requests", stats_.allocate_requests);
  put("hits", stats_.hits);
  put("misses", stats_.misses);
  put("coalesced", stats_.coalesced);
  put("errors", stats_.errors);
  put("evictions", stats_.evictions);
  put("uncacheable", stats_.uncacheable);
  put("engine_batches", stats_.engine_batches);
  put("engine_rows", stats_.engine_rows);
  put("journal_replayed", stats_.journal_replayed);
  put("journal_compactions", stats_.journal_compactions);
  put("cache_entries", stats_.cache_entries);
  put("cache_bytes", stats_.cache_bytes);
  put("cache_budget_bytes", options_.cache_budget_bytes);
  out += "}";
  return out;
}

std::vector<std::string> AllocationService::handle_batch(
    const std::vector<std::string>& lines) {
  std::vector<std::string> responses(lines.size());
  std::vector<std::size_t> stats_slots;  // answered AFTER the batch computes
  std::vector<PendingRequest> pending;
  std::map<std::string, std::size_t> pending_by_key;

  for (std::size_t slot = 0; slot < lines.size(); ++slot) {
    ++stats_.requests;
    const auto fields = parse_flat_json(lines[slot]);
    if (!fields.has_value()) {
      ++stats_.errors;
      responses[slot] = error_response("malformed request line (not a flat JSON object)");
      continue;
    }
    const auto op_it = fields->find("op");
    if (op_it == fields->end() || !op_it->second.string_value.has_value()) {
      ++stats_.errors;
      responses[slot] = error_response("request needs a string \"op\" field");
      continue;
    }
    const std::string& op = *op_it->second.string_value;

    if (op == "ping") {
      responses[slot] = "{\"ok\":true,\"op\":\"ping\"}";
      continue;
    }
    if (op == "shutdown") {
      shutdown_ = true;
      responses[slot] = "{\"ok\":true,\"op\":\"shutdown\"}";
      continue;
    }
    if (op == "stats") {
      stats_slots.push_back(slot);
      continue;
    }
    if (op != "allocate") {
      ++stats_.errors;
      responses[slot] = error_response("unknown op \"" + op + "\"");
      continue;
    }

    ++stats_.allocate_requests;
    try {
      std::vector<std::string> schemes = options_.default_schemes;
      const auto schemes_it = fields->find("schemes");
      if (schemes_it != fields->end()) {
        if (!schemes_it->second.string_array.has_value() ||
            schemes_it->second.string_array->empty()) {
          throw std::invalid_argument("\"schemes\" must be a non-empty string array");
        }
        schemes = *schemes_it->second.string_array;
      }

      core::Instance instance;
      const auto text_it = fields->find("taskset_text");
      const auto file_it = fields->find("taskset_file");
      if (text_it != fields->end() && text_it->second.string_value.has_value()) {
        instance = io::instance_from_text(*text_it->second.string_value);
      } else if (file_it != fields->end() && file_it->second.string_value.has_value()) {
        instance = io::load_instance(*file_it->second.string_value);
      } else {
        throw std::invalid_argument(
            "allocate needs \"taskset_text\" or \"taskset_file\"");
      }

      // Constructing the Sweep validates the schemes against the registry
      // and pins the labels the fingerprint expects.
      const exp::Sweep key_sweep(
          canonical_spec(schemes, instance, options_.optimal_budget));
      const std::string key = key_sweep.fingerprint();

      const std::string cached = cache_lookup(key);
      if (!cached.empty()) {
        ++stats_.hits;
        responses[slot] = cached;
        continue;
      }
      const auto dup = pending_by_key.find(key);
      if (dup != pending_by_key.end()) {
        ++stats_.coalesced;
        pending[dup->second].slots.push_back(slot);
        continue;
      }
      ++stats_.misses;
      PendingRequest request;
      request.key = key;
      request.schemes = std::move(schemes);
      request.instance_text = io::to_text(instance);
      request.instance = std::move(instance);
      request.slots.push_back(slot);
      pending_by_key.emplace(request.key, pending.size());
      pending.push_back(std::move(request));
    } catch (const std::exception& error) {
      ++stats_.errors;
      responses[slot] = error_response(error.what());
    }
  }

  // Group unique uncached requests by scheme list and run ONE engine pass
  // (a multi-point preset-instance sweep) per group.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    std::string group_key;
    for (const auto& scheme : pending[i].schemes) group_key += scheme + "\x1f";
    groups[group_key].push_back(i);
  }

  for (const auto& [group_key, members] : groups) {
    (void)group_key;
    // A group that throws mid-evaluation must not take the daemon (and every
    // other group's responses) down with it: each member slot gets an error
    // response instead.
    try {
      // Captured DesignPoints keyed by (canonical instance text, scheme): the
      // metric hook sees the instance but not the point index, and identical
      // instances yield identical design points, so content keying is exact.
      std::mutex capture_mutex;
      std::map<std::pair<std::string, std::string>, core::DesignPoint> captured;

      exp::SweepSpec spec;
      spec.schemes = pending[members.front()].schemes;
      for (const std::size_t member : members) {
        exp::SweepPoint point;
        point.label = "req" + std::to_string(member);
        point.instance = pending[member].instance;
        spec.points.push_back(std::move(point));
      }
      spec.replications = 1;
      spec.base_seed = 1;
      spec.jobs = options_.jobs;
      spec.optimal_budget = options_.optimal_budget;
      spec.metrics.push_back(
          {"swarm_capture",
           [&capture_mutex, &captured](const core::Instance& instance,
                                       const core::DesignPoint& point) {
             std::lock_guard<std::mutex> lock(capture_mutex);
             captured[{io::to_text(instance), point.scheme}] = point;
             return point.normalized_tightness;
           },
           ""});

      const exp::Sweep sweep(std::move(spec));
      const auto summary = sweep.run();
      ++stats_.engine_batches;
      stats_.engine_rows += summary.rows.size();

      for (std::size_t position = 0; position < members.size(); ++position) {
        const PendingRequest& request = pending[members[position]];
        std::string response = "{\"ok\":true,\"op\":\"allocate\",\"fingerprint\":\"" +
                               exp::json_escape(request.key) + "\",\"results\":[";
        bool first = true;
        for (const auto& row : summary.rows) {
          if (row.point_index != position) continue;
          if (!first) response += ",";
          first = false;
          response += "{\"scheme\":\"" + exp::json_escape(row.scheme) + "\"";
          response += ",\"status\":\"" + exp::json_escape(row.status) + "\"";
          response += ",\"feasible\":" + std::string(row.feasible ? "true" : "false");
          response += ",\"validated\":" + std::string(row.validated ? "true" : "false");
          response += ",\"cumulative_tightness\":" + exp::json_number(row.cumulative_tightness);
          response += ",\"normalized_tightness\":" + exp::json_number(row.normalized_tightness);
          if (!row.note.empty()) {
            response += ",\"note\":\"" + exp::json_escape(row.note) + "\"";
          }
          const auto captured_it =
              captured.find({request.instance_text, row.scheme});
          if (captured_it != captured.end() && row.feasible) {
            const auto& allocation = captured_it->second.allocation;
            response += ",\"placements\":[";
            for (std::size_t s = 0; s < allocation.placements.size(); ++s) {
              const auto& placement = allocation.placements[s];
              if (s > 0) response += ",";
              response += "{\"task\":\"" +
                          exp::json_escape(request.instance.security_tasks[s].name) +
                          "\",\"core\":" + std::to_string(placement.core) +
                          ",\"period_ms\":" + exp::json_number(placement.period) +
                          ",\"tightness\":" + exp::json_number(placement.tightness) + "}";
            }
            response += "]";
            // The runtime mode table the Contego-style controller consumes:
            // minimum mode (Tmax fallback) + the adapted periods committed here.
            const auto modes =
                core::build_mode_table(request.instance, allocation);
            response += ",\"modes\":[";
            for (std::size_t s = 0; s < modes.modes.size(); ++s) {
              const auto& mode = modes.modes[s];
              if (s > 0) response += ",";
              response += "{\"task\":\"" +
                          exp::json_escape(request.instance.security_tasks[s].name) +
                          "\",\"core\":" + std::to_string(mode.core) +
                          ",\"min_period_ms\":" + exp::json_number(mode.min_period) +
                          ",\"adapted_period_ms\":" + exp::json_number(mode.adapted_period) +
                          "}";
            }
            response += "]";
          }
          response += "}";
        }
        response += "]}";

        cache_insert(request.key, response);
        for (const std::size_t slot : request.slots) responses[slot] = response;
      }
    } catch (const std::exception& error) {
      const std::string response = error_response(error.what());
      for (const std::size_t member : members) {
        for (const std::size_t slot : pending[member].slots) {
          ++stats_.errors;
          responses[slot] = response;
        }
      }
    }
  }

  // Stats are answered after the batch's engine work so a stats op riding a
  // batch observes that batch, not the state before it.
  for (const std::size_t slot : stats_slots) responses[slot] = stats_response();
  return responses;
}

std::string AllocationService::handle_line(const std::string& line) {
  return handle_batch({line}).front();
}

}  // namespace hydra::swarm
