// Symmetric positive-definite solves for Newton systems.
//
// `solve_spd` attempts a plain Cholesky factorization; if the matrix is not
// numerically positive definite (which happens for barely-curved barrier
// Hessians), it retries with increasing diagonal regularization — the
// standard modified-Newton fallback.  The solver only needs descent
// directions, so a regularized solve is acceptable.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace hydra::linalg {

/// In-place Cholesky factorization result: L with A = L·Lᵀ (lower triangle).
/// Returns std::nullopt if A is not numerically positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves L·Lᵀ x = b given the Cholesky factor L.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Solves A x = b for symmetric A, regularizing the diagonal if needed.
/// Throws std::runtime_error if the system cannot be solved even with heavy
/// regularization (indicates non-finite input).
Vector solve_spd(const Matrix& a, const Vector& b);

/// Caller-owned scratch for the workspace variants below.  A hot loop (one
/// Newton solve per iteration, dozens of iterations per barrier stage) holds
/// one of these and every solve reuses the same four buffers instead of
/// allocating a fresh Matrix/Vector quartet per call.  The buffers are
/// resized on demand, so one workspace serves systems of any (varying) size.
struct SpdWorkspace {
  Matrix work;  ///< regularized copy of A
  Matrix l;     ///< Cholesky factor
  Vector y;     ///< forward-substitution intermediate
  Vector x;     ///< solution (referenced by solve_spd_into's return)
};

/// Workspace variant of `cholesky`: factorizes `a` into `l` (reshaped as
/// needed; only the lower triangle is meaningful).  Returns false if `a` is
/// not numerically positive definite.  Same arithmetic as `cholesky`.
bool cholesky_factorize(const Matrix& a, Matrix& l);

/// Workspace variant of `cholesky_solve`: solves L·Lᵀ x = b into `x` using
/// `y` as forward-substitution scratch.  Same arithmetic as `cholesky_solve`.
void cholesky_solve_into(const Matrix& l, const Vector& b, Vector& y, Vector& x);

/// Workspace variant of `solve_spd`: identical arithmetic (same
/// regularization ladder), but every intermediate lives in `ws` and the
/// returned reference aliases `ws.x` — valid until the next call on `ws`.
const Vector& solve_spd_into(const Matrix& a, const Vector& b, SpdWorkspace& ws);

}  // namespace hydra::linalg
