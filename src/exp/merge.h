// Checkpoint merging: the union of per-shard sweep checkpoints, keyed by
// cell, back into the single JSONL stream a one-process run would have
// written.  This is the seam every distributed backend (job arrays,
// containers, one machine per shard) rides on: run N processes with
// `--shard i/N`, then
//
//     hydra_merge --out merged.jsonl shard0.jsonl ... shardN-1.jsonl
//
// and `merged.jsonl` is byte-identical to the unsharded `--jobs 1` output —
// usable as a `--resume` checkpoint, an aggregation input, or a regression
// artifact.
//
// The merge contract (locked down by tests/test_merge_checkpoints.cpp and
// tests/test_sweep_shard.cpp):
//
//   * order-insensitive — shard files and the lines inside them may arrive
//     in any order (interleaved, reversed, reordered); the output is always
//     canonical grid order (point-major, instance-minor, scheme order from
//     the shard header);
//   * idempotent — merging the same shard (or an already-merged file's
//     cells) twice coalesces byte-identical duplicates and counts them;
//   * loud on conflicts — two rows for the same (cell, scheme) with
//     different bytes, a fingerprint mismatch between shard headers, or a
//     corrupt line in the middle of a file throw std::runtime_error; cells
//     are never silently dropped or overwritten;
//   * tolerant of torn tails — an unparseable FINAL line is the write that
//     was in flight when a shard died; it is discarded and counted, exactly
//     like the resume loader does.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace hydra::exp {

struct MergeOptions {
  /// When true (the default), the merge must prove it reconstructs the FULL
  /// grid: every input carries a shard header, the headers' shard indices
  /// cover 0..shards-1, the declared per-shard cell counts sum to the number
  /// of distinct merged cells, and every cell holds one row per scheme.
  /// Disable (hydra_merge --allow-partial) to union whatever is present —
  /// e.g. to turn the surviving shards of a crashed fleet into a --resume
  /// checkpoint.
  bool require_complete = true;
  /// Non-empty: every shard header must carry exactly this spec fingerprint
  /// (hydra_merge --expect-fingerprint, for pipelines that know their spec).
  std::string expect_fingerprint;
};

/// One merged (point, instance) unit: its rows as raw JSONL lines in
/// canonical scheme order.  Raw bytes, not re-serialized rows — the merge
/// can never introduce a formatting drift of its own.
struct MergedCell {
  std::string key;
  std::size_t point_index = 0;
  std::size_t instance_index = 0;
  std::vector<std::string> lines;
};

struct MergeResult {
  std::vector<MergedCell> cells;  ///< canonical grid order
  /// Representative shard header (fingerprint / shards / schemes are
  /// validated to agree across inputs); nullopt when no input had one.
  std::optional<SweepShardHeader> header;
  std::size_t shard_files = 0;     ///< input files consumed
  std::size_t rows = 0;            ///< row lines in the merged output
  std::size_t duplicate_rows = 0;  ///< byte-identical repeated rows coalesced
  std::size_t torn_lines = 0;      ///< unparseable trailing fragments discarded
  /// True when the merge provably reconstructs the full grid (every input
  /// carries a header, shard indices cover 0..shards-1, declared cell counts
  /// sum to the distinct merged cells, every cell has one row per scheme).
  /// With `require_complete` an incomplete merge throws instead, so a
  /// returned result has complete == true; with allow-partial this flag is
  /// how callers — the swarm orchestrator's progress loop, scripts driving
  /// `hydra_merge --allow-partial`/`--check` — distinguish "done" from
  /// "partial but consistent" without a second pass over the files.
  bool complete = false;
  /// Empty when complete; else the first completeness hole found (the same
  /// message require_complete would have thrown).
  std::string incomplete_reason;
};

/// Merges the given checkpoint files.  Throws std::runtime_error on missing
/// files, corrupt non-trailing lines, rows without a cell key, conflicting
/// duplicates, header disagreements, and (with require_complete) any hole in
/// the reconstructed grid.
MergeResult merge_checkpoints(const std::vector<std::string>& paths,
                              const MergeOptions& options = {});

/// Writes the merged rows (no header line — a merged file IS the unsharded
/// stream) to `out`.
void write_merged(const MergeResult& result, std::ostream& out);

}  // namespace hydra::exp
