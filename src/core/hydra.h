// HYDRA (paper Algorithm 1): greedy joint task-allocation and period
// adaptation.
//
// Security tasks are visited from highest to lowest priority (ascending
// Tmax).  For each task the Eq. (7) subproblem is solved on every core; the
// task goes to the core giving the maximum achievable tightness, its period
// is fixed, and it becomes an interferer for the tasks that follow.  If no
// core is feasible the whole set is declared unschedulable — exactly the
// paper's early-return on line 9.
//
// Knobs beyond the paper (defaults reproduce the paper's behaviour):
//   * `solver`      — closed-form vs GP subproblem (identical results).
//   * `core_pick`   — ablation of line 11's argmax-tightness rule.
//   * `tie_break`   — the paper leaves η ties unspecified; the default
//                     spreads load (least busy core), the ablation picks the
//                     lowest index.
//   * `blocking`    — per-core blocking term for non-preemptive security
//                     tasks (paper §V future work).
#pragma once

#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/period_adaptation.h"
#include "rt/partition.h"

namespace hydra::core {

/// How to choose among cores once Eq. (7) has been solved on each.
enum class CorePick {
  kMaxTightness,   ///< paper's line 11: argmax ηs
  kFirstFeasible,  ///< first-fit: lowest-index feasible core
  kLeastLoaded,    ///< feasible core with the least total utilization
  kWorstTightness, ///< adversarial baseline: argmin ηs (for ablation)
};

/// Resolves equal-tightness candidates for kMaxTightness.
enum class TieBreak {
  kLeastLoaded,  ///< spread security load (default; helps detection latency)
  kLowestIndex,  ///< deterministic first-core rule
};

struct HydraOptions {
  PeriodSolver solver = PeriodSolver::kClosedForm;
  CorePick core_pick = CorePick::kMaxTightness;
  TieBreak tie_break = TieBreak::kLeastLoaded;
  util::Millis blocking = 0.0;  ///< non-preemptive blocking per core (0 = paper)
  /// Model non-preemptive security execution FULLY: in addition to the
  /// `blocking` term on the security side, a candidate core is admissible
  /// only if its RT tasks stay schedulable when a lower-priority scan may
  /// block them for up to the longest security WCET hosted there.  Without
  /// this the §V extension silently breaks the "do not perturb the RT tasks"
  /// premise (the ablation bench demonstrates the resulting deadline misses).
  bool non_preemptive_security = false;
  /// Security priority order override (highest first), e.g. a
  /// sec::chain_consistent_order honouring §V precedence chains.  Absent =
  /// the paper's ascending-Tmax rule.  Pass the same order to
  /// validate_allocation and build_sim_tasks.
  std::optional<std::vector<std::size_t>> priority_order;
};

class HydraAllocator : public Allocator {
 public:
  explicit HydraAllocator(HydraOptions options = {})
      : Allocator("hydra"), options_(options) {}

  /// Runs Algorithm 1 against an externally supplied RT partition over all M
  /// cores (the paper's input `I`).
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  /// Convenience overload matching the paper's evaluation setup: partitions
  /// the RT tasks over all M cores with best-fit first, then runs HYDRA.
  /// Infeasible if the RT tasks alone cannot be partitioned.
  Allocation allocate(const Instance& instance) const override;

  std::string describe() const override;
  ScheduleTest schedule_test() const override {
    return options_.solver == PeriodSolver::kExactRta ? ScheduleTest::kExactRta
                                                      : ScheduleTest::kLinearBound;
  }
  util::Millis blocking() const override { return options_.blocking; }
  std::optional<std::vector<std::size_t>> priority_order() const override {
    return options_.priority_order;
  }

  const HydraOptions& options() const { return options_; }

 private:
  HydraOptions options_;
};

}  // namespace hydra::core
