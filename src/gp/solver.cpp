#include "gp/solver.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "util/contracts.h"

namespace hydra::gp {

namespace {

/// %g-formatted double for diagnostics (std::to_string renders 1e-9 as
/// "0.000000", which reads as an impossible margin).
std::string format_diag(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

/// Wraps a posynomial's log-space image as a SmoothFn.
SmoothFn make_log_fn(const Posynomial& p) {
  return [&p](const linalg::Vector& y, EvalLevel level) {
    FnEval out;
    if (level == EvalLevel::kValue) {
      out.value = p.log_value(y);
      return out;
    }
    LogEval le = p.log_eval(y, /*need_hess=*/true);
    out.value = le.value;
    out.grad = std::move(le.grad);
    out.hess = std::move(le.hess);
    return out;
  };
}

/// Log-space constraint of a `p <= 1` posynomial constraint: F(y) = log p(e^y).
/// Strict feasibility means F(y) < 0.
std::vector<SmoothFn> make_constraint_fns(const GpProblem& problem) {
  std::vector<SmoothFn> fns;
  fns.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints()) fns.push_back(make_log_fn(c));
  return fns;
}

linalg::Vector to_log_point(const std::vector<double>& x) {
  linalg::Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    HYDRA_REQUIRE(x[i] > 0.0, "initial guess must be strictly positive");
    y[i] = std::log(x[i]);
  }
  return y;
}

std::vector<double> to_positive_point(const linalg::Vector& y) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[i] = std::exp(y[i]);
  return x;
}

double max_constraint_log(const GpProblem& problem, const linalg::Vector& y) {
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& c : problem.constraints()) {
    worst = std::fmax(worst, c.log_value(y));
  }
  return worst;
}

/// Phase I: over (y, s) minimize s subject to F_i(y) − s < 0.  The program is
/// always strictly feasible (pick s above the worst violation), and the
/// original problem has a strictly feasible point iff the optimum is < 0.
struct Phase1Outcome {
  bool feasible = false;
  linalg::Vector y;  ///< strictly feasible point when feasible
  int newton_steps = 0;
};

Phase1Outcome run_phase1(const GpProblem& problem, const linalg::Vector& y_start,
                         const SolveOptions& options) {
  const std::size_t n = problem.num_variables();
  const std::size_t ext = n + 1;  // extra slack variable s at index n

  // Objective: s (linear).
  SmoothFn obj = [ext, n](const linalg::Vector& z, EvalLevel level) {
    FnEval out;
    out.value = z[n];
    if (level == EvalLevel::kFull) {
      out.grad = linalg::Vector(ext);
      out.grad[n] = 1.0;
      out.hess = linalg::Matrix(ext, ext);
    }
    return out;
  };

  std::vector<SmoothFn> cons;
  cons.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints()) {
    cons.push_back([&c, n, ext](const linalg::Vector& z, EvalLevel level) {
      linalg::Vector y(n);
      for (std::size_t i = 0; i < n; ++i) y[i] = z[i];
      FnEval out;
      if (level == EvalLevel::kValue) {
        out.value = c.log_value(y) - z[n];
        return out;
      }
      const LogEval le = c.log_eval(y, /*need_hess=*/true);
      out.value = le.value - z[n];
      out.grad = linalg::Vector(ext);
      for (std::size_t i = 0; i < n; ++i) out.grad[i] = le.grad[i];
      out.grad[n] = -1.0;
      out.hess = linalg::Matrix(ext, ext);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) out.hess(i, j) = le.hess(i, j);
      }
      return out;
    });
  }

  linalg::Vector z0(ext);
  for (std::size_t i = 0; i < n; ++i) z0[i] = y_start[i];
  z0[n] = max_constraint_log(problem, y_start) + 1.0;

  BarrierOptions bopts = options.barrier;
  // Phase I only needs the sign of the optimum, not high accuracy.
  bopts.duality_gap_tol = std::fmax(bopts.duality_gap_tol, 1e-10);

  Phase1Outcome out;
  const BarrierResult br = barrier_minimize(obj, cons, z0, bopts);
  out.newton_steps = br.newton_steps;
  if (br.y[n] < -options.phase1_margin) {
    out.feasible = true;
    out.y = linalg::Vector(n);
    for (std::size_t i = 0; i < n; ++i) out.y[i] = br.y[i];
  }
  return out;
}

}  // namespace

SolveResult GpSolver::solve(const GpProblem& problem,
                            const std::optional<std::vector<double>>& initial_guess) const {
  SolveResult result;
  HYDRA_REQUIRE(problem.has_objective(), "GP has no objective");
  HYDRA_REQUIRE(problem.num_variables() > 0, "GP has no variables");
  const std::size_t n = problem.num_variables();

  // Starting point: caller hint or all-ones (y = 0).
  linalg::Vector y0(n);
  if (initial_guess.has_value()) {
    HYDRA_REQUIRE(initial_guess->size() == n, "initial guess size mismatch");
    y0 = to_log_point(*initial_guess);
  }

  // Establish strict feasibility, via phase I when the hint is not feasible.
  // Wrapped like phase II below: a numerical failure inside the phase-I
  // barrier (near-singular Hessians on degenerate boxes) must surface as a
  // diagnosed kError, not an exception thrown past the caller.
  int phase1_steps = 0;
  if (!problem.constraints().empty() && max_constraint_log(problem, y0) >= 0.0) {
    try {
      const Phase1Outcome p1 = run_phase1(problem, y0, options_);
      phase1_steps = p1.newton_steps;
      if (!p1.feasible) {
        result.status = SolveStatus::kInfeasible;
        result.newton_steps = phase1_steps;
        result.message = "phase I: no strictly feasible point within margin " +
                         format_diag(options_.phase1_margin);
        return result;
      }
      y0 = p1.y;
    } catch (const std::exception& e) {
      result.status = SolveStatus::kError;
      result.newton_steps = phase1_steps;
      result.message = std::string("phase I failed: ") +
                       (e.what()[0] != '\0' ? e.what() : "unnamed exception");
      return result;
    }
  }

  try {
    const SmoothFn obj = make_log_fn(problem.objective());
    const std::vector<SmoothFn> cons = make_constraint_fns(problem);
    const BarrierResult br = barrier_minimize(obj, cons, y0, options_.barrier);
    result.newton_steps = phase1_steps + br.newton_steps;
    switch (br.status) {
      case BarrierStatus::kOptimal:
      case BarrierStatus::kMaxIterations: {
        result.x = to_positive_point(br.y);
        result.objective = problem.objective().eval(result.x);
        // The iterate is strictly feasible by construction; report optimal
        // even on iteration cap since the point is usable (tests check the
        // KKT gap independently).
        result.status = SolveStatus::kOptimal;
        if (br.status == BarrierStatus::kMaxIterations) {
          result.converged = false;
          result.message = "iteration budget reached; returning best feasible iterate";
        }
        return result;
      }
      case BarrierStatus::kUnbounded:
        result.status = SolveStatus::kUnbounded;
        result.message = "objective unbounded below";
        return result;
    }
  } catch (const std::exception& e) {
    result.status = SolveStatus::kError;
    // Every non-optimal exit must carry a diagnostic (tested); a rethrown
    // exception with an empty what() would otherwise leave the caller blind.
    result.message = e.what()[0] != '\0' ? e.what() : "barrier solve failed (unnamed exception)";
    return result;
  }
  result.status = SolveStatus::kError;
  result.message = "barrier returned an unknown status";
  return result;
}

}  // namespace hydra::gp
