// Checkpoint-robustness suite for exp::merge_checkpoints and
// parse_jsonl_row: a seeded corpus of mutated shard checkpoints (truncated,
// duplicated, reordered, interleaved, stale fingerprints, mid-file garbage)
// pinning the merge contract — order-insensitive, idempotent, tolerant of a
// torn FINAL line, and loud (std::runtime_error) on conflicting duplicates,
// corruption, and holes, never silently dropping or inventing cells.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/merge.h"
#include "exp/sweep.h"

namespace hexp = hydra::exp;

namespace {

/// Cheap two-scheme grid: 2 points × 2 replications = 4 cells, 8 rows.
hexp::SweepSpec small_spec() {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra", "single-core"};
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  spec.add_utilization_grid(config, {0.7, 1.2});
  spec.replications = 2;
  spec.base_seed = 5;
  return spec;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// RAII scratch file.
struct TempFile {
  std::string path;
  TempFile(const std::string& name, const std::string& content)
      : path(::testing::TempDir() + "hydra_merge_" + name) {
    write(content);
  }
  void write(const std::string& content) const {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// The reference fixture: the unsharded stream plus two header-stamped shard
/// checkpoints, computed once (evaluation is deterministic, so sharing is
/// safe and keeps the fuzz loop fast).
struct Fixture {
  std::string full;                        // single-process row stream
  std::vector<std::string> shard_content;  // shard files incl. header line
  std::vector<std::vector<std::string>> shard_lines;

  Fixture() {
    {
      auto spec = small_spec();
      spec.jobs = 1;
      std::ostringstream os;
      hexp::JsonlSink sink(os);
      hexp::Sweep(std::move(spec)).run({&sink});
      full = os.str();
    }
    for (std::size_t s = 0; s < 2; ++s) {
      auto spec = small_spec();
      spec.shard_index = s;
      spec.shard_count = 2;
      const hexp::Sweep sweep(std::move(spec));
      std::ostringstream os;
      os << hexp::format_shard_header(sweep.shard_header()) << "\n";
      hexp::JsonlSink sink(os);
      sweep.run({&sink});
      shard_content.push_back(os.str());
      shard_lines.push_back(split_lines(shard_content.back()));
    }
  }
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

std::string merge_files(const std::vector<const TempFile*>& files,
                        const hexp::MergeOptions& options = {}) {
  std::vector<std::string> paths;
  for (const auto* file : files) paths.push_back(file->path);
  const auto merged = hexp::merge_checkpoints(paths, options);
  std::ostringstream os;
  hexp::write_merged(merged, os);
  return os.str();
}

}  // namespace

TEST(MergeCheckpoints, TwoShardsReproduceTheUnshardedStream) {
  const auto& fix = fixture();
  const TempFile s0("base0.jsonl", fix.shard_content[0]);
  const TempFile s1("base1.jsonl", fix.shard_content[1]);
  EXPECT_EQ(merge_files({&s0, &s1}), fix.full);
  EXPECT_EQ(merge_files({&s1, &s0}), fix.full);  // argument order irrelevant
}

TEST(MergeCheckpoints, IsIdempotentUnderRepeatedInputsAndSelfMerge) {
  const auto& fix = fixture();
  const TempFile s0("idem0.jsonl", fix.shard_content[0]);
  const TempFile s1("idem1.jsonl", fix.shard_content[1]);

  const auto twice = hexp::merge_checkpoints({s0.path, s1.path, s0.path, s1.path});
  std::ostringstream os;
  hexp::write_merged(twice, os);
  EXPECT_EQ(os.str(), fix.full);
  EXPECT_GT(twice.duplicate_rows, 0u);

  // Merging a merge (headerless, so completeness is unprovable) changes
  // nothing either.
  const TempFile merged("idem_merged.jsonl", fix.full);
  hexp::MergeOptions partial;
  partial.require_complete = false;
  EXPECT_EQ(merge_files({&merged}, partial), fix.full);
  EXPECT_EQ(merge_files({&merged, &merged}, partial), fix.full);
}

TEST(MergeCheckpoints, OrderInsensitiveUnderInterleavingAndReordering) {
  const auto& fix = fixture();
  // Pool every row line, deterministically shuffle, and deal them round-robin
  // back into two files under the ORIGINAL headers: cells end up split and
  // interleaved across the files, rows inside a cell arrive in scrambled
  // scheme order.
  std::vector<std::string> pool;
  for (const auto& lines : fix.shard_lines) {
    pool.insert(pool.end(), lines.begin() + 1, lines.end());
  }
  std::mt19937_64 rng(2024);
  for (int round = 0; round < 8; ++round) {
    std::shuffle(pool.begin(), pool.end(), rng);
    std::vector<std::string> a = {fix.shard_lines[0][0]};
    std::vector<std::string> b = {fix.shard_lines[1][0]};
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i % 2 == 0 ? a : b).push_back(pool[i]);
    }
    const TempFile fa("interleave_a.jsonl", join_lines(a));
    const TempFile fb("interleave_b.jsonl", join_lines(b));
    EXPECT_EQ(merge_files({&fa, &fb}), fix.full) << "round " << round;
  }
}

TEST(MergeCheckpoints, TornTrailingLineIsDiscardedNotTrusted) {
  const auto& fix = fixture();
  // A duplicate of the last row, cut mid-write: nothing is lost, the fragment
  // is dropped and counted.
  const auto& last = fix.shard_lines[0].back();
  const TempFile torn("torn0.jsonl",
                      fix.shard_content[0] + last.substr(0, last.size() / 2));
  const TempFile intact("torn1.jsonl", fix.shard_content[1]);
  const auto merged = hexp::merge_checkpoints({torn.path, intact.path});
  EXPECT_EQ(merged.torn_lines, 1u);
  std::ostringstream os;
  hexp::write_merged(merged, os);
  EXPECT_EQ(os.str(), fix.full);
}

TEST(MergeCheckpoints, TruncatedShardFailsCompletenessButUnionsPartially) {
  const auto& fix = fixture();
  // Chop the final row off shard 0 entirely: its cell now misses a scheme.
  auto lines = fix.shard_lines[0];
  ASSERT_GT(lines.size(), 2u);
  lines.pop_back();
  const TempFile truncated("trunc0.jsonl", join_lines(lines));
  const TempFile intact("trunc1.jsonl", fix.shard_content[1]);

  EXPECT_THROW(hexp::merge_checkpoints({truncated.path, intact.path}),
               std::runtime_error);

  hexp::MergeOptions partial;
  partial.require_complete = false;
  const auto merged_rows = merge_files({&truncated, &intact}, partial);
  // Partial union: every emitted line is a real line of the full stream.
  const auto full_lines = split_lines(fix.full);
  const std::set<std::string> valid(full_lines.begin(), full_lines.end());
  const auto merged_lines = split_lines(merged_rows);
  EXPECT_EQ(merged_lines.size(), full_lines.size() - 1);
  for (const auto& line : merged_lines) {
    EXPECT_TRUE(valid.count(line) > 0) << line;
  }
}

TEST(MergeCheckpoints, StaleFingerprintIsRejected) {
  const auto& fix = fixture();
  auto lines = fix.shard_lines[1];
  const auto marker = lines[0].find("\"fingerprint\":\"");
  ASSERT_NE(marker, std::string::npos);
  const auto start = marker + std::string("\"fingerprint\":\"").size();
  lines[0].replace(start, 16, "deadbeefdeadbeef");
  ASSERT_TRUE(hexp::parse_shard_header(lines[0]).has_value());

  const TempFile fresh("stale0.jsonl", fix.shard_content[0]);
  const TempFile stale("stale1.jsonl", join_lines(lines));
  try {
    hexp::merge_checkpoints({fresh.path, stale.path});
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos);
  }
}

TEST(MergeCheckpoints, ExpectFingerprintOptionIsEnforced) {
  const auto& fix = fixture();
  const TempFile s0("expect0.jsonl", fix.shard_content[0]);
  const TempFile s1("expect1.jsonl", fix.shard_content[1]);
  const auto header = hexp::parse_shard_header(fix.shard_lines[0][0]);
  ASSERT_TRUE(header.has_value());

  hexp::MergeOptions match;
  match.expect_fingerprint = header->fingerprint;
  EXPECT_EQ(merge_files({&s0, &s1}, match), fix.full);

  hexp::MergeOptions mismatch;
  mismatch.expect_fingerprint = "0000000000000000";
  EXPECT_THROW(merge_files({&s0, &s1}, mismatch), std::runtime_error);
}

TEST(MergeCheckpoints, ConflictingDuplicateCellIsRejectedLoudly) {
  const auto& fix = fixture();
  // Forge a second opinion about an existing (cell, scheme): same key, a
  // flipped feasible bit.  The merge must refuse to pick a side.
  std::string forged = fix.shard_lines[0][1];
  const auto flip = [&forged](const std::string& from, const std::string& to) {
    const auto at = forged.find(from);
    if (at != std::string::npos) forged.replace(at, from.size(), to);
  };
  if (forged.find("\"feasible\":true") != std::string::npos) {
    flip("\"feasible\":true", "\"feasible\":false");
  } else {
    flip("\"feasible\":false", "\"feasible\":true");
  }
  ASSERT_TRUE(hexp::parse_jsonl_row(forged).has_value());

  const TempFile s0("conflict0.jsonl", fix.shard_content[0]);
  const TempFile s1("conflict1.jsonl", fix.shard_content[1] + forged + "\n");
  try {
    hexp::merge_checkpoints({s0.path, s1.path});
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("conflicting duplicate"),
              std::string::npos);
  }
}

TEST(MergeCheckpoints, MidFileGarbageIsCorruptionNotATornTail) {
  const auto& fix = fixture();
  auto lines = fix.shard_lines[0];
  lines.insert(lines.begin() + 2, "GARBAGE NOT JSON");
  const TempFile corrupt("garbage0.jsonl", join_lines(lines));
  const TempFile intact("garbage1.jsonl", fix.shard_content[1]);
  try {
    hexp::merge_checkpoints({corrupt.path, intact.path});
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt"), std::string::npos);
  }
}

TEST(MergeCheckpoints, ConcatenatedShardFilesAreRejected) {
  const auto& fix = fixture();
  const TempFile cat("concat.jsonl", fix.shard_content[0] + fix.shard_content[1]);
  try {
    hexp::merge_checkpoints({cat.path});
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("concatenated"), std::string::npos);
  }
}

TEST(MergeCheckpoints, RowsWithoutCellKeysAreRejected) {
  const auto& fix = fixture();
  std::string keyless = fix.shard_lines[0][1];
  const auto cell_start = keyless.find("{\"cell\":\"");
  ASSERT_EQ(cell_start, 0u);
  const auto cell_end = keyless.find('"', std::string("{\"cell\":\"").size());
  keyless = "{\"cell\":\"" + keyless.substr(cell_end);
  ASSERT_TRUE(hexp::parse_jsonl_row(keyless).has_value());

  const TempFile engine_rows("keyless.jsonl", keyless + "\n");
  hexp::MergeOptions partial;
  partial.require_complete = false;
  EXPECT_THROW(hexp::merge_checkpoints({engine_rows.path}, partial),
               std::runtime_error);
}

TEST(MergeCheckpoints, MissingShardOrMissingFileIsAnError) {
  const auto& fix = fixture();
  const TempFile s0("missing0.jsonl", fix.shard_content[0]);
  try {
    hexp::merge_checkpoints({s0.path});
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("missing shard"), std::string::npos);
  }
  // The lone shard still unions under --allow-partial.
  hexp::MergeOptions partial;
  partial.require_complete = false;
  EXPECT_FALSE(merge_files({&s0}, partial).empty());

  EXPECT_THROW(
      hexp::merge_checkpoints({::testing::TempDir() + "hydra_no_such.jsonl"}),
      std::runtime_error);
  EXPECT_THROW(hexp::merge_checkpoints({}), std::runtime_error);
}

TEST(MergeCheckpoints, SeededFuzzNeverSilentlyCorrupts) {
  // Random checkpoint mutations; two invariants survive every one of them:
  //   * a merge that SUCCEEDS with require_complete reproduces the full
  //     stream byte-for-byte;
  //   * a merge that succeeds in partial mode emits only genuine row lines
  //     (never invented, never mangled bytes);
  //   * everything else throws — never a silent wrong answer.
  const auto& fix = fixture();
  const auto full_lines = split_lines(fix.full);
  const std::set<std::string> valid(full_lines.begin(), full_lines.end());

  std::mt19937_64 rng(424242);
  std::size_t complete_ok = 0, partial_ok = 0, rejected = 0;
  for (int iteration = 0; iteration < 60; ++iteration) {
    auto files = fix.shard_lines;  // headers at index 0 stay put
    const int mutations = 1 + static_cast<int>(rng() % 2);
    for (int m = 0; m < mutations; ++m) {
      auto& target = files[rng() % files.size()];
      const std::size_t rows = target.size() - 1;
      switch (rng() % 6) {
        case 0:  // drop a random row
          if (rows > 0) target.erase(target.begin() + 1 + rng() % rows);
          break;
        case 1:  // duplicate a random row at the end
          if (rows > 0) target.push_back(target[1 + rng() % rows]);
          break;
        case 2: {  // swap two rows
          if (rows > 1) {
            std::swap(target[1 + rng() % rows], target[1 + rng() % rows]);
          }
          break;
        }
        case 3: {  // move a row to the other file
          if (rows > 0) {
            const auto at = target.begin() + 1 + rng() % rows;
            files[(&target == &files[0]) ? 1 : 0].push_back(*at);
            target.erase(at);
          }
          break;
        }
        case 4:  // tear the final line
          if (rows > 0) {
            auto& last = target.back();
            last = last.substr(0, 1 + rng() % last.size());
          }
          break;
        case 5:  // append garbage (a torn tail of nonsense)
          target.push_back("!garbage " + std::to_string(rng()));
          break;
      }
    }
    const TempFile fa("fuzz_a.jsonl", join_lines(files[0]));
    const TempFile fb("fuzz_b.jsonl", join_lines(files[1]));

    try {
      const auto merged = merge_files({&fa, &fb});
      EXPECT_EQ(merged, fix.full) << "complete merge must be exact";
      ++complete_ok;
    } catch (const std::runtime_error&) {
      ++rejected;
      try {
        hexp::MergeOptions partial;
        partial.require_complete = false;
        const auto merged = merge_files({&fa, &fb}, partial);
        for (const auto& line : split_lines(merged)) {
          EXPECT_TRUE(valid.count(line) > 0)
              << "partial merge invented bytes: " << line;
        }
        ++partial_ok;
      } catch (const std::runtime_error&) {
        // Loud rejection is always acceptable.
      }
    }
  }
  // The corpus must exercise both sides of the contract.
  EXPECT_GT(complete_ok, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(partial_ok, 0u);
}

TEST(ParseJsonlRow, NoStrictPrefixOrExtendedLineParses) {
  const auto& fix = fixture();
  const auto line = fix.shard_lines[0][1];
  ASSERT_TRUE(hexp::parse_jsonl_row(line).has_value());
  for (std::size_t cut = 0; cut < line.size(); ++cut) {
    EXPECT_FALSE(hexp::parse_jsonl_row(line.substr(0, cut)).has_value())
        << "prefix of length " << cut << " parsed";
  }
  EXPECT_FALSE(hexp::parse_jsonl_row(line + "x").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row(" " + line).has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row(line + line).has_value());
}

TEST(ParseJsonlRow, ForeignProducersAreRejected) {
  EXPECT_FALSE(hexp::parse_jsonl_row("").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row("{}").has_value() &&
               !hexp::parse_jsonl_row("{}")->cell.empty());
  EXPECT_FALSE(hexp::parse_jsonl_row("{\"cell\":\"x\",\"bogus\":1}").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row("[1,2,3]").has_value());
  EXPECT_FALSE(
      hexp::parse_jsonl_row("{\"cell\":\"x\",\"seed\":1e99}").has_value());
}

TEST(MergeCheckpoints, CompleteFlagDistinguishesFullFromPartialUnions) {
  // The MergeResult::complete / incomplete_reason pair is the library form
  // of hydra_merge's exit-code contract (0 complete, 3 partial-but-
  // consistent): an allow-partial merge must still KNOW whether it happens
  // to be complete, so watcher loops can poll cheaply.
  const auto& fix = fixture();
  const TempFile s0("flag0.jsonl", fix.shard_content[0]);
  const TempFile s1("flag1.jsonl", fix.shard_content[1]);

  hexp::MergeOptions allow_partial;
  allow_partial.require_complete = false;

  // Full shard set: complete even under allow-partial.
  const auto full = hexp::merge_checkpoints({s0.path, s1.path}, allow_partial);
  EXPECT_TRUE(full.complete);
  EXPECT_TRUE(full.incomplete_reason.empty()) << full.incomplete_reason;

  // Missing sibling shard: consistent union, but provably incomplete.
  const auto half = hexp::merge_checkpoints({s0.path}, allow_partial);
  EXPECT_FALSE(half.complete);
  EXPECT_FALSE(half.incomplete_reason.empty());

  // A truncated shard (lost rows, intact header) is incomplete too, and the
  // reason is exactly what require_complete would have thrown.
  auto lines = fix.shard_lines[1];
  lines.pop_back();
  const TempFile cut("flagcut.jsonl", join_lines(lines));
  const auto torn = hexp::merge_checkpoints({s0.path, cut.path}, allow_partial);
  EXPECT_FALSE(torn.complete);
  try {
    hexp::merge_checkpoints({s0.path, cut.path}, hexp::MergeOptions{});
    FAIL() << "require_complete accepted a truncated shard";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(torn.incomplete_reason, error.what());
  }
}

TEST(MergeCheckpoints, HeaderlessInputsAreNeverComplete) {
  // A bare row stream (no shard headers) can be a fine resume checkpoint,
  // but nothing proves full-grid coverage — complete must stay false.
  const auto& fix = fixture();
  const TempFile bare("noheader.jsonl", fix.full);
  hexp::MergeOptions allow_partial;
  allow_partial.require_complete = false;
  const auto merged = hexp::merge_checkpoints({bare.path}, allow_partial);
  EXPECT_FALSE(merged.complete);
  EXPECT_FALSE(merged.incomplete_reason.empty());
}
