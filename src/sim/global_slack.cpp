#include "sim/global_slack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/contracts.h"
#include "util/rng.h"

namespace hydra::sim {

namespace {

constexpr util::SimTime kNever = std::numeric_limits<util::SimTime>::max();
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

struct LiveJob {
  std::size_t task = 0;
  std::size_t job_index = 0;
  util::SimTime remaining = 0;
  bool started = false;
  std::size_t last_core = kNone;
};

void validate_inputs(const std::vector<GlobalSimTask>& tasks, const GlobalSimOptions& options) {
  HYDRA_REQUIRE(options.horizon > 0, "simulation horizon must be positive");
  HYDRA_REQUIRE(options.num_cores >= 1, "need at least one core");
  std::vector<std::set<int>> rt_prios(options.num_cores);
  std::set<int> global_prios;
  for (const auto& gt : tasks) {
    const SimTask& t = gt.task;
    HYDRA_REQUIRE(t.wcet > 0 && t.period > 0 && t.deadline > 0,
                  "task '" + t.name + "' needs positive WCET/period/deadline");
    HYDRA_REQUIRE(t.wcet <= t.deadline, "task '" + t.name + "' has WCET > deadline");
    if (gt.global_band) {
      HYDRA_REQUIRE(t.preemptive,
                    "global-band task '" + t.name + "' must be preemptive (migration)");
      HYDRA_REQUIRE(global_prios.insert(t.priority).second,
                    "duplicate global-band priority for '" + t.name + "'");
    } else {
      HYDRA_REQUIRE(t.core < options.num_cores,
                    "task '" + t.name + "' placed on nonexistent core");
      HYDRA_REQUIRE(rt_prios[t.core].insert(t.priority).second,
                    "duplicate RT priority on core " + std::to_string(t.core));
    }
  }
}

}  // namespace

Trace simulate_global_slack(const std::vector<GlobalSimTask>& tasks,
                            const GlobalSimOptions& options) {
  validate_inputs(tasks, options);

  GlobalSimOptions effective = options;
  if (effective.grace == 0) {
    util::SimTime max_deadline = 0;
    for (const auto& gt : tasks) max_deadline = std::max(max_deadline, gt.task.deadline);
    effective.grace = max_deadline;
  }
  const util::SimTime hard_stop = effective.horizon + effective.grace;

  Trace trace;
  trace.horizon = options.horizon;
  trace.jobs.assign(tasks.size(), {});
  trace.core_busy.assign(options.num_cores, 0);

  util::Xoshiro256 rng(0x9b0da1);
  std::vector<util::SimTime> next_release(tasks.size(), kNever);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].task.release_offset < effective.horizon) {
      next_release[i] = tasks[i].task.release_offset;
    }
  }

  std::vector<LiveJob> ready;
  util::SimTime now = 0;

  const auto earliest_release = [&]() {
    util::SimTime t = kNever;
    for (const auto r : next_release) t = std::min(t, r);
    return t;
  };

  const auto admit_releases = [&](util::SimTime up_to) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const SimTask& t = tasks[i].task;
      while (next_release[i] <= up_to) {
        JobRecord rec;
        rec.release = next_release[i];
        trace.jobs[i].push_back(rec);
        util::SimTime exec = t.wcet;
        if (t.exec_fraction_min < 1.0) {
          const double fraction = rng.uniform(t.exec_fraction_min, 1.0);
          exec = std::max<util::SimTime>(
              1, static_cast<util::SimTime>(std::ceil(fraction * static_cast<double>(t.wcet))));
        }
        ready.push_back(LiveJob{i, trace.jobs[i].size() - 1, exec, false, kNone});
        util::SimTime gap = t.period;
        if (t.release_jitter > 0) gap += rng.uniform_int(1, t.release_jitter);
        const util::SimTime nxt = next_release[i] + gap;
        next_release[i] = (nxt < effective.horizon) ? nxt : kNever;
      }
    }
  };

  while (now < hard_stop) {
    admit_releases(now);

    // --- Build the assignment for this scheduling interval. ---
    // RT first: each core runs its highest-priority ready RT job.
    std::vector<std::size_t> running(options.num_cores, kNone);  // index into `ready`
    for (std::size_t j = 0; j < ready.size(); ++j) {
      const auto& gt = tasks[ready[j].task];
      if (gt.global_band) continue;
      std::size_t& slot = running[gt.task.core];
      if (slot == kNone || gt.task.priority < tasks[ready[slot].task].task.priority) {
        slot = j;
      }
    }
    // Global band fills the idle cores in priority order.
    std::vector<std::size_t> global_ready;
    for (std::size_t j = 0; j < ready.size(); ++j) {
      if (tasks[ready[j].task].global_band) global_ready.push_back(j);
    }
    std::sort(global_ready.begin(), global_ready.end(), [&](std::size_t a, std::size_t b) {
      return tasks[ready[a].task].task.priority < tasks[ready[b].task].task.priority;
    });
    {
      std::size_t next_global = 0;
      for (std::size_t core = 0; core < options.num_cores; ++core) {
        if (running[core] != kNone) continue;
        // Prefer to keep a job on the core it last ran on when priorities tie
        // is not needed — priorities are distinct; assign in priority order.
        if (next_global < global_ready.size()) running[core] = global_ready[next_global++];
      }
    }

    // --- Advance to the next event. ---
    bool anything_running = false;
    util::SimTime dt = kNever;
    for (const auto slot : running) {
      if (slot == kNone) continue;
      anything_running = true;
      dt = std::min(dt, ready[slot].remaining);
    }
    if (!anything_running) {
      const util::SimTime nxt = earliest_release();
      if (nxt == kNever) break;
      now = nxt;
      continue;
    }
    const util::SimTime nxt = earliest_release();
    if (nxt != kNever && nxt > now) dt = std::min(dt, nxt - now);
    dt = std::min(dt, hard_stop - now);
    HYDRA_ASSERT(dt > 0, "global-slack scheduler failed to advance");

    std::vector<std::size_t> completed;
    for (std::size_t core = 0; core < options.num_cores; ++core) {
      const std::size_t slot = running[core];
      if (slot == kNone) continue;
      LiveJob& job = ready[slot];
      JobRecord& rec = trace.jobs[job.task][job.job_index];
      if (!job.started) {
        rec.start = now;
        job.started = true;
      } else if (job.last_core != core && job.last_core != kNone) {
        ++trace.migrations;
      }
      job.last_core = core;
      job.remaining -= dt;
      trace.core_busy[core] += dt;
      if (job.remaining == 0) completed.push_back(slot);
    }
    now += dt;

    // Record completions and drop finished jobs (largest index first so the
    // swap-removes do not invalidate the remaining indices).
    std::sort(completed.rbegin(), completed.rend());
    for (const std::size_t slot : completed) {
      LiveJob& job = ready[slot];
      JobRecord& rec = trace.jobs[job.task][job.job_index];
      rec.completed = true;
      rec.completion = now;
      rec.deadline_missed = now > rec.release + tasks[job.task].task.deadline;
      ready[slot] = ready.back();
      ready.pop_back();
    }
  }

  for (const LiveJob& job : ready) {
    trace.jobs[job.task][job.job_index].deadline_missed = true;
  }
  return trace;
}

}  // namespace hydra::sim
