// Property tests for sim::BusyWindow (the mode controller's sliding-window
// busy history) against a naive O(n) oracle that never prunes.
//
// The pruning contract under test (busy_window.h): as long as every
// busy_in(from, to) query satisfies  to <= latest add  and
// to - from <= keep − admission-lag-folded-into-keep, a pruned segment can
// never intersect the query window, so BusyWindow and the oracle agree
// exactly — across random add/query sequences, merge-triggering adjacency,
// compaction (head_ > 1024), and queries that lag the clock by the admission
// lag.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/busy_window.h"
#include "util/rng.h"

namespace sim = hydra::sim;
using hydra::util::SimTime;

namespace {

/// The specification: every segment kept forever, intersection summed
/// directly.
class NaiveBusyWindow {
 public:
  void add(SimTime from, SimTime to) {
    if (to <= from) return;
    segments_.emplace_back(from, to);
  }

  SimTime busy_in(SimTime from, SimTime to) const {
    SimTime busy = 0;
    for (const auto& seg : segments_) {
      const SimTime lo = seg.first > from ? seg.first : from;
      const SimTime hi = seg.second < to ? seg.second : to;
      if (hi > lo) busy += hi - lo;
    }
    return busy;
  }

 private:
  std::vector<std::pair<SimTime, SimTime>> segments_;
};

}  // namespace

TEST(BusyWindow, HandComputedIntersections) {
  sim::BusyWindow w(100);
  w.add(10, 20);
  w.add(20, 25);  // adjacent: merges with the previous segment
  w.add(40, 50);
  EXPECT_EQ(w.busy_in(0, 100), 25u);
  EXPECT_EQ(w.busy_in(15, 45), 15u);  // 10 from [15,25) + 5 from [40,45)
  EXPECT_EQ(w.busy_in(25, 40), 0u);
  EXPECT_EQ(w.busy_in(19, 21), 2u);
  EXPECT_EQ(w.busy_in(50, 60), 0u);
  EXPECT_EQ(w.busy_in(20, 20), 0u);  // empty window
}

TEST(BusyWindow, ZeroLengthAddIsIgnored) {
  sim::BusyWindow w(50);
  w.add(10, 10);
  EXPECT_EQ(w.busy_in(0, 100), 0u);
  w.add(10, 12);
  EXPECT_EQ(w.busy_in(0, 100), 2u);
}

TEST(BusyWindow, MatchesOracleOnRandomScheduleShapedSequences) {
  // Schedule-shaped load: chronological busy segments with random gaps and
  // lengths, interleaved with queries whose windows lie inside the retention
  // contract.  Several (keep, density) regimes, fixed seeds.
  const struct {
    SimTime keep;
    SimTime max_gap;
    SimTime max_len;
    std::uint64_t seed;
  } regimes[] = {
      {50, 10, 8, 1},      // dense, tiny retention: constant pruning
      {400, 30, 20, 2},    // moderate
      {2000, 200, 150, 3}, // sparse long segments
      {64, 2, 3, 4},       // near-saturated core, many merges
  };

  for (const auto& regime : regimes) {
    sim::BusyWindow window(regime.keep);
    NaiveBusyWindow oracle;
    hydra::util::Xoshiro256 rng(regime.seed);

    SimTime clock = 0;
    for (int step = 0; step < 20000; ++step) {
      const SimTime gap = rng.uniform_int(0, regime.max_gap);
      const SimTime len = rng.uniform_int(1, regime.max_len);
      window.add(clock + gap, clock + gap + len);
      oracle.add(clock + gap, clock + gap + len);
      clock += gap + len;

      if (step % 3 == 0) {
        // A query ending at a decision instant within (clock - keep, clock],
        // reaching back at most `keep` — the engine's usage pattern.
        const SimTime lag = rng.uniform_int(0, regime.keep / 2);
        const SimTime at = clock > lag ? clock - lag : 0;
        const SimTime span_cap = regime.keep - lag;
        const SimTime span = span_cap > 0 ? rng.uniform_int(1, span_cap) : 1;
        const SimTime from = at > span ? at - span : 0;
        ASSERT_EQ(window.busy_in(from, at), oracle.busy_in(from, at))
            << "keep=" << regime.keep << " step=" << step << " query=[" << from
            << "," << at << ")";
      }
    }
  }
}

TEST(BusyWindow, CompactionKeepsAnswersExact) {
  // Tiny keep + long run forces head_ past the 1024 compaction threshold many
  // times; answers must stay equal to the oracle throughout.
  sim::BusyWindow window(16);
  NaiveBusyWindow oracle;
  SimTime clock = 0;
  for (int i = 0; i < 30000; ++i) {
    window.add(clock, clock + 2);
    oracle.add(clock, clock + 2);
    clock += 5;
    const SimTime from = clock >= 16 ? clock - 16 : 0;
    ASSERT_EQ(window.busy_in(from, clock), oracle.busy_in(from, clock)) << i;
  }
}

TEST(BusyWindow, AdmissionLagFoldedIntoKeepCoversLaggingQueries) {
  // The engine widens keep by the worst non-preemptive WCET so a decision
  // lagging the latest add still sees its full window.  Model that: adds run
  // ahead of the query instant by up to `lag`, keep = window + lag.
  const SimTime query_window = 100;
  const SimTime lag = 40;
  sim::BusyWindow window(query_window + lag);
  NaiveBusyWindow oracle;
  hydra::util::Xoshiro256 rng(99);

  SimTime clock = 0;
  for (int step = 0; step < 10000; ++step) {
    const SimTime gap = rng.uniform_int(0, 6);
    const SimTime len = rng.uniform_int(1, 10);
    window.add(clock + gap, clock + gap + len);
    oracle.add(clock + gap, clock + gap + len);
    clock += gap + len;

    const SimTime behind = rng.uniform_int(0, lag);
    const SimTime at = clock > behind ? clock - behind : 0;
    const SimTime from = at > query_window ? at - query_window : 0;
    ASSERT_EQ(window.busy_in(from, at), oracle.busy_in(from, at)) << step;
  }
}
