#include "swarm/supervisor.h"

#include <algorithm>
#include <stdexcept>

namespace hydra::swarm {

Supervisor::Supervisor(ProcessBackend& backend, SupervisorPolicy policy,
                       EventLog& log, Clock clock)
    : backend_(backend), policy_(policy), log_(log), clock_(std::move(clock)) {
  if (policy_.max_attempts < 1) {
    throw std::invalid_argument("supervisor policy needs max_attempts >= 1");
  }
  if (policy_.backoff_initial_s < 0 || policy_.backoff_max_s < 0 ||
      policy_.backoff_factor < 1.0) {
    throw std::invalid_argument(
        "supervisor backoff needs initial/max >= 0 and factor >= 1");
  }
  if (!clock_) throw std::invalid_argument("supervisor needs a clock");
}

std::size_t Supervisor::add_task(std::string name, WorkerSpec spec) {
  Task task;
  task.status.name = std::move(name);
  task.status.next_start_t = clock_();
  task.spec = std::move(spec);
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

double Supervisor::backoff_delay(int attempts) const {
  // attempts counts launches already consumed; the first restart (attempts
  // == 1 at death time) waits backoff_initial_s, each later one grows by
  // backoff_factor up to the ceiling.
  double delay = policy_.backoff_initial_s;
  for (int i = 1; i < attempts; ++i) {
    delay = std::min(delay * policy_.backoff_factor, policy_.backoff_max_s);
  }
  return std::min(delay, policy_.backoff_max_s);
}

void Supervisor::launch(std::size_t index) {
  Task& task = tasks_[index];
  const double now = clock_();
  task.status.worker = backend_.start(task.spec);
  task.status.state = TaskState::kRunning;
  ++task.status.attempts;
  task.last_progress_change_t = now;
  task.kill_requested = false;
  task.kill_reason.clear();
  log_.emit(now, task.status.attempts == 1 ? "worker-started" : "worker-restarted",
            task.status.name, "attempt " + std::to_string(task.status.attempts) +
                                  "/" + std::to_string(policy_.max_attempts));
}

void Supervisor::handle_death(std::size_t index, const ExitStatus& exit) {
  Task& task = tasks_[index];
  const double now = clock_();
  task.status.last_exit = exit;
  std::string why = exit.describe();
  if (task.kill_requested) why += " (" + task.kill_reason + ")";

  if (exit.success()) {
    task.status.state = TaskState::kDone;
    log_.emit(now, "worker-done", task.status.name,
              "attempt " + std::to_string(task.status.attempts));
    return;
  }
  if (task.status.attempts >= policy_.max_attempts) {
    task.status.state = TaskState::kFailed;
    task.status.failure = why + " after " + std::to_string(task.status.attempts) +
                          " attempt(s), retry budget exhausted";
    log_.emit(now, "worker-gave-up", task.status.name, task.status.failure);
    return;
  }
  const double delay = backoff_delay(task.status.attempts);
  task.status.state = TaskState::kPending;
  task.status.next_start_t = now + delay;
  log_.emit(now, "worker-restart-scheduled", task.status.name,
            why + "; restart in " + std::to_string(delay) + "s");
}

void Supervisor::tick() {
  const double now = clock_();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Task& task = tasks_[i];
    switch (task.status.state) {
      case TaskState::kPending:
        if (now >= task.status.next_start_t) launch(i);
        break;
      case TaskState::kRunning: {
        if (const auto exit = backend_.poll(task.status.worker)) {
          handle_death(i, *exit);
          break;
        }
        if (policy_.stall_timeout_s > 0 && !task.kill_requested &&
            now - task.last_progress_change_t >= policy_.stall_timeout_s) {
          task.kill_requested = true;
          task.kill_reason = "stalled for " +
                             std::to_string(now - task.last_progress_change_t) + "s";
          log_.emit(now, "worker-stalled", task.status.name, task.kill_reason);
          backend_.stop(task.status.worker);
          // The kill lands asynchronously; the death is reaped by a later
          // poll and routed through the same retry policy as a crash.
        }
        break;
      }
      case TaskState::kDone:
      case TaskState::kFailed:
        break;
    }
  }
}

void Supervisor::report_progress(std::size_t task_index, double progress) {
  Task& task = tasks_.at(task_index);
  if (progress == task.status.progress) return;
  task.status.progress = progress;
  task.last_progress_change_t = clock_();
}

void Supervisor::kill(std::size_t task_index, const std::string& reason) {
  Task& task = tasks_.at(task_index);
  if (task.status.state != TaskState::kRunning) return;
  task.kill_requested = true;
  task.kill_reason = reason;
  log_.emit(clock_(), "worker-killed", task.status.name, reason);
  backend_.stop(task.status.worker);
}

void Supervisor::shutdown(const std::string& reason) {
  const double now = clock_();
  for (auto& task : tasks_) {
    switch (task.status.state) {
      case TaskState::kRunning:
        backend_.stop(task.status.worker);
        // Reap synchronously so no worker outlives the swarm; the backend's
        // poll blocks only until the SIGKILL lands.
        for (;;) {
          if (const auto exit = backend_.poll(task.status.worker)) {
            task.status.last_exit = *exit;
            break;
          }
        }
        [[fallthrough]];
      case TaskState::kPending:
        task.status.state = TaskState::kFailed;
        task.status.failure = "shutdown: " + reason;
        log_.emit(now, "worker-shutdown", task.status.name, reason);
        break;
      case TaskState::kDone:
      case TaskState::kFailed:
        break;
    }
  }
}

bool Supervisor::all_done() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
    return t.status.state == TaskState::kDone;
  });
}

bool Supervisor::any_failed() const {
  return std::any_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
    return t.status.state == TaskState::kFailed;
  });
}

bool Supervisor::finished() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
    return t.status.state == TaskState::kDone || t.status.state == TaskState::kFailed;
  });
}

std::size_t Supervisor::restarts() const {
  std::size_t n = 0;
  for (const auto& task : tasks_) {
    if (task.status.attempts > 1) n += static_cast<std::size_t>(task.status.attempts - 1);
  }
  return n;
}

}  // namespace hydra::swarm
