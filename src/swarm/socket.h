// Unix-domain socket transport for the allocation service: a poll()-driven
// accept loop that drains complete request lines from every ready
// connection, hands the whole drain to AllocationService::handle_batch (one
// engine pass per scheme group — this drain IS the batching seam), and
// writes each response line back to its connection in order.
//
// Single-threaded by design: the engine parallelizes inside a batch
// (ServiceOptions::jobs), so a multithreaded accept loop would buy nothing
// and cost the cache a lock.  Clients hold one connection and pipeline
// requests; responses come back in request order per connection.
//
// Writes never block the loop: responses land in a per-connection buffer
// drained with non-blocking sends under POLLOUT, so one slow (or stopped)
// client only grows its own buffer while every other client keeps being
// served.  A connection whose buffer exceeds max_pending_bytes is closed —
// the daemon's memory is not a slow reader's spool.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "swarm/events.h"
#include "swarm/service.h"

namespace hydra::swarm {

struct ServerOptions {
  std::string socket_path;       ///< filesystem path of the listening socket
  std::size_t max_connections = 64;
  /// poll() timeout between idle wakeups.  Must be finite and > 0: zero
  /// would busy-spin and a negative value would block poll() forever,
  /// masking stop()/shutdown.  Validated by the ServiceServer constructor.
  double poll_interval_s = 0.25;
  /// Per-connection write-buffer cap; a client this far behind is closed.
  std::size_t max_pending_bytes = 64u * 1024 * 1024;
};

class ServiceServer {
 public:
  /// Binds and listens immediately (unlinking a stale socket file), so a
  /// caller returning from the constructor can already connect.  Throws
  /// std::runtime_error on bind/listen failure.  `service` and `log` are
  /// borrowed and must outlive the server.
  ServiceServer(AllocationService& service, ServerOptions options, EventLog& log);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Serves until the service accepts a shutdown op (or stop() is called
  /// from another thread).  Returns the number of request lines served.
  std::size_t run();

  /// Thread-safe: asks the loop to exit at its next wakeup.
  void stop() { stop_.store(true); }

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  AllocationService& service_;
  ServerOptions options_;
  EventLog& log_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

/// Minimal blocking client for tools, tests and shell recipes: one
/// connection, one request line in, one response line out.
class ServiceClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Sends `line` (newline appended) and blocks for the one response line.
  /// Throws std::runtime_error if the server hangs up first.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace hydra::swarm
