#include "core/period_adapt.h"

#include <optional>

#include "core/joint_period.h"
#include "gp/solver_registry.h"
#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

Allocation PeriodAdaptAllocator::allocate(const Instance& instance,
                                          const rt::Partition& rt_partition) const {
  instance.validate();
  // A configured backend covers every GP this allocation runs (including the
  // adapt_period subproblems, which have no options plumbing); when
  // unconfigured, leave the ambient scope — typically the sweep's — in force.
  std::optional<gp::GpBackendScope> backend_scope;
  if (!options_.gp_backend.empty()) backend_scope.emplace(options_.gp_backend);
  HYDRA_REQUIRE(rt_partition.num_cores == instance.num_cores,
                "RT partition core count must match the instance");
  HYDRA_REQUIRE(rt_partition.core_of.size() == instance.rt_tasks.size(),
                "RT partition does not cover the RT task set");

  std::vector<std::vector<rt::RtTask>> rt_on_core(instance.num_cores);
  std::vector<std::vector<std::size_t>> members(instance.num_cores);
  // Per-core Eq. (5) sums, grown per commit (same accumulation order as a
  // per-probe rebuild, hence bitwise identical).
  std::vector<rt::InterferenceBound> interferers(instance.num_cores);
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    rt_on_core[c] = rt_partition.tasks_on_core(instance.rt_tasks, c);
    interferers[c] = rt::interference_bound(rt_on_core[c], {});
  }

  Allocation result;
  result.rt_partition = rt_partition;
  result.placements.assign(instance.security_tasks.size(), TaskPlacement{});

  // Fixed partition: first-fit at minimum mode, blind to tightness.
  const auto order = rt::security_priority_order(instance.security_tasks);
  for (const std::size_t s : order) {
    const rt::SecurityTask& task = instance.security_tasks[s];
    std::optional<std::size_t> chosen;
    for (std::size_t c = 0; c < instance.num_cores && !chosen.has_value(); ++c) {
      if (adapt_period(task, interferers[c], options_.solver).feasible) chosen = c;
    }
    if (!chosen.has_value()) {
      return infeasible_allocation(
          s, "no core admits security task '" + task.name + "' at its loosest period");
    }
    result.placements[s] = TaskPlacement{*chosen, task.period_max, task.min_tightness()};
    interferers[*chosen].add_interferer(task.wcet, task.period_max);
    members[*chosen].push_back(s);
  }

  // Per-core period optimization over the now-fixed assignment.
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    tighten_core_placements(rt_on_core[c], members[c], instance.security_tasks,
                            result.placements, options_.adaptation_rounds,
                            options_.solver);
  }
  result.feasible = true;

  if (options_.joint_gp && !instance.security_tasks.empty()) {
    std::vector<std::size_t> core_of(instance.security_tasks.size());
    for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
      core_of[s] = result.placements[s].core;
    }
    JointPeriodOptions jopts;
    jopts.objective = JointObjective::kSignomialScp;
    jopts.gp_backend = options_.gp_backend;
    const JointPeriodResult joint =
        optimize_joint_periods(instance, rt_partition, core_of, jopts);
    if (joint.feasible &&
        joint.cumulative_tightness > result.cumulative_tightness(instance.security_tasks)) {
      for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
        result.placements[s].period = joint.periods[s];
        result.placements[s].tightness =
            instance.security_tasks[s].period_des / joint.periods[s];
      }
    }
  }
  return result;
}

Allocation PeriodAdaptAllocator::allocate(const Instance& instance) const {
  return allocate_with_default_partition(instance);
}

std::string PeriodAdaptAllocator::describe() const {
  std::string text =
      "period-adaptation-only baseline: fixed first-fit partition at Tmax, "
      "per-core slack-aware tightening";
  if (options_.joint_gp) text += "; joint GP (signomial SCP) refinement";
  if (options_.solver == PeriodSolver::kGeometricProgram) text += "; GP subproblem";
  if (!options_.gp_backend.empty()) text += "; gp-backend=" + options_.gp_backend;
  return text;
}

}  // namespace hydra::core
