#include "exp/sinks.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "io/table.h"

namespace hydra::exp {

namespace {

const char* const kColumns[] = {"instance", "label",     "seed",
                                "scheme",   "status",    "feasible",
                                "validated", "tightness", "normalized",
                                "note"};

std::vector<std::string> row_cells(const BatchRow& row) {
  return {std::to_string(row.instance_index),
          row.instance_label,
          row.seed == 0 ? std::string("-") : std::to_string(row.seed),
          row.scheme,
          row.status,
          row.feasible ? "yes" : "no",
          row.validated ? "yes" : "no",
          row.feasible ? format_double(row.cumulative_tightness) : "-",
          row.feasible ? format_double(row.normalized_tightness) : "-",
          row.note};
}

}  // namespace

std::string format_double(double value) {
  // std::to_chars emits the shortest round-trip representation and ignores
  // the locale, which is what keeps the streams byte-stable.  Non-finite
  // values stay visible instead of masquerading as numbers.
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string json_number(double value) {
  // JSON has no NaN/Infinity literal; null keeps the line parseable.
  return std::isfinite(value) ? format_double(value) : "null";
}

// ---------------------------------------------------------------------------
// TableSink
// ---------------------------------------------------------------------------

struct TableSink::Impl {
  explicit Impl(std::ostream& os)
      : os(os), table(std::vector<std::string>(std::begin(kColumns), std::end(kColumns))) {}
  std::ostream& os;
  io::Table table;
};

TableSink::TableSink(std::ostream& os) : impl_(std::make_unique<Impl>(os)) {}
TableSink::~TableSink() = default;

void TableSink::row(const BatchRow& row) { impl_->table.add_row(row_cells(row)); }

void TableSink::end() {
  if (impl_->table.num_rows() == 0) return;
  impl_->table.print(impl_->os);
  // Reset so a subsequent engine run prints its own table instead of
  // re-printing accumulated rows.
  impl_->table = io::Table(std::vector<std::string>(std::begin(kColumns), std::end(kColumns)));
}

// ---------------------------------------------------------------------------
// CsvSink
// ---------------------------------------------------------------------------

void CsvSink::begin() {
  if (header_written_) return;
  header_written_ = true;
  bool first = true;
  for (const char* column : kColumns) {
    if (!first) os_ << ',';
    os_ << column;
    first = false;
  }
  os_ << '\n';
}

void CsvSink::row(const BatchRow& row) {
  bool first = true;
  for (const auto& cell : row_cells(row)) {
    if (!first) os_ << ',';
    os_ << io::csv_quote(cell);
    first = false;
  }
  os_ << '\n';
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonlSink::row(const BatchRow& row) {
  os_ << "{\"instance\":" << row.instance_index
      << ",\"label\":\"" << json_escape(row.instance_label) << '"'
      << ",\"seed\":" << row.seed
      << ",\"scheme\":\"" << json_escape(row.scheme) << '"'
      << ",\"status\":\"" << json_escape(row.status) << '"'
      << ",\"feasible\":" << (row.feasible ? "true" : "false")
      << ",\"validated\":" << (row.validated ? "true" : "false")
      << ",\"cumulative_tightness\":" << json_number(row.cumulative_tightness)
      << ",\"normalized_tightness\":" << json_number(row.normalized_tightness)
      << ",\"rt_utilization\":" << json_number(row.rt_utilization)
      << ",\"sec_utilization\":" << json_number(row.sec_utilization)
      << ",\"note\":\"" << json_escape(row.note) << "\"}\n";
}

// ---------------------------------------------------------------------------
// File sink
// ---------------------------------------------------------------------------

namespace {

class FileSink : public ResultSink {
 public:
  FileSink(const std::string& path, bool jsonl) : stream_(path) {
    if (!stream_) throw std::runtime_error("cannot open result file: " + path);
    if (jsonl) {
      inner_ = std::make_unique<JsonlSink>(stream_);
    } else {
      inner_ = std::make_unique<CsvSink>(stream_);
    }
  }

  void begin() override { inner_->begin(); }
  void row(const BatchRow& row) override { inner_->row(row); }
  void end() override {
    inner_->end();
    stream_.flush();
  }

 private:
  std::ofstream stream_;
  std::unique_ptr<ResultSink> inner_;
};

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::unique_ptr<ResultSink> make_file_sink(const std::string& path) {
  if (ends_with(path, ".jsonl") || ends_with(path, ".json")) {
    return std::make_unique<FileSink>(path, /*jsonl=*/true);
  }
  if (ends_with(path, ".csv")) {
    return std::make_unique<FileSink>(path, /*jsonl=*/false);
  }
  throw std::invalid_argument("result file must end in .jsonl, .json or .csv: " + path);
}

}  // namespace hydra::exp
