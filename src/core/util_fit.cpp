#include "core/util_fit.h"

#include <optional>

#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

Allocation UtilFitAllocator::allocate(const Instance& instance,
                                      const rt::Partition& rt_partition) const {
  instance.validate();
  HYDRA_REQUIRE(rt_partition.num_cores == instance.num_cores,
                "RT partition core count must match the instance");
  HYDRA_REQUIRE(rt_partition.core_of.size() == instance.rt_tasks.size(),
                "RT partition does not cover the RT task set");

  std::vector<std::vector<rt::RtTask>> rt_on_core(instance.num_cores);
  std::vector<std::vector<rt::PlacedSecurityTask>> placed(instance.num_cores);
  std::vector<double> sec_load(instance.num_cores, 0.0);  ///< Σ Cs/Ts committed
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    rt_on_core[c] = rt_partition.tasks_on_core(instance.rt_tasks, c);
  }

  Allocation result;
  result.rt_partition = rt_partition;
  result.placements.assign(instance.security_tasks.size(), TaskPlacement{});

  const auto order = rt::security_priority_order(instance.security_tasks);
  for (const std::size_t s : order) {
    const rt::SecurityTask& task = instance.security_tasks[s];

    // Solve Eq. (7) everywhere, then rank the feasible cores by their
    // committed security utilization (ties go to the lowest index).
    std::optional<std::size_t> best_core;
    PeriodAdaptation best{};
    for (std::size_t c = 0; c < instance.num_cores; ++c) {
      const auto bound = rt::interference_bound(rt_on_core[c], placed[c]);
      const PeriodAdaptation candidate = adapt_period(task, bound, options_.solver);
      if (!candidate.feasible) continue;
      bool take = !best_core.has_value();
      if (!take) {
        take = options_.fit == UtilFit::kWorstFit
                   ? sec_load[c] < sec_load[*best_core]
                   : sec_load[c] > sec_load[*best_core];
      }
      if (take) {
        best_core = c;
        best = candidate;
      }
    }
    if (!best_core.has_value()) {
      return infeasible_allocation(
          s, "no core admits an acceptable period for security task '" + task.name + "'");
    }
    result.placements[s] = TaskPlacement{*best_core, best.period, best.tightness};
    placed[*best_core].push_back(rt::PlacedSecurityTask{task.wcet, best.period});
    sec_load[*best_core] += task.wcet / best.period;
  }

  result.feasible = true;
  return result;
}

Allocation UtilFitAllocator::allocate(const Instance& instance) const {
  return allocate_with_default_partition(instance);
}

std::string UtilFitAllocator::describe() const {
  std::string text = options_.fit == UtilFit::kWorstFit
                         ? "utilization-aware worst-fit: least security-loaded "
                           "feasible core (spread the monitors)"
                         : "utilization-aware best-fit: most security-loaded "
                           "feasible core (concentrate the monitors)";
  if (options_.solver == PeriodSolver::kGeometricProgram) text += "; GP subproblem";
  return text;
}

}  // namespace hydra::core
