// Randomized property tests for the analysis core (≥1000 seeds each):
//   * exact RTA response time is monotone in added interference — extending
//     the higher-priority set never shrinks a response time, and can never
//     turn an unschedulable task schedulable;
//   * the acceptance ratio of every scheme is non-increasing in total
//     utilization;
//   * HYDRA never accepts an allocation the independent validator
//     (core::validate_allocation) rejects — the allocator and the checker
//     deliberately share no code, so this is a real cross-implementation
//     oracle, not a tautology.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/hydra.h"
#include "core/registry.h"
#include "core/validation.h"
#include "gen/synthetic.h"
#include "rt/analysis.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

namespace {

rt::RtTask random_task(hydra::util::Xoshiro256& rng, const std::string& name) {
  const double period = rng.uniform(10.0, 1000.0);
  // WCET up to 40% of the period keeps single-task sets schedulable so the
  // monotonicity property is exercised on both defined and undefined RTAs.
  const double wcet = rng.uniform(0.5, 0.4 * period);
  return rt::make_rt_task(name, wcet, period);
}

}  // namespace

TEST(PropertyRta, ResponseTimeMonotoneInAddedInterference) {
  std::size_t defined_pairs = 0;
  for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
    hydra::util::Xoshiro256 rng(seed);
    const auto task = random_task(rng, "task");
    std::vector<rt::RtTask> hp;
    const auto n_hp = static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t i = 0; i < n_hp; ++i) {
      hp.push_back(random_task(rng, "hp" + std::to_string(i)));
    }

    const auto base = rt::response_time(task, hp);
    hp.push_back(random_task(rng, "extra"));
    const auto extended = rt::response_time(task, hp);

    if (extended.has_value()) {
      // Adding interference can only be observed if the base was schedulable
      // too, and never with a smaller response time.
      ASSERT_TRUE(base.has_value()) << "seed " << seed;
      EXPECT_LE(*base, *extended + 1e-9) << "seed " << seed;
      EXPECT_GE(*base, task.wcet) << "seed " << seed;
      ++defined_pairs;
    }
    // base == nullopt && extended != nullopt is the violation; covered above.
  }
  // The generator parameters must actually exercise the defined branch.
  EXPECT_GT(defined_pairs, 300u);
}

TEST(PropertyRta, ResponseTimeMonotoneInBlocking) {
  std::size_t defined = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    hydra::util::Xoshiro256 rng(seed);
    const auto task = random_task(rng, "task");
    std::vector<rt::RtTask> hp = {random_task(rng, "hp0"), random_task(rng, "hp1")};
    const double blocking = rng.uniform(0.0, 20.0);
    const auto without = rt::response_time(task, hp, 0.0);
    const auto with = rt::response_time(task, hp, blocking);
    if (with.has_value()) {
      ASSERT_TRUE(without.has_value()) << "seed " << seed;
      EXPECT_LE(*without, *with + 1e-9) << "seed " << seed;
      ++defined;
    }
  }
  EXPECT_GT(defined, 300u);
}

TEST(PropertyAcceptance, RatioNonIncreasingInTotalUtilization) {
  // Acceptance over the same seed ladder at increasing utilization: with the
  // per-index seeds fixed, the measured ratios are deterministic, so the
  // monotone trend is a hard assertion, not a statistical one.
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  // Tighter than the paper defaults (Tmax only 1.2·Tdes, security at 50% of
  // the RT load): with 10× period slack HYDRA accepts essentially everything
  // below U = M and the property would be tested only at the trivial 1.0
  // plateau.  This regime drives acceptance from 1.0 down to 0.
  config.sec_period_max_factor = 1.2;
  config.sec_util_ratio = 0.5;
  const std::vector<double> utilizations = {0.6, 1.0, 1.4, 1.7, 1.9};
  const std::size_t instances = 80;

  for (const auto& scheme_name : {"hydra", "single-core"}) {
    const auto scheme = core::AllocatorRegistry::global().make(scheme_name);
    double previous_ratio = 1.1;
    for (const double u : utilizations) {
      std::size_t accepted = 0, total = 0;
      for (std::size_t i = 0; i < instances; ++i) {
        hydra::util::Xoshiro256 rng(1000 + i);
        const auto drawn = hydra::gen::generate_filtered_instance(config, u, rng);
        ++total;
        if (!drawn.has_value()) continue;  // Eq. (1) rejection = not accepted
        const auto allocation = scheme->allocate(drawn->instance);
        if (allocation.feasible) ++accepted;
      }
      const double ratio = static_cast<double>(accepted) / static_cast<double>(total);
      // Tiny slack only for draw-level noise: the same seed index draws a
      // different concrete instance at a different utilization target.
      EXPECT_LE(ratio, previous_ratio + 0.05)
          << scheme_name << " at utilization " << u;
      previous_ratio = ratio;
    }
    // The ladder must span the interesting range: full acceptance at the
    // bottom, degradation by the top.
    EXPECT_LT(previous_ratio, 1.0) << scheme_name;
  }
}

TEST(PropertyHydra, NeverAcceptsWhatTheValidatorRejects) {
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  const auto hydra_scheme = core::AllocatorRegistry::global().make("hydra");

  std::size_t feasible = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    hydra::util::Xoshiro256 rng(seed);
    const double u = 0.4 + 1.5 * rng.uniform01();  // spans easy to hopeless
    const auto drawn = hydra::gen::generate_filtered_instance(config, u, rng, 8);
    if (!drawn.has_value()) continue;
    const auto allocation = hydra_scheme->allocate(drawn->instance);
    if (!allocation.feasible) continue;
    ++feasible;
    const auto report = core::validate_allocation(
        drawn->instance, allocation, hydra_scheme->blocking(),
        hydra_scheme->priority_order(), hydra_scheme->schedule_test());
    ASSERT_TRUE(report.valid) << "seed " << seed << " utilization " << u << ": "
                              << report.problem;
  }
  // The property is vacuous unless a healthy share of draws is accepted.
  EXPECT_GT(feasible, 200u);
}

TEST(PropertyHydra, ExactRtaVariantAlsoValidates) {
  // Same oracle for the exact-RTA ablation, whose tighter periods are the
  // riskier case for an allocator/validator divergence.
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  const auto scheme = core::AllocatorRegistry::global().make("hydra/exact-rta");

  std::size_t feasible = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    hydra::util::Xoshiro256 rng(seed * 31 + 7);
    const double u = 0.4 + 1.5 * rng.uniform01();
    const auto drawn = hydra::gen::generate_filtered_instance(config, u, rng, 8);
    if (!drawn.has_value()) continue;
    const auto allocation = scheme->allocate(drawn->instance);
    if (!allocation.feasible) continue;
    ++feasible;
    const auto report =
        core::validate_allocation(drawn->instance, allocation, scheme->blocking(),
                                  scheme->priority_order(), scheme->schedule_test());
    ASSERT_TRUE(report.valid) << "seed " << seed << ": " << report.problem;
  }
  EXPECT_GT(feasible, 50u);
}
