// Geometric-program solver: log-space convex transform + barrier method.
//
// This is the C++ replacement for the paper's GPkit [20] + CVXOPT [21] stack.
// Given a GpProblem in standard form it:
//   1. substitutes x = exp(y), turning the objective and constraints into
//      smooth convex log-sum-exp functions (paper appendix);
//   2. finds a strictly feasible start (caller hint, else a basic phase-I
//      program minimizing the worst constraint violation);
//   3. minimizes with the primal barrier interior-point method.
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "gp/barrier.h"
#include "gp/problem.h"

namespace hydra::gp {

enum class SolveStatus {
  kOptimal,     ///< converged; solution satisfies every constraint
  kInfeasible,  ///< phase I proved no strictly feasible point exists
  kUnbounded,   ///< objective can be driven to -inf (malformed program)
  kError,       ///< numerical failure
};

struct SolveResult {
  SolveStatus status = SolveStatus::kError;
  std::vector<double> x;      ///< optimal point in the original domain
  double objective = 0.0;     ///< posynomial objective value at x
  int newton_steps = 0;       ///< total Newton iterations (phases I+II)
  std::string message;        ///< human-readable diagnostic; ALWAYS non-empty
                              ///< on any non-kOptimal status (tested)
  /// False when the solver hit its iteration budget and returned its best
  /// feasible iterate as kOptimal anyway (the point is usable, but KKT
  /// conditions were not certified).  The pick-best meta-backend treats a
  /// non-converged kOptimal as grounds to consult its fallback.
  bool converged = true;
  /// Final scaled KKT error (max of stationarity, primal feasibility and
  /// complementarity residuals).  Filled by the primal-dual IPM backend;
  /// NaN from solvers that do not certify a dual point (the primal barrier).
  double kkt_residual = std::numeric_limits<double>::quiet_NaN();
  /// Name of the registry backend that produced this result ("" when the
  /// solver was invoked directly rather than through gp::SolverRegistry).
  /// pick-best stamps the backend whose answer it adopted, which is how the
  /// differential tests observe a rescue.
  std::string backend;

  bool ok() const { return status == SolveStatus::kOptimal; }
};

struct SolveOptions {
  BarrierOptions barrier;
  /// Phase I declares the problem infeasible when the minimized max-violation
  /// slack cannot be pushed below this margin (log-space units).
  double phase1_margin = 1e-9;
};

class GpSolver {
 public:
  explicit GpSolver(SolveOptions options = {}) : options_(options) {}

  /// Solves the program.  `initial_guess`, when provided, must be a positive
  /// point; if it is strictly feasible phase I is skipped entirely.
  SolveResult solve(const GpProblem& problem,
                    const std::optional<std::vector<double>>& initial_guess = std::nullopt) const;

 private:
  SolveOptions options_;
};

}  // namespace hydra::gp
