// Attack-detection walkthrough: allocate the UAV case study, run the
// discrete-event schedule, inject synthetic attacks and print the detection
// latency distribution — a miniature of the paper's Fig. 1 experiment with
// the full trace inspection the bench omits.
//
// Usage: ./build/examples/attack_simulation [--cores 4] [--trials 200]
//                                           [--horizon-s 120] [--seed 42]
#include <iostream>

#include "core/hydra.h"
#include "core/single_core.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "sim/render.h"
#include "stats/ecdf.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;
namespace sim = hydra::sim;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 4));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 200));
  const auto horizon_s = static_cast<std::uint64_t>(cli.get_int("horizon-s", 120));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  const auto instance = hydra::gen::uav_case_study(m);
  const auto allocation = core::HydraAllocator().allocate(instance);
  if (!allocation.feasible) {
    std::cerr << "unschedulable: " << allocation.failure_reason << "\n";
    return 1;
  }

  // --- Schedule-level view: how busy is each core, do deadlines hold? ---
  const auto tasks = sim::build_sim_tasks(instance, allocation);
  sim::SimOptions sim_opts;
  sim_opts.horizon = horizon_s * 1000u * hydra::util::kTicksPerMilli;
  const auto trace = sim::simulate(tasks, sim_opts);

  io::print_banner(std::cout, "Schedule health (" + std::to_string(horizon_s) + " s horizon)");
  io::Table cores_table({"core", "busy (%)", "jobs", "deadline misses"});
  for (std::size_t c = 0; c < trace.core_busy.size(); ++c) {
    std::size_t jobs = 0, misses = 0;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (tasks[t].core != c) continue;
      jobs += trace.jobs[t].size();
      for (const auto& j : trace.jobs[t]) misses += j.deadline_missed ? 1u : 0u;
    }
    cores_table.add_row(
        {std::to_string(c),
         io::fmt(100.0 * static_cast<double>(trace.core_busy[c]) /
                     static_cast<double>(sim_opts.horizon), 1),
         std::to_string(jobs), std::to_string(misses)});
  }
  cores_table.print(std::cout);

  // --- A short Gantt window to see the schedule with the naked eye. ---
  {
    sim::SimOptions gantt_opts;
    gantt_opts.horizon = 4000u * hydra::util::kTicksPerMilli;  // 4 s
    gantt_opts.record_segments = true;
    const auto short_trace = sim::simulate(tasks, gantt_opts);
    io::print_banner(std::cout, "first 4 seconds of the schedule");
    sim::GanttOptions gopts;
    gopts.width = 100;
    std::cout << sim::render_gantt(short_trace, tasks, gopts);
  }

  // --- Attack injection. ---
  sim::DetectionConfig config;
  config.horizon = sim_opts.horizon;
  config.trials = trials;
  config.seed = seed;
  const auto result = sim::measure_detection_times(instance, allocation, config);

  io::print_banner(std::cout, "Detection latency over " + std::to_string(trials) +
                                  " injected attacks (worst case across monitors)");
  const auto s = hydra::stats::summarize(result.detection_ms);
  const hydra::stats::EmpiricalCdf cdf(result.detection_ms);
  io::Table stats_table({"metric", "value (ms)"});
  stats_table.add_row({"min", io::fmt(s.min, 1)});
  stats_table.add_row({"mean", io::fmt(s.mean, 1)});
  stats_table.add_row({"median", io::fmt(cdf.quantile(0.5), 1)});
  stats_table.add_row({"p95", io::fmt(cdf.quantile(0.95), 1)});
  stats_table.add_row({"max", io::fmt(s.max, 1)});
  stats_table.print(std::cout);
  std::cout << "undetected attacks (horizon ran out): " << result.undetected << "\n";
  return 0;
}
