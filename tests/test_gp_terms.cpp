// Unit + property tests for monomials/posynomials, including finite-difference
// verification of the log-space gradient and Hessian the solver relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/terms.h"
#include "util/rng.h"

namespace gp = hydra::gp;
namespace la = hydra::linalg;

TEST(Monomial, EvaluatesPowerProduct) {
  // 2 · x^2 / y at (3, 4) = 2·9/4 = 4.5.
  const gp::Monomial m = gp::Monomial(2.0, 2).with(0, 2.0).with(1, -1.0);
  EXPECT_DOUBLE_EQ(m.eval({3.0, 4.0}), 4.5);
}

TEST(Monomial, WithAccumulatesExponents) {
  const gp::Monomial m = gp::Monomial(1.0, 1).with(0, 1.0).with(0, 1.5);
  EXPECT_DOUBLE_EQ(m.exponent(0), 2.5);
}

TEST(Monomial, RejectsNonPositiveCoefficient) {
  EXPECT_THROW(gp::Monomial(0.0, 1), std::invalid_argument);
  EXPECT_THROW(gp::Monomial(-1.0, 1), std::invalid_argument);
}

TEST(Monomial, ProductAndReciprocal) {
  const gp::Monomial a = gp::Monomial(2.0, 2).with(0, 1.0);
  const gp::Monomial b = gp::Monomial(3.0, 2).with(1, -2.0);
  const gp::Monomial prod = a * b;
  EXPECT_DOUBLE_EQ(prod.coeff(), 6.0);
  EXPECT_DOUBLE_EQ(prod.exponent(0), 1.0);
  EXPECT_DOUBLE_EQ(prod.exponent(1), -2.0);

  const gp::Monomial inv = prod.reciprocal();
  EXPECT_DOUBLE_EQ(inv.coeff(), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(inv.exponent(0), -1.0);
  EXPECT_DOUBLE_EQ(inv.exponent(1), 2.0);
  // m · 1/m == 1 pointwise.
  EXPECT_NEAR((prod * inv).eval({0.7, 1.9}), 1.0, 1e-12);
}

TEST(Monomial, LogEvalMatchesLogOfEval) {
  const gp::Monomial m = gp::Monomial(5.0, 3).with(0, 1.0).with(1, -0.5).with(2, 2.0);
  const std::vector<double> x{1.5, 2.5, 0.5};
  la::Vector y(3);
  for (std::size_t i = 0; i < 3; ++i) y[i] = std::log(x[i]);
  EXPECT_NEAR(m.log_eval(y), std::log(m.eval(x)), 1e-12);
}

TEST(Posynomial, EvalIsSumOfTerms) {
  gp::Posynomial p(2);
  p += gp::Monomial(1.0, 2).with(0, 1.0);   // x
  p += gp::Monomial(2.0, 2).with(1, 1.0);   // 2y
  EXPECT_DOUBLE_EQ(p.eval({3.0, 4.0}), 11.0);
}

TEST(Posynomial, TimesMonomialDistributes) {
  gp::Posynomial p(2);
  p += gp::Monomial(1.0, 2).with(0, 1.0);
  p += gp::Monomial(1.0, 2).with(1, 1.0);
  const gp::Posynomial q = p.times(gp::Monomial(2.0, 2).with(0, -1.0));  // (x+y)·2/x
  const std::vector<double> x{2.0, 6.0};
  EXPECT_NEAR(q.eval(x), 2.0 * (x[0] + x[1]) / x[0], 1e-12);
}

TEST(Posynomial, LogEvalValueIsLogSumExp) {
  gp::Posynomial p(1);
  p += gp::Monomial(1.0, 1).with(0, 1.0);   // x
  p += gp::Monomial(1.0, 1).with(0, -1.0);  // 1/x
  la::Vector y(1);
  y[0] = 0.3;
  const auto le = p.log_eval(y, false);
  const double x = std::exp(0.3);
  EXPECT_NEAR(le.value, std::log(x + 1.0 / x), 1e-12);
}

TEST(Posynomial, LogEvalStableForHugeExponents) {
  gp::Posynomial p(1);
  p += gp::Monomial(1.0, 1).with(0, 1.0);
  la::Vector y(1);
  y[0] = 800.0;  // exp(800) overflows double; max-shift must handle it
  const auto le = p.log_eval(y, true);
  EXPECT_NEAR(le.value, 800.0, 1e-9);
  EXPECT_TRUE(std::isfinite(le.grad[0]));
}

namespace {

/// Finite-difference gradient check of log_eval on random posynomials.
void check_derivatives(const gp::Posynomial& p, const la::Vector& y) {
  const double h = 1e-5;
  const auto le = p.log_eval(y, true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    la::Vector yp = y, ym = y;
    yp[i] += h;
    ym[i] -= h;
    const auto lep = p.log_eval(yp, false);
    const auto lem = p.log_eval(ym, false);
    const double fd_grad = (lep.value - lem.value) / (2.0 * h);
    EXPECT_NEAR(le.grad[i], fd_grad, 1e-6) << "grad mismatch at coord " << i;
    // Hessian row i from central differences of the gradient.
    for (std::size_t j = 0; j < y.size(); ++j) {
      EXPECT_NEAR(le.hess(i, j), (lep.grad[j] - lem.grad[j]) / (2.0 * h), 1e-5)
          << "hess mismatch at (" << i << "," << j << ")";
    }
  }
}

}  // namespace

TEST(Posynomial, GradientAndHessianMatchFiniteDifferences) {
  hydra::util::Xoshiro256 rng(12345);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    gp::Posynomial p(n);
    const int terms = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int t = 0; t < terms; ++t) {
      gp::Monomial m(rng.uniform(0.1, 5.0), n);
      for (std::size_t v = 0; v < n; ++v) m.with(v, rng.uniform(-2.0, 2.0));
      p += m;
    }
    la::Vector y(n);
    for (std::size_t v = 0; v < n; ++v) y[v] = rng.uniform(-1.0, 1.0);
    check_derivatives(p, y);
  }
}

TEST(Posynomial, HessianIsPositiveSemidefiniteOnRandomDirections) {
  // Convexity of log-sum-exp: dᵀHd >= 0 for all d.
  hydra::util::Xoshiro256 rng(777);
  gp::Posynomial p(3);
  for (int t = 0; t < 4; ++t) {
    gp::Monomial m(rng.uniform(0.5, 2.0), 3);
    for (std::size_t v = 0; v < 3; ++v) m.with(v, rng.uniform(-3.0, 3.0));
    p += m;
  }
  la::Vector y(3);
  const auto le = p.log_eval(y, true);
  for (int rep = 0; rep < 50; ++rep) {
    la::Vector d(3);
    for (std::size_t v = 0; v < 3; ++v) d[v] = rng.uniform(-1.0, 1.0);
    EXPECT_GE(dot(d, le.hess * d), -1e-10);
  }
}

TEST(Posynomial, EmptyLogEvalThrows) {
  gp::Posynomial p(2);
  EXPECT_THROW(p.log_eval(la::Vector(2), false), std::invalid_argument);
}

TEST(Posynomial, SizeMismatchThrows) {
  gp::Posynomial p(2);
  EXPECT_THROW(p += gp::Monomial(1.0, 3), std::invalid_argument);
}
