// The per-(task, core) period-adaptation subproblem (paper Eq. 7):
//
//     max  ηs = Tdes_s/Ts
//     s.t. Tdes_s ≤ Ts ≤ Tmax_s,   Cs + I(Ts) ≤ Ts
//
// for a *fixed* core and fixed higher-priority security periods, where
// I(Ts) = A + B·Ts is the affine Eq. (5) bound.  Since η is strictly
// decreasing in Ts, the optimum is the smallest feasible period.
//
// Two interchangeable solution routes are provided:
//
//   kClosedForm — the affine constraint yields T* = (Cs + A)/(1 − B) when
//                 B < 1, so the answer is clamp(T*, Tdes, Tmax) directly.
//   kGeometricProgram — the paper's route: a one-variable GP (minimize the
//                 monomial Ts subject to posynomial constraints), solved with
//                 the interior-point machinery in src/gp.  Exists to mirror
//                 the publication faithfully and to cross-validate the
//                 closed form; results agree to solver tolerance (tested).
#pragma once

#include <optional>

#include "rt/interference.h"
#include "rt/task.h"
#include "util/units.h"

namespace hydra::core {

enum class PeriodSolver {
  kClosedForm,
  kGeometricProgram,
  /// Exact response-time analysis instead of the paper's linear Eq. (5)
  /// bound.  Admits tighter periods (the bound is conservative); requires the
  /// full interferer lists, so it is served by adapt_period_exact and, in the
  /// allocators, selected via their options.  An ablation bench quantifies
  /// the conservatism.
  kExactRta,
};

struct PeriodAdaptation {
  bool feasible = false;
  util::Millis period = 0.0;  ///< optimal Ts when feasible
  double tightness = 0.0;     ///< Tdes/Ts when feasible
};

/// Solves Eq. (7) for `task` against the interference bound of a candidate
/// core.  Never throws on infeasibility — that is a normal outcome.
/// PeriodSolver::kExactRta is not servable from an aggregated bound and is
/// rejected here — use adapt_period_exact.
PeriodAdaptation adapt_period(const rt::SecurityTask& task, const rt::InterferenceBound& bound,
                              PeriodSolver solver = PeriodSolver::kClosedForm);

/// Eq. (7) with exact response-time analysis in place of the linear bound.
/// The response time R of the lowest-priority-band task does not depend on
/// its own period, so the optimum is simply clamp(R, Tdes, Tmax) — feasible
/// iff R ≤ Tmax.
PeriodAdaptation adapt_period_exact(const rt::SecurityTask& task,
                                    const std::vector<rt::RtTask>& rt_on_core,
                                    const std::vector<rt::PlacedSecurityTask>& hp_security,
                                    util::Millis blocking = 0.0);

/// The smallest period satisfying Cs + A + B·Ts ≤ Ts, ignoring the
/// [Tdes, Tmax] box: (Cs + A)/(1 − B).  nullopt when B ≥ 1 (interferers
/// saturate the core).  Exposed for tests and for the joint optimizer's
/// start-point construction.
std::optional<util::Millis> min_feasible_period(const rt::SecurityTask& task,
                                                const rt::InterferenceBound& bound);

}  // namespace hydra::core
