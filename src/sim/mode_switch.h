// Runtime mode-switching simulation (the Contego adaptive story executed,
// not just allocated — arXiv:1705.00138 §runtime, arXiv:1911.11937).
//
// The partitioned engine (sim/engine.h) replays ONE frozen period vector.
// This layer executes a *policy*: every security task carries the two
// design-time committed periods of its core::ModeTable entry — the minimum
// mode (Tmax) and the adapted mode (the allocator's tightened period) — and a
// per-core ModeController flips each task between them at job boundaries:
//
//   * The controller watches the core's idle slack over a sliding window
//     ending at the decision instant.  A task in minimum mode tightens to its
//     adapted period when the idle fraction reaches `tighten_threshold`; a
//     task in adapted mode falls back when idle drops to `relax_threshold`.
//     The gap between the two thresholds is the hysteresis band.
//   * Decisions happen ONLY at that task's release boundaries (a job in
//     flight never changes rate), are rate-limited per task by `min_dwell`
//     ticks between committed switches, and stop for good once the task's
//     `switch_budget` is exhausted.
//   * Every task starts in minimum mode — the conservative always-feasible
//     baseline — and tightens only on observed slack.
//
// Determinism: cores are simulated independently (partitioned scheduling,
// fixed placements) with per-core forked RNG streams exactly like the
// partitioned engine, and every controller decision is a pure function of the
// core-local schedule history — so a fixed seed reproduces the trace, the
// mode decisions, and the switch-event stream byte-for-byte, and results can
// ride exp::Sweep worker threads unchanged (see docs/architecture.md,
// "Runtime adaptation").
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/instance.h"
#include "core/mode_table.h"
#include "sim/task.h"

namespace hydra::sim {

/// A simulator task plus its optional adapted-mode period.  `task.period` /
/// `task.deadline` hold the MINIMUM-mode (loosest) values; `adapted_period`
/// is the tighter rate the controller may switch to.  0 (or a value not
/// strictly below the minimum-mode period) marks the task as fixed-rate —
/// RT tasks and monitors without headroom never switch.
struct ModeTask {
  SimTask task;
  util::SimTime adapted_period = 0;

  /// True when the controller can actually change this task's rate: the one
  /// definition of the fixed-vs-switchable distinction, shared by the engine,
  /// the auto-window sizing, and the residency-summary population.
  bool switchable() const { return adapted_period > 0 && adapted_period < task.period; }
};

/// Controller knobs, shared by every core's controller instance.
struct ModeControllerConfig {
  /// Sliding slack-window length; the idle fraction is measured over
  /// [t − window, t] at decision instant t.  0 = auto: per core, 4× the
  /// largest minimum-mode period among its switchable tasks.
  util::SimTime slack_window = 0;
  /// Idle fraction at/above which a minimum-mode task tightens.
  double tighten_threshold = 0.25;
  /// Idle fraction at/below which an adapted-mode task falls back.  Must be
  /// strictly below tighten_threshold (the hysteresis band).
  double relax_threshold = 0.05;
  /// Minimum ticks between two committed switches of the same task.
  /// 0 = auto: the task's own minimum-mode period.
  util::SimTime min_dwell = 0;
  /// Maximum committed switches per task over the whole run; once spent, the
  /// task stays in its current mode.
  std::size_t switch_budget = std::numeric_limits<std::size_t>::max();
};

struct ModeSwitchOptions {
  util::SimTime horizon = 0;  ///< jobs are released strictly before this time
  util::SimTime grace = 0;    ///< 0 = auto (largest minimum-mode deadline)
  std::uint64_t seed = 0x5eed;
  bool record_segments = false;  ///< fill Trace::segments (Gantt/CSV export)
  ModeControllerConfig controller;
};

/// One committed mode switch (for hysteresis audits and event logs).
struct ModeSwitchEvent {
  std::size_t task = 0;
  util::SimTime at = 0;       ///< the release boundary the switch happened on
  bool to_adapted = false;    ///< true: min → adapted; false: adapted → min
};

/// What the controller did, task by task.  Residency is accounted per
/// released job: a job released in mode m adds its CHOSEN PERIOD to mode m's
/// residency.  The two fractions always sum to exactly 1; for jitter-free
/// tasks the sum of both residencies additionally tiles the release timeline
/// (with release_jitter > 0 the drawn extra gaps are attributed to neither
/// mode, so the sum undercounts wall-clock coverage by the jitter total).
struct ModeStats {
  std::vector<std::size_t> switches;            ///< committed switches per task
  std::vector<util::SimTime> min_residency;     ///< ticks committed at min rate
  std::vector<util::SimTime> adapted_residency; ///< ticks committed at adapted rate
  std::vector<std::size_t> min_jobs;            ///< jobs released in min mode
  std::vector<std::size_t> adapted_jobs;        ///< jobs released in adapted mode
  /// Committed switches, core-major (cores are simulated in index order),
  /// time-ascending within each core.
  std::vector<ModeSwitchEvent> events;

  /// adapted / (min + adapted) residency of `task`; 0 when it never released.
  double adapted_fraction(std::size_t task) const;
  /// Mean adapted_fraction over the tasks selected by `only`; 0 when empty.
  double mean_adapted_fraction(const std::vector<std::size_t>& only) const;
  std::size_t total_switches() const;
};

struct ModeSwitchResult {
  Trace trace;
  ModeStats stats;
};

/// Runs the mode-switching schedule.  Same task-validity rules as
/// sim::simulate plus: a non-zero adapted_period must lie in
/// [wcet, minimum-mode period], and relax_threshold < tighten_threshold.
/// Throws std::invalid_argument on violations.
ModeSwitchResult simulate_mode_switching(const std::vector<ModeTask>& tasks,
                                         const ModeSwitchOptions& options);

/// Builds the mode-switching task list for an instance + feasible allocation:
/// the same RT/security resolution as sim::build_sim_tasks, but security
/// tasks run at their MINIMUM-mode (Tmax) period with the mode table's
/// adapted period attached (0 when the table has no headroom for the task).
/// Indices: RT tasks first, then security task s at index NR + s.
std::vector<ModeTask> build_mode_tasks(const core::Instance& instance,
                                       const core::Allocation& allocation,
                                       const core::ModeTable& table);

}  // namespace hydra::sim
