// Contego-style adaptive allocation (Hasan et al., arXiv:1705.00138).
//
// Contego runs each security monitor in one of two modes: a *minimum* mode at
// the loosest acceptable period Tmax (always-on baseline coverage) and a
// *best* mode at the desired period Tdes, switching opportunistically when
// the system has slack.  The static design-time analog implemented here:
//
//   1. Minimum-mode placement — every security task is admitted at Tmax,
//      worst-fit by total core utilization, so the load is spread and each
//      core retains the largest residual slack for the adaptation step.
//      (Admission solves the same Eq. (7) subproblem HYDRA uses; a task no
//      core can host even at Tmax makes the set unschedulable.)
//   2. Opportunistic tightening — on each core the committed periods are
//      shrunk toward Tdes with the slack-aware pass in period_adaptation.h
//      (`tighten_core_periods`): a monitor only tightens as far as its own
//      Eq. (7) bound and the feasibility of every lower-priority monitor on
//      that core allow, so the result is feasible by construction and every
//      final period sits between the two Contego modes.
//
// The `contego/no-adapt` registry ablation stops after step 1 (everything in
// minimum mode) and is the lower anchor of the period-mode monotonicity
// property test.
#pragma once

#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/period_adaptation.h"

namespace hydra::core {

struct ContegoOptions {
  PeriodSolver solver = PeriodSolver::kClosedForm;
  /// false = minimum-mode placement only (the "/no-adapt" ablation).
  bool adapt = true;
  /// Tightening passes per core; more rounds only tighten further (the pass
  /// is monotone), with quickly diminishing returns.
  std::size_t adaptation_rounds = 2;
  /// GP solver backend (gp::SolverRegistry name) for the Eq. (7) subproblems
  /// under PeriodSolver::kGeometricProgram.  Contego has no options plumbing
  /// down to adapt_period, so a non-empty name is installed as a
  /// gp::GpBackendScope around the allocation; "" defers to the ambient
  /// scope (the sweep layer's), then the registry default.
  std::string gp_backend;
};

class ContegoAllocator : public Allocator {
 public:
  explicit ContegoAllocator(ContegoOptions options = {})
      : Allocator("contego"), options_(options) {}

  /// Minimum-mode placement + per-core tightening against an externally
  /// supplied RT partition (same contract as HydraAllocator::allocate).
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  /// Best-fit-partitions the RT tasks over all M cores first.
  Allocation allocate(const Instance& instance) const override;

  std::string describe() const override;

  const ContegoOptions& options() const { return options_; }

 private:
  ContegoOptions options_;
};

}  // namespace hydra::core
