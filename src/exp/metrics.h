// Reusable RowMetric hooks shared by benches and tests.
//
// RowMetrics (exp/engine.h) attach extra deterministic per-row measurements
// to validated (instance, scheme) evaluations.  This header collects the
// library-provided ones so benches declare them by name instead of re-rolling
// the lambdas.
#pragma once

#include <vector>

#include "exp/engine.h"
#include "sim/attack.h"

namespace hydra::exp {

/// Period-mode accounting for the adaptive allocator families (Contego's
/// best/minimum monitoring modes): three RowMetrics counting, over the
/// validated placements of a row,
///
///   * "best_mode_tasks" — monitors at their desired period (Ts ≈ Tdes, η ≈ 1),
///   * "min_mode_tasks"  — monitors left at the loosest period (Ts ≈ Tmax),
///   * "adapted_tasks"   — monitors strictly between the two modes.
///
/// The three counts always sum to NS.  `rel_tol` is the relative tolerance
/// deciding when a period sits ON a mode boundary (solver output is exact for
/// the closed form; the GP route lands within solver tolerance).
std::vector<RowMetric> period_mode_metrics(double rel_tol = 1e-9);

/// Configuration of the runtime-adaptation metric family below.  The
/// detection seed/horizon/trials come from `detection`; the controller knobs
/// from `controller` — both are baked into the metric closures, so the hooks
/// stay pure functions of (instance, DesignPoint) as RowMetrics require.
struct AdaptiveMetricsConfig {
  sim::DetectionConfig detection;
  sim::ModeControllerConfig controller;
  /// Appended to the adaptive_* metric names (NOT the baselines), e.g.
  /// "/boost" — how a bench runs several controller-policy families side by
  /// side in one sweep without name collisions.  The suffixed names feed the
  /// sweep fingerprint like any other metric name.
  std::string name_suffix;
  /// Also emit the frozen-allocation baseline ("static_mean_detection_ms") —
  /// the design-time bound runtime adaptation approaches from above.
  bool include_static = true;
  /// Also emit the static minimum-mode baseline ("min_mode_mean_detection_ms")
  /// — the always-feasible fallback adaptation improves on.
  bool include_min_mode = true;
  /// Also emit the global-slack bound ("global_mean_detection_ms") — the
  /// optimistic migration end of the design space.
  bool include_global = false;
};

/// Detection latency UNDER runtime adaptation, as RowMetrics: for every
/// accepted (instance, scheme) row the mode-switching engine replays the
/// allocation's mode table (sim::measure_detection_times_adaptive) and the
/// hooks report
///
///   * "adaptive_mean_detection_ms" / "adaptive_p95_detection_ms" — latency
///     with the controller live,
///   * "adaptive_switches" — committed mode switches across all monitors,
///   * "adapted_residency" — mean adapted-mode residency fraction over the
///     switchable monitors (0 when the allocation has no headroom),
///   * "adaptive_denied_dwell" / "adaptive_denied_budget" — controller
///     decisions the dwell rate limit / the exhausted switch budget denied
///     (distinguishes a stable controller from a starved one),
///
/// plus the baselines selected in the config (static = the frozen committed
/// periods, min-mode = everything at Tmax, global = global-slack migration).
/// The controller's policy / num_levels / boost_window are part of every
/// adaptive metric's identity (resolved against the DEFAULT policy when the
/// config leaves it empty — the sweep fingerprints its ambient policy
/// separately via SweepSpec::controller_policy).  Throws on an invalid
/// controller config at construction, not first evaluation.
/// All hooks derive from one simulation bundle per row, memoized per worker
/// thread — the cache only short-circuits recomputation of a pure function,
/// so the sweep's byte-identity across --jobs is preserved.
std::vector<RowMetric> adaptive_detection_metrics(const AdaptiveMetricsConfig& config);

/// Canonical RowMetric::identity string for a DetectionConfig — use it when
/// hand-rolling a detection metric (bench_fig1) so the sweep fingerprint can
/// distinguish runs with different horizons/trials/seeds/scopes.
std::string detection_metric_identity(const sim::DetectionConfig& config);

/// Single RowMetric: mean detection latency under global slack scheduling
/// (sim::measure_detection_times_global) — the optimistic
/// security-jobs-migrate-freely bound, directly comparable against a
/// partitioned detection metric computed with the same DetectionConfig.
RowMetric global_detection_metric(const sim::DetectionConfig& config,
                                  std::string name = "global_mean_detection_ms");

}  // namespace hydra::exp
