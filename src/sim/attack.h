// Attack injection and intrusion-detection-time measurement (paper §IV-A).
//
// Mirrors the paper's experiment: observe the schedule for a long window,
// trigger a synthetic attack at a uniformly random time, and measure how long
// until the security tasks detect it.  As in the paper, detection capability
// is assumed perfect (no false positives/negatives) — the experiment isolates
// the *scheduling* contribution to detection latency: an attack at time t is
// detected when the first monitoring job that *starts a fresh scan after t*
// completes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "sim/mode_switch.h"
#include "sim/task.h"
#include "util/rng.h"

namespace hydra::sim {

/// What one synthetic attack touches.
enum class AttackScope {
  /// The attack corrupts one uniformly chosen monitored surface; detection is
  /// by that surface's security task alone.
  kSingleTask,
  /// The attack corrupts every monitored surface (the paper's "corrupts the
  /// file system and network packets"); full detection completes when the
  /// last security task has re-scanned — the *worst-case* detection time.
  kAllTasks,
};

struct DetectionConfig {
  util::SimTime horizon = 500u * 1000u * util::kTicksPerMilli;  ///< paper: 500 s
  std::size_t trials = 500;
  std::uint64_t seed = 1;
  AttackScope scope = AttackScope::kAllTasks;
};

struct DetectionResult {
  std::vector<double> detection_ms;  ///< one sample per detected attack
  std::size_t undetected = 0;        ///< attacks with no completing scan in-horizon
  std::size_t deadline_misses = 0;   ///< sanity: 0 for a valid allocation
};

/// Builds the fully resolved simulator task list for an instance + feasible
/// allocation: RT tasks at RM priorities on their partitioned cores, security
/// tasks below all RT tasks at their assigned (core, period).
/// `security_priority_order` must match the order the allocator used (absent
/// = the paper's ascending-Tmax rule).
std::vector<SimTask> build_sim_tasks(
    const core::Instance& instance, const core::Allocation& allocation,
    bool security_preemptive = true,
    const std::optional<std::vector<std::size_t>>& security_priority_order = std::nullopt);

/// Runs the schedule once and samples `trials` attacks at uniformly random
/// times.  Requires a feasible allocation.
DetectionResult measure_detection_times(const core::Instance& instance,
                                        const core::Allocation& allocation,
                                        const DetectionConfig& config);

/// Same experiment under global slack scheduling (paper §V): the security
/// tasks keep the allocation's periods but their jobs may run on ANY core's
/// idle slack (job-level migration).  The static core assignment is ignored.
DetectionResult measure_detection_times_global(const core::Instance& instance,
                                               const core::Allocation& allocation,
                                               const DetectionConfig& config);

/// One planned synthetic attack: the instant, plus the victim monitor index
/// (security-task index, meaningful only under AttackScope::kSingleTask).
struct AttackTrial {
  util::SimTime at = 0;
  std::size_t victim = 0;
};

/// The pre-drawn attack schedule of a detection experiment.  Splitting the
/// drawing (plan_attacks) from the reading-off (detect_planned_attacks) lets
/// the SAME attacks be injected into the mode-switching engine as detection
/// events (ModeSwitchOptions::attack_times) AND measured afterwards — the
/// seam the attack-triggered `boost` controller policy needs.  The draw order
/// is identical to the historical sample_attacks (per trial: instant, then
/// victim), so a fixed seed plans the same attacks it always sampled.
struct AttackPlan {
  std::vector<AttackTrial> trials;

  /// The attack instants, ascending (duplicates kept) — the shape
  /// ModeSwitchOptions::attack_times wants.
  std::vector<util::SimTime> sorted_times() const;
};

/// Draws `config.trials` attacks uniformly over the horizon minus a detection
/// tail (3× each monitor's period, taken from `tasks` — for adaptive traces
/// pass the MINIMUM-mode list, the conservative window).  Pure function of
/// (tasks' periods, config).
AttackPlan plan_attacks(const std::vector<SimTask>& tasks, std::size_t num_rt,
                        std::size_t num_security, const DetectionConfig& config);

/// Reads a planned attack schedule off a completed trace: an attack is
/// detected when the first monitoring job released after it completes
/// (worst-case over all monitors under kAllTasks, the planned victim alone
/// under kSingleTask).
DetectionResult detect_planned_attacks(const Trace& trace, std::size_t num_rt,
                                       std::size_t num_security,
                                       const DetectionConfig& config,
                                       const AttackPlan& plan);

/// The attack-sampling pass the measure_* entry points share:
/// plan_attacks + detect_planned_attacks in one call, for traces that need no
/// injection.  `tasks` is the simulator task list the trace was produced from
/// (RT first, then security) — only used to size the attack window from the
/// security periods.  Exposed so custom runtime policies can reuse the
/// measurement protocol on their own traces.
DetectionResult sample_attacks(const Trace& trace, const std::vector<SimTask>& tasks,
                               std::size_t num_rt, std::size_t num_security,
                               const DetectionConfig& config);

/// Detection latency measured UNDER runtime adaptation rather than for a
/// frozen period vector: builds the mode table of the allocation
/// (minimum mode = Tmax, fastest mode = the committed periods,
/// `controller.num_levels` ladder rungs), plans the attacks FIRST, runs the
/// mode-switching engine with `controller` and the planned attack instants
/// injected as detection events, and reads the plan off the resulting trace.
/// Policies that ignore detections (everything but `boost`) produce the same
/// trace the un-injected engine would, so their results are unchanged; the
/// `boost` policy reacts to each attack and shortens the latency of the NEXT
/// one.  The attack window is sized from the minimum-mode periods, so every
/// trial also has a defined latency in the static minimum-mode baseline — the
/// comparison the dominance property test makes.
struct AdaptiveDetectionResult {
  DetectionResult detection;
  ModeStats modes;  ///< indices are sim-task indices (security task s at NR+s)
  /// Sim-task indices of the monitors that can actually switch (mode-table
  /// headroom survived tick rounding) — the population mode-residency
  /// summaries should average over.
  std::vector<std::size_t> switchable_tasks;
};
AdaptiveDetectionResult measure_detection_times_adaptive(
    const core::Instance& instance, const core::Allocation& allocation,
    const DetectionConfig& config, const ModeControllerConfig& controller = {});

}  // namespace hydra::sim
