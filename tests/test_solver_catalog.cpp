// Keeps docs/solver-catalog.md in sync with gp::SolverRegistry::global().
//
// The committed catalog is generated (bench_table1_catalog
// --solver-catalog-out); this suite fails whenever the registry gains, loses,
// or re-describes a backend without the doc being regenerated.  After an
// intentional registry change:
//
//     HYDRA_UPDATE_CATALOG=1 ./build/test_solver_catalog
//
// rewrites the file in place (review the diff like any other code change).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "gp/solver_registry.h"

namespace {

const std::string kCatalogPath =
    std::string(HYDRA_SOURCE_DIR) + "/docs/solver-catalog.md";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(SolverCatalog, RegistryShipsTheDocumentedBackends) {
  const auto& registry = hydra::gp::SolverRegistry::global();
  EXPECT_TRUE(registry.contains("scp/barrier"));
  EXPECT_TRUE(registry.contains("ipm/filter"));
  EXPECT_TRUE(registry.contains("pick-best"));
  EXPECT_TRUE(registry.contains(hydra::gp::kDefaultGpBackend));
  EXPECT_FALSE(registry.contains("no-such-backend"));
  EXPECT_THROW(registry.make("no-such-backend"), std::invalid_argument);
}

TEST(SolverCatalog, EveryBackendStampsItsRegisteredName) {
  const auto& registry = hydra::gp::SolverRegistry::global();
  for (const auto& name : registry.names()) {
    EXPECT_EQ(registry.make(name)->name(), name);
  }
}

TEST(SolverCatalog, MarkdownContainsEveryRegisteredBackend) {
  const auto& registry = hydra::gp::SolverRegistry::global();
  const std::string markdown = hydra::gp::solver_catalog_markdown(registry);
  for (const auto& name : registry.names()) {
    EXPECT_NE(markdown.find("| `" + name + "` |"), std::string::npos) << name;
    EXPECT_NE(markdown.find(registry.description(name)), std::string::npos) << name;
  }
  EXPECT_NE(markdown.find("# GP solver catalog"), std::string::npos);
}

TEST(SolverCatalog, CommittedDocMatchesTheLiveRegistry) {
  const std::string expected =
      hydra::gp::solver_catalog_markdown(hydra::gp::SolverRegistry::global());

  if (std::getenv("HYDRA_UPDATE_CATALOG") != nullptr) {
    std::ofstream out(kCatalogPath);
    out << expected;
    GTEST_SKIP() << "solver catalog regenerated at " << kCatalogPath;
  }

  const std::string committed = read_file(kCatalogPath);
  ASSERT_FALSE(committed.empty())
      << "missing " << kCatalogPath
      << " — generate it with ./build/bench_table1_catalog --solver-catalog-out "
         "docs/solver-catalog.md";
  EXPECT_EQ(committed, expected)
      << "docs/solver-catalog.md is out of sync with gp::SolverRegistry::global(); "
         "regenerate with HYDRA_UPDATE_CATALOG=1 ./build/test_solver_catalog or "
         "./build/bench_table1_catalog --solver-catalog-out docs/solver-catalog.md";
}
