// Fig. 3 reproduction: difference in cumulative tightness between HYDRA and
// the optimal (exhaustive) assignment, M = 2, NS ∈ [2, 6].
//
// For every schedulable instance both schemes run against the same best-fit
// RT partition; the gap is Δη = (η_OPT − η_HYDRA)/η_OPT × 100 %.  The paper
// reports ~0 gap at low/medium utilization, growing but bounded by ≈22 % at
// high utilization.
//
// Usage: bench_fig3_optimal_gap [--tasksets 50] [--seed 11] [--csv]
//        (the paper's Fig. 3 uses M = 2; the exhaustive comparator is
//         exponential, so per-point taskset counts are smaller than Fig. 2's)
#include <iostream>
#include <vector>

#include "core/hydra.h"
#include "core/optimal.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "rt/partition.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout,
                   "Fig. 3: HYDRA vs optimal exhaustive assignment (M = 2, NS in [2, 6])");
  std::cout << tasksets << " schedulable tasksets per utilization point.\n";

  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;  // NS ∈ [2, 6] as in the paper's Fig. 3
  config.max_sec_per_core = 3;

  const core::HydraAllocator hydra_alloc;
  const core::OptimalAllocator optimal_alloc;  // SignomialScp joint periods

  io::Table table({"total utilization", "mean gap (%)", "max gap (%)", "samples"});
  hydra::util::Xoshiro256 rng(seed);

  for (int step = 1; step <= 39; ++step) {
    const double u = 0.025 * static_cast<double>(step) * 2.0;
    std::vector<double> gaps;
    int attempts = 0;
    while (static_cast<int>(gaps.size()) < tasksets && attempts < tasksets * 8) {
      ++attempts;
      auto trial_rng = rng.fork();
      const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
      if (!drawn.has_value()) break;  // utilization point structurally hopeless
      const auto partition = hydra::rt::partition_rt_tasks(drawn->instance.rt_tasks, 2);
      if (!partition.has_value()) continue;
      const auto h = hydra_alloc.allocate(drawn->instance, *partition);
      if (!h.feasible) continue;  // the paper compares on schedulable sets
      const auto o = optimal_alloc.allocate(drawn->instance, *partition);
      if (!o.feasible) continue;  // cannot happen if HYDRA succeeded; guard anyway
      const double eta_h = h.cumulative_tightness(drawn->instance.security_tasks);
      const double eta_o = o.cumulative_tightness(drawn->instance.security_tasks);
      gaps.push_back(hydra::stats::gap_percent(eta_o, eta_h));
    }
    if (gaps.empty()) {
      table.add_row({io::fmt(u, 3), "-", "-", "0"});
      continue;
    }
    const auto s = hydra::stats::summarize(gaps);
    table.add_row({io::fmt(u, 3), io::fmt(s.mean, 2), io::fmt(s.max, 2),
                   std::to_string(s.count)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nShape target: gap ~0 at low/medium utilization, growing at "
               "high utilization yet staying well below ~25% (paper: <= 22%).\n";
  return 0;
}
