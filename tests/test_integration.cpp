// Cross-module integration tests: the analysis ↔ simulation contract (the
// library's most important invariant), reduced-scale versions of the Fig. 1/2/3
// pipelines, and the non-preemptive extension end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/hydra.h"
#include "core/optimal.h"
#include "core/single_core.h"
#include "core/validation.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "rt/analysis.h"
#include "rt/priority.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "stats/ecdf.h"
#include "stats/summary.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace sim = hydra::sim;
namespace rt = hydra::rt;

// ---------------------------------------------------------------------------
// Analysis ↔ simulation: any allocation the analysis declares feasible must
// run without a single deadline miss under synchronous periodic release (the
// worst-case sporadic pattern the response-time bound covers).
// ---------------------------------------------------------------------------

class AnalysisVsSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisVsSimulation, FeasibleAllocationsNeverMissDeadlines) {
  hydra::util::Xoshiro256 rng(GetParam());
  gen::SyntheticConfig config;
  config.num_cores = 2;
  // Moderate utilization so a good share of draws is feasible.
  const double u = rng.uniform(0.4, 1.2);
  const auto drawn = gen::generate_filtered_instance(config, u, rng);
  if (!drawn.has_value()) GTEST_SKIP() << "no taskset at this utilization";

  const auto allocation = core::HydraAllocator().allocate(drawn->instance);
  if (!allocation.feasible) GTEST_SKIP() << "allocation infeasible";

  const auto tasks = sim::build_sim_tasks(drawn->instance, allocation);
  sim::SimOptions opts;
  opts.horizon = 60u * 1000u * hydra::util::kTicksPerMilli;  // 60 s
  const auto trace = sim::simulate(tasks, opts);
  EXPECT_EQ(trace.deadline_misses(), 0u)
      << "analysis said feasible but the schedule missed a deadline";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisVsSimulation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AnalysisVsSimulation, SingleCoreAllocationsAlsoHold) {
  for (const std::size_t m : {2u, 4u}) {
    const auto inst = gen::uav_case_study(m);
    const auto allocation = core::SingleCoreAllocator().allocate(inst);
    ASSERT_TRUE(allocation.feasible);
    sim::SimOptions opts;
    opts.horizon = 120u * 1000u * hydra::util::kTicksPerMilli;
    const auto trace = sim::simulate(sim::build_sim_tasks(inst, allocation), opts);
    EXPECT_EQ(trace.deadline_misses(), 0u) << "M = " << m;
  }
}

TEST(AnalysisVsSimulation, NonPreemptiveExtensionEndToEnd) {
  // Allocate with the full non-preemptive model (blocking term on the
  // security side AND RT-blocking admission), then simulate the security
  // tasks non-preemptively: still no misses — on either core count,
  // including M = 2 where monitors must share cores with control tasks.
  for (const std::size_t m : {2u, 4u}) {
    const auto inst = gen::uav_case_study(m);
    double max_sec_wcet = 0.0;
    for (const auto& s : inst.security_tasks) max_sec_wcet = std::max(max_sec_wcet, s.wcet);

    core::HydraOptions opts;
    opts.blocking = max_sec_wcet;
    opts.non_preemptive_security = true;
    const auto allocation = core::HydraAllocator(opts).allocate(inst);
    if (!allocation.feasible) continue;  // refusing is a legitimate outcome

    const auto tasks = sim::build_sim_tasks(inst, allocation, /*security_preemptive=*/false);
    sim::SimOptions sim_opts;
    sim_opts.horizon = 120u * 1000u * hydra::util::kTicksPerMilli;
    const auto trace = sim::simulate(tasks, sim_opts);
    EXPECT_EQ(trace.deadline_misses(), 0u) << "M = " << m;
  }
}

TEST(AnalysisVsSimulation, NonPreemptiveWithoutRtCheckDoesMissDeadlines) {
  // Regression companion to the test above, documenting WHY the RT-blocking
  // admission exists: with only the security-side blocking term (the naive
  // reading of §V), the M = 2 case study allocates a 900 ms non-preemptive
  // scan next to a 50 ms control loop — and the control loop misses.
  const auto inst = gen::uav_case_study(2);
  double max_sec_wcet = 0.0;
  for (const auto& s : inst.security_tasks) max_sec_wcet = std::max(max_sec_wcet, s.wcet);

  core::HydraOptions naive;
  naive.blocking = max_sec_wcet;  // security side only
  const auto allocation = core::HydraAllocator(naive).allocate(inst);
  ASSERT_TRUE(allocation.feasible);

  const auto tasks = sim::build_sim_tasks(inst, allocation, /*security_preemptive=*/false);
  sim::SimOptions sim_opts;
  sim_opts.horizon = 120u * 1000u * hydra::util::kTicksPerMilli;
  const auto trace = sim::simulate(tasks, sim_opts);
  EXPECT_GT(trace.deadline_misses(), 0u)
      << "expected the naive non-preemptive model to break RT deadlines";
}

TEST(AnalysisVsSimulation, ObservedResponseTimesRespectAnalyticBounds) {
  // For every RT task, the simulator's worst observed response time must not
  // exceed the exact RTA bound; for every security task it must not exceed
  // the assigned period (its deadline) nor the exact security RTA bound.
  const auto inst = gen::uav_case_study(2);
  const auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);

  const auto tasks = sim::build_sim_tasks(inst, allocation);
  sim::SimOptions opts;
  opts.horizon = 120u * 1000u * hydra::util::kTicksPerMilli;
  const auto trace = sim::simulate(tasks, opts);
  ASSERT_EQ(trace.deadline_misses(), 0u);

  // RT tasks: bound by exact RTA against same-core higher-priority RT tasks.
  const auto rt_order = rt::rm_priority_order(inst.rt_tasks);
  for (std::size_t pos = 0; pos < rt_order.size(); ++pos) {
    const std::size_t i = rt_order[pos];
    std::vector<rt::RtTask> hp;
    for (std::size_t q = 0; q < pos; ++q) {
      const std::size_t j = rt_order[q];
      if (allocation.rt_partition.core_of[j] == allocation.rt_partition.core_of[i]) {
        hp.push_back(inst.rt_tasks[j]);
      }
    }
    const auto bound = rt::response_time(inst.rt_tasks[i], hp);
    ASSERT_TRUE(bound.has_value());
    const auto observed = trace.max_response_time_ms(i);
    ASSERT_TRUE(observed.has_value());
    EXPECT_LE(*observed, *bound + 1e-3) << inst.rt_tasks[i].name;
  }

  // Security tasks: bound by the exact security RTA at the assigned period.
  const auto sec_rank = rt::rank_of(rt::security_priority_order(inst.security_tasks));
  for (std::size_t s = 0; s < inst.security_tasks.size(); ++s) {
    const auto& place = allocation.placements[s];
    std::vector<rt::RtTask> local_rt;
    for (std::size_t r = 0; r < inst.rt_tasks.size(); ++r) {
      if (allocation.rt_partition.core_of[r] == place.core) local_rt.push_back(inst.rt_tasks[r]);
    }
    std::vector<rt::PlacedSecurityTask> local_hp;
    for (std::size_t h = 0; h < inst.security_tasks.size(); ++h) {
      if (h != s && allocation.placements[h].core == place.core && sec_rank[h] < sec_rank[s]) {
        local_hp.push_back({inst.security_tasks[h].wcet, allocation.placements[h].period});
      }
    }
    const auto bound = rt::security_response_time(inst.security_tasks[s], place.period,
                                                  local_rt, local_hp);
    ASSERT_TRUE(bound.has_value()) << inst.security_tasks[s].name;
    const auto observed = trace.max_response_time_ms(inst.rt_tasks.size() + s);
    ASSERT_TRUE(observed.has_value());
    EXPECT_LE(*observed, *bound + 1e-3) << inst.security_tasks[s].name;
  }
}

// ---------------------------------------------------------------------------
// Reduced-scale figure pipelines.
// ---------------------------------------------------------------------------

TEST(Fig1Pipeline, HydraCdfDominatesSingleCore) {
  const auto inst = gen::uav_case_study(4);
  const auto hydra_alloc = core::HydraAllocator().allocate(inst);
  const auto single_alloc = core::SingleCoreAllocator().allocate(inst);
  ASSERT_TRUE(hydra_alloc.feasible);
  ASSERT_TRUE(single_alloc.feasible);

  sim::DetectionConfig config;
  config.horizon = 300u * 1000u * hydra::util::kTicksPerMilli;
  config.trials = 200;
  config.seed = 7;
  const auto hydra_res = sim::measure_detection_times(inst, hydra_alloc, config);
  const auto single_res = sim::measure_detection_times(inst, single_alloc, config);
  ASSERT_GT(hydra_res.detection_ms.size(), 50u);
  ASSERT_GT(single_res.detection_ms.size(), 50u);

  const hydra::stats::EmpiricalCdf hydra_cdf(hydra_res.detection_ms);
  const hydra::stats::EmpiricalCdf single_cdf(single_res.detection_ms);
  // Weak stochastic dominance sampled across the axis (allowing tiny noise).
  int wins = 0, losses = 0;
  for (double x = 0.0; x <= 50000.0; x += 1000.0) {
    if (hydra_cdf(x) >= single_cdf(x) - 0.02) ++wins; else ++losses;
  }
  EXPECT_GT(wins, 45);
  EXPECT_LT(losses, 6);
}

TEST(Fig2Pipeline, ImprovementNonNegativeAndGrowsAtHighUtilization) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng(2718);
  const core::HydraAllocator hydra_alloc;
  const core::SingleCoreAllocator single_alloc;

  const auto acceptance_at = [&](double u) {
    hydra::stats::AcceptanceCounter hydra_counter, single_counter;
    for (int rep = 0; rep < 40; ++rep) {
      const auto drawn = gen::generate_filtered_instance(config, u, rng);
      if (!drawn.has_value()) {
        hydra_counter.record(false);
        single_counter.record(false);
        continue;
      }
      hydra_counter.record(hydra_alloc.allocate(drawn->instance).feasible);
      single_counter.record(single_alloc.allocate(drawn->instance).feasible);
    }
    return std::pair<double, double>{hydra_counter.ratio(), single_counter.ratio()};
  };

  const auto low = acceptance_at(0.3);
  const auto high = acceptance_at(1.5);
  // Low utilization: both schemes accept essentially everything.
  EXPECT_GT(low.first, 0.9);
  EXPECT_GT(low.second, 0.9);
  // High utilization: HYDRA accepts at least as much as SingleCore, and the
  // SingleCore ratio collapses (RT alone exceeds one core).
  EXPECT_GE(high.first, high.second);
  EXPECT_LT(high.second, 0.3);
}

TEST(Fig3Pipeline, OptimalGapIsSmallAndNonNegative) {
  hydra::util::Xoshiro256 rng(3141);
  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;  // keep NS in Fig. 3's [2, 6] range
  config.max_sec_per_core = 3;
  int compared = 0;
  for (int rep = 0; rep < 12 && compared < 5; ++rep) {
    const auto drawn = gen::generate_filtered_instance(config, rng.uniform(0.6, 1.4), rng);
    if (!drawn.has_value()) continue;
    if (drawn->instance.security_tasks.size() > 6) continue;
    const auto hydra_res = core::HydraAllocator().allocate(drawn->instance);
    if (!hydra_res.feasible) continue;
    const auto optimal_res =
        core::OptimalAllocator().allocate(drawn->instance, hydra_res.rt_partition);
    ASSERT_TRUE(optimal_res.feasible);
    const double eta_hydra = hydra_res.cumulative_tightness(drawn->instance.security_tasks);
    const double eta_opt = optimal_res.cumulative_tightness(drawn->instance.security_tasks);
    EXPECT_GE(eta_opt, eta_hydra - 1e-6);
    EXPECT_LE(hydra::stats::gap_percent(eta_opt, eta_hydra), 100.0);
    ++compared;
  }
  EXPECT_GT(compared, 0) << "no comparable instances drawn";
}

TEST(Validation, CatchesTamperedAllocations) {
  const auto inst = gen::uav_case_study(2);
  auto allocation = core::HydraAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);

  auto tampered = allocation;
  tampered.placements[0].period = inst.security_tasks[0].period_des * 0.5;  // below Tdes
  EXPECT_FALSE(core::validate_allocation(inst, tampered).valid);

  tampered = allocation;
  tampered.placements[0].core = 99;
  EXPECT_FALSE(core::validate_allocation(inst, tampered).valid);

  tampered = allocation;
  tampered.placements[0].tightness = 0.123;  // inconsistent with period
  EXPECT_FALSE(core::validate_allocation(inst, tampered).valid);

  // Cram every security task onto one core at desired periods: Eq. (6) must
  // fail for the overloaded catalog.
  tampered = allocation;
  for (std::size_t s = 0; s < tampered.placements.size(); ++s) {
    tampered.placements[s].core = 0;
    tampered.placements[s].period = inst.security_tasks[s].period_des;
    tampered.placements[s].tightness = 1.0;
  }
  EXPECT_FALSE(core::validate_allocation(inst, tampered).valid);
}
