// Deterministic random-number generation for reproducible experiments.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64, plus the uniform
// helpers the workload generators need.  Satisfies UniformRandomBitGenerator
// so it composes with <random> distributions, but the helpers here avoid
// libstdc++-version-dependent distribution behaviour: given a seed, every
// platform produces the same streams.
#pragma once

#include <array>
#include <cstdint>

#include "util/contracts.h"

namespace hydra::util {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64, per
  /// the generator authors' recommendation.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).  Requires lo < hi.
  double uniform(double lo, double hi) {
    HYDRA_REQUIRE(lo < hi, "uniform: empty range");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in the inclusive range [lo, hi] via rejection sampling
  /// (unbiased).  Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    HYDRA_REQUIRE(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + draw % span;
  }

  /// Derives an independent child generator; used to give each experiment
  /// trial its own stream so trials are order-independent.
  Xoshiro256 fork() { return Xoshiro256((*this)() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hydra::util
