// Small dense vector used by the geometric-programming solver.
//
// Deliberately minimal: the GP instances this library solves have at most a
// few dozen variables (one period per security task), so a simple
// std::vector<double>-backed type with checked indexing is the right tool —
// no expression templates, no BLAS.
#pragma once

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/contracts.h"

namespace hydra::linalg {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double value = 0.0) : data_(n, value) {}
  Vector(std::initializer_list<double> values) : data_(values) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Resizes to n entries all set to `value`, reusing the existing allocation
  /// when capacity allows — the reset path for caller-owned scratch buffers.
  void assign(std::size_t n, double value = 0.0) { data_.assign(n, value); }

  double& operator[](std::size_t i) {
    HYDRA_REQUIRE(i < data_.size(), "vector index out of range");
    return data_[i];
  }
  double operator[](std::size_t i) const {
    HYDRA_REQUIRE(i < data_.size(), "vector index out of range");
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }

  Vector& operator+=(const Vector& rhs) {
    HYDRA_REQUIRE(rhs.size() == size(), "vector size mismatch");
    for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Vector& operator-=(const Vector& rhs) {
    HYDRA_REQUIRE(rhs.size() == size(), "vector size mismatch");
    for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }
  Vector& operator*=(double s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(double s, Vector v) { return v *= s; }
  friend Vector operator*(Vector v, double s) { return v *= s; }

  friend double dot(const Vector& a, const Vector& b) {
    HYDRA_REQUIRE(a.size() == b.size(), "vector size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a.data_[i] * b.data_[i];
    return acc;
  }

  double norm2() const { return std::sqrt(dot(*this, *this)); }

  double norm_inf() const {
    double m = 0.0;
    for (double v : data_) m = std::fmax(m, std::fabs(v));
    return m;
  }

  bool all_finite() const {
    for (double v : data_) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  }

 private:
  std::vector<double> data_;
};

}  // namespace hydra::linalg
