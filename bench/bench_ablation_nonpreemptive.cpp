// Ablation: non-preemptive security tasks (paper §V future work).
//
// Some monitors cannot be preempted mid-scan.  The analysis handles this with
// a per-core blocking term in Eq. (5); the simulator runs security jobs
// non-preemptively.  This bench measures what the extension costs: acceptance
// ratio and mean detection time of preemptive vs non-preemptive integration
// on the UAV case study and synthetic sweeps.
//
// Usage: bench_ablation_nonpreemptive [--cores 2,4] [--trials 300] [--seed 13]
//                                     [--tasksets 80] [--csv]
#include <algorithm>
#include <iostream>

#include "core/hydra.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "stats/ecdf.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;
namespace sim = hydra::sim;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 80));
  const bool csv = cli.get_bool("csv", false);

  // --- Part 1: detection time on the UAV case study. ---
  io::print_banner(std::cout, "Ablation: non-preemptive security tasks — UAV detection time");
  io::Table detection({"cores", "mode", "mean detection (ms)", "p95 (ms)"});
  for (const auto m : cores) {
    const auto instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    double max_sec_wcet = 0.0;
    for (const auto& s : instance.security_tasks) {
      max_sec_wcet = std::max(max_sec_wcet, s.wcet);
    }

    for (const bool preemptive : {true, false}) {
      core::HydraOptions opts;
      opts.blocking = preemptive ? 0.0 : max_sec_wcet;
      // Full non-preemptive model: cores whose RT tasks cannot absorb the
      // blocking are excluded (otherwise the RT side misses deadlines — see
      // EXPERIMENTS.md).
      opts.non_preemptive_security = !preemptive;
      const auto allocation = core::HydraAllocator(opts).allocate(instance);
      if (!allocation.feasible) {
        detection.add_row({std::to_string(m), preemptive ? "preemptive" : "non-preemptive",
                           "infeasible", "-"});
        continue;
      }
      sim::DetectionConfig config;
      config.horizon = 300u * 1000u * hydra::util::kTicksPerMilli;
      config.trials = trials;
      config.seed = seed;
      // Build the task set with the matching preemption mode.
      const auto tasks = sim::build_sim_tasks(instance, allocation, preemptive);
      sim::SimOptions sim_opts;
      sim_opts.horizon = config.horizon;
      const auto trace = sim::simulate(tasks, sim_opts);
      if (trace.deadline_misses() != 0) {
        detection.add_row({std::to_string(m), preemptive ? "preemptive" : "non-preemptive",
                           "MISSED DEADLINES", "-"});
        continue;
      }
      const auto res = sim::measure_detection_times(instance, allocation, config);
      const auto s = hydra::stats::summarize(res.detection_ms);
      hydra::stats::EmpiricalCdf cdf(res.detection_ms);
      detection.add_row({std::to_string(m), preemptive ? "preemptive" : "non-preemptive",
                         io::fmt(s.mean, 1), io::fmt(cdf.quantile(0.95), 1)});
    }
  }
  if (csv) {
    detection.print_csv(std::cout);
  } else {
    detection.print(std::cout);
  }

  // --- Part 2: acceptance-ratio cost of the blocking term. ---
  io::print_banner(std::cout, "Acceptance-ratio cost of the blocking term (M = 2, synthetic)");
  gen::SyntheticConfig config;
  config.num_cores = 2;
  io::Table acceptance({"utilization", "preemptive", "non-preemptive"});
  for (const double phase : {0.4, 0.6, 0.8}) {
    const double u = phase * 2.0;
    hydra::util::Xoshiro256 rng(seed);
    hydra::stats::AcceptanceCounter pre, non;
    for (int rep = 0; rep < tasksets; ++rep) {
      auto trial_rng = rng.fork();
      const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
      if (!drawn.has_value()) {
        pre.record(false);
        non.record(false);
        continue;
      }
      double max_sec_wcet = 0.0;
      for (const auto& s : drawn->instance.security_tasks) {
        max_sec_wcet = std::max(max_sec_wcet, s.wcet);
      }
      pre.record(core::HydraAllocator().allocate(drawn->instance).feasible);
      core::HydraOptions blocked;
      blocked.blocking = max_sec_wcet;
      blocked.non_preemptive_security = true;
      non.record(core::HydraAllocator(blocked).allocate(drawn->instance).feasible);
    }
    acceptance.add_row({io::fmt(u, 2), io::fmt(pre.ratio(), 3), io::fmt(non.ratio(), 3)});
  }
  if (csv) {
    acceptance.print_csv(std::cout);
  } else {
    acceptance.print(std::cout);
  }
  std::cout << "\nReading: the blocking term buys non-preemptable scans at a "
               "modest acceptance/tightness cost that grows with utilization.\n";
  return 0;
}
