// Time-unit conventions shared by the whole library.
//
// Analysis code (response-time analysis, optimization, allocators) works in
// continuous time: `double` milliseconds, matching the units the paper uses
// for task parameters.  The discrete-event simulator works in integer
// microsecond ticks (`SimTime`) so that 500-second schedules accumulate no
// floating-point drift.  This header provides the two vocabularies and the
// (checked) conversions between them.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/contracts.h"

namespace hydra::util {

/// Continuous time in milliseconds (the analysis domain unit).
using Millis = double;

/// Discrete simulator time in integer microseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kTicksPerMilli = 1000;  // 1 tick = 1 microsecond

/// Converts analysis-domain milliseconds to simulator ticks, rounding to the
/// nearest microsecond.  Negative or non-finite inputs are caller errors.
inline SimTime to_ticks(Millis ms) {
  HYDRA_REQUIRE(std::isfinite(ms) && ms >= 0.0, "time must be finite and non-negative");
  const double ticks = std::round(ms * static_cast<double>(kTicksPerMilli));
  HYDRA_REQUIRE(ticks <= static_cast<double>(std::numeric_limits<SimTime>::max()),
                "time too large for simulator clock");
  return static_cast<SimTime>(ticks);
}

/// Converts milliseconds to simulator ticks, rounding UP — for quantities
/// where rounding down would increase demand past what the analysis admitted
/// (e.g. a task period: a longer period only reduces demand).
inline SimTime to_ticks_ceil(Millis ms) {
  HYDRA_REQUIRE(std::isfinite(ms) && ms >= 0.0, "time must be finite and non-negative");
  const double ticks = std::ceil(ms * static_cast<double>(kTicksPerMilli));
  HYDRA_REQUIRE(ticks <= static_cast<double>(std::numeric_limits<SimTime>::max()),
                "time too large for simulator clock");
  return static_cast<SimTime>(ticks);
}

/// Converts simulator ticks back to milliseconds (exact for values below 2^53).
inline Millis to_millis(SimTime ticks) {
  return static_cast<Millis>(ticks) / static_cast<Millis>(kTicksPerMilli);
}

/// Tolerance used when comparing analysis-domain times that passed through
/// algebraic manipulation (periods, response times).  One nanosecond.
inline constexpr double kTimeEpsilon = 1e-6;

/// `a <= b` with the shared time tolerance.
inline bool leq_tol(double a, double b, double tol = kTimeEpsilon) { return a <= b + tol; }

/// Approximate equality with absolute + relative tolerance.
inline bool approx_equal(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

}  // namespace hydra::util
