// Console table and CSV emitters shared by the benches so every figure/table
// reproduction prints in one consistent, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hydra::io {

/// A simple column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with padded columns, a header underline and `indent` leading
  /// spaces per line.
  void print(std::ostream& os, int indent = 0) const;

  /// Renders as RFC-4180 CSV: cells containing commas, quotes, CR or LF are
  /// quoted and embedded quotes doubled, so scheme names like
  /// "hydra/tie=lowest-index" or free-text failure reasons survive intact.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180 quoting for one CSV cell: returned verbatim when safe, otherwise
/// wrapped in double quotes with embedded quotes doubled.
std::string csv_quote(const std::string& cell);

/// Fixed-precision formatting helpers.
std::string fmt(double value, int precision = 3);
std::string fmt_percent(double value, int precision = 2);

/// Prints a `== title ==` style section banner.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hydra::io
