// The pluggable allocation-scheme interface every integration strategy
// implements (HYDRA, SingleCore, Optimal, and any future scheme).
//
// The paper's contribution is the *comparison workflow* — evaluating several
// schemes on the same instance and handing the designer the trade-off table.
// This interface is the seam that workflow plugs into: a scheme exposes its
// name, a human-readable description of its configuration, the two allocate
// entry points, and the validation contract (which schedulability test it
// promises to satisfy, its blocking term, and any priority-order override) so
// `evaluate_scheme` can re-check the result independently.
//
// Schemes are usually constructed by name through core/registry.h; the
// concrete classes remain directly constructible for callers that need
// programmatic option control.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/validation.h"
#include "rt/partition.h"
#include "util/units.h"

namespace hydra::core {

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Registry-style identifier, e.g. "hydra", "hydra/exact-rta",
  /// "single-core".  The registry overrides it with the registered name so a
  /// scheme constructed from a spec string reports that exact spec.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// One-line human-readable summary of the scheme and its configuration.
  virtual std::string describe() const = 0;

  /// Runs the scheme with its own RT-partitioning policy (HYDRA/Optimal:
  /// best-fit over all M cores; SingleCore: RT on M−1 cores).
  virtual Allocation allocate(const Instance& instance) const = 0;

  /// Runs the scheme against an externally supplied RT partition so several
  /// schemes can be compared on identical footing (the Fig.-3 protocol).
  /// Schemes whose placement policy dictates its own partition (SingleCore)
  /// document how they treat the hint.
  virtual Allocation allocate(const Instance& instance,
                              const rt::Partition& rt_partition) const = 0;

  // --- validation contract -------------------------------------------------
  /// The schedulability test this scheme's results satisfy (and hence the one
  /// an independent checker must re-run).
  virtual ScheduleTest schedule_test() const { return ScheduleTest::kLinearBound; }
  /// Per-core non-preemptive blocking term the scheme accounted for.
  virtual util::Millis blocking() const { return 0.0; }
  /// Security priority order the scheme used (absent = ascending Tmax).
  virtual std::optional<std::vector<std::size_t>> priority_order() const {
    return std::nullopt;
  }

  /// Upper bound on the scheme's search effort on `instance` (the exhaustive
  /// optimal returns M^NS; polynomial schemes return 1).  Batch drivers
  /// compare this against their budget to skip pathologically expensive
  /// (instance, scheme) pairs instead of stalling a sweep.
  virtual double search_space(const Instance& instance) const {
    (void)instance;
    return 1.0;
  }

 protected:
  explicit Allocator(std::string default_name) : name_(std::move(default_name)) {}

  /// Shared body for the paper-evaluation convenience overload: best-fit
  /// partitions the RT tasks over all M cores and delegates to
  /// allocate(instance, partition); infeasible when the RT tasks alone cannot
  /// be partitioned.  Schemes whose placement dictates its own partition
  /// shape (SingleCore) implement their overload directly instead.
  Allocation allocate_with_default_partition(const Instance& instance) const;

 private:
  std::string name_;
};

/// One evaluated design point: a scheme's allocation plus the derived
/// tightness metrics and the verdict of the independent validator.
struct DesignPoint {
  std::string scheme;            ///< Allocator::name() at evaluation time
  Allocation allocation;         ///< the scheme's result
  double cumulative_tightness = 0.0;  ///< Σ ω·η (0 when infeasible)
  double normalized_tightness = 0.0;  ///< divided by Σ ω (1.0 = every monitor at Tdes)
  bool validated = false;        ///< passed the independent checker
  std::string validation_problem;
};

/// Evaluates one scheme on one instance: allocates, computes the tightness
/// metrics, and independently re-validates the result under the scheme's own
/// contract.  The second overload pins the RT partition.
DesignPoint evaluate_scheme(const Allocator& scheme, const Instance& instance);
DesignPoint evaluate_scheme(const Allocator& scheme, const Instance& instance,
                            const rt::Partition& rt_partition);

}  // namespace hydra::core
