#include "sim/controller.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contracts.h"

namespace hydra::sim {

void ModeControllerConfig::validate() const {
  const auto in_unit = [](double v) {
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
  };
  HYDRA_REQUIRE(in_unit(tighten_threshold),
                "tighten_threshold must be finite and in [0, 1] (the idle "
                "fraction is a ratio; got " + std::to_string(tighten_threshold) +
                    ", which could never fire)");
  HYDRA_REQUIRE(in_unit(relax_threshold),
                "relax_threshold must be finite and in [0, 1] (got " +
                    std::to_string(relax_threshold) + ")");
  HYDRA_REQUIRE(relax_threshold < tighten_threshold,
                "hysteresis requires relax_threshold < tighten_threshold");
  HYDRA_REQUIRE(switch_budget >= 1,
                "switch_budget must be >= 1 — a zero budget is a controller "
                "that can never act; select the never-switch policy instead");
  HYDRA_REQUIRE(num_levels >= 2, "a mode table needs at least 2 levels");
  HYDRA_REQUIRE(num_levels <= 64, "num_levels > 64 is almost surely a typo");
}

void ControllerPolicy::on_detection(std::size_t task, util::SimTime at) {
  (void)task;
  (void)at;
}

namespace {

/// The incumbent two-point rule, generalized verbatim to a ladder: a task at
/// minimum mode jumps straight to the fastest level when idle reaches the
/// tighten threshold; a task anywhere above minimum falls straight back when
/// idle drops to the relax threshold.  For the 2-level default this is
/// byte-identical to the pre-registry controller.
class HysteresisPolicy : public ControllerPolicy {
 public:
  explicit HysteresisPolicy(const ModeControllerConfig& config, std::string name)
      : name_(std::move(name)), config_(config) {}

  const std::string& name() const override { return name_; }

  std::size_t decide(std::size_t /*task*/, const LevelObservation& obs) override {
    if (obs.current_level > 0) {
      return obs.idle_fraction <= config_.relax_threshold ? 0 : obs.current_level;
    }
    return obs.idle_fraction >= config_.tighten_threshold ? obs.top_level : 0;
  }

 private:
  std::string name_;
  ModeControllerConfig config_;
};

/// The same band, one rung at a time: idle >= tighten steps one level up,
/// idle <= relax steps one level down.  Intermediate levels exist exactly for
/// this policy (and for boost's decay).
class NLevelHysteresisPolicy : public ControllerPolicy {
 public:
  explicit NLevelHysteresisPolicy(const ModeControllerConfig& config, std::string name)
      : name_(std::move(name)), config_(config) {}

  const std::string& name() const override { return name_; }

  std::size_t decide(std::size_t /*task*/, const LevelObservation& obs) override {
    if (obs.current_level < obs.top_level &&
        obs.idle_fraction >= config_.tighten_threshold) {
      return obs.current_level + 1;
    }
    if (obs.current_level > 0 && obs.idle_fraction <= config_.relax_threshold) {
      return obs.current_level - 1;
    }
    return obs.current_level;
  }

 private:
  std::string name_;
  ModeControllerConfig config_;
};

/// Inert baseline: every monitor stays wherever it starts (minimum mode).
/// Job-for-job identical to the static engine on the minimum-mode task list
/// (pinned in test_mode_switch).
class NeverSwitchPolicy : public ControllerPolicy {
 public:
  explicit NeverSwitchPolicy(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::size_t decide(std::size_t /*task*/, const LevelObservation& obs) override {
    return obs.current_level;
  }

 private:
  std::string name_;
};

/// Contego-style attack-triggered boosting: slack-driven behaviour is
/// hysteresis/nlevel, but a detection event pins the affected monitor at its
/// fastest level for `boost_window` ticks (auto: the core's resolved slack
/// window).  After the window expires the monitor decays one level per
/// release boundary until it meets what the slack rule wants.  Boost
/// transitions ride the same dwell/budget machinery as every other switch —
/// denials are counted, never silent.
class BoostPolicy : public ControllerPolicy {
 public:
  BoostPolicy(const ModeControllerConfig& config, const PolicyInit& init,
              std::string name)
      : name_(std::move(name)),
        config_(config),
        boost_window_(config.boost_window > 0 ? config.boost_window
                                              : init.slack_window),
        boost_until_(init.num_tasks, 0) {}

  const std::string& name() const override { return name_; }

  std::size_t decide(std::size_t task, const LevelObservation& obs) override {
    if (obs.now < boost_until_[task]) return obs.top_level;
    std::size_t slack_wants = obs.current_level;
    if (obs.current_level < obs.top_level &&
        obs.idle_fraction >= config_.tighten_threshold) {
      slack_wants = obs.current_level + 1;
    } else if (obs.current_level > 0 &&
               obs.idle_fraction <= config_.relax_threshold) {
      slack_wants = obs.current_level - 1;
    }
    // Decay from an expired boost one rung at a time, but never below what
    // the slack rule would grant anyway.
    if (obs.current_level > slack_wants) return obs.current_level - 1;
    return slack_wants;
  }

  void on_detection(std::size_t task, util::SimTime at) override {
    boost_until_[task] = at + boost_window_;
  }

 private:
  std::string name_;
  ModeControllerConfig config_;
  util::SimTime boost_window_;
  std::vector<util::SimTime> boost_until_;
};

}  // namespace

void ControllerRegistry::add(std::string name, std::string description,
                             Factory factory) {
  HYDRA_REQUIRE(!name.empty(), "controller policy name must be non-empty");
  HYDRA_REQUIRE(find(name) == nullptr,
                "duplicate controller policy name '" + name + "'");
  entries_.push_back(Entry{std::move(name), std::move(description), std::move(factory)});
}

bool ControllerRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const ControllerRegistry::Entry* ControllerRegistry::find(
    const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void ControllerRegistry::require(const std::string& name) const {
  if (find(name) != nullptr) return;
  std::string known;
  for (const auto& entry : entries_) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown controller policy '" + name +
                              "' (registered: " + known + ")");
}

std::unique_ptr<ControllerPolicy> ControllerRegistry::make(
    const std::string& name, const ModeControllerConfig& config,
    const PolicyInit& init) const {
  require(name);
  config.validate();
  return find(name)->factory(config, init);
}

std::vector<std::string> ControllerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

const std::string& ControllerRegistry::description(const std::string& name) const {
  require(name);
  return find(name)->description;
}

ControllerRegistry& ControllerRegistry::global() {
  static ControllerRegistry registry = [] {
    ControllerRegistry r;
    r.add("hysteresis",
          "Incumbent sliding-window rule: jump to the fastest level when idle "
          "reaches tighten_threshold, fall back to minimum mode at "
          "relax_threshold (the default).",
          [](const ModeControllerConfig& config, const PolicyInit&) {
            return std::make_unique<HysteresisPolicy>(config, "hysteresis");
          });
    r.add("hysteresis/nlevel",
          "Same hysteresis band, one mode-table level at a time: tighten one "
          "rung on idle >= tighten_threshold, loosen one rung at "
          "relax_threshold.",
          [](const ModeControllerConfig& config, const PolicyInit&) {
            return std::make_unique<NLevelHysteresisPolicy>(config,
                                                            "hysteresis/nlevel");
          });
    r.add("never-switch",
          "Inert baseline: every monitor stays in minimum mode, job-for-job "
          "identical to the static engine on the minimum-mode task list.",
          [](const ModeControllerConfig&, const PolicyInit&) {
            return std::make_unique<NeverSwitchPolicy>("never-switch");
          });
    r.add("boost",
          "Attack-triggered boosting (Contego): a detection event pins the "
          "affected monitor at its fastest level for boost_window ticks, then "
          "decays level-by-level toward the hysteresis/nlevel target.",
          [](const ModeControllerConfig& config, const PolicyInit& init) {
            return std::make_unique<BoostPolicy>(config, init, "boost");
          });
    return r;
  }();
  return registry;
}

namespace {
thread_local const std::string* g_controller_scope = nullptr;
}  // namespace

ControllerScope::ControllerScope(std::string policy)
    : policy_(std::move(policy)), previous_(g_controller_scope) {
  g_controller_scope = policy_.empty() ? nullptr : &policy_;
}

ControllerScope::~ControllerScope() { g_controller_scope = previous_; }

const std::string* ControllerScope::current() { return g_controller_scope; }

const std::string& resolve_controller_policy(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const std::string* scoped = ControllerScope::current()) return *scoped;
  static const std::string kDefault = kDefaultControllerPolicy;
  return kDefault;
}

std::string controller_catalog_markdown(const ControllerRegistry& registry) {
  std::string out =
      "# Controller policy catalog\n"
      "\n"
      "Generated from `sim::ControllerRegistry::global()` by\n"
      "`bench_table1_catalog --controller-catalog-out docs/controller-catalog.md`\n"
      "— regenerate after registering or re-describing a policy\n"
      "(`test_controller_catalog` fails when this file is stale; "
      "`HYDRA_UPDATE_CATALOG=1 ./build/test_controller_catalog` rewrites it).\n"
      "\n"
      "| policy | description |\n"
      "|---|---|\n";
  for (const auto& name : registry.names()) {
    out += "| `" + name + "` | " + registry.description(name) + " |\n";
  }
  return out;
}

}  // namespace hydra::sim
