// Primal-dual interior-point solver for geometric programs.
//
// Second GP backend alongside the primal barrier (gp/solver.h), in the style
// of filter-line-search IPM codes (Wächter & Biegler; Uno's InteriorPoint,
// MFEM's IPsolver).  It works on the same log-space convex transform
//
//     minimize    F0(y)                      F(y) = log p(e^y)
//     subject to  Fi(y) <= 0,  i = 1..m
//
// but in slack form Fi(y) + s_i = 0, s > 0, solving the perturbed KKT system
//
//     ∇F0(y) + Σ λ_i ∇Fi(y) = 0,   Fi(y) + s_i = 0,   s_i λ_i = μ
//
// with a condensed Newton system (W + JᵀDJ + δI)Δy = rhs, D = diag(λ/s),
// factorized by `linalg::cholesky_factorize` and inertia-corrected by growing
// δ until the factorization succeeds.  Steps obey the fraction-to-boundary
// rule and a (θ, φ) filter line search; μ follows the monotone
// Fiacco-McCormick schedule μ₊ = max(tol/10, min(κ_μ·μ, μ^θ_μ)).
//
// Differences from the barrier backend that the differential tests exercise:
// no phase I (infeasible starts are handled natively through the slacks), a
// certified dual point (SolveResult::kkt_residual is the scaled KKT error),
// and native infeasibility detection via the filter's restoration path.
#pragma once

#include <optional>
#include <vector>

#include "gp/problem.h"
#include "gp/solver.h"

namespace hydra::gp {

struct IpmOptions {
  /// Convergence: scaled KKT error (stationarity, primal feasibility,
  /// complementarity; IPOPT's E_0) at or below this declares kOptimal.
  double tol = 1e-8;
  double mu0 = 1e-1;        ///< initial barrier parameter
  double kappa_mu = 0.2;    ///< linear μ decrease factor
  double theta_mu = 1.5;    ///< superlinear μ decrease exponent
  double kappa_eps = 10.0;  ///< advance μ once E_μ <= kappa_eps · μ
  double tau_min = 0.995;   ///< fraction-to-boundary floor (τ = max(τ_min, 1-μ))
  double gamma_theta = 1e-5;  ///< filter margin on constraint violation
  double gamma_phi = 1e-5;    ///< filter margin on barrier objective
  double eta_phi = 1e-4;      ///< Armijo factor for the φ descent alternative
  int max_iterations = 400;
  int max_backtracks = 30;
  double delta0 = 1e-8;        ///< first inertia-correction shift
  double delta_growth = 10.0;  ///< shift ladder multiplier
  double delta_max = 1e12;     ///< give up (kError) beyond this shift
  /// Mirror of BarrierOptions::unbounded_below: declare kUnbounded when the
  /// log-space objective falls below this.
  double unbounded_below = -1e12;
  /// Declare kUnbounded when an iterate leaves the log-space box |y_i| <= this
  /// (exp would overflow long before the objective reaches unbounded_below).
  double diverged_log = 350.0;
  /// Primal infeasibility (max_i Fi(y)+) above this when progress stalls is
  /// reported as kInfeasible rather than kError.
  double feas_tol = 1e-6;
};

/// Solves the program with the primal-dual filter IPM.  Contract matches
/// GpSolver::solve: throws std::invalid_argument on malformed programs
/// (no variables / no objective / non-positive or mis-sized guess); every
/// non-kOptimal result carries a non-empty diagnostic message.
SolveResult ipm_solve(const GpProblem& problem,
                      const std::optional<std::vector<double>>& initial_guess = std::nullopt,
                      const IpmOptions& options = {});

}  // namespace hydra::gp
