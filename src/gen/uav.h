// The UAV control-system case study (paper §IV-A, after Atdelzater, Atkins &
// Shin [18]): Guidance, Slow/Fast navigation, Controller, Missile control and
// Reconnaissance tasks.
//
// SUBSTITUTION NOTE (DESIGN.md §6): the paper references [18, Tab. 1] without
// reprinting the parameters.  The values here are representative of that
// flight-control workload: rate-monotonic-friendly harmonic-ish periods from
// 50 ms (inner control loop) to 1000 ms (reconnaissance), total utilization
// ≈ 0.6 — a realistic mid-load avionics profile.  Fig. 1's HYDRA-vs-
// SingleCore comparison depends on the RT load only through the slack it
// leaves, which this set preserves.
#pragma once

#include <vector>

#include "core/instance.h"
#include "rt/task.h"

namespace hydra::gen {

/// The six UAV real-time control tasks.
std::vector<rt::RtTask> uav_taskset();

/// Full Fig.-1 case-study instance: UAV RT tasks + the Table-I security
/// catalog on an M-core platform.
core::Instance uav_case_study(std::size_t num_cores);

}  // namespace hydra::gen
