// Fig. 4 (extension): the adaptive-allocation gap — how close the Contego-
// style adaptive scheme, the period-adaptation-only baseline and the
// utilization-aware heuristics come to HYDRA (and, on small instances, the
// exhaustive optimal) as total utilization grows.
//
// One exp::Sweep over the utilization axis, every scheme on every instance;
// the exp::Aggregator reports per-(utilization, scheme) acceptance ratios
// (with binomial 95 % CIs), normalized-tightness distributions (with mean
// CIs), the per-instance tightness gap against the reference scheme joined
// over commonly accepted instances (Fig.-3 protocol, now with CIs), and the
// period-mode counts (best/min/adapted) from exp::period_mode_metrics —
// the quantity that shows HOW MUCH adaptation each family actually performs.
//
// Expected shape: hydra ≥ contego ≥ period-adapt on tightness (placement
// freedom buys more than period freedom alone); the util/* heuristics track
// hydra's acceptance closely at low/medium utilization and fall away at high
// utilization, where tightness-driven placement matters.
//
// Usage: bench_fig4_adaptive_gap [--tasksets 40] [--seed 17] [--cores 2]
//            [--schemes contego,period-adapt,util/worst-fit,hydra,optimal]
//            [--reference optimal] [--utilizations 0.4,0.8,...] [--jobs 1]
//            [--out rows.jsonl] [--resume rows.jsonl] [--shard i/N]
//            [--agg-out cells.jsonl] [--csv]
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/aggregate.h"
#include "exp/metrics.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 40));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const auto cores = static_cast<std::size_t>(cli.get_int("cores", 2));
  const auto scheme_names = cli.get_string_list(
      "schemes", {"contego", "period-adapt", "util/worst-fit", "hydra", "optimal"});
  const bool csv = cli.get_bool("csv", false);

  // Reference for the gap join: --reference, else "optimal" when selected,
  // else the last scheme in the list.
  std::string reference = cli.get_string("reference", "");
  if (reference.empty()) {
    reference = scheme_names.back();
    for (const auto& name : scheme_names) {
      if (name == "optimal") reference = name;
    }
  }

  gen::SyntheticConfig config;
  config.num_cores = cores;
  if (cores == 2) {
    // Keep NS small enough that the exhaustive reference stays inside the
    // sweep budget on most instances (the Fig.-3 convention).
    config.min_sec_per_core = 1;
    config.max_sec_per_core = 3;
  }

  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.replications = tasksets;
  spec.base_seed = seed;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  spec.metrics = hexp::period_mode_metrics();
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  if (shard.count > 1 && cli.has("agg-out")) {
    // A shard sees a fraction of every cell's samples; its aggregate file
    // would be indistinguishable from a full-grid one downstream.
    std::cerr << "--agg-out is not available on a sharded run: merge the shard "
                 "outputs with hydra_merge, then rerun with --resume "
                 "merged.jsonl --agg-out\n";
    return 2;
  }
  const std::string out_path = cli.get_string("out", "");
  if (shard.count > 1 && out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    std::cerr << "--shard needs a JSONL --out (the shard header and "
                 "hydra_merge have no CSV form)\n";
    return 2;
  }
  spec.add_utilization_grid(
      config, cli.get_double_list("utilizations", hexp::utilization_axis(cores)));
  const hexp::Sweep sweep(std::move(spec));

  hexp::AggregateOptions agg_options;
  agg_options.reference_scheme = reference;
  hexp::Aggregator aggregator(agg_options);

  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    // Sharded checkpoints open with a self-describing header so hydra_merge
    // can verify the shard set belongs together and is complete.
    const std::string header =
        shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
    file_sink = hexp::make_file_sink(cli.get_string("out", ""), header);
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Fig. 4: adaptive & period-adaptation families vs " +
                                  reference + " (M = " + std::to_string(cores) + ")");
  std::cout << tasksets << " tasksets per utilization point; reference scheme: "
            << reference << ".\n";
  if (shard.count > 1) {
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << sweep.shard_header().cells
              << " of the grid's cells run here; merge the shard outputs with "
                 "hydra_merge (tables below cover this shard only).\n";
  }

  const auto summary = sweep.run(sinks);
  const auto cells = aggregator.cells();

  io::Table table({"total utilization", "scheme", "acceptance", "accept 95% CI",
                   "tightness mean", "gap vs ref (%)", "gap 95% CI",
                   "mean monitors below Tmax"});
  for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
    const auto& point = sweep.spec().points[p];
    for (const auto& name : scheme_names) {
      const auto* cell = hexp::Aggregator::find(cells, p, name);
      if (cell == nullptr || cell->total == 0) continue;
      std::string gap = "-", gap_ci = "-";
      if (name != reference && cell->gap_samples > 0) {
        gap = io::fmt(cell->gap_mean_percent, 2);
        gap_ci = "[" + io::fmt(cell->gap_ci95_lo_percent, 2) + ", " +
                 io::fmt(cell->gap_ci95_hi_percent, 2) + "]";
      }
      // Monitors the scheme moved off the Tmax floor (best-mode + strictly
      // in-between): how much period freedom the family actually exercised.
      std::string tightened = "-";
      const auto adapted_dist = cell->metrics.find("adapted_tasks");
      const auto best_dist = cell->metrics.find("best_mode_tasks");
      if (adapted_dist != cell->metrics.end() && adapted_dist->second.count > 0 &&
          best_dist != cell->metrics.end()) {
        tightened = io::fmt(adapted_dist->second.mean + best_dist->second.mean, 2);
      }
      table.add_row({io::fmt(point.total_utilization, 3), name,
                     io::fmt(cell->acceptance_ratio, 3),
                     "[" + io::fmt(cell->acceptance_ci95_lo, 3) + ", " +
                         io::fmt(cell->acceptance_ci95_hi, 3) + "]",
                     cell->accepted > 0 ? io::fmt(cell->tightness.mean, 3) : "-", gap,
                     gap_ci, tightened});
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (cli.has("agg-out")) {
    std::ofstream agg(cli.get_string("agg-out", ""));
    aggregator.write_jsonl(agg);
  }
  if (summary.resumed_cells > 0) {
    std::cout << "\nresumed " << summary.resumed_cells << " of " << summary.cells
              << " cells from " << sweep.spec().resume_path << "\n";
  }
  std::cout << "\nShape target: hydra >= contego >= period-adapt on tightness; the "
               "gap to the reference widens with utilization while the below-Tmax "
               "monitor count shows how much period freedom each family exercises.\n";
  return 0;
}
