// Ablation: the security-task priority rule.
//
// The paper prioritizes by ascending Tmax (§II-C).  Plausible alternatives —
// ascending Tdes (rate-monotonic on the desired rate) or descending
// utilization (heaviest monitor first) — are injected through
// HydraOptions::priority_order and compared on acceptance ratio and mean
// normalized cumulative tightness.
//
// Usage: bench_ablation_priority_order [--cores 2] [--tasksets 120]
//                                      [--seed 37] [--csv]
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/hydra.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "rt/priority.h"
#include "sec/tightness.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;
namespace rt = hydra::rt;

namespace {

using OrderRule = std::vector<std::size_t> (*)(const std::vector<rt::SecurityTask>&);

std::vector<std::size_t> by_tmax(const std::vector<rt::SecurityTask>& tasks) {
  return rt::security_priority_order(tasks);  // the paper's rule
}

std::vector<std::size_t> by_tdes(const std::vector<rt::SecurityTask>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period_des < tasks[b].period_des;
  });
  return order;
}

std::vector<std::size_t> by_utilization(const std::vector<rt::SecurityTask>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].max_utilization() > tasks[b].max_utilization();
  });
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 2));
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 120));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 37));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout, "Ablation: security priority rule (M = " + std::to_string(m) + ")");

  const std::vector<std::pair<std::string, OrderRule>> rules{
      {"ascending Tmax (paper)", &by_tmax},
      {"ascending Tdes", &by_tdes},
      {"descending utilization", &by_utilization},
  };

  gen::SyntheticConfig config;
  config.num_cores = m;

  io::Table table({"utilization", "rule", "acceptance", "mean normalized tightness"});
  for (const double phase : {0.5, 0.7, 0.9}) {
    const double u = phase * static_cast<double>(m);
    hydra::util::Xoshiro256 rng(seed);
    std::vector<core::Instance> instances;
    for (int rep = 0; rep < tasksets; ++rep) {
      auto trial_rng = rng.fork();
      if (const auto drawn = gen::generate_filtered_instance(config, u, trial_rng)) {
        instances.push_back(drawn->instance);
      }
    }

    for (const auto& [name, rule] : rules) {
      hydra::stats::AcceptanceCounter counter;
      std::vector<double> tightness;
      for (const auto& inst : instances) {
        core::HydraOptions opts;
        opts.priority_order = rule(inst.security_tasks);
        const auto allocation = core::HydraAllocator(opts).allocate(inst);
        counter.record(allocation.feasible);
        if (allocation.feasible) {
          tightness.push_back(allocation.cumulative_tightness(inst.security_tasks) /
                              hydra::sec::max_cumulative_tightness(inst.security_tasks));
        }
      }
      table.add_row({io::fmt(u, 2), name, io::fmt(counter.ratio(), 3),
                     tightness.empty()
                         ? std::string("-")
                         : io::fmt(hydra::stats::summarize(tightness).mean, 3)});
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading: with Tmax = 10 x Tdes (the synthetic setup) the Tmax and "
               "Tdes rules coincide; utilization-first trades acceptance for "
               "protecting the heavyweight monitors.\n";
  return 0;
}
