#include "core/optimal.h"

#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace hydra::core {

Allocation OptimalAllocator::allocate(const Instance& instance,
                                      const rt::Partition& rt_partition) const {
  instance.validate();
  HYDRA_REQUIRE(rt_partition.num_cores == instance.num_cores,
                "RT partition core count must match the instance");

  const std::size_t ns = instance.security_tasks.size();
  const std::size_t m = instance.num_cores;

  // Guard the M^NS blow-up before enumerating.
  double combos = 1.0;
  for (std::size_t s = 0; s < ns; ++s) combos *= static_cast<double>(m);
  HYDRA_REQUIRE(combos <= static_cast<double>(options_.max_assignments),
                "M^NS exceeds OptimalOptions::max_assignments");

  Allocation best;
  best.rt_partition = rt_partition;
  best.failed_task = ns == 0 ? 0 : std::numeric_limits<std::size_t>::max();
  best.failure_reason = "no assignment admits acceptable periods for every task";
  double best_value = -1.0;

  std::vector<std::size_t> core_of(ns, 0);
  const std::size_t total = static_cast<std::size_t>(combos);
  for (std::size_t code = 0; code < total; ++code) {
    // Decode `code` as a base-M numeral into the assignment vector.
    std::size_t rem = code;
    for (std::size_t s = 0; s < ns; ++s) {
      core_of[s] = rem % m;
      rem /= m;
    }

    const JointPeriodResult joint =
        optimize_joint_periods(instance, rt_partition, core_of, options_.joint);
    if (!joint.feasible) continue;
    if (joint.cumulative_tightness > best_value) {
      best_value = joint.cumulative_tightness;
      best.feasible = true;
      best.failure_reason.clear();
      best.placements.assign(ns, TaskPlacement{});
      for (std::size_t s = 0; s < ns; ++s) {
        best.placements[s] = TaskPlacement{
            core_of[s], joint.periods[s],
            instance.security_tasks[s].period_des / joint.periods[s]};
      }
    }
  }
  if (ns == 0) best.feasible = true;
  return best;
}

Allocation OptimalAllocator::allocate(const Instance& instance) const {
  return allocate_with_default_partition(instance);
}

double OptimalAllocator::search_space(const Instance& instance) const {
  return std::pow(static_cast<double>(instance.num_cores),
                  static_cast<double>(instance.security_tasks.size()));
}

std::string OptimalAllocator::describe() const {
  std::string objective;
  switch (options_.joint.objective) {
    case JointObjective::kSumSurrogate: objective = "sum-surrogate GP"; break;
    case JointObjective::kLogUtility: objective = "log-utility GP"; break;
    case JointObjective::kSignomialScp: objective = "signomial SCP"; break;
  }
  return "exhaustive M^NS assignment search with joint period optimization (" +
         objective + ")";
}

}  // namespace hydra::core
