// Tests for the Eq. (7) subproblem: hand-worked closed-form cases, boundary
// behaviour, and a property sweep proving the GP route agrees with the
// closed form on random instances.
#include <gtest/gtest.h>

#include "core/period_adaptation.h"
#include "rt/interference.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

namespace {

rt::InterferenceBound bound(double const_part, double util_part) {
  rt::InterferenceBound b;
  b.const_part = const_part;
  b.util_part = util_part;
  return b;
}

}  // namespace

TEST(MinFeasiblePeriod, ClosedFormula) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 1000.0);
  // (Cs + A)/(1 − B) = (5 + 10)/(1 − 0.5) = 30.
  const auto t = core::min_feasible_period(task, bound(10.0, 0.5));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 30.0);
}

TEST(MinFeasiblePeriod, SaturatedCoreNullopt) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 1000.0);
  EXPECT_FALSE(core::min_feasible_period(task, bound(1.0, 1.0)).has_value());
  EXPECT_FALSE(core::min_feasible_period(task, bound(1.0, 1.5)).has_value());
}

TEST(AdaptPeriod, IdleCoreGivesDesiredPeriod) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 1000.0);
  const auto r = core::adapt_period(task, bound(0.0, 0.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.period, 100.0);  // η = 1
  EXPECT_DOUBLE_EQ(r.tightness, 1.0);
}

TEST(AdaptPeriod, InterferencePushesPeriodAboveDesired) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 1000.0);
  // Min feasible = (5 + 50)/(1 − 0.6) = 137.5 > Tdes.
  const auto r = core::adapt_period(task, bound(50.0, 0.6));
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.period, 137.5);
  EXPECT_DOUBLE_EQ(r.tightness, 100.0 / 137.5);
}

TEST(AdaptPeriod, InfeasibleWhenMinPeriodExceedsTmax) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 200.0);
  // Min feasible = (5 + 50)/(1 − 0.6) = 137.5 <= 200: feasible.
  EXPECT_TRUE(core::adapt_period(task, bound(50.0, 0.6)).feasible);
  // Min feasible = (5 + 100)/(1 − 0.6) = 262.5 > 200: infeasible.
  EXPECT_FALSE(core::adapt_period(task, bound(100.0, 0.6)).feasible);
}

TEST(AdaptPeriod, ExactlyAtTmaxBoundary) {
  // Choose A so that the minimum feasible period is exactly Tmax.
  const auto task = rt::make_security_task("s", 10.0, 100.0, 400.0);
  // (10 + A)/(1 − 0.5) = 400  →  A = 190.
  const auto r = core::adapt_period(task, bound(190.0, 0.5));
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.period, 400.0, 1e-9);
  EXPECT_NEAR(r.tightness, 0.25, 1e-12);
}

TEST(AdaptPeriod, SaturatedUtilizationInfeasible) {
  const auto task = rt::make_security_task("s", 1.0, 100.0, 10000.0);
  EXPECT_FALSE(core::adapt_period(task, bound(0.0, 1.0)).feasible);
}

TEST(AdaptPeriod, TightnessIsMaximal) {
  // No feasible period smaller than the returned one exists: probing slightly
  // below must violate Eq. (6) or the box.
  const auto task = rt::make_security_task("s", 4.0, 80.0, 800.0);
  const auto b = bound(30.0, 0.4);
  const auto r = core::adapt_period(task, b);
  ASSERT_TRUE(r.feasible);
  const double probe = r.period * (1.0 - 1e-6);
  const bool probe_ok =
      probe >= task.period_des && rt::security_schedulable(task, probe, b);
  if (probe_ok) {
    // Only possible when the box bound Tdes is what stops us.
    EXPECT_NEAR(r.period, task.period_des, 1e-9);
  }
}

TEST(AdaptPeriod, GpRouteMatchesHandCase) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 1000.0);
  const auto r =
      core::adapt_period(task, bound(50.0, 0.6), core::PeriodSolver::kGeometricProgram);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.period, 137.5, 1e-3);
}

TEST(AdaptPeriod, GpRouteDetectsInfeasible) {
  const auto task = rt::make_security_task("s", 5.0, 100.0, 200.0);
  const auto r =
      core::adapt_period(task, bound(100.0, 0.6), core::PeriodSolver::kGeometricProgram);
  EXPECT_FALSE(r.feasible);
}

TEST(AdaptPeriodExact, MatchesResponseTimeDirectly) {
  const auto task = rt::make_security_task("s", 3.0, 50.0, 500.0);
  const std::vector<rt::RtTask> rts{rt::make_rt_task("r", 2.0, 10.0)};
  // Exact response is 6 (< Tdes), so the period clamps to Tdes.
  const auto r = core::adapt_period_exact(task, rts, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.period, 50.0);
  EXPECT_DOUBLE_EQ(r.tightness, 1.0);
}

TEST(AdaptPeriodExact, RejectsViaAggregatedBoundApi) {
  const auto task = rt::make_security_task("s", 3.0, 50.0, 500.0);
  EXPECT_THROW(core::adapt_period(task, bound(0.0, 0.0), core::PeriodSolver::kExactRta),
               std::invalid_argument);
}

TEST(AdaptPeriodExact, NeverWorseThanLinearBound) {
  // The exact route admits whatever the conservative bound admits, with a
  // tighter (or equal) period.
  hydra::util::Xoshiro256 rng(515);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<rt::RtTask> rts;
    const int nr = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < nr; ++i) {
      const double period = rng.uniform(10.0, 200.0);
      rts.push_back(rt::make_rt_task("r" + std::to_string(i),
                                     rng.uniform(0.05, 0.25) * period, period));
    }
    const double t_des = rng.uniform(300.0, 2000.0);
    const auto task =
        rt::make_security_task("s", rng.uniform(0.1, 0.5) * t_des, t_des, 10.0 * t_des);

    const auto linear = core::adapt_period(task, rt::interference_bound(rts, {}));
    const auto exact = core::adapt_period_exact(task, rts, {});
    if (linear.feasible) {
      ASSERT_TRUE(exact.feasible);
      EXPECT_LE(exact.period, linear.period + 1e-6);
      EXPECT_GE(exact.tightness, linear.tightness - 1e-9);
    }
  }
}

TEST(AdaptPeriodExact, AdmitsInstancesTheBoundRejects) {
  // A case where the linear bound over-counts: a heavy RT task with a period
  // far beyond the candidate range inflates the bound's utilization term —
  // (50 + 60)/(1 − 0.06) ≈ 117 > Tmax = 115 — while exact RTA sees a single
  // preemption and fits comfortably (R = 110).
  const std::vector<rt::RtTask> rts{rt::make_rt_task("r", 60.0, 1000.0)};
  const auto tight = rt::make_security_task("s", 50.0, 100.0, 115.0);
  const auto linear = core::adapt_period(tight, rt::interference_bound(rts, {}));
  const auto exact = core::adapt_period_exact(tight, rts, {});
  EXPECT_FALSE(linear.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(exact.period, 110.0);
}

// Property sweep: on random instances, the GP solver and the closed form
// agree on feasibility and (when feasible) on the optimal period.
class ClosedFormVsGp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosedFormVsGp, Agree) {
  hydra::util::Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 25; ++rep) {
    const double t_des = rng.uniform(50.0, 3000.0);
    const double t_max = t_des * rng.uniform(1.5, 10.0);
    const double wcet = t_des * rng.uniform(0.01, 0.5);
    const auto task = rt::make_security_task("s", wcet, t_des, t_max);
    const auto b = bound(rng.uniform(0.0, 500.0), rng.uniform(0.0, 0.95));

    const auto cf = core::adapt_period(task, b, core::PeriodSolver::kClosedForm);
    const auto gp = core::adapt_period(task, b, core::PeriodSolver::kGeometricProgram);

    ASSERT_EQ(cf.feasible, gp.feasible)
        << "feasibility disagrees: Tdes=" << t_des << " Tmax=" << t_max << " C=" << wcet
        << " A=" << b.const_part << " B=" << b.util_part;
    if (cf.feasible) {
      EXPECT_NEAR(cf.period, gp.period, cf.period * 1e-3);
      EXPECT_NEAR(cf.tightness, gp.tightness, 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormVsGp, ::testing::Values(101, 202, 303, 404));
