#include "gp/barrier.h"

#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "util/contracts.h"

namespace hydra::gp {

namespace {

/// Barrier value φ_t(y) with gradient/Hessian; `feasible == false` (and value
/// +inf) when y violates a constraint, so line searches reject such points.
struct BarrierEval {
  double value = std::numeric_limits<double>::infinity();
  linalg::Vector grad;
  linalg::Matrix hess;
  bool feasible = false;
};

/// Value-only barrier evaluation for line searches: no derivative work, no
/// matrix allocations.
BarrierEval eval_barrier_value(const SmoothFn& f0, const std::vector<SmoothFn>& cons, double t,
                               const linalg::Vector& y) {
  BarrierEval out;
  double value = t * f0(y, EvalLevel::kValue).value;
  for (const auto& ci : cons) {
    const double cv = ci(y, EvalLevel::kValue).value;
    if (!(cv < 0.0)) return out;  // infeasible
    value -= std::log(-cv);
  }
  out.value = value;
  out.feasible = true;
  return out;
}

/// Full barrier evaluation for Newton step assembly.
BarrierEval eval_barrier_full(const SmoothFn& f0, const std::vector<SmoothFn>& cons, double t,
                              const linalg::Vector& y) {
  BarrierEval out;
  const std::size_t n = y.size();

  const FnEval e0 = f0(y, EvalLevel::kFull);
  double value = t * e0.value;
  linalg::Vector grad = e0.grad;
  grad *= t;
  linalg::Matrix hess = e0.hess;
  hess *= t;

  for (const auto& ci : cons) {
    const FnEval ei = ci(y, EvalLevel::kFull);
    if (!(ei.value < 0.0)) return out;  // infeasible: value stays +inf
    value -= std::log(-ei.value);
    const double inv = 1.0 / (-ei.value);  // > 0
    for (std::size_t k = 0; k < n; ++k) grad[k] += inv * ei.grad[k];
    // ∇² of −log(−Fi) = (1/Fi²)·g gᵀ + (1/(−Fi))·H.
    hess.add_outer(ei.grad, inv * inv);
    hess.add_scaled(ei.hess, inv);
  }

  out.value = value;
  out.feasible = true;
  out.grad = std::move(grad);
  out.hess = std::move(hess);
  return out;
}

}  // namespace

BarrierResult barrier_minimize(const SmoothFn& f0, const std::vector<SmoothFn>& constraints,
                               const linalg::Vector& y0, const BarrierOptions& opts) {
  HYDRA_REQUIRE(y0.size() > 0, "barrier_minimize: empty start point");
  HYDRA_REQUIRE(eval_barrier_value(f0, constraints, opts.t0, y0).feasible,
                "barrier_minimize: start point is not strictly feasible");

  BarrierResult result;
  result.y = y0;
  double t = opts.t0;
  // One scratch set for the whole solve: every Newton iteration reuses these
  // buffers instead of allocating a fresh Matrix/Vector quartet per step.
  linalg::SpdWorkspace spd_ws;
  linalg::Vector neg_grad;
  linalg::Vector cand;
  const double m = static_cast<double>(constraints.size());
  // With no constraints the inner tolerance IS the final accuracy (there is
  // no outer loop to tighten things); Newton is quadratic near the optimum,
  // so a much smaller tolerance costs only a couple of extra steps.
  const double newton_tol =
      constraints.empty() ? std::fmin(opts.newton_tol, 1e-14) : opts.newton_tol;

  while (true) {
    // --- Inner loop: damped Newton on φ_t. ---
    for (int it = 0; it < opts.max_newton_per_stage; ++it) {
      const BarrierEval cur = eval_barrier_full(f0, constraints, t, result.y);
      HYDRA_ASSERT(cur.feasible, "iterate left the feasible region");

      neg_grad = cur.grad;
      neg_grad *= -1.0;
      const linalg::Vector& step = linalg::solve_spd_into(cur.hess, neg_grad, spd_ws);
      // Newton decrement λ² = gradᵀ H⁻¹ grad = −gradᵀ·step.
      const double decrement = -dot(cur.grad, step);
      if (decrement * 0.5 <= newton_tol) break;

      // Backtracking line search: stay strictly feasible + Armijo decrease.
      double step_len = 1.0;
      bool moved = false;
      cand.assign(result.y.size());
      for (int bt = 0; bt < opts.max_backtracks; ++bt) {
        for (std::size_t i = 0; i < cand.size(); ++i) {
          cand[i] = result.y[i] + step_len * step[i];
        }
        const BarrierEval ce = eval_barrier_value(f0, constraints, t, cand);
        if (ce.feasible &&
            ce.value <= cur.value - opts.armijo_alpha * step_len * decrement) {
          result.y = cand;
          moved = true;
          break;
        }
        step_len *= opts.backtrack_beta;
      }
      ++result.newton_steps;
      if (!moved) break;  // step too small to make progress at this t

      const double obj = f0(result.y, EvalLevel::kValue).value;
      if (obj < opts.unbounded_below) {
        result.status = BarrierStatus::kUnbounded;
        result.objective = obj;
        return result;
      }
    }

    result.objective = f0(result.y, EvalLevel::kValue).value;
    if (m == 0.0 || m / t < opts.duality_gap_tol) {
      result.status = BarrierStatus::kOptimal;
      return result;
    }
    if (result.newton_steps >= 20 * opts.max_newton_per_stage) {
      result.status = BarrierStatus::kMaxIterations;
      return result;
    }
    t *= opts.mu;
  }
}

}  // namespace hydra::gp
