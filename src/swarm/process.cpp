#include "swarm/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace hydra::swarm {

std::string ExitStatus::describe() const {
  if (signaled) return "killed by signal " + std::to_string(value);
  if (value == 0) return "exited cleanly";
  return "exited with code " + std::to_string(value);
}

namespace {

/// In the child, routes `path` onto `target_fd`; failures must not throw
/// (we are post-fork), so they _exit with a distinctive code.
void redirect_or_die(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0 || ::dup2(fd, target_fd) < 0) _exit(126);
  // If target_fd was closed at fork time, open() may hand us target_fd
  // itself; closing it then would undo the redirect we just set up.
  if (fd != target_fd) ::close(fd);
}

}  // namespace

LocalProcessBackend::~LocalProcessBackend() {
  // Never leave orphans: anything still running when the backend dies is
  // killed and reaped (best effort — the destructor cannot report).
  for (const auto& [id, pid] : running_) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

WorkerId LocalProcessBackend::start(const WorkerSpec& spec) {
  if (spec.argv.empty()) throw std::runtime_error("worker spec has an empty argv");

  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const auto& arg : spec.argv) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    redirect_or_die(spec.stdout_path, STDOUT_FILENO);
    redirect_or_die(spec.stderr_path, STDERR_FILENO);
    ::execvp(argv[0], argv.data());
    // exec failed; 127 is the shell's "command not found" convention.
    _exit(127);
  }
  const WorkerId id = next_id_++;
  running_[id] = static_cast<int>(pid);
  return id;
}

std::optional<ExitStatus> LocalProcessBackend::poll(WorkerId id) {
  const auto done = reaped_.find(id);
  if (done != reaped_.end()) return done->second;
  const auto it = running_.find(id);
  if (it == running_.end()) throw std::runtime_error("poll of unknown worker id");

  int status = 0;
  const pid_t r = ::waitpid(it->second, &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  ExitStatus exit;
  if (r < 0) {
    // ECHILD etc. — the child vanished outside our control; report it as a
    // signal death so the supervisor treats it as a crash, loudly.
    exit.signaled = true;
    exit.value = SIGKILL;
  } else if (WIFSIGNALED(status)) {
    exit.signaled = true;
    exit.value = WTERMSIG(status);
  } else {
    exit.value = WIFEXITED(status) ? WEXITSTATUS(status) : 125;
  }
  running_.erase(it);
  reaped_[id] = exit;
  return exit;
}

void LocalProcessBackend::stop(WorkerId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return;  // already dead or reaped — stop is idempotent
  ::kill(it->second, SIGKILL);
}

}  // namespace hydra::swarm
