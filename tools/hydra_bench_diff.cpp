// hydra_bench_diff: compare two google-benchmark JSON result files by
// benchmark name and print per-benchmark deltas of real_time (and
// items_per_second where reported).
//
//     bench_micro --benchmark_format=json --benchmark_out=now.json
//     hydra_bench_diff BENCH_baseline.json now.json
//
// Options:
//   --markdown        emit a GitHub-flavored table (for $GITHUB_STEP_SUMMARY)
//   --fail-over PCT   exit 4 if any benchmark's real_time regressed by more
//                     than PCT percent, or its items_per_second dropped by
//                     more than PCT percent (absent = report only, exit 0)
//
// Exit codes: 0 compared (no enforced regression), 4 regression over the
// --fail-over threshold, 1 unreadable inputs, 2 usage.
//
// All comparison/gate semantics live in io/bench_diff.h (unit tested); this
// file is argument plumbing only.
#include <iostream>

#include "io/bench_diff.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  try {
    const hydra::util::CliParser cli(argc, argv, /*allow_positionals=*/true,
                                     /*value_less_flags=*/{"markdown"});
    if (cli.positionals().size() != 2) {
      std::cerr << "usage: " << cli.program()
                << " [--markdown] [--fail-over PCT] baseline.json current.json\n";
      return 2;
    }
    const bool markdown = cli.get_bool("markdown", false);
    const double fail_over = cli.get_double("fail-over", -1.0);

    const auto baseline = hydra::io::load_bench_results(cli.positionals()[0]);
    const auto current = hydra::io::load_bench_results(cli.positionals()[1]);
    const auto deltas = hydra::io::diff_bench_results(baseline, current);

    std::cout << (markdown ? hydra::io::render_bench_diff_markdown(deltas)
                           : hydra::io::render_bench_diff_text(deltas));

    const auto violations = hydra::io::bench_gate_violations(deltas, fail_over);
    if (!violations.empty()) {
      std::cerr << "hydra_bench_diff: " << violations.size()
                << " benchmark(s) regressed more than " << fail_over << "%:\n";
      for (const auto& violation : violations) {
        std::cerr << "  " << violation << "\n";
      }
      return 4;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "hydra_bench_diff: " << error.what() << "\n";
    return 1;
  }
}
