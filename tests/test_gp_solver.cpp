// Tests for the GP interior-point solver against problems with known
// analytic optima, plus infeasibility/unboundedness detection and KKT-style
// optimality probes.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/problem.h"
#include "gp/solver.h"
#include "util/rng.h"

namespace gp = hydra::gp;

namespace {

gp::SolveResult solve(const gp::GpProblem& p,
                      std::optional<std::vector<double>> guess = std::nullopt) {
  return gp::GpSolver().solve(p, guess);
}

}  // namespace

TEST(GpSolver, MinimizeVariableWithLowerBound) {
  // min x s.t. x >= 3  →  x* = 3.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_bounds(x, 3.0, 100.0);
  const auto r = solve(p);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
  EXPECT_NEAR(r.objective, 3.0, 1e-5);
}

TEST(GpSolver, ClassicXPlusInverseX) {
  // min x + 1/x over x > 0  →  x* = 1, objective 2.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  gp::Posynomial obj = p.posynomial();
  obj += p.monomial(1.0).with(x, 1.0);
  obj += p.monomial(1.0).with(x, -1.0);
  p.set_objective(obj);
  const auto r = solve(p, std::vector<double>{5.0});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
}

TEST(GpSolver, WeightedGeometricTradeoff) {
  // min a/x + b·x  →  x* = sqrt(a/b), f* = 2·sqrt(ab).
  const double a = 8.0, b = 2.0;
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  gp::Posynomial obj = p.posynomial();
  obj += p.monomial(a).with(x, -1.0);
  obj += p.monomial(b).with(x, 1.0);
  p.set_objective(obj);
  const auto r = solve(p, std::vector<double>{1.0});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);
}

TEST(GpSolver, TwoVariableVolumeProblem) {
  // Classic box design: min x·y subject to x·y⁻¹ = aspect bounded, area floor:
  //   min x·y  s.t.  4/(x·y) <= 1 (x·y >= 4),  x/y <= 2,  y/x <= 2.
  // Optimum: x·y = 4 (any point on the hyperbola within aspect bounds).
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  const auto y = p.add_variable("y");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0).with(y, 1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(4.0).with(x, -1.0).with(y, -1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(0.5).with(x, 1.0).with(y, -1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(0.5).with(y, 1.0).with(x, -1.0)));
  const auto r = solve(p, std::vector<double>{3.0, 3.0});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0] * r.x[1], 4.0, 1e-4);
  EXPECT_LE(r.x[0] / r.x[1], 2.0 + 1e-6);
  EXPECT_LE(r.x[1] / r.x[0], 2.0 + 1e-6);
}

TEST(GpSolver, PosynomialConstraintActiveAtOptimum) {
  // min 1/(x·y) s.t. x + y <= 1: symmetric, x* = y* = 1/2, f* = 4.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  const auto y = p.add_variable("y");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, -1.0).with(y, -1.0)));
  gp::Posynomial c = p.posynomial();
  c += p.monomial(1.0).with(x, 1.0);
  c += p.monomial(1.0).with(y, 1.0);
  p.add_constraint_leq1(c);
  const auto r = solve(p, std::vector<double>{0.25, 0.25});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
  EXPECT_NEAR(r.x[1], 0.5, 1e-4);
  EXPECT_NEAR(r.objective, 4.0, 1e-3);
}

TEST(GpSolver, InfeasibleBoxDetected) {
  // x >= 5 and x <= 2 cannot hold.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(5.0).with(x, -1.0)));  // x >= 5
  p.add_constraint_leq1(gp::Posynomial(p.monomial(0.5).with(x, 1.0)));   // x <= 2
  const auto r = solve(p);
  EXPECT_EQ(r.status, gp::SolveStatus::kInfeasible);
}

TEST(GpSolver, InfeasibleCoupledConstraintsDetected) {
  // x·y >= 10 and x <= 1, y <= 1.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  const auto y = p.add_variable("y");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(10.0).with(x, -1.0).with(y, -1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0).with(y, 1.0)));
  const auto r = solve(p);
  EXPECT_EQ(r.status, gp::SolveStatus::kInfeasible);
}

TEST(GpSolver, UnboundedObjectiveDetected) {
  // min 1/x with no constraints: inf is 0, attained at x → ∞ (log-space
  // unbounded below).
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, -1.0)));
  const auto r = solve(p);
  // Either flagged unbounded or driven to a tiny objective — both acceptable;
  // never "optimal at a sizable value".
  if (r.status == gp::SolveStatus::kOptimal) {
    EXPECT_LT(r.objective, 1e-6);
  } else {
    EXPECT_EQ(r.status, gp::SolveStatus::kUnbounded);
  }
}

TEST(GpSolver, PhaseOneFindsInteriorFromInfeasibleGuess) {
  // Feasible region: 10 <= x <= 12; guess starts far outside.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_bounds(x, 10.0, 12.0);
  const auto r = solve(p, std::vector<double>{0.001});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(r.x[0], 10.0, 1e-4);
}

TEST(GpSolver, SolutionIsFeasibleAndBetterThanRandomFeasiblePoints) {
  // Randomized sanity: optimum must beat random feasible points.
  hydra::util::Xoshiro256 rng(4242);
  for (int rep = 0; rep < 8; ++rep) {
    gp::GpProblem p;
    const auto x = p.add_variable("x");
    const auto y = p.add_variable("y");
    const double cx = rng.uniform(0.5, 3.0);
    const double cy = rng.uniform(0.5, 3.0);
    gp::Posynomial obj = p.posynomial();
    obj += p.monomial(cx).with(x, 1.0).with(y, -1.0);
    obj += p.monomial(cy).with(y, 1.0);
    obj += p.monomial(1.0).with(x, -1.0);
    p.set_objective(obj);
    p.add_bounds(x, 0.1, 10.0);
    p.add_bounds(y, 0.1, 10.0);

    const auto r = solve(p, std::vector<double>{1.0, 1.0});
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_TRUE(p.is_feasible(r.x, 1e-6));
    for (int probe = 0; probe < 50; ++probe) {
      const std::vector<double> pt{rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)};
      EXPECT_LE(r.objective, p.objective().eval(pt) + 1e-6);
    }
  }
}

TEST(GpSolver, MatchesAnalyticSolutionOnConstrainedFamily) {
  // min x s.t. a/x + u <= 1 with u < 1  →  x* = a/(1−u).  (This is exactly the
  // paper's Eq. (6) shape — the subproblem HYDRA solves per core.)
  hydra::util::Xoshiro256 rng(31337);
  for (int rep = 0; rep < 20; ++rep) {
    const double a = rng.uniform(0.5, 50.0);
    const double u = rng.uniform(0.0, 0.9);
    gp::GpProblem p;
    const auto x = p.add_variable("x");
    p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
    gp::Posynomial c = p.posynomial();
    c += p.monomial(a).with(x, -1.0);
    if (u > 0.0) c += p.monomial(u);
    p.add_constraint_leq1(c);
    const double expected = a / (1.0 - u);
    const auto r = solve(p, std::vector<double>{expected * 10.0});
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_NEAR(r.x[0], expected, expected * 1e-4);
  }
}

TEST(GpSolver, BoydBoxDesignProblem) {
  // Boyd et al. tutorial §2.3 shape: maximize box volume h·w·d subject to a
  // wall-area limit 2(hw + hd) <= Awall and floor-area limit wd <= Aflr with
  // aspect bounds.  Stated as a GP: minimize (hwd)^-1.
  const double a_wall = 200.0, a_flr = 50.0;
  gp::GpProblem p;
  const auto h = p.add_variable("h");
  const auto w = p.add_variable("w");
  const auto d = p.add_variable("d");
  p.set_objective(
      gp::Posynomial(p.monomial(1.0).with(h, -1.0).with(w, -1.0).with(d, -1.0)));
  gp::Posynomial wall = p.posynomial();
  wall += p.monomial(2.0 / a_wall).with(h, 1.0).with(w, 1.0);
  wall += p.monomial(2.0 / a_wall).with(h, 1.0).with(d, 1.0);
  p.add_constraint_leq1(wall);
  p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0 / a_flr).with(w, 1.0).with(d, 1.0)));
  // Generous aspect-ratio box bounds keep the problem bounded.
  p.add_bounds(h, 0.1, 100.0);
  p.add_bounds(w, 0.1, 100.0);
  p.add_bounds(d, 0.1, 100.0);

  const auto r = gp::GpSolver().solve(p, std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_TRUE(r.ok()) << r.message;
  // Analytic optimum (tutorial): V* = (Awall/4)·sqrt(Aflr) when the wall and
  // floor constraints are both active with w = d... wait — check numerically:
  // both constraints active, symmetric in w,d only through the floor. KKT
  // gives w·d = Aflr and 2h(w + d) = Awall, volume = h·w·d maximized when
  // w = d = sqrt(Aflr): h = Awall/(4·sqrt(Aflr)), V = Awall·sqrt(Aflr)/4.
  const double wd = std::sqrt(a_flr);
  const double h_star = a_wall / (4.0 * wd);
  const double v_star = h_star * a_flr;
  EXPECT_NEAR(r.x[1], wd, wd * 1e-3);
  EXPECT_NEAR(r.x[2], wd, wd * 1e-3);
  EXPECT_NEAR(r.x[0], h_star, h_star * 1e-3);
  EXPECT_NEAR(r.x[0] * r.x[1] * r.x[2], v_star, v_star * 1e-3);
}

TEST(GpSolver, ActiveConstraintsAreTightAtOptimum) {
  // For the box problem the wall and floor constraints must both be active —
  // a complementary-slackness style optimality probe.
  const double a_wall = 200.0, a_flr = 50.0;
  gp::GpProblem p;
  const auto h = p.add_variable("h");
  const auto w = p.add_variable("w");
  const auto d = p.add_variable("d");
  p.set_objective(
      gp::Posynomial(p.monomial(1.0).with(h, -1.0).with(w, -1.0).with(d, -1.0)));
  gp::Posynomial wall = p.posynomial();
  wall += p.monomial(2.0 / a_wall).with(h, 1.0).with(w, 1.0);
  wall += p.monomial(2.0 / a_wall).with(h, 1.0).with(d, 1.0);
  p.add_constraint_leq1(wall);
  p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0 / a_flr).with(w, 1.0).with(d, 1.0)));
  const auto r = gp::GpSolver().solve(p, std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_NEAR(p.constraints()[0].eval(r.x), 1.0, 1e-4);
  EXPECT_NEAR(p.constraints()[1].eval(r.x), 1.0, 1e-4);
}

TEST(GpSolver, RejectsMalformedPrograms) {
  gp::GpProblem p;
  EXPECT_THROW(solve(p), std::invalid_argument);  // no variables / objective
  const auto x = p.add_variable("x");
  (void)x;
  EXPECT_THROW(solve(p), std::invalid_argument);  // still no objective
}

TEST(GpProblem, IsFeasibleChecksAllConstraints) {
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_bounds(x, 1.0, 2.0);
  EXPECT_TRUE(p.is_feasible({1.5}));
  EXPECT_FALSE(p.is_feasible({0.5}));
  EXPECT_FALSE(p.is_feasible({2.5}));
  EXPECT_FALSE(p.is_feasible({-1.0}));
}

TEST(GpSolver, UnboundedWithConstraintCarriesDiagnostic) {
  // min 1/x with x >= 1: infimum 0 at x → ∞, log-space unbounded below.  The
  // lone constraint is satisfied along the whole escape ray, so this is the
  // deterministic unbounded verdict (unlike the unconstrained variant above,
  // which may legitimately stop at a tiny objective).
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0).with(x, -1.0)));  // x >= 1
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, -1.0)));
  const auto r = solve(p);
  EXPECT_EQ(r.status, gp::SolveStatus::kUnbounded);
  EXPECT_FALSE(r.message.empty());
}

TEST(GpSolver, Phase1MarginDecidesBothSidesOfTheBoundary) {
  // The box [2.0, 2.2] has interior width log(1.1) ≈ 0.095 in log space, so
  // phase I can push the violation slack to roughly −0.048.  The margin is the
  // dial that decides the verdict: the default (1e-9) certifies feasibility,
  // while a margin beyond the reachable slack must flip the SAME program to
  // kInfeasible — with the margin spelled out in the diagnostic.
  const auto make_box = [] {
    gp::GpProblem p;
    const auto x = p.add_variable("x");
    p.add_bounds(x, 2.0, 2.2);
    p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
    return p;
  };

  const auto feasible = gp::GpSolver().solve(make_box());
  ASSERT_TRUE(feasible.ok()) << feasible.message;
  EXPECT_NEAR(feasible.x[0], 2.0, 1e-4);

  gp::SolveOptions strict;
  strict.phase1_margin = 1.0;  // unreachable: no point sits e^1 deep inside
  const auto rejected = gp::GpSolver(strict).solve(make_box());
  EXPECT_EQ(rejected.status, gp::SolveStatus::kInfeasible);
  EXPECT_NE(rejected.message.find("margin"), std::string::npos) << rejected.message;
}

TEST(GpSolver, DegenerateTinyboxReportsInfeasibleWithDiagnostic) {
  // Width 2e-10 around 2.0: the deepest interior point clears the constraints
  // by less than the default phase-I margin, so the primal barrier gives up
  // with a diagnosed kInfeasible.  (The primal-dual IPM backend solves this
  // instance — that rescue lives in test_gp_differential.)
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.add_bounds(x, 2.0, 2.0 + 2e-10);
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  const auto r = solve(p);
  EXPECT_EQ(r.status, gp::SolveStatus::kInfeasible);
  EXPECT_NE(r.message.find("phase I"), std::string::npos) << r.message;
}

TEST(GpSolver, EveryNonOptimalExitCarriesAMessage) {
  // The SolveResult contract: message is ALWAYS non-empty off the happy path.
  // Drive the two deterministic failure verdicts and assert it.
  {
    gp::GpProblem p;  // infeasible: x >= 5 and x <= 2
    const auto x = p.add_variable("x");
    p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
    p.add_constraint_leq1(gp::Posynomial(p.monomial(5.0).with(x, -1.0)));
    p.add_constraint_leq1(gp::Posynomial(p.monomial(0.5).with(x, 1.0)));
    const auto r = solve(p);
    ASSERT_EQ(r.status, gp::SolveStatus::kInfeasible);
    EXPECT_FALSE(r.message.empty());
  }
  {
    gp::GpProblem p;  // unbounded: min 1/x, x >= 1
    const auto x = p.add_variable("x");
    p.add_constraint_leq1(gp::Posynomial(p.monomial(1.0).with(x, -1.0)));
    p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, -1.0)));
    const auto r = solve(p);
    ASSERT_EQ(r.status, gp::SolveStatus::kUnbounded);
    EXPECT_FALSE(r.message.empty());
  }
}

TEST(GpSolver, RejectsBadInitialGuesses) {
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.set_objective(gp::Posynomial(p.monomial(1.0).with(x, 1.0)));
  p.add_bounds(x, 1.0, 2.0);
  // Wrong dimension.
  EXPECT_THROW(solve(p, std::vector<double>{1.0, 1.0}), std::invalid_argument);
  // Non-positive entries are outside the GP domain.
  EXPECT_THROW(solve(p, std::vector<double>{0.0}), std::invalid_argument);
  EXPECT_THROW(solve(p, std::vector<double>{-3.0}), std::invalid_argument);
}

TEST(GpProblem, VariablesMustPrecedeConstraints) {
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.add_bounds(x, 1.0, 2.0);
  EXPECT_THROW(p.add_variable("y"), std::invalid_argument);
}
