// Edge-case tests for stats::percentile — the boundaries where off-by-one
// interpolation bugs live: n = 1, n = 2, even-n medians, p = 0 / p = 1, and
// consistency between the sorting and pre-sorted entry points.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/summary.h"

namespace stats = hydra::stats;

TEST(Percentile, SingleSampleReturnsItForEveryLevel) {
  for (const double p : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(stats::percentile({42.0}, p), 42.0) << "p=" << p;
  }
}

TEST(Percentile, TwoSamplesInterpolateLinearly) {
  const std::vector<double> samples = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 0.5), 15.0);  // even-n median
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 0.25), 12.5);
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 1.0), 20.0);
}

TEST(Percentile, EvenCountMedianAveragesTheMiddlePair) {
  // n = 4: h = 0.5·3 = 1.5 ⇒ halfway between the 2nd and 3rd order statistic.
  EXPECT_DOUBLE_EQ(stats::percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, 0.5), 3.5);
}

TEST(Percentile, OddCountMedianIsTheMiddleSample) {
  EXPECT_DOUBLE_EQ(stats::percentile({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(stats::percentile({5.0, 1.0, 9.0, 7.0, 3.0}, 0.5), 5.0);
}

TEST(Percentile, ExtremesHitTheExtremeSamplesExactly) {
  // The off-by-one this pins down: ranks span p·(n−1), not p·n, so p = 1
  // lands ON the maximum instead of one past it.
  const std::vector<double> samples = {3.0, 1.0, 4.0, 1.5, 9.0};
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 1.0), 9.0);
}

TEST(Percentile, UnsortedInputIsSortedInternally) {
  EXPECT_DOUBLE_EQ(stats::percentile({30.0, 10.0, 20.0, 40.0}, 0.75), 32.5);
}

TEST(Percentile, QuarterPointsInterpolateBetweenRanks) {
  // n = 4, p = 0.25: h = 0.75 ⇒ 10 + 0.75·(20 − 10).
  EXPECT_DOUBLE_EQ(stats::percentile({10.0, 20.0, 30.0, 40.0}, 0.25), 17.5);
  // n = 5, p = 0.95: h = 3.8 ⇒ 40 + 0.8·(50 − 40).
  EXPECT_DOUBLE_EQ(stats::percentile({10.0, 20.0, 30.0, 40.0, 50.0}, 0.95), 48.0);
}

TEST(Percentile, RejectsEmptyInputAndOutOfRangeLevels) {
  EXPECT_THROW(stats::percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1.0}, -0.01), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1.0}, 1.01), std::invalid_argument);
}

TEST(Percentile, SortedEntryPointMatchesTheSortingOne) {
  const std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(stats::percentile_sorted(sorted, p), stats::percentile(sorted, p))
        << "p=" << p;
  }
}

TEST(Percentile, DuplicateHeavySamplesStayWithinRange) {
  const std::vector<double> samples = {5.0, 5.0, 5.0, 5.0, 7.0};
  for (const double p : {0.0, 0.5, 0.8, 1.0}) {
    const double v = stats::percentile(samples, p);
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 7.0);
  }
  EXPECT_DOUBLE_EQ(stats::percentile(samples, 0.5), 5.0);
}
