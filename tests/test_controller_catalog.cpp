// Keeps docs/controller-catalog.md in sync with
// sim::ControllerRegistry::global().
//
// The committed catalog is generated (bench_table1_catalog
// --controller-catalog-out); this suite fails whenever the registry gains,
// loses, or re-describes a policy without the doc being regenerated.  After
// an intentional registry change:
//
//     HYDRA_UPDATE_CATALOG=1 ./build/test_controller_catalog
//
// rewrites the file in place (review the diff like any other code change).
// Also covers registry mechanics: name stamping, unknown-name diagnostics,
// config validation at make(), and the scope/resolution rules mirrored from
// gp::GpBackendScope.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/controller.h"

namespace sim = hydra::sim;

namespace {

const std::string kCatalogPath =
    std::string(HYDRA_SOURCE_DIR) + "/docs/controller-catalog.md";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(ControllerCatalog, RegistryShipsTheDocumentedPolicies) {
  const auto& registry = sim::ControllerRegistry::global();
  EXPECT_TRUE(registry.contains("hysteresis"));
  EXPECT_TRUE(registry.contains("hysteresis/nlevel"));
  EXPECT_TRUE(registry.contains("never-switch"));
  EXPECT_TRUE(registry.contains("boost"));
  EXPECT_TRUE(registry.contains(sim::kDefaultControllerPolicy));
  EXPECT_FALSE(registry.contains("no-such-policy"));
  EXPECT_THROW(registry.require("no-such-policy"), std::invalid_argument);
}

TEST(ControllerCatalog, EveryPolicyStampsItsRegisteredName) {
  const auto& registry = sim::ControllerRegistry::global();
  const sim::ModeControllerConfig config;
  const sim::PolicyInit init{4, 1000};
  for (const auto& name : registry.names()) {
    EXPECT_EQ(registry.make(name, config, init)->name(), name);
  }
}

TEST(ControllerCatalog, MakeValidatesTheConfig) {
  const auto& registry = sim::ControllerRegistry::global();
  sim::ModeControllerConfig bad;
  bad.tighten_threshold = 2.0;  // the idle fraction is a ratio — can never fire
  EXPECT_THROW(registry.make("hysteresis", bad, sim::PolicyInit{1, 1}),
               std::invalid_argument);
  bad = {};
  bad.relax_threshold = -0.25;
  EXPECT_THROW(registry.make("boost", bad, sim::PolicyInit{1, 1}),
               std::invalid_argument);
}

TEST(ControllerCatalog, ScopeResolvesLikeGpBackendScope) {
  // explicit > innermost scope > default; "" re-selects the default.
  EXPECT_EQ(sim::resolve_controller_policy(""), sim::kDefaultControllerPolicy);
  EXPECT_EQ(sim::resolve_controller_policy("boost"), "boost");
  {
    const sim::ControllerScope outer("never-switch");
    EXPECT_EQ(sim::resolve_controller_policy(""), "never-switch");
    EXPECT_EQ(sim::resolve_controller_policy("boost"), "boost");
    {
      const sim::ControllerScope inner("hysteresis/nlevel");
      EXPECT_EQ(sim::resolve_controller_policy(""), "hysteresis/nlevel");
    }
    EXPECT_EQ(sim::resolve_controller_policy(""), "never-switch");
    {
      const sim::ControllerScope blank("");
      EXPECT_EQ(sim::resolve_controller_policy(""), sim::kDefaultControllerPolicy);
    }
  }
  EXPECT_EQ(sim::resolve_controller_policy(""), sim::kDefaultControllerPolicy);
}

TEST(ControllerCatalog, MarkdownContainsEveryRegisteredPolicy) {
  const auto& registry = sim::ControllerRegistry::global();
  const std::string markdown = sim::controller_catalog_markdown(registry);
  for (const auto& name : registry.names()) {
    EXPECT_NE(markdown.find("| `" + name + "` |"), std::string::npos) << name;
    EXPECT_NE(markdown.find(registry.description(name)), std::string::npos) << name;
  }
  EXPECT_NE(markdown.find("# Controller policy catalog"), std::string::npos);
}

TEST(ControllerCatalog, CommittedDocMatchesTheLiveRegistry) {
  const std::string expected =
      sim::controller_catalog_markdown(sim::ControllerRegistry::global());

  if (std::getenv("HYDRA_UPDATE_CATALOG") != nullptr) {
    std::ofstream out(kCatalogPath);
    out << expected;
    GTEST_SKIP() << "controller catalog regenerated at " << kCatalogPath;
  }

  const std::string committed = read_file(kCatalogPath);
  ASSERT_FALSE(committed.empty())
      << "missing " << kCatalogPath
      << " — generate it with ./build/bench_table1_catalog "
         "--controller-catalog-out docs/controller-catalog.md";
  EXPECT_EQ(committed, expected)
      << "docs/controller-catalog.md is out of sync with "
         "sim::ControllerRegistry::global(); regenerate with "
         "HYDRA_UPDATE_CATALOG=1 ./build/test_controller_catalog or "
         "./build/bench_table1_catalog --controller-catalog-out "
         "docs/controller-catalog.md";
}
