// Fig. 1 reproduction: empirical CDF of intrusion detection time, HYDRA vs
// SingleCore, on the UAV case study with the Table-I security catalog, for
// M ∈ {2, 4, 8} cores.  Also prints the paper's headline number: the average
// detection-time improvement per core count (paper: 19.81 %, 27.23 %,
// 29.75 % for 2/4/8 cores — shape target: HYDRA faster, improvement grows
// with M).
//
// Runs on exp::Sweep: one preset-instance point per core count, with the
// attack simulation attached as a RowMetric — so allocation, validation and
// simulation of every (core count, scheme) cell ride the sweep's work
// queue (--jobs parallelizes them), the mean detection time lands in the
// aggregated cells, and --out captures the rows like any other sweep.
//
// A second RowMetric (exp::global_detection_metric) measures the same
// attacks under global slack scheduling (paper §V: security jobs migrate to
// any idle core), so the optimistic migration bound appears alongside each
// scheme's partitioned detection latency.
//
// Any two registered schemes can be compared: the first name in --schemes is
// the candidate, the second the baseline (defaults reproduce the paper).
//
// Usage: bench_fig1_detection [--cores 2,4,8] [--schemes hydra,single-core]
//                             [--trials 500] [--horizon-s 500] [--seed 1]
//                             [--cdf-points 11] [--jobs 1] [--out rows.jsonl]
//                             [--resume rows.jsonl] [--shard i/N] [--csv]
//
// --shard i/N runs the i-th of N disjoint cell subsets (see exp/sweep.h);
// shard outputs carry a self-describing header and are reunited with
// hydra_merge (or orchestrated end to end by hydra_swarm sweep).  The CDF
// tables need the raw detection samples, which only exist for cells
// simulated in THIS process — resumed or foreign-shard cells print their
// aggregate row but skip the per-sample tables.
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/allocator.h"
#include "exp/aggregate.h"
#include "exp/metrics.h"
#include "exp/sweep.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "stats/ecdf.h"
#include "stats/ks.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace hexp = hydra::exp;
namespace sim = hydra::sim;
namespace io = hydra::io;

namespace {

constexpr const char* kMetricName = "mean_detection_ms";
constexpr const char* kGlobalMetricName = "global_mean_detection_ms";

/// Full detection-time sample vectors per (point label, scheme), filled by
/// the RowMetric hook from whichever worker thread evaluates the cell — the
/// CDF/KS reporting needs the raw distribution, not just the aggregated mean.
struct SampleCache {
  std::mutex mutex;
  std::map<std::pair<std::string, std::string>, std::vector<double>> samples;
};

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 500));
  const auto horizon_s = static_cast<std::uint64_t>(cli.get_int("horizon-s", 500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto cdf_points = static_cast<std::size_t>(cli.get_int("cdf-points", 26));
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,baseline)\n";
    return 2;
  }

  sim::DetectionConfig config;
  config.horizon = horizon_s * 1000u * hydra::util::kTicksPerMilli;
  config.trials = trials;
  config.seed = seed;

  SampleCache cache;
  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  const std::string out_path = cli.get_string("out", "");
  if (shard.count > 1 && out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    std::cerr << "--shard needs a JSONL --out (the shard header and "
                 "hydra_merge have no CSV form)\n";
    return 2;
  }
  for (const auto m : cores) {
    hexp::SweepPoint point;
    point.instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    point.label = "m=" + std::to_string(m);
    spec.points.push_back(std::move(point));
  }
  // The simulation rides the sweep as a metric: it only ever sees validated
  // allocations, runs on the worker that owns the cell, and its mean lands
  // in the aggregated cells.  Seeded by config alone ⇒ deterministic.
  spec.metrics.push_back({kMetricName, [&](const core::Instance& instance,
                                           const core::DesignPoint& point) {
    const auto res = sim::measure_detection_times(instance, point.allocation, config);
    if (res.deadline_misses != 0) {
      throw std::runtime_error(point.scheme + ": simulation missed deadlines");
    }
    const double mean = hydra::stats::summarize(res.detection_ms).mean;
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.samples[{"m=" + std::to_string(instance.num_cores), point.scheme}] =
        res.detection_ms;
    return mean;
  }, hexp::detection_metric_identity(config)});
  // The §V migration bound rides the same queue: identical periods, but
  // security jobs may use any core's idle slack.
  spec.metrics.push_back(hexp::global_detection_metric(config, kGlobalMetricName));
  const hexp::Sweep sweep(std::move(spec));

  hexp::Aggregator aggregator;
  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    // Sharded checkpoints open with a self-describing header so hydra_merge
    // can verify the shard set belongs together and is complete.
    const std::string header =
        shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
    file_sink = hexp::make_file_sink(cli.get_string("out", ""), header);
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Fig. 1: empirical CDF of intrusion detection time (" +
                                  scheme_names[0] + " vs " + scheme_names[1] + ")");
  std::cout << "UAV control system + Table-I security tasks; " << horizon_s
            << " s schedules; " << trials << " attack trials per scheme.\n";
  if (shard.count > 1) {
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << sweep.shard_header().cells
              << " of the grid's cells run here; merge the shard outputs with "
                 "hydra_merge (tables below cover this shard only).\n";
  }

  sweep.run(sinks);
  const auto cells = aggregator.cells();

  io::Table summary({"cores", "mean " + scheme_names[0] + " (ms)",
                     "mean " + scheme_names[1] + " (ms)", "detection improvement",
                     "global-slack " + scheme_names[0] + " (ms)"});

  for (const auto m : cores) {
    const std::string label = "m=" + std::to_string(m);
    const auto* cand_cell = hexp::Aggregator::find(cells, label, scheme_names[0]);
    const auto* base_cell = hexp::Aggregator::find(cells, label, scheme_names[1]);
    if (cand_cell == nullptr || base_cell == nullptr || cand_cell->accepted == 0 ||
        base_cell->accepted == 0) {
      std::cout << "M = " << m << ": allocation infeasible or simulation failed\n";
      continue;
    }
    // Raw samples exist only for cells simulated in THIS process: a resumed
    // cell (or one owned by a sibling shard) contributes its aggregate row
    // but has nothing for the per-sample tables, so those are skipped.
    const auto cand_samples_it = cache.samples.find({label, scheme_names[0]});
    const auto base_samples_it = cache.samples.find({label, scheme_names[1]});
    const bool have_samples = cand_samples_it != cache.samples.end() &&
                              base_samples_it != cache.samples.end();
    io::print_banner(std::cout, "M = " + std::to_string(m) + " cores");
    if (!have_samples) {
      std::cout << "detection samples not simulated locally (resumed or "
                   "foreign-shard cell); CDF and distribution stats skipped\n";
    }
    const double axis_ms = 50000.0;  // the paper's 0–50 s CDF axis
    if (have_samples) {
      const auto& cand_ms = cand_samples_it->second;
      const auto& base_ms = base_samples_it->second;
      const hydra::stats::EmpiricalCdf cand_cdf(cand_ms);
      const hydra::stats::EmpiricalCdf base_cdf(base_ms);
      io::Table cdf({"detection time (ms)", "F_" + scheme_names[0],
                     "F_" + scheme_names[1]});
      for (const auto& [x, f] : cand_cdf.series(axis_ms, cdf_points)) {
        cdf.add_row({io::fmt(x, 0), io::fmt(f, 3), io::fmt(base_cdf(x), 3)});
      }
      if (csv) {
        cdf.print_csv(std::cout);
      } else {
        cdf.print(std::cout);
      }
    }

    // Average improvement in detection time (faster = positive) straight off
    // the aggregated metric, with the dominance check and distribution
    // distance the curves only suggest.
    // Read metrics defensively: a cell whose accepted rows somehow lack a
    // metric (e.g. a future partial-failure mode) prints "-" instead of
    // aborting the whole figure.
    const auto metric_mean = [](const hexp::CellStats& cell,
                                const char* name) -> std::optional<double> {
      const auto it = cell.metrics.find(name);
      if (it == cell.metrics.end() || it->second.count == 0) return std::nullopt;
      return it->second.mean;
    };
    const auto cand_mean = metric_mean(*cand_cell, kMetricName);
    const auto base_mean = metric_mean(*base_cell, kMetricName);
    const auto cand_global = metric_mean(*cand_cell, kGlobalMetricName);
    const auto base_global = metric_mean(*base_cell, kGlobalMetricName);
    if (!cand_mean.has_value() || !base_mean.has_value()) {
      std::cout << "M = " << m << ": detection metric missing from the cells\n";
      continue;
    }
    const double improvement = (*base_mean - *cand_mean) / *base_mean * 100.0;
    const auto fmt_opt = [](const std::optional<double>& v) {
      return v.has_value() ? io::fmt(*v, 1) : std::string("-");
    };
    summary.add_row({std::to_string(m), io::fmt(*cand_mean, 1), io::fmt(*base_mean, 1),
                     io::fmt_percent(improvement, 2), fmt_opt(cand_global)});
    std::cout << "global-slack migration bound (same periods, any idle core): "
              << scheme_names[0] << " " << fmt_opt(cand_global) << " ms, "
              << scheme_names[1] << " " << fmt_opt(base_global) << " ms\n";

    if (have_samples) {
      const auto& cand_ms = cand_samples_it->second;
      const auto& base_ms = base_samples_it->second;
      const hydra::stats::EmpiricalCdf cand_cdf(cand_ms);
      const hydra::stats::EmpiricalCdf base_cdf(base_ms);
      const auto cand_ci = hydra::stats::mean_ci95(cand_ms);
      const auto base_ci = hydra::stats::mean_ci95(base_ms);
      std::cout << "mean detection 95% CI: " << scheme_names[0] << " ["
                << io::fmt(cand_ci.lo, 0) << ", " << io::fmt(cand_ci.hi, 0) << "] ms, "
                << scheme_names[1] << " [" << io::fmt(base_ci.lo, 0) << ", "
                << io::fmt(base_ci.hi, 0) << "] ms; p95 "
                << io::fmt(hydra::stats::percentile(cand_ms, 0.95), 0) << " vs "
                << io::fmt(hydra::stats::percentile(base_ms, 0.95), 0)
                << " ms; KS distance "
                << io::fmt(hydra::stats::ks_statistic(cand_cdf, base_cdf), 3) << "; "
                << scheme_names[0] << " stochastically dominates: "
                << (hydra::stats::dominates(cand_cdf, base_cdf, 0.02) ? "yes" : "no") << "\n";
    }
  }

  io::print_banner(std::cout,
                   "Average detection-time improvement (paper: 19.81% / 27.23% / 29.75%)");
  if (csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout);
  }
  std::cout << "\nShape target: " << scheme_names[0] << "'s CDF dominates "
            << scheme_names[1]
            << "'s, the improvement grows with the core count, and the "
               "global-slack bound is never slower than the partitioned mean.\n";
  return 0;
}
