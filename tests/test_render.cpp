// Tests for segment recording, Gantt rendering and CSV trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.h"
#include "sim/render.h"

namespace sim = hydra::sim;
using hydra::util::SimTime;

namespace {

sim::SimTask make(const std::string& name, SimTime wcet, SimTime period, std::size_t core,
                  int priority) {
  sim::SimTask t;
  t.name = name;
  t.wcet = wcet;
  t.period = period;
  t.deadline = period;
  t.core = core;
  t.priority = priority;
  return t;
}

}  // namespace

TEST(Segments, RecordedOnlyWhenRequested) {
  const auto task = make("a", 10, 100, 0, 0);
  sim::SimOptions opts;
  opts.horizon = 500;
  EXPECT_TRUE(sim::simulate({task}, opts).segments.empty());
  opts.record_segments = true;
  const auto trace = sim::simulate({task}, opts);
  ASSERT_EQ(trace.segments.size(), 5u);  // 5 jobs, no preemption
  for (const auto& seg : trace.segments) {
    EXPECT_EQ(seg.task, 0u);
    EXPECT_EQ(seg.core, 0u);
    EXPECT_EQ(seg.to - seg.from, 10u);
  }
}

TEST(Segments, PreemptionSplitsSegments) {
  const auto hi = make("hi", 20, 50, 0, 0);
  const auto lo = make("lo", 40, 100, 0, 1);
  sim::SimOptions opts;
  opts.horizon = 100;
  opts.record_segments = true;
  const auto trace = sim::simulate({hi, lo}, opts);
  // lo runs [20,50) and [70,80): two segments.
  int lo_segments = 0;
  SimTime lo_exec = 0;
  for (const auto& seg : trace.segments) {
    if (seg.task == 1) {
      ++lo_segments;
      lo_exec += seg.to - seg.from;
    }
  }
  EXPECT_EQ(lo_segments, 2);
  EXPECT_EQ(lo_exec, 40u);
}

TEST(Segments, CoverExactlyTheBusyTime) {
  const auto a = make("a", 13, 70, 0, 0);
  const auto b = make("b", 29, 110, 0, 1);
  sim::SimOptions opts;
  opts.horizon = 5000;
  opts.record_segments = true;
  const auto trace = sim::simulate({a, b}, opts);
  SimTime covered = 0;
  for (const auto& seg : trace.segments) {
    EXPECT_LT(seg.from, seg.to);
    covered += seg.to - seg.from;
  }
  EXPECT_EQ(covered, trace.core_busy[0]);
}

TEST(Gantt, RendersRowsPerCoreWithLegend) {
  const auto a = make("alpha", 50, 100, 0, 0);
  const auto b = make("beta", 100, 200, 1, 0);
  sim::SimOptions opts;
  opts.horizon = 400;
  opts.record_segments = true;
  const auto trace = sim::simulate({a, b}, opts);
  const auto text = sim::render_gantt(trace, {a, b}, {0, 400, 40});
  EXPECT_NE(text.find("core 0"), std::string::npos);
  EXPECT_NE(text.find("core 1"), std::string::npos);
  EXPECT_NE(text.find("a=alpha"), std::string::npos);
  EXPECT_NE(text.find("b=beta"), std::string::npos);
  // Core 0 is 50% utilized: both 'a' and idle columns must appear.
  const auto row0 = text.substr(text.find("core 0"));
  EXPECT_NE(row0.find('a'), std::string::npos);
  EXPECT_NE(row0.find('.'), std::string::npos);
}

TEST(Gantt, RequiresSegmentsAndSaneWindow) {
  const auto a = make("a", 10, 100, 0, 0);
  sim::SimOptions opts;
  opts.horizon = 200;
  const auto no_segments = sim::simulate({a}, opts);
  EXPECT_THROW(sim::render_gantt(no_segments, {a}), std::invalid_argument);
  opts.record_segments = true;
  const auto trace = sim::simulate({a}, opts);
  EXPECT_THROW(sim::render_gantt(trace, {a}, {100, 100, 50}), std::invalid_argument);
  EXPECT_THROW(sim::render_gantt(trace, {a}, {0, 200, 4}), std::invalid_argument);
}

TEST(TraceCsv, SegmentsAndJobsExport) {
  const auto a = make("a", 10, 100, 0, 0);
  sim::SimOptions opts;
  opts.horizon = 300;
  opts.record_segments = true;
  const auto trace = sim::simulate({a}, opts);

  std::ostringstream seg;
  sim::write_segments_csv(trace, {a}, seg);
  EXPECT_NE(seg.str().find("task,name,core,from_us,to_us"), std::string::npos);
  EXPECT_NE(seg.str().find("0,a,0,0,10"), std::string::npos);

  std::ostringstream jobs;
  sim::write_jobs_csv(trace, {a}, jobs);
  EXPECT_NE(jobs.str().find("deadline_missed"), std::string::npos);
  EXPECT_NE(jobs.str().find("0,a,0,0,0,10,1,0"), std::string::npos);
  // Three releases → header plus three rows.
  int lines = 0;
  std::string line;
  std::istringstream stream(jobs.str());
  while (std::getline(stream, line)) ++lines;
  EXPECT_EQ(lines, 4);
}
