// hydra_merge: union per-shard sweep checkpoints back into the single JSONL
// stream a one-process run would have written (see exp/merge.h for the
// contract: order-insensitive, idempotent, loud on conflicts, torn trailing
// lines discarded).
//
// Typical fan-out, three processes then one merge:
//
//     bench_fig2_acceptance --shard 0/3 --out s0.jsonl   # machine 0
//     bench_fig2_acceptance --shard 1/3 --out s1.jsonl   # machine 1
//     bench_fig2_acceptance --shard 2/3 --out s2.jsonl   # machine 2
//     hydra_merge --out merged.jsonl s0.jsonl s1.jsonl s2.jsonl
//
// merged.jsonl is byte-identical to the unsharded run's --out and doubles as
// a complete --resume checkpoint (e.g. to re-print tables without
// recomputing anything).
//
// Usage: hydra_merge [--out merged.jsonl] [--allow-partial] [--check]
//                    [--expect-fingerprint HEX] shard0.jsonl shard1.jsonl ...
//
//   --out                 write here instead of stdout
//   --allow-partial       union whatever is present instead of requiring a
//                         complete shard set (the result is then only a
//                         --resume checkpoint, not the full stream)
//   --check               consistency/progress probe: merge in memory, print
//                         one status line, write NOTHING (implies
//                         --allow-partial) — the cheap form a watcher loop
//                         polls between merges
//   --expect-fingerprint  additionally pin the shards' spec fingerprint
//
// Exit codes (the scriptable contract orchestrators and CI poll on):
//   0  complete — the merged stream provably reconstructs the full grid
//   3  partial but consistent — no conflicts, but cells/shards are missing
//      (only reachable with --allow-partial or --check; a bare run throws)
//   1  inconsistent or unreadable inputs (conflicting duplicates, foreign
//      fingerprints, corrupt lines, missing files)
//   2  usage error
#include <fstream>
#include <iostream>

#include "exp/merge.h"
#include "util/cli.h"

namespace hexp = hydra::exp;

int main(int argc, char** argv) {
  try {
    const hydra::util::CliParser cli(argc, argv, /*allow_positionals=*/true,
                                     /*value_less_flags=*/{"allow-partial", "check"});
    const auto& shards = cli.positionals();
    if (shards.empty()) {
      std::cerr << "usage: " << cli.program()
                << " [--out merged.jsonl] [--allow-partial] [--check]"
                   " [--expect-fingerprint HEX] shard0.jsonl shard1.jsonl ...\n";
      return 2;
    }
    const bool check = cli.get_bool("check", false);
    if (check && cli.has("out")) {
      std::cerr << "hydra_merge: --check writes nothing; drop --out or --check\n";
      return 2;
    }

    hexp::MergeOptions options;
    options.require_complete = !check && !cli.get_bool("allow-partial", false);
    options.expect_fingerprint = cli.get_string("expect-fingerprint", "");
    const auto merged = hexp::merge_checkpoints(shards, options);

    if (check) {
      // One greppable status line on stdout; the exit code carries the same
      // verdict for scripts that do not parse.
      std::cout << (merged.complete ? "complete" : "partial") << " cells="
                << merged.cells.size() << " rows=" << merged.rows;
      if (merged.header.has_value()) {
        std::cout << " shards=" << merged.header->shards << " fingerprint="
                  << merged.header->fingerprint;
      }
      std::cout << "\n";
      if (!merged.complete) std::cerr << "hydra_merge: " << merged.incomplete_reason << "\n";
      return merged.complete ? 0 : 3;
    }

    if (cli.has("out")) {
      const auto path = cli.get_string("out", "");
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "hydra_merge: cannot open output file: " << path << "\n";
        return 1;
      }
      hexp::write_merged(merged, out);
    } else {
      hexp::write_merged(merged, std::cout);
    }

    // Provenance summary on stderr, so stdout stays a clean JSONL stream.
    std::cerr << "merged " << merged.cells.size() << " cells (" << merged.rows
              << " rows) from " << merged.shard_files << " shard file(s)";
    if (merged.header.has_value()) {
      std::cerr << ", spec fingerprint " << merged.header->fingerprint << ", "
                << merged.header->shards << " shard(s) declared";
    }
    if (merged.duplicate_rows > 0) {
      std::cerr << "; coalesced " << merged.duplicate_rows << " duplicate row(s)";
    }
    if (merged.torn_lines > 0) {
      std::cerr << "; discarded " << merged.torn_lines << " torn trailing line(s)";
    }
    if (!merged.complete) {
      std::cerr << "; PARTIAL: " << merged.incomplete_reason;
    }
    std::cerr << "\n";
    return merged.complete ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "hydra_merge: " << error.what() << "\n";
    return 1;
  }
}
