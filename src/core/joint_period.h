// Joint period optimization for a *fixed* security-task-to-core assignment
// (paper appendix; used by the Optimal comparator of §IV-B.2).
//
// For assignment X, the variables are the periods Ts of all security tasks.
// Dividing Eq. (6) by Ts turns each schedulability constraint into the
// posynomial
//
//     (Cs + A_s)·Ts⁻¹ + B_s + Σ_{h ∈ hpS(s) on same core} C_h·T_h⁻¹  ≤ 1
//
// where A_s/B_s aggregate the core's RT tasks (+ all hp security WCETs in
// A_s... see implementation) — note the coupling term C_h/T_h linking each
// task to its higher-priority neighbours.
//
// The paper's literal objective (maximize Σ ωs·Tdes_s/Ts) is signomial, not
// GP (DESIGN.md §5), so three documented objectives are offered:
//
//   kSumSurrogate — minimize Σ (ωs/Tdes_s)·Ts (posynomial ⇒ rigorous GP)
//   kLogUtility   — maximize Σ ωs·log ηs  ⇔  minimize Π Ts^{ωs}
//                   (monomial objective ⇒ rigorous GP)
//   kSignomialScp — the literal objective via iterated monomial condensation
//                   (gp::maximize_posynomial_scp), multi-start
//
// All three return periods that are feasible for Eq. (4) + (6); they differ
// only in which feasible point they prefer.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "gp/problem.h"
#include "rt/partition.h"

namespace hydra::core {

enum class JointObjective {
  kSumSurrogate,
  kLogUtility,
  kSignomialScp,
};

struct JointPeriodOptions {
  JointObjective objective = JointObjective::kSignomialScp;
  util::Millis blocking = 0.0;
  /// GP solver backend (gp::SolverRegistry name) for every solve this
  /// optimization runs — the direct GP objectives and the SCP inner loops.
  /// "" resolves through the innermost gp::GpBackendScope, then the default.
  std::string gp_backend;
};

struct JointPeriodResult {
  bool feasible = false;
  std::vector<util::Millis> periods;  ///< parallel to security task vector
  double cumulative_tightness = 0.0;  ///< Σ ωs·Tdes_s/Ts at the result
};

/// Optimizes all security periods for the fixed `core_of` assignment
/// (core_of[s] = core of security task s) against the given RT partition.
/// Feasibility is decided exactly: the constraint set is jointly loosest at
/// Ts = Tmax for all s, so the assignment is feasible iff that corner
/// satisfies every constraint.
JointPeriodResult optimize_joint_periods(const Instance& instance,
                                         const rt::Partition& rt_partition,
                                         const std::vector<std::size_t>& core_of,
                                         const JointPeriodOptions& options = {});

/// The joint-period GP for the fixed assignment as a standalone problem:
/// period bounds + per-task schedulability posynomials, with the rigorous
/// sum-surrogate objective Σ (ωs/Tdes_s)·Ts.  This is exactly the inner
/// convex program optimize_joint_periods builds; exposed so the differential
/// solver tests can cross-check every registered backend on the real GP
/// instances the corpus workloads induce.
gp::GpProblem make_joint_period_gp(const Instance& instance, const rt::Partition& rt_partition,
                                   const std::vector<std::size_t>& core_of,
                                   const JointPeriodOptions& options = {});

}  // namespace hydra::core
