#include "core/mode_table.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/units.h"

namespace hydra::core {

bool ModeTable::has_headroom(std::size_t s) const {
  HYDRA_REQUIRE(s < modes.size(), "mode-table index out of range");
  return modes[s].adapted_period < modes[s].min_period - util::kTimeEpsilon;
}

std::size_t ModeTable::switchable_tasks() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < modes.size(); ++s) {
    if (has_headroom(s)) ++n;
  }
  return n;
}

ModeTable build_mode_table(const Instance& instance, const Allocation& allocation,
                           std::size_t num_levels) {
  HYDRA_REQUIRE(allocation.feasible, "mode table requires a feasible allocation");
  HYDRA_REQUIRE(allocation.placements.size() == instance.security_tasks.size(),
                "allocation does not cover the security task set");
  HYDRA_REQUIRE(num_levels >= 2, "a mode table needs at least 2 levels");
  HYDRA_REQUIRE(num_levels <= 64, "num_levels > 64 is almost surely a typo");

  ModeTable table;
  table.modes.reserve(instance.security_tasks.size());
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& task = instance.security_tasks[s];
    const auto& place = allocation.placements[s];
    HYDRA_REQUIRE(place.core < instance.num_cores,
                  "security task '" + task.name + "' placed on nonexistent core");
    HYDRA_REQUIRE(util::leq_tol(task.period_des, place.period) &&
                      util::leq_tol(place.period, task.period_max),
                  "security task '" + task.name + "' committed outside [Tdes, Tmax]");
    SecurityMode mode;
    mode.core = place.core;
    mode.min_period = task.period_max;
    // Clamp away the validator tolerance so the invariant holds exactly.
    mode.adapted_period = std::min(place.period, task.period_max);
    if (mode.adapted_period < mode.min_period - util::kTimeEpsilon) {
      // Geometric ladder: equal period ratios between adjacent rungs, with
      // the endpoints pinned EXACTLY to the committed modes (no pow() noise
      // on the anchors the analysis certified).
      const double ratio = mode.adapted_period / mode.min_period;
      mode.levels.reserve(num_levels);
      mode.levels.push_back(mode.min_period);
      for (std::size_t k = 1; k + 1 < num_levels; ++k) {
        const double frac =
            static_cast<double>(k) / static_cast<double>(num_levels - 1);
        mode.levels.push_back(mode.min_period * std::pow(ratio, frac));
      }
      mode.levels.push_back(mode.adapted_period);
    } else {
      // No headroom: the ladder collapses to the single always-on mode.
      mode.levels.push_back(mode.min_period);
    }
    table.modes.push_back(mode);
  }
  return table;
}

Allocation min_mode_allocation(const Instance& instance, const Allocation& allocation) {
  HYDRA_REQUIRE(allocation.feasible, "minimum mode requires a feasible allocation");
  HYDRA_REQUIRE(allocation.placements.size() == instance.security_tasks.size(),
                "allocation does not cover the security task set");
  Allocation min_mode = allocation;
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    min_mode.placements[s].period = instance.security_tasks[s].period_max;
    min_mode.placements[s].tightness = instance.security_tasks[s].min_tightness();
  }
  return min_mode;
}

}  // namespace hydra::core
