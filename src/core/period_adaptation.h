// The per-(task, core) period-adaptation subproblem (paper Eq. 7):
//
//     max  ηs = Tdes_s/Ts
//     s.t. Tdes_s ≤ Ts ≤ Tmax_s,   Cs + I(Ts) ≤ Ts
//
// for a *fixed* core and fixed higher-priority security periods, where
// I(Ts) = A + B·Ts is the affine Eq. (5) bound.  Since η is strictly
// decreasing in Ts, the optimum is the smallest feasible period.
//
// Two interchangeable solution routes are provided:
//
//   kClosedForm — the affine constraint yields T* = (Cs + A)/(1 − B) when
//                 B < 1, so the answer is clamp(T*, Tdes, Tmax) directly.
//   kGeometricProgram — the paper's route: a one-variable GP (minimize the
//                 monomial Ts subject to posynomial constraints), solved with
//                 the interior-point machinery in src/gp.  Exists to mirror
//                 the publication faithfully and to cross-validate the
//                 closed form; results agree to solver tolerance (tested).
#pragma once

#include <optional>

#include "core/instance.h"
#include "rt/interference.h"
#include "rt/task.h"
#include "util/units.h"

namespace hydra::core {

enum class PeriodSolver {
  kClosedForm,
  kGeometricProgram,
  /// Exact response-time analysis instead of the paper's linear Eq. (5)
  /// bound.  Admits tighter periods (the bound is conservative); requires the
  /// full interferer lists, so it is served by adapt_period_exact and, in the
  /// allocators, selected via their options.  An ablation bench quantifies
  /// the conservatism.
  kExactRta,
};

struct PeriodAdaptation {
  bool feasible = false;
  util::Millis period = 0.0;  ///< optimal Ts when feasible
  double tightness = 0.0;     ///< Tdes/Ts when feasible
};

/// Solves Eq. (7) for `task` against the interference bound of a candidate
/// core.  Never throws on infeasibility — that is a normal outcome.
/// PeriodSolver::kExactRta is not servable from an aggregated bound and is
/// rejected here — use adapt_period_exact.
PeriodAdaptation adapt_period(const rt::SecurityTask& task, const rt::InterferenceBound& bound,
                              PeriodSolver solver = PeriodSolver::kClosedForm);

/// Eq. (7) with exact response-time analysis in place of the linear bound.
/// The response time R of the lowest-priority-band task does not depend on
/// its own period, so the optimum is simply clamp(R, Tdes, Tmax) — feasible
/// iff R ≤ Tmax.  `interferer_sums`, when given, must equal
/// interference_bound(rt_on_core, hp_security, blocking); allocators maintain
/// it incrementally so the per-probe RTA preamble is O(1) (see
/// rt::security_response_time).
PeriodAdaptation adapt_period_exact(const rt::SecurityTask& task,
                                    const std::vector<rt::RtTask>& rt_on_core,
                                    const std::vector<rt::PlacedSecurityTask>& hp_security,
                                    util::Millis blocking = 0.0,
                                    const rt::InterferenceBound* interferer_sums = nullptr);

/// The smallest period satisfying Cs + A + B·Ts ≤ Ts, ignoring the
/// [Tdes, Tmax] box: (Cs + A)/(1 − B).  nullopt when B ≥ 1 (interferers
/// saturate the core).  Exposed for tests and for the joint optimizer's
/// start-point construction.
std::optional<util::Millis> min_feasible_period(const rt::SecurityTask& task,
                                                const rt::InterferenceBound& bound);

/// One security task already assigned to a core, with its currently committed
/// period, as seen by the slack-aware tightening pass below.
struct CommittedSecurityTask {
  rt::SecurityTask task;
  util::Millis period = 0.0;  ///< committed period, in [Tdes, Tmax]
};

/// Slack-aware opportunistic tightening of the committed periods on ONE core
/// (the adaptive-allocation move shared by the Contego-style and
/// period-adaptation-only schemes).
///
/// `tasks` must be in descending priority order with periods that are
/// feasible for Eq. (6) against `rt_on_core` and each other.  Each round
/// visits the tasks highest-priority first and shrinks each period toward
/// Tdes as far as BOTH constraints allow:
///
///   * the task's own Eq. (7) optimum given the (already tightened)
///     higher-priority periods, and
///   * a closed-form lower bound keeping every lower-priority task feasible
///     at its CURRENT period — tightening τi to Ti inflates each lp task j's
///     interference by (1 + Tj/Ti)·Ci, so Ti ≥ Ci·Tj/(Tj − aj − Ci) where aj
///     is j's demand from everything except τi.
///
/// Periods therefore never loosen, the set stays feasible by construction
/// after every single commit, and extra `rounds` only tighten further
/// (monotone in rounds — tested).  Returns the number of periods changed.
std::size_t tighten_core_periods(const std::vector<rt::RtTask>& rt_on_core,
                                 std::vector<CommittedSecurityTask>& tasks,
                                 util::Millis blocking = 0.0, std::size_t rounds = 1,
                                 PeriodSolver solver = PeriodSolver::kClosedForm);

/// Allocation-level wrapper shared by the adaptive allocators: runs
/// tighten_core_periods over the security tasks listed in `members`
/// (descending priority order, all on the same core), reading the committed
/// periods from `placements` and writing the tightened periods and
/// tightnesses back.
void tighten_core_placements(const std::vector<rt::RtTask>& rt_on_core,
                             const std::vector<std::size_t>& members,
                             const std::vector<rt::SecurityTask>& security_tasks,
                             std::vector<TaskPlacement>& placements,
                             std::size_t rounds = 1,
                             PeriodSolver solver = PeriodSolver::kClosedForm);

}  // namespace hydra::core
