// Cell-neighbor SCP warm starts for exp::Sweep.
//
// Adjacent sweep cells (same platform, neighboring utilization points) solve
// near-identical signomial period programs, so a cell's converged period
// vector is an excellent extra start point for its grid neighbor.  The sweep
// cannot simply hand one worker's live result to another, though: whether a
// neighbor has finished depends on --jobs and the work-stealing order, and
// the byte-identical-output guarantee forbids any such dependence.
//
// Instead, each cell's warm seed is a PURE FUNCTION of the sweep spec: the
// canonical converged period vector of the neighboring cell, computed
// standalone (materialize the neighbor's instance from its deterministic
// seed, fix the cheap first-fit period-adapt assignment, solve the joint
// signomial program cold).  A process-wide mutex-guarded memo keyed by the
// full cell input identity — the instance's text round-trip, the same
// pattern as the PR-4 adaptive-metrics memo — makes the lookup cheap after
// the first use; because the value is a pure function of the key, racing
// first writers cannot disagree, and the memo can only skip work, never
// change a value.  Rows therefore stay byte-identical for any --jobs,
// sharding, resume splice, or work-stealing order.
#pragma once

#include <optional>
#include <vector>

#include "exp/batch.h"

namespace hydra::exp {

/// The canonical converged period vector of one cell: materialize
/// (spec, item), take the first-fit period-adapt assignment, and solve the
/// joint kSignomialScp period program cold (shadowing any installed
/// warm-start scope, so the memo never re-enters itself).  nullopt when the
/// cell has no instance or the canonical assignment/solve is infeasible.
/// Thread-safe; memoized process-wide.
std::optional<std::vector<double>> sweep_warm_periods(const BatchSpec& spec,
                                                      const BatchItem& item);

}  // namespace hydra::exp
