// Runtime mode-switching simulation (the Contego adaptive story executed,
// not just allocated — arXiv:1705.00138 §runtime, arXiv:1911.11937).
//
// The partitioned engine (sim/engine.h) replays ONE frozen period vector.
// This layer executes a *policy*: every security task carries the committed
// period ladder of its core::ModeTable entry — level 0 is the minimum mode
// (Tmax), the top level is the adapted mode (the allocator's tightened
// period), and any intermediate levels are the table's geometric rungs — and
// a per-core controller policy (sim/controller.h) moves each task along that
// ladder at job boundaries:
//
//   * The controller observes the core's idle slack over a sliding window
//     ending at the decision instant and returns the level it wants the task
//     at; which rule turns observations into levels is a registered
//     ControllerPolicy selected by ModeControllerConfig::policy (default:
//     the incumbent `hysteresis` two-point rule).
//   * Decisions happen ONLY at that task's release boundaries (a job in
//     flight never changes rate), are rate-limited per task by `min_dwell`
//     ticks between committed switches, and stop for good once the task's
//     `switch_budget` is exhausted.  Denied decisions are never silent: they
//     are counted per task in ModeStats::denied_dwell / denied_budget.
//   * Every task starts in minimum mode — the conservative always-feasible
//     baseline — and tightens only on observed slack (or, for the `boost`
//     policy, on a delivered detection event).
//   * Injected attacks (ModeSwitchOptions::attack_times) are delivered as
//     detection events: when a switchable monitor completes the first fresh
//     scan released after an attack instant, the engine calls the policy's
//     on_detection hook (a no-op for every policy except `boost`) and counts
//     it in ModeStats::detections.  Delivery touches no RNG stream, so
//     policies that ignore detections produce byte-identical traces with or
//     without attack_times.
//
// Determinism: cores are simulated independently (partitioned scheduling,
// fixed placements) with per-core forked RNG streams exactly like the
// partitioned engine, and every controller decision is a pure function of the
// core-local schedule history plus the delivered detection events — so a
// fixed seed reproduces the trace, the level decisions, and the switch-event
// stream byte-for-byte, and results can ride exp::Sweep worker threads
// unchanged (see docs/architecture.md, "Runtime adaptation").
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/instance.h"
#include "core/mode_table.h"
#include "sim/controller.h"
#include "sim/task.h"

namespace hydra::sim {

/// A simulator task plus its mode ladder.  `task.period` / `task.deadline`
/// hold the MINIMUM-mode (loosest) values; `adapted_period` is the fastest
/// rate the controller may switch to; `levels` holds any INTERMEDIATE rungs,
/// fastest-last, each strictly between the two (empty for the classic
/// two-mode table).  adapted_period == 0 (or not strictly below the
/// minimum-mode period) marks the task as fixed-rate — RT tasks and monitors
/// without headroom never switch.
struct ModeTask {
  SimTask task;
  util::SimTime adapted_period = 0;
  /// Intermediate ladder rungs in ticks, strictly decreasing, each strictly
  /// inside (adapted_period, task.period).  Ignored for fixed-rate tasks.
  std::vector<util::SimTime> levels;

  /// True when the controller can actually change this task's rate: the one
  /// definition of the fixed-vs-switchable distinction, shared by the engine,
  /// the auto-window sizing, and the residency-summary population.
  bool switchable() const { return adapted_period > 0 && adapted_period < task.period; }

  /// Ladder length: level 0 = minimum mode, top = adapted.  1 for fixed-rate.
  std::size_t num_levels() const { return switchable() ? levels.size() + 2 : 1; }

  /// The period of ladder level `idx` (0 = minimum mode, num_levels()-1 =
  /// adapted).  Precondition: idx < num_levels().
  util::SimTime level_period(std::size_t idx) const {
    if (idx == 0) return task.period;
    if (idx == levels.size() + 1) return adapted_period;
    return levels[idx - 1];
  }
};

struct ModeSwitchOptions {
  util::SimTime horizon = 0;  ///< jobs are released strictly before this time
  util::SimTime grace = 0;    ///< 0 = auto (largest minimum-mode deadline)
  std::uint64_t seed = 0x5eed;
  bool record_segments = false;  ///< fill Trace::segments (Gantt/CSV export)
  ModeControllerConfig controller;
  /// Attack instants to deliver as detection events, ascending.  Every
  /// switchable monitor detects an attack at the completion of its first
  /// fresh scan released after the attack instant (sim/attack.h semantics).
  std::vector<util::SimTime> attack_times;
};

/// One committed mode switch (for hysteresis audits and event logs).
struct ModeSwitchEvent {
  std::size_t task = 0;
  util::SimTime at = 0;        ///< the release boundary the switch happened on
  bool to_adapted = false;     ///< tightened (to_level > from_level)
  std::size_t from_level = 0;  ///< ladder level before the switch
  std::size_t to_level = 0;    ///< ladder level after the switch
};

/// What the controller did, task by task.  Residency is accounted per
/// released job: a job released in mode m adds its CHOSEN PERIOD to mode m's
/// residency — level 0 to min_residency, every faster level to
/// adapted_residency.  The two fractions always sum to exactly 1; for
/// jitter-free tasks the sum of both residencies additionally tiles the
/// release timeline (with release_jitter > 0 the drawn extra gaps are
/// attributed to neither mode, so the sum undercounts wall-clock coverage by
/// the jitter total).
struct ModeStats {
  std::vector<std::size_t> switches;            ///< committed switches per task
  std::vector<util::SimTime> min_residency;     ///< ticks committed at min rate
  std::vector<util::SimTime> adapted_residency; ///< ticks committed above min
  std::vector<std::size_t> min_jobs;            ///< jobs released at level 0
  std::vector<std::size_t> adapted_jobs;        ///< jobs released above level 0
  /// Level changes the policy wanted but the per-task dwell rate limit
  /// denied.  A denied decision leaves the task's mode unchanged.
  std::vector<std::size_t> denied_dwell;
  /// Level changes the policy wanted but the exhausted switch budget denied.
  std::vector<std::size_t> denied_budget;
  /// Detection events delivered to the controller, per task.
  std::vector<std::size_t> detections;
  /// Committed switches, core-major (cores are simulated in index order),
  /// time-ascending within each core.
  std::vector<ModeSwitchEvent> events;

  /// adapted / (min + adapted) residency of `task`; 0 when it never released.
  double adapted_fraction(std::size_t task) const;
  /// Mean adapted_fraction over the tasks selected by `only`; 0 when empty.
  double mean_adapted_fraction(const std::vector<std::size_t>& only) const;
  std::size_t total_switches() const;
  std::size_t total_denied_dwell() const;
  std::size_t total_denied_budget() const;
  std::size_t total_detections() const;
};

struct ModeSwitchResult {
  Trace trace;
  ModeStats stats;
};

/// Runs the mode-switching schedule.  Same task-validity rules as
/// sim::simulate plus: a non-zero adapted_period must lie in
/// [wcet, minimum-mode period); intermediate levels must be strictly
/// decreasing and strictly inside (adapted_period, minimum-mode period); the
/// controller config must pass ModeControllerConfig::validate() and its
/// resolved policy must be registered; attack_times must be ascending.
/// Throws std::invalid_argument on violations.
ModeSwitchResult simulate_mode_switching(const std::vector<ModeTask>& tasks,
                                         const ModeSwitchOptions& options);

/// Builds the mode-switching task list for an instance + feasible allocation:
/// the same RT/security resolution as sim::build_sim_tasks, but security
/// tasks run at their MINIMUM-mode (Tmax) period with the mode table's
/// ladder attached (adapted_period 0 when the table has no headroom for the
/// task).  Intermediate levels are rounded to ticks and dropped when the
/// rounding collapses them into a neighbour, so the emitted ladder is always
/// strictly decreasing.  Indices: RT tasks first, then security task s at
/// index NR + s.
std::vector<ModeTask> build_mode_tasks(const core::Instance& instance,
                                       const core::Allocation& allocation,
                                       const core::ModeTable& table);

}  // namespace hydra::sim
