// Structured event log shared by both hydra_swarm modes: every lifecycle
// decision the supervisor or the service makes (worker started, died,
// restarted, gave up; partial merged; cache evicted) becomes one
// line-delimited JSON record, so an orchestrated run can be audited — and
// its restart story asserted by tests and CI — without scraping free-form
// stderr.
//
// Events are operational telemetry, not result data: they carry wall-clock
// timestamps and are deliberately kept OUT of the row streams whose
// byte-identity the sweep layer guarantees.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace hydra::swarm {

struct Event {
  std::size_t seq = 0;   ///< monotone per-log sequence number
  double t = 0.0;        ///< seconds on the emitter's clock (supervisor time)
  std::string kind;      ///< e.g. "worker-started", "worker-gave-up"
  std::string subject;   ///< which worker/shard/cache entry, "" for global
  std::string detail;    ///< human-readable specifics (attempt, exit status)
};

/// One JSON line: {"seq":0,"t":1.5,"kind":"...","subject":"...","detail":"..."}
std::string format_event(const Event& event);

/// Thread-safe append-only log.  Events are kept in memory (tests assert on
/// them) and, when a sink stream is attached, also written out line by line
/// as they happen (flushed per event — the log must survive a crash of the
/// process it describes).
class EventLog {
 public:
  /// `sink` may be nullptr (in-memory only); not owned, must outlive the log.
  explicit EventLog(std::ostream* sink = nullptr) : sink_(sink) {}

  void emit(double t, std::string kind, std::string subject = "",
            std::string detail = "");

  /// Copy of every event so far, in emission order.
  std::vector<Event> snapshot() const;

  /// Number of events with exactly this kind.
  std::size_t count(const std::string& kind) const;

 private:
  mutable std::mutex mutex_;
  std::ostream* sink_;
  std::vector<Event> events_;
};

}  // namespace hydra::swarm
