// Ablation: HYDRA's core-selection rule (Algorithm 1, line 11).
//
// The paper picks the core with maximum achievable tightness.  This bench
// compares that rule against first-feasible, least-loaded and the adversarial
// worst-tightness pick on synthetic workloads: acceptance ratio and mean
// cumulative tightness (normalized by its upper bound Σω).
//
// Usage: bench_ablation_core_pick [--cores 4] [--tasksets 100] [--seed 3] [--csv]
#include <iostream>
#include <map>
#include <vector>

#include "core/hydra.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "sec/tightness.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 4));
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 100));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const bool csv = cli.get_bool("csv", false);

  const std::vector<std::pair<std::string, core::CorePick>> policies{
      {"max-tightness (paper)", core::CorePick::kMaxTightness},
      {"first-feasible", core::CorePick::kFirstFeasible},
      {"least-loaded", core::CorePick::kLeastLoaded},
      {"worst-tightness", core::CorePick::kWorstTightness},
  };

  io::print_banner(std::cout, "Ablation: Algorithm 1 core-selection rule (M = " +
                                  std::to_string(m) + ")");

  gen::SyntheticConfig config;
  config.num_cores = m;

  io::Table table({"utilization", "policy", "acceptance", "mean normalized tightness"});
  for (const double phase : {0.4, 0.7, 0.9}) {
    const double u = phase * static_cast<double>(m);
    // One shared batch of instances so policies see identical workloads.
    hydra::util::Xoshiro256 rng(seed);
    std::vector<core::Instance> instances;
    for (int rep = 0; rep < tasksets; ++rep) {
      auto trial_rng = rng.fork();
      if (const auto drawn = gen::generate_filtered_instance(config, u, trial_rng)) {
        instances.push_back(drawn->instance);
      }
    }

    for (const auto& [name, pick] : policies) {
      core::HydraOptions opts;
      opts.core_pick = pick;
      const core::HydraAllocator allocator(opts);
      hydra::stats::AcceptanceCounter counter;
      std::vector<double> tightness;
      for (const auto& inst : instances) {
        const auto allocation = allocator.allocate(inst);
        counter.record(allocation.feasible);
        if (allocation.feasible) {
          tightness.push_back(allocation.cumulative_tightness(inst.security_tasks) /
                              hydra::sec::max_cumulative_tightness(inst.security_tasks));
        }
      }
      table.add_row({io::fmt(u, 2), name, io::fmt(counter.ratio(), 3),
                     tightness.empty() ? std::string("-")
                                       : io::fmt(hydra::stats::summarize(tightness).mean, 3)});
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading: the paper's argmax-tightness rule should match or "
               "beat the alternatives on tightness at comparable acceptance.\n";
  return 0;
}
