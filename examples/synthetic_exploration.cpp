// Design-space exploration on synthetic workloads: sweep total utilization on
// a chosen platform and chart how each integration strategy's acceptance
// ratio and achieved tightness degrade — the workflow a system designer would
// run before committing to a security-integration architecture.
//
// Usage: ./build/examples/synthetic_exploration [--cores 4] [--tasksets 50]
//                                               [--seed 21]
#include <iostream>
#include <vector>

#include "core/hydra.h"
#include "core/single_core.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "sec/tightness.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 4));
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  gen::SyntheticConfig config;
  config.num_cores = m;

  io::print_banner(std::cout, "Design-space sweep on M = " + std::to_string(m) +
                                  " cores (" + std::to_string(tasksets) +
                                  " tasksets per point)");
  io::Table table({"utilization", "HYDRA accept", "HYDRA tightness", "SingleCore accept",
                   "SingleCore tightness"});

  const core::HydraAllocator hydra_alloc;
  const core::SingleCoreAllocator single_alloc;

  for (int step = 2; step <= 18; step += 2) {
    const double u = 0.05 * static_cast<double>(step) * static_cast<double>(m);
    hydra::util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(step));
    hydra::stats::AcceptanceCounter hydra_counter, single_counter;
    std::vector<double> hydra_tightness, single_tightness;

    for (int rep = 0; rep < tasksets; ++rep) {
      auto trial_rng = rng.fork();
      const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
      if (!drawn.has_value()) {
        hydra_counter.record(false);
        single_counter.record(false);
        continue;
      }
      const auto& inst = drawn->instance;
      const double upper = hydra::sec::max_cumulative_tightness(inst.security_tasks);

      const auto h = hydra_alloc.allocate(inst);
      hydra_counter.record(h.feasible);
      if (h.feasible) hydra_tightness.push_back(h.cumulative_tightness(inst.security_tasks) / upper);

      const auto sc = single_alloc.allocate(inst);
      single_counter.record(sc.feasible);
      if (sc.feasible) {
        single_tightness.push_back(sc.cumulative_tightness(inst.security_tasks) / upper);
      }
    }

    const auto mean_or_dash = [](const std::vector<double>& v) {
      return v.empty() ? std::string("-") : io::fmt(hydra::stats::summarize(v).mean, 3);
    };
    table.add_row({io::fmt(u, 2), io::fmt(hydra_counter.ratio(), 2),
                   mean_or_dash(hydra_tightness), io::fmt(single_counter.ratio(), 2),
                   mean_or_dash(single_tightness)});
  }
  table.print(std::cout);

  std::cout << "\ntightness columns are normalized by the upper bound (every "
               "monitor at its desired rate = 1.0).\n";
  return 0;
}
