#include "core/design_space.h"

#include <cmath>

#include "core/validation.h"
#include "sec/tightness.h"

namespace hydra::core {

namespace {

DesignPoint evaluate(std::string scheme, const Instance& instance, Allocation allocation,
                     util::Millis blocking,
                     const std::optional<std::vector<std::size_t>>& priority_order,
                     ScheduleTest test) {
  DesignPoint point;
  point.scheme = std::move(scheme);
  point.allocation = std::move(allocation);
  if (point.allocation.feasible) {
    point.cumulative_tightness =
        point.allocation.cumulative_tightness(instance.security_tasks);
    const double upper = sec::max_cumulative_tightness(instance.security_tasks);
    point.normalized_tightness = upper > 0.0 ? point.cumulative_tightness / upper : 0.0;
    const auto report =
        validate_allocation(instance, point.allocation, blocking, priority_order, test);
    point.validated = report.valid;
    point.validation_problem = report.problem;
  }
  return point;
}

}  // namespace

std::optional<std::size_t> ExplorationReport::best_index() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].allocation.feasible || !points[i].validated) continue;
    if (!best.has_value() ||
        points[i].cumulative_tightness > points[*best].cumulative_tightness) {
      best = i;
    }
  }
  return best;
}

bool ExplorationReport::any_feasible() const {
  for (const auto& p : points) {
    if (p.allocation.feasible && p.validated) return true;
  }
  return false;
}

ExplorationReport explore_design_space(const Instance& instance,
                                       const ExplorationOptions& options) {
  instance.validate();
  ExplorationReport report;

  // 1. HYDRA in the caller's configuration (paper defaults unless changed).
  {
    const HydraAllocator allocator(options.hydra);
    const ScheduleTest test = options.hydra.solver == PeriodSolver::kExactRta
                                  ? ScheduleTest::kExactRta
                                  : ScheduleTest::kLinearBound;
    report.points.push_back(evaluate("HYDRA", instance, allocator.allocate(instance),
                                     options.hydra.blocking, options.hydra.priority_order,
                                     test));
  }

  // 2. HYDRA with exact RTA (skipped when the caller already asked for it).
  if (options.hydra.solver != PeriodSolver::kExactRta) {
    HydraOptions exact = options.hydra;
    exact.solver = PeriodSolver::kExactRta;
    const HydraAllocator allocator(exact);
    report.points.push_back(evaluate("HYDRA(exact-RTA)", instance,
                                     allocator.allocate(instance), exact.blocking,
                                     exact.priority_order, ScheduleTest::kExactRta));
  }

  // 3. SingleCore (needs a spare core).
  if (instance.num_cores >= 2) {
    const SingleCoreAllocator allocator(options.single_core);
    report.points.push_back(evaluate("SingleCore", instance, allocator.allocate(instance),
                                     options.single_core.blocking, std::nullopt,
                                     ScheduleTest::kLinearBound));
  }

  // 4. Optimal, when the enumeration fits the budget.
  if (options.optimal_budget > 0 && !instance.security_tasks.empty()) {
    const double combos = std::pow(static_cast<double>(instance.num_cores),
                                   static_cast<double>(instance.security_tasks.size()));
    if (combos <= static_cast<double>(options.optimal_budget)) {
      OptimalOptions opt = options.optimal;
      opt.max_assignments = options.optimal_budget;
      const OptimalAllocator allocator(opt);
      report.points.push_back(evaluate("Optimal", instance, allocator.allocate(instance),
                                       opt.joint.blocking, std::nullopt,
                                       ScheduleTest::kLinearBound));
    }
  }
  return report;
}

}  // namespace hydra::core
