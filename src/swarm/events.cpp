#include "swarm/events.h"

#include <ostream>

#include "exp/sinks.h"

namespace hydra::swarm {

std::string format_event(const Event& event) {
  std::string line = "{\"seq\":" + std::to_string(event.seq);
  line += ",\"t\":" + exp::json_number(event.t);
  line += ",\"kind\":\"" + exp::json_escape(event.kind) + "\"";
  line += ",\"subject\":\"" + exp::json_escape(event.subject) + "\"";
  line += ",\"detail\":\"" + exp::json_escape(event.detail) + "\"}";
  return line;
}

void EventLog::emit(double t, std::string kind, std::string subject,
                    std::string detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.seq = events_.size();
  event.t = t;
  event.kind = std::move(kind);
  event.subject = std::move(subject);
  event.detail = std::move(detail);
  if (sink_ != nullptr) {
    (*sink_) << format_event(event) << '\n';
    sink_->flush();
  }
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t EventLog::count(const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

}  // namespace hydra::swarm
