#include "gp/solver_registry.h"

#include <stdexcept>
#include <utility>

#include "gp/ipm.h"

namespace hydra::gp {

namespace {

/// The incumbent stack: log-space primal barrier with phase-I feasibility
/// (gp/solver.h).  A thin adapter — GpSolver carries the whole
/// implementation — that stamps its registry name onto every result.
class BarrierBackend final : public SolverBackend {
 public:
  BarrierBackend(std::string name, SolveOptions options)
      : name_(std::move(name)), solver_(options) {}

  const std::string& name() const override { return name_; }

  SolveResult solve(const GpProblem& problem,
                    const std::optional<std::vector<double>>& initial_guess) const override {
    SolveResult result = solver_.solve(problem, initial_guess);
    result.backend = name_;
    return result;
  }

 private:
  std::string name_;
  GpSolver solver_;
};

/// Primal-dual filter IPM (gp/ipm.h).  The shared SolveOptions map onto the
/// IPM knobs that have a barrier counterpart; everything else keeps the
/// IpmOptions defaults.
class IpmBackend final : public SolverBackend {
 public:
  IpmBackend(std::string name, const SolveOptions& options) : name_(std::move(name)) {
    options_.tol = options.barrier.duality_gap_tol;
    options_.unbounded_below = options.barrier.unbounded_below;
  }

  const std::string& name() const override { return name_; }

  SolveResult solve(const GpProblem& problem,
                    const std::optional<std::vector<double>>& initial_guess) const override {
    SolveResult result = ipm_solve(problem, initial_guess, options_);
    result.backend = name_;
    return result;
  }

 private:
  std::string name_;
  IpmOptions options_;
};

/// Meta-backend: primary first, secondary when the primary's answer is
/// anything short of a converged optimum, keep the better result.  The
/// adopted result keeps the inner backend's stamp, which is how the
/// differential tests observe a rescue.
class PickBestBackend final : public SolverBackend {
 public:
  PickBestBackend(std::string name, std::unique_ptr<SolverBackend> primary,
                  std::unique_ptr<SolverBackend> secondary)
      : name_(std::move(name)),
        primary_(std::move(primary)),
        secondary_(std::move(secondary)) {}

  const std::string& name() const override { return name_; }

  SolveResult solve(const GpProblem& problem,
                    const std::optional<std::vector<double>>& initial_guess) const override {
    SolveResult first = primary_->solve(problem, initial_guess);
    if (first.ok() && first.converged) return first;
    SolveResult second = secondary_->solve(problem, initial_guess);
    const int r1 = rank(first);
    const int r2 = rank(second);
    if (r2 > r1) return second;
    if (r1 > r2) return first;
    if (first.ok() && second.ok()) {
      // Both usable: keep the better (lower) objective, ties to the primary.
      return second.objective < first.objective ? std::move(second) : std::move(first);
    }
    if (first.status == SolveStatus::kError) {
      first.message = "pick-best: both backends failed — " + primary_->name() + ": " +
                      first.message + "; " + secondary_->name() + ": " + second.message;
    }
    // Matching non-optimal verdicts: the primary's diagnosis stands.
    return first;
  }

 private:
  /// Converged optimum > budget-capped optimum > infeasible/unbounded
  /// verdict > numerical error.
  static int rank(const SolveResult& r) {
    switch (r.status) {
      case SolveStatus::kOptimal:
        return r.converged ? 3 : 2;
      case SolveStatus::kInfeasible:
      case SolveStatus::kUnbounded:
        return 1;
      case SolveStatus::kError:
        return 0;
    }
    return 0;
  }

  std::string name_;
  std::unique_ptr<SolverBackend> primary_;
  std::unique_ptr<SolverBackend> secondary_;
};

SolverRegistry build_global() {
  SolverRegistry registry;
  registry.add("scp/barrier",
               "log-space primal barrier with phase-I feasibility — the "
               "incumbent stack the signomial SCP layer drives (default)",
               [](const SolveOptions& options) {
                 return std::make_unique<BarrierBackend>("scp/barrier", options);
               });
  registry.add("ipm/filter",
               "primal-dual interior point: perturbed KKT Newton system, "
               "fraction-to-boundary rule, inertia-corrected Cholesky, filter "
               "line search; certifies a dual point (kkt_residual)",
               [](const SolveOptions& options) {
                 return std::make_unique<IpmBackend>("ipm/filter", options);
               });
  registry.add("pick-best",
               "meta-backend: scp/barrier first, ipm/filter on error or "
               "non-convergence, better objective wins",
               [](const SolveOptions& options) {
                 return std::make_unique<PickBestBackend>(
                     "pick-best", std::make_unique<BarrierBackend>("scp/barrier", options),
                     std::make_unique<IpmBackend>("ipm/filter", options));
               });
  return registry;
}

thread_local const std::string* g_backend_scope = nullptr;

}  // namespace

void SolverRegistry::add(std::string name, std::string description, Factory factory) {
  if (name.empty()) throw std::invalid_argument("solver registry: empty backend name");
  if (!factory) {
    throw std::invalid_argument("solver registry: null factory for '" + name + "'");
  }
  if (find(name) != nullptr) {
    throw std::invalid_argument("solver registry: duplicate backend name '" + name + "'");
  }
  entries_.push_back({std::move(name), std::move(description), std::move(factory)});
}

bool SolverRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const SolverRegistry::Entry* SolverRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<SolverBackend> SolverRegistry::make(const std::string& name,
                                                    const SolveOptions& options) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    throw std::invalid_argument("unknown GP solver backend '" + name +
                                "' (registered: " + known + ")");
  }
  return entry->factory(options);
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

const std::string& SolverRegistry::description(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown GP solver backend '" + name + "'");
  }
  return entry->description;
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry registry = build_global();
  return registry;
}

GpBackendScope::GpBackendScope(std::string backend)
    : backend_(std::move(backend)), previous_(g_backend_scope) {
  if (backend_.empty()) backend_ = kDefaultGpBackend;
  g_backend_scope = &backend_;
}

GpBackendScope::~GpBackendScope() { g_backend_scope = previous_; }

const std::string* GpBackendScope::current() { return g_backend_scope; }

const std::string& resolve_gp_backend(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const std::string* scoped = GpBackendScope::current()) return *scoped;
  static const std::string fallback = kDefaultGpBackend;
  return fallback;
}

SolveResult solve_with_backend(const GpProblem& problem,
                               const std::optional<std::vector<double>>& initial_guess,
                               const std::string& backend, const SolveOptions& options) {
  return SolverRegistry::global()
      .make(resolve_gp_backend(backend), options)
      ->solve(problem, initial_guess);
}

std::string solver_catalog_markdown(const SolverRegistry& registry) {
  std::string out;
  out += "# GP solver catalog\n\n";
  out += "Every GP solver backend registered in `gp::SolverRegistry::global()`, in\n";
  out += "registration order.  The name is the stable identifier accepted by\n";
  out += "`--gp-backend` flags and `SweepSpec::gp_backend`, and stamped onto every\n";
  out += "`SolveResult::backend`.\n\n";
  out += "**Generated file — do not edit by hand.**  Regenerate after touching the\n";
  out += "registry with `./build/bench_table1_catalog --solver-catalog-out "
         "docs/solver-catalog.md`\n";
  out += "(or `HYDRA_UPDATE_CATALOG=1 ./build/test_solver_catalog`); the ctest suite\n";
  out += "`test_solver_catalog` fails whenever this file and the registry disagree.\n\n";
  out += "| Name | Description |\n|---|---|\n";
  for (const auto& name : registry.names()) {
    out += "| `" + name + "` | " + registry.description(name) + " |\n";
  }
  return out;
}

}  // namespace hydra::gp
