// Tests for the result sinks: JSONL shape, CSV quoting, table rendering,
// re-use across runs, and the extension-dispatched file sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/sinks.h"

namespace hexp = hydra::exp;

namespace {

hexp::BatchRow sample_row() {
  hexp::BatchRow row;
  row.instance_index = 3;
  row.instance_label = "seed=99";
  row.seed = 99;
  row.scheme = "hydra/tie=lowest-index";
  row.feasible = true;
  row.validated = true;
  row.cumulative_tightness = 2.5;
  row.normalized_tightness = 0.625;
  return row;
}

}  // namespace

TEST(JsonlSink, EmitsOneParseableObjectPerRow) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  sink.begin();
  sink.row(sample_row());
  sink.end();
  const std::string line = os.str();
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"instance\":3"), std::string::npos);
  EXPECT_NE(line.find("\"scheme\":\"hydra/tie=lowest-index\""), std::string::npos);
  EXPECT_NE(line.find("\"feasible\":true"), std::string::npos);
  EXPECT_NE(line.find("\"cumulative_tightness\":2.5"), std::string::npos);
  // Exactly one line per row.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(JsonlSink, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(hexp::json_escape("plain"), "plain");
  EXPECT_EQ(hexp::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(hexp::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(hexp::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(hexp::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(FormatDouble, RoundTripsAndStaysCompact) {
  EXPECT_EQ(hexp::format_double(0.0), "0");
  EXPECT_EQ(hexp::format_double(2.5), "2.5");
  EXPECT_EQ(hexp::format_double(1.0 / 3.0), "0.3333333333333333");
  // Shortest representation that parses back to the same double.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(hexp::format_double(value).c_str(), nullptr), value);
}

TEST(FormatDouble, NonFiniteValuesStayVisible) {
  EXPECT_EQ(hexp::format_double(std::nan("")), "nan");
  EXPECT_EQ(hexp::format_double(HUGE_VAL), "inf");
  EXPECT_EQ(hexp::format_double(-HUGE_VAL), "-inf");
  // JSON number positions fall back to null so lines stay parseable.
  EXPECT_EQ(hexp::json_number(std::nan("")), "null");
  EXPECT_EQ(hexp::json_number(2.5), "2.5");
}

TEST(JsonlRow, ParsesBackExactlyWhatTheSinkEmits) {
  auto row = sample_row();
  row.cell = "p2:m=2 u=1.2:i3";
  row.point_index = 2;
  row.point_label = "m=2 u=1.2";
  row.target_utilization = 1.2;
  row.note = "line\nbreak \"quoted\" \\slash";
  row.metrics.emplace_back("mean_detection_ms", 123.5);
  row.metrics.emplace_back("p95_detection_ms", 456.25);

  std::ostringstream os;
  hexp::JsonlSink sink(os);
  sink.row(row);
  const std::string line = os.str().substr(0, os.str().size() - 1);  // strip '\n'

  const auto parsed = hexp::parse_jsonl_row(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell, row.cell);
  EXPECT_EQ(parsed->point_index, row.point_index);
  EXPECT_EQ(parsed->point_label, row.point_label);
  EXPECT_EQ(parsed->seed, row.seed);
  EXPECT_EQ(parsed->note, row.note);
  ASSERT_EQ(parsed->metrics.size(), 2u);
  EXPECT_EQ(parsed->metrics[0].first, "mean_detection_ms");
  EXPECT_DOUBLE_EQ(parsed->metrics[1].second, 456.25);

  // Byte-exact round trip: re-serializing the parsed row reproduces the line.
  std::ostringstream os2;
  hexp::JsonlSink sink2(os2);
  sink2.row(*parsed);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(JsonlRow, FullPrecisionSeedSurvivesTheRoundTrip) {
  auto row = sample_row();
  row.seed = 0xFFFFFFFFFFFFFFF1ULL;  // above 2^53: dies if routed via double
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  sink.row(row);
  const auto parsed = hexp::parse_jsonl_row(os.str().substr(0, os.str().size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 0xFFFFFFFFFFFFFFF1ULL);
}

TEST(JsonlRow, RejectsTruncatedAndForeignLines) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  sink.row(sample_row());
  const std::string line = os.str().substr(0, os.str().size() - 1);

  EXPECT_FALSE(hexp::parse_jsonl_row(line.substr(0, line.size() / 2)).has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row("").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row("not json at all").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row("{\"unknown_key\":1}").has_value());
  EXPECT_FALSE(hexp::parse_jsonl_row(line + "trailing").has_value());
  EXPECT_TRUE(hexp::parse_jsonl_row(line).has_value());
}

TEST(CsvSink, QuotesCellsAndWritesHeaderOnce) {
  std::ostringstream os;
  hexp::CsvSink sink(os);
  sink.begin();
  auto row = sample_row();
  row.note = "needs, quoting";
  sink.row(row);
  sink.end();
  sink.begin();  // a second engine run re-uses the sink
  sink.row(sample_row());
  sink.end();
  const std::string out = os.str();
  EXPECT_EQ(out.find("cell,instance,label"), 0u);                    // header first
  EXPECT_EQ(out.find("cell,instance,label", 1), std::string::npos);  // and only once
  EXPECT_NE(out.find("\"needs, quoting\""), std::string::npos);      // RFC-4180 quoted
}

TEST(TableSink, RendersRowsAndResetsBetweenRuns) {
  std::ostringstream os;
  hexp::TableSink sink(os);
  sink.begin();
  sink.row(sample_row());
  sink.end();
  const auto first_len = os.str().size();
  EXPECT_NE(os.str().find("hydra/tie=lowest-index"), std::string::npos);
  sink.begin();
  sink.row(sample_row());
  sink.end();
  // The second run renders one table again, not an accumulation of both runs.
  EXPECT_EQ(os.str().size(), 2 * first_len);
}

TEST(FileSink, DispatchesOnExtensionAndWritesTheFile) {
  const std::string jsonl_path = "/tmp/hydra_sink_test.jsonl";
  {
    const auto sink = hexp::make_file_sink(jsonl_path);
    sink->begin();
    sink->row(sample_row());
    sink->end();
  }
  std::ifstream in(jsonl_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"scheme\""), std::string::npos);
  std::remove(jsonl_path.c_str());

  EXPECT_THROW(hexp::make_file_sink("/tmp/out.txt"), std::invalid_argument);
  EXPECT_THROW(hexp::make_file_sink("/nonexistent-dir/x.csv"), std::runtime_error);
}
