// Table I reproduction: the security-task catalog (Tripwire + Bro) with the
// parameters used throughout the evaluation.
//
// Usage: bench_table1_catalog [--csv]
#include <iostream>

#include "io/table.h"
#include "sec/catalog.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);

  hydra::io::print_banner(std::cout, "Table I: security tasks (Tripwire TR / Bro BR)");
  hydra::io::Table table({"task", "app", "function", "C (ms)", "Tdes (ms)", "Tmax (ms)",
                          "U_des"});
  for (const auto& entry : hydra::sec::tripwire_bro_catalog()) {
    table.add_row({entry.task.name,
                   entry.app == hydra::sec::SecurityApp::kTripwire ? "TR" : "BR",
                   entry.function, hydra::io::fmt(entry.task.wcet, 0),
                   hydra::io::fmt(entry.task.period_des, 0),
                   hydra::io::fmt(entry.task.period_max, 0),
                   hydra::io::fmt(entry.task.max_utilization(), 3)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nNote: WCETs are representative embedded-board scan costs "
               "(DESIGN.md section 6: the paper measured Tripwire/Bro on an "
               "ARM Cortex-A8; absolute values scale the curves, contention "
               "drives the comparisons).\n";
  return 0;
}
