// Tests for signomial SCP (posynomial maximization via monomial condensation):
// condensation bound properties and agreement with dense grid search.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/scp.h"
#include "util/rng.h"

namespace gp = hydra::gp;

TEST(Condense, BoundIsTightAtExpansionPoint) {
  gp::Posynomial f(2);
  f += gp::Monomial(2.0, 2).with(0, 1.0);
  f += gp::Monomial(3.0, 2).with(1, -1.0);
  const std::vector<double> x_bar{1.5, 0.8};
  const gp::Monomial fhat = gp::condense(f, x_bar);
  EXPECT_NEAR(fhat.eval(x_bar), f.eval(x_bar), 1e-9);
}

TEST(Condense, IsGlobalLowerBound) {
  // AM-GM: f̂(x) <= f(x) everywhere on the positive orthant.
  hydra::util::Xoshiro256 rng(5150);
  gp::Posynomial f(2);
  f += gp::Monomial(1.0, 2).with(0, 2.0);
  f += gp::Monomial(4.0, 2).with(0, -1.0).with(1, 1.0);
  f += gp::Monomial(0.5, 2).with(1, -2.0);
  const std::vector<double> x_bar{2.0, 1.0};
  const gp::Monomial fhat = gp::condense(f, x_bar);
  for (int rep = 0; rep < 200; ++rep) {
    const std::vector<double> x{rng.uniform(0.05, 20.0), rng.uniform(0.05, 20.0)};
    EXPECT_LE(fhat.eval(x), f.eval(x) * (1.0 + 1e-10));
  }
}

TEST(Condense, SingleTermIsExact) {
  gp::Posynomial f(1);
  f += gp::Monomial(7.0, 1).with(0, -2.0);
  const gp::Monomial fhat = gp::condense(f, {3.0});
  // A one-term posynomial condenses to itself.
  EXPECT_NEAR(fhat.coeff(), 7.0, 1e-9);
  EXPECT_NEAR(fhat.exponent(0), -2.0, 1e-12);
}

TEST(Scp, MaximizesInverseSumAgainstBoxOnly) {
  // max 1/x + 1/y with x, y >= 2: optimum at x = y = 2, value 1.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 2.0, 50.0);
  cons.add_bounds(y, 2.0, 50.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  const auto r = gp::maximize_posynomial_scp(cons, obj, {{10.0, 10.0}});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 1.0, 1e-4);
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_NEAR(r.x[1], 2.0, 1e-3);
}

TEST(Scp, CoupledConstraintMatchesGridSearch) {
  // max 3/x + 1/y  s.t.  1/x + 1/y <= 0.8,  x,y ∈ [1.5, 30].
  // Weight favors x: the optimizer should spend the budget on 1/x.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 1.5, 30.0);
  cons.add_bounds(y, 1.5, 30.0);
  gp::Posynomial budget = cons.posynomial();
  budget += cons.monomial(1.25).with(x, -1.0);  // (1/0.8)/x
  budget += cons.monomial(1.25).with(y, -1.0);
  cons.add_constraint_leq1(budget);

  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(3.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  const auto r = gp::maximize_posynomial_scp(cons, obj, {{10.0, 10.0}, {2.0, 20.0}});
  ASSERT_TRUE(r.feasible);

  // Dense grid search reference.
  double best = 0.0;
  for (int i = 0; i <= 400; ++i) {
    for (int j = 0; j <= 400; ++j) {
      const double xv = 1.5 + (30.0 - 1.5) * i / 400.0;
      const double yv = 1.5 + (30.0 - 1.5) * j / 400.0;
      if (1.0 / xv + 1.0 / yv > 0.8) continue;
      best = std::max(best, 3.0 / xv + 1.0 / yv);
    }
  }
  EXPECT_GE(r.objective, best - 2e-3);
}

TEST(Scp, InfeasibleConstraintsGiveInfeasible) {
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_constraint_leq1(gp::Posynomial(cons.monomial(5.0).with(x, -1.0)));  // x >= 5
  cons.add_constraint_leq1(gp::Posynomial(cons.monomial(0.5).with(x, 1.0)));   // x <= 2
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  const auto r = gp::maximize_posynomial_scp(cons, obj, {{3.0}});
  EXPECT_FALSE(r.feasible);
}

TEST(Scp, MultiStartPicksBetterBasin) {
  // Even with one poor start, adding a good one must not hurt.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 1.0, 100.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  const auto r1 = gp::maximize_posynomial_scp(cons, obj, {{90.0}});
  const auto r2 = gp::maximize_posynomial_scp(cons, obj, {{90.0}, {1.2}});
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_GE(r2.objective, r1.objective - 1e-9);
  EXPECT_NEAR(r2.objective, 1.0, 1e-4);  // x* = 1
}

TEST(Scp, RequiresAtLeastOneStart) {
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 1.0, 2.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  EXPECT_THROW(gp::maximize_posynomial_scp(cons, obj, {}), std::invalid_argument);
}
