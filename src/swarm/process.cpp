#include "swarm/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace hydra::swarm {

std::string ExitStatus::describe() const {
  if (signaled) return "killed by signal " + std::to_string(value);
  if (value == 0) return "exited cleanly";
  return "exited with code " + std::to_string(value);
}

namespace {

/// In the child, routes `path` onto `target_fd`; failures must not throw
/// (we are post-fork), so they _exit with a distinctive code.
void redirect_or_die(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0 || ::dup2(fd, target_fd) < 0) _exit(126);
  // If target_fd was closed at fork time, open() may hand us target_fd
  // itself; closing it then would undo the redirect we just set up.
  if (fd != target_fd) ::close(fd);
}

}  // namespace

LocalProcessBackend::~LocalProcessBackend() {
  // Never leave orphans: anything still running when the backend dies is
  // killed and reaped (best effort — the destructor cannot report).
  for (const auto& [id, pid] : running_) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

WorkerId LocalProcessBackend::start(const WorkerSpec& spec) {
  if (spec.argv.empty()) throw std::runtime_error("worker spec has an empty argv");

  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const auto& arg : spec.argv) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    redirect_or_die(spec.stdout_path, STDOUT_FILENO);
    redirect_or_die(spec.stderr_path, STDERR_FILENO);
    ::execvp(argv[0], argv.data());
    // exec failed; 127 is the shell's "command not found" convention.
    _exit(127);
  }
  const WorkerId id = next_id_++;
  running_[id] = static_cast<int>(pid);
  return id;
}

std::optional<ExitStatus> LocalProcessBackend::poll(WorkerId id) {
  const auto done = reaped_.find(id);
  if (done != reaped_.end()) return done->second;
  const auto it = running_.find(id);
  if (it == running_.end()) throw std::runtime_error("poll of unknown worker id");

  int status = 0;
  pid_t r;
  do {
    r = wait_fn_ ? wait_fn_(it->second, &status, WNOHANG)
                 : ::waitpid(it->second, &status, WNOHANG);
    // EINTR is not a death: a stray signal interrupted the wait, the child
    // is untouched.  Retrying here keeps the supervisor from burning a
    // retry attempt on a phantom crash.
  } while (r < 0 && errno == EINTR);
  if (r == 0) return std::nullopt;  // still running
  ExitStatus exit;
  if (r < 0) {
    // ECHILD etc. — the child vanished outside our control; report it as a
    // signal death so the supervisor treats it as a crash, loudly.
    exit.signaled = true;
    exit.value = SIGKILL;
  } else if (WIFSIGNALED(status)) {
    exit.signaled = true;
    exit.value = WTERMSIG(status);
  } else {
    exit.value = WIFEXITED(status) ? WEXITSTATUS(status) : 125;
  }
  running_.erase(it);
  reaped_[id] = exit;
  return exit;
}

void LocalProcessBackend::stop(WorkerId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return;  // already dead or reaped — stop is idempotent
  ::kill(it->second, SIGKILL);
}

std::string shell_quote(const std::string& raw) {
  std::string out = "'";
  for (const char c : raw) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

std::string shell_join(const std::vector<std::string>& argv) {
  std::string out;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i > 0) out += " ";
    out += shell_quote(argv[i]);
  }
  return out;
}

namespace {

std::vector<std::string> split_whitespace(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void replace_all_occurrences(std::string& text, const std::string& from,
                             const std::string& to) {
  std::size_t at = 0;
  while ((at = text.find(from, at)) != std::string::npos) {
    text.replace(at, from.size(), to);
    at += to.size();
  }
}

}  // namespace

std::vector<std::string> expand_launcher(
    const std::string& launcher_template, const std::string& host,
    const std::vector<std::string>& worker_argv) {
  auto tokens = split_whitespace(launcher_template);
  if (tokens.empty()) {
    throw std::invalid_argument("launcher template is empty");
  }
  bool saw_cmd = false;
  std::vector<std::string> argv;
  for (auto& token : tokens) {
    if (token == "{cmd}") {
      saw_cmd = true;
      argv.push_back(shell_join(worker_argv));
      continue;
    }
    if (token.find("{cmd}") != std::string::npos) {
      throw std::invalid_argument(
          "launcher template embeds {cmd} inside a larger token (\"" + token +
          "\"); {cmd} must stand alone so its quoting is unambiguous");
    }
    replace_all_occurrences(token, "{host}", host);
    argv.push_back(std::move(token));
  }
  if (!saw_cmd) {
    // No shell layer requested: the worker argv rides along verbatim.
    argv.insert(argv.end(), worker_argv.begin(), worker_argv.end());
  }
  return argv;
}

RemoteProcessBackend::RemoteProcessBackend(RemoteBackendOptions options)
    : options_(std::move(options)) {
  wants_host_ = options_.launcher.find("{host}") != std::string::npos;
  if (wants_host_ && options_.hosts.empty()) {
    throw std::invalid_argument(
        "launcher template mentions {host} but the host list is empty");
  }
  for (const auto& host : options_.hosts) {
    if (host.empty()) throw std::invalid_argument("empty host in host list");
  }
  // Validate the template shape now, not at the first start(): a bad
  // template must fail before any shard is launched.
  (void)expand_launcher(options_.launcher, wants_host_ ? options_.hosts.front() : "",
                        {"probe"});
}

std::string RemoteProcessBackend::next_host() const {
  if (!wants_host_) return "";
  return options_.hosts[next_host_index_ % options_.hosts.size()];
}

WorkerId RemoteProcessBackend::start(const WorkerSpec& spec) {
  if (spec.argv.empty()) throw std::runtime_error("worker spec has an empty argv");
  std::string host;
  if (wants_host_) {
    host = options_.hosts[next_host_index_ % options_.hosts.size()];
    ++next_host_index_;
  }
  WorkerSpec launcher_spec;
  launcher_spec.argv = expand_launcher(options_.launcher, host, spec.argv);
  // The launcher runs locally, so the local redirection machinery applies:
  // for ssh the remote stdout/stderr flow back through the session into the
  // same per-shard log files a local worker would fill.
  launcher_spec.stdout_path = spec.stdout_path;
  launcher_spec.stderr_path = spec.stderr_path;
  return local_.start(launcher_spec);
}

std::optional<ExitStatus> RemoteProcessBackend::poll(WorkerId id) {
  return local_.poll(id);
}

void RemoteProcessBackend::stop(WorkerId id) { local_.stop(id); }

}  // namespace hydra::swarm
