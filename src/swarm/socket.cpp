#include "swarm/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace hydra::swarm {

namespace {

constexpr double kServerClock = 0.0;  // events from the server carry no clock

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

#ifdef MSG_DONTWAIT
constexpr int kNoWaitFlag = MSG_DONTWAIT;
#else
constexpr int kNoWaitFlag = 0;  // degrades to blocking sends on exotic hosts
#endif

/// The validated poll() timeout: poll_interval_s has already been checked
/// finite and positive, so this only clamps the cast — a sub-millisecond
/// interval still waits 1ms (never 0, which busy-spins), and a huge one is
/// capped so stop() is observed within a minute regardless.
int poll_timeout_ms(double poll_interval_s) {
  const double ms = poll_interval_s * 1000.0;
  return static_cast<int>(std::clamp(ms, 1.0, 60'000.0));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path empty or too long (" +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             " byte max): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("socket write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ServiceServer::ServiceServer(AllocationService& service, ServerOptions options,
                             EventLog& log)
    : service_(service), options_(std::move(options)), log_(log) {
  if (!std::isfinite(options_.poll_interval_s) || options_.poll_interval_s <= 0.0) {
    throw std::invalid_argument(
        "poll_interval_s must be finite and > 0 (0 busy-spins, negative blocks"
        " poll() forever and masks shutdown)");
  }
  const auto address = make_address(options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("cannot create socket");
  // A stale socket file from a dead daemon blocks bind; a LIVE daemon on the
  // same path is indistinguishable from a stale file without connecting, so
  // we follow the usual unlink-then-bind convention and document "one daemon
  // per path".
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind/listen on " + options_.socket_path +
                             ": " + reason);
  }
  log_.emit(kServerClock, "service-listening", options_.socket_path);
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

std::size_t ServiceServer::run() {
  struct Connection {
    int fd;
    std::string in;           ///< unconsumed request bytes (partial lines)
    std::string out;          ///< response bytes not yet on the wire
    std::size_t out_off = 0;  ///< sent prefix of `out`
  };
  std::vector<Connection> connections;
  std::size_t served = 0;
  const int timeout_ms = poll_timeout_ms(options_.poll_interval_s);

  // Pushes as much of the connection's buffer as the socket accepts RIGHT
  // NOW — never blocking, so one slow client cannot stall the loop.  The
  // remainder waits for POLLOUT.  Returns false when the peer is gone.
  const auto flush_out = [](Connection& connection) -> bool {
    while (connection.out_off < connection.out.size()) {
      const ssize_t n = ::send(connection.fd,
                               connection.out.data() + connection.out_off,
                               connection.out.size() - connection.out_off,
                               kSendFlags | kNoWaitFlag);
      if (n > 0) {
        connection.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EPIPE/ECONNRESET: the client vanished
    }
    connection.out.clear();
    connection.out_off = 0;
    return true;
  };

  while (!stop_.load()) {
    // At the connection cap the listen fd stays readable while a client
    // waits in the backlog; polling it would turn the loop into a busy
    // spin, so it only joins the pollfd set while a slot is free.
    const bool accepting = connections.size() < options_.max_connections;
    std::vector<pollfd> fds;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& connection : connections) {
      short events = POLLIN;
      if (connection.out_off < connection.out.size()) events |= POLLOUT;
      fds.push_back({connection.fd, events, 0});
    }
    const std::size_t base = accepting ? 1 : 0;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("poll failed on the service socket");
    }
    if (ready == 0) continue;

    std::vector<bool> dead(connections.size(), false);

    // Drain writable backlogs first: a client that finally caught up frees
    // its buffer before this cycle's batch appends to it.
    for (std::size_t c = 0; c < connections.size(); ++c) {
      if ((fds[base + c].revents & POLLOUT) == 0) continue;
      if (!flush_out(connections[c])) dead[c] = true;
    }

    // Drain every ready connection; the complete lines gathered across ALL
    // of them form one service batch.  Accepting happens AFTER the drain so
    // fds[base + c] stays aligned with the connections poll() saw.
    std::vector<std::pair<std::size_t, std::string>> batch;  // (conn index, line)
    for (std::size_t c = 0; c < connections.size(); ++c) {
      if (dead[c]) continue;
      if ((fds[base + c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[65536];
      const ssize_t n = ::recv(connections[c].fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        // EOF or error: the client is gone; any responses still buffered
        // for it have no reader and are dropped with the connection.
        dead[c] = true;
        continue;
      }
      connections[c].in.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = connections[c].in.find('\n', start);
        if (newline == std::string::npos) break;
        batch.emplace_back(c, connections[c].in.substr(start, newline - start));
        start = newline + 1;
      }
      connections[c].in.erase(0, start);
    }

    if (!batch.empty()) {
      std::vector<std::string> lines;
      lines.reserve(batch.size());
      for (const auto& [c, line] : batch) lines.push_back(line);
      const auto responses = service_.handle_batch(lines);
      served += lines.size();
      log_.emit(kServerClock, "service-batch", "",
                std::to_string(lines.size()) + " request(s)");
      // Buffer, then flush opportunistically: the fast path still completes
      // in this cycle, while a full socket just leaves bytes for POLLOUT.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::size_t c = batch[i].first;
        if (dead[c]) continue;
        connections[c].out += responses[i] + "\n";
      }
      for (std::size_t c = 0; c < connections.size(); ++c) {
        if (dead[c] || connections[c].out_off >= connections[c].out.size()) continue;
        if (!flush_out(connections[c])) dead[c] = true;
      }
    }

    // Backpressure cap: a client this far behind is not reading at all;
    // spooling unbounded responses for it would let one dead-slow reader
    // grow the daemon's memory without limit.
    for (std::size_t c = 0; c < connections.size(); ++c) {
      if (dead[c]) continue;
      const std::size_t pending = connections[c].out.size() - connections[c].out_off;
      if (pending > options_.max_pending_bytes) {
        dead[c] = true;
        log_.emit(kServerClock, "client-overrun", "",
                  std::to_string(pending) + " bytes pending > cap");
      }
    }

    // Close from the back so earlier indices stay valid.
    for (std::size_t c = connections.size(); c-- > 0;) {
      if (!dead[c]) continue;
      ::close(connections[c].fd);
      connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(c));
    }

    if (accepting && (fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) connections.push_back(Connection{fd, "", "", 0});
    }

    if (service_.shutdown_requested()) break;
  }

  // Final drain: responses already owed (the shutdown acknowledgement
  // included) are delivered with blocking sends — the loop is over, so
  // blocking here stalls nobody.
  for (auto& connection : connections) {
    try {
      if (connection.out_off < connection.out.size()) {
        send_all(connection.fd, connection.out.substr(connection.out_off));
      }
    } catch (const std::exception&) {
      // Best effort: the peer hung up first.
    }
    ::close(connection.fd);
  }
  log_.emit(kServerClock, "service-stopped", options_.socket_path,
            std::to_string(served) + " request(s) served");
  return served;
}

ServiceClient::ServiceClient(const std::string& socket_path) {
  const auto address = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + socket_path + ": " + reason);
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServiceClient::request(const std::string& line) {
  send_all(fd_, line + "\n");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("service hung up before responding");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace hydra::swarm
