// Tests for the table/CSV emitters.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gen/uav.h"
#include "io/table.h"
#include "io/taskset_io.h"

namespace io = hydra::io;

TEST(Table, AlignedOutput) {
  io::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Column alignment: "value" and "22222" start at the same offset.
  std::istringstream lines(out);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("value"), row2.find("22222"));
}

TEST(Table, CsvOutput) {
  io::Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesCommasQuotesAndNewlines) {
  io::Table t({"scheme", "note"});
  t.add_row({"hydra/tie=lowest-index", "a,b"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "scheme,note\n"
            "hydra/tie=lowest-index,\"a,b\"\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Table, CsvQuoteHelper) {
  EXPECT_EQ(io::csv_quote("plain"), "plain");
  EXPECT_EQ(io::csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(io::csv_quote("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(io::csv_quote("nl\n"), "\"nl\n\"");
  EXPECT_EQ(io::csv_quote(""), "");
}

TEST(Table, RowWidthEnforced) {
  io::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(io::Table({}), std::invalid_argument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(Table, IndentApplied) {
  io::Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os, 4);
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("    ", 0), 0u) << "line not indented: '" << line << "'";
  }
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(io::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(io::fmt(2.0, 0), "2");
  EXPECT_EQ(io::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(io::fmt_percent(12.345, 1), "12.3%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  io::print_banner(os, "Fig. 1");
  EXPECT_NE(os.str().find("== Fig. 1 =="), std::string::npos);
}

TEST(TasksetIo, RoundTripsTheUavCaseStudy) {
  const auto original = hydra::gen::uav_case_study(4);
  const auto parsed = io::instance_from_text(io::to_text(original));
  EXPECT_EQ(parsed.num_cores, original.num_cores);
  ASSERT_EQ(parsed.rt_tasks.size(), original.rt_tasks.size());
  ASSERT_EQ(parsed.security_tasks.size(), original.security_tasks.size());
  for (std::size_t i = 0; i < original.rt_tasks.size(); ++i) {
    EXPECT_EQ(parsed.rt_tasks[i].name, original.rt_tasks[i].name);
    EXPECT_DOUBLE_EQ(parsed.rt_tasks[i].wcet, original.rt_tasks[i].wcet);
    EXPECT_DOUBLE_EQ(parsed.rt_tasks[i].period, original.rt_tasks[i].period);
    EXPECT_DOUBLE_EQ(parsed.rt_tasks[i].deadline, original.rt_tasks[i].deadline);
  }
  for (std::size_t i = 0; i < original.security_tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.security_tasks[i].wcet, original.security_tasks[i].wcet);
    EXPECT_DOUBLE_EQ(parsed.security_tasks[i].period_des,
                     original.security_tasks[i].period_des);
    EXPECT_DOUBLE_EQ(parsed.security_tasks[i].period_max,
                     original.security_tasks[i].period_max);
    EXPECT_DOUBLE_EQ(parsed.security_tasks[i].weight, original.security_tasks[i].weight);
  }
}

TEST(TasksetIo, ParsesOptionalFieldsAndComments) {
  const std::string text = R"(# comment line
cores 2
rt ctl 2.5 10      # implicit deadline
rt sense 1 20 15   # constrained deadline
sec mon 100 1000 10000 2.5
)";
  const auto inst = io::instance_from_text(text);
  EXPECT_EQ(inst.num_cores, 2u);
  ASSERT_EQ(inst.rt_tasks.size(), 2u);
  EXPECT_DOUBLE_EQ(inst.rt_tasks[0].deadline, 10.0);
  EXPECT_DOUBLE_EQ(inst.rt_tasks[1].deadline, 15.0);
  ASSERT_EQ(inst.security_tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(inst.security_tasks[0].weight, 2.5);
}

TEST(TasksetIo, RejectsMalformedInput) {
  EXPECT_THROW(io::instance_from_text("rt a 1 10\n"), std::invalid_argument);  // no cores
  EXPECT_THROW(io::instance_from_text("cores 0\n"), std::invalid_argument);
  EXPECT_THROW(io::instance_from_text("cores 2\nbogus x\n"), std::invalid_argument);
  EXPECT_THROW(io::instance_from_text("cores 2\nrt a 1\n"), std::invalid_argument);
  // Semantic failure: WCET exceeds the period.
  EXPECT_THROW(io::instance_from_text("cores 2\nrt a 20 10\n"), std::invalid_argument);
}

TEST(TasksetIo, ErrorNamesTheLine) {
  try {
    io::instance_from_text("cores 2\nrt broken\n");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TasksetIo, FileRoundTrip) {
  const auto original = hydra::gen::uav_case_study(2);
  const std::string path = "/tmp/hydra_taskset_io_test.txt";
  io::save_instance(original, path);
  const auto loaded = io::load_instance(path);
  EXPECT_EQ(loaded.rt_tasks.size(), original.rt_tasks.size());
  EXPECT_EQ(loaded.security_tasks.size(), original.security_tasks.size());
  std::remove(path.c_str());
  EXPECT_THROW(io::load_instance("/nonexistent/dir/x.txt"), std::runtime_error);
}
