#include "sim/attack.h"

#include <algorithm>
#include <cmath>

#include "core/mode_table.h"
#include "rt/priority.h"
#include "sim/engine.h"
#include "sim/global_slack.h"
#include "sim/mode_switch.h"
#include "util/contracts.h"

namespace hydra::sim {

std::vector<SimTask> build_sim_tasks(
    const core::Instance& instance, const core::Allocation& allocation,
    bool security_preemptive,
    const std::optional<std::vector<std::size_t>>& security_priority_order) {
  HYDRA_REQUIRE(allocation.feasible, "allocation must be feasible to simulate");
  instance.validate();

  std::vector<SimTask> tasks;
  tasks.reserve(instance.rt_tasks.size() + instance.security_tasks.size());

  // RT tasks: rate-monotonic priorities 0..NR−1 (distinct via rank).
  const auto rt_rank = rt::rank_of(rt::rm_priority_order(instance.rt_tasks));
  for (std::size_t i = 0; i < instance.rt_tasks.size(); ++i) {
    const auto& t = instance.rt_tasks[i];
    SimTask st;
    st.name = t.name;
    st.wcet = util::to_ticks(t.wcet);
    st.period = util::to_ticks(t.period);
    st.deadline = util::to_ticks(t.deadline);
    st.core = allocation.rt_partition.core_of[i];
    st.priority = static_cast<int>(rt_rank[i]);
    tasks.push_back(std::move(st));
  }

  // Security tasks: strictly below every RT task, ordered by ascending Tmax
  // (or the caller's chain-consistent override).
  const int security_base = static_cast<int>(instance.rt_tasks.size());
  const auto sec_rank = rt::rank_of(
      rt::resolve_security_order(instance.security_tasks, security_priority_order));
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& t = instance.security_tasks[s];
    const auto& place = allocation.placements[s];
    SimTask st;
    st.name = t.name;
    st.wcet = util::to_ticks(t.wcet);
    // Round the assigned period *up* to a whole tick: a longer period only
    // reduces demand, so analysis feasibility is preserved.
    st.period = std::max<util::SimTime>(util::to_ticks_ceil(place.period), st.wcet);
    st.deadline = st.period;
    st.core = place.core;
    st.priority = security_base + static_cast<int>(sec_rank[s]);
    st.preemptive = security_preemptive;
    tasks.push_back(std::move(st));
  }
  return tasks;
}

std::vector<util::SimTime> AttackPlan::sorted_times() const {
  std::vector<util::SimTime> times;
  times.reserve(trials.size());
  for (const auto& trial : trials) times.push_back(trial.at);
  std::sort(times.begin(), times.end());
  return times;
}

AttackPlan plan_attacks(const std::vector<SimTask>& tasks, std::size_t nr,
                        std::size_t ns, const DetectionConfig& config) {
  HYDRA_REQUIRE(config.trials > 0, "need at least one trial");
  HYDRA_REQUIRE(ns > 0, "detection experiment needs at least one security task");

  util::Xoshiro256 rng(config.seed);
  // Leave the tail of the horizon for detection to complete; the slowest
  // monitor needs up to ~2 periods.
  util::SimTime latest_attack = config.horizon;
  for (std::size_t s = 0; s < ns; ++s) {
    const util::SimTime span = 3 * tasks[nr + s].period;
    latest_attack = std::min(latest_attack,
                             config.horizon > span ? config.horizon - span : util::SimTime{0});
  }
  HYDRA_REQUIRE(latest_attack > 0, "horizon too short for the security periods");

  AttackPlan plan;
  plan.trials.reserve(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    // Per-trial draw order (instant, then victim) is the historical
    // sample_attacks order — a fixed seed plans the attacks it always did.
    AttackTrial t;
    t.at = rng.uniform_int(0, latest_attack - 1);
    if (config.scope == AttackScope::kSingleTask) {
      t.victim = static_cast<std::size_t>(rng.uniform_int(0, ns - 1));
    }
    plan.trials.push_back(t);
  }
  return plan;
}

DetectionResult detect_planned_attacks(const Trace& trace, std::size_t nr,
                                       std::size_t ns, const DetectionConfig& config,
                                       const AttackPlan& plan) {
  HYDRA_REQUIRE(ns > 0, "detection experiment needs at least one security task");
  DetectionResult result;
  result.deadline_misses = trace.deadline_misses();

  for (const AttackTrial& trial : plan.trials) {
    std::optional<util::SimTime> detected_at;
    bool undetected = false;
    if (config.scope == AttackScope::kSingleTask) {
      detected_at = trace.first_completion_released_after(nr + trial.victim, trial.at);
      undetected = !detected_at.has_value();
    } else {
      // Worst case over all monitors: the last fresh scan to complete.
      util::SimTime worst = 0;
      for (std::size_t s = 0; s < ns && !undetected; ++s) {
        const auto done = trace.first_completion_released_after(nr + s, trial.at);
        if (!done.has_value()) {
          undetected = true;
        } else {
          worst = std::max(worst, *done);
        }
      }
      if (!undetected) detected_at = worst;
    }

    if (undetected || !detected_at.has_value()) {
      ++result.undetected;
    } else {
      result.detection_ms.push_back(util::to_millis(*detected_at - trial.at));
    }
  }
  return result;
}

DetectionResult sample_attacks(const Trace& trace, const std::vector<SimTask>& tasks,
                               std::size_t nr, std::size_t ns, const DetectionConfig& config) {
  return detect_planned_attacks(trace, nr, ns, config,
                                plan_attacks(tasks, nr, ns, config));
}

DetectionResult measure_detection_times(const core::Instance& instance,
                                        const core::Allocation& allocation,
                                        const DetectionConfig& config) {
  const std::vector<SimTask> tasks = build_sim_tasks(instance, allocation);
  SimOptions sim_options;
  sim_options.horizon = config.horizon;
  const Trace trace = simulate(tasks, sim_options);
  return sample_attacks(trace, tasks, instance.rt_tasks.size(),
                        instance.security_tasks.size(), config);
}

DetectionResult measure_detection_times_global(const core::Instance& instance,
                                               const core::Allocation& allocation,
                                               const DetectionConfig& config) {
  const std::vector<SimTask> tasks = build_sim_tasks(instance, allocation);
  std::vector<GlobalSimTask> global_tasks;
  global_tasks.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    global_tasks.push_back(GlobalSimTask{tasks[i], /*global_band=*/i >= instance.rt_tasks.size()});
  }
  GlobalSimOptions sim_options;
  sim_options.horizon = config.horizon;
  sim_options.num_cores = instance.num_cores;
  const Trace trace = simulate_global_slack(global_tasks, sim_options);
  return sample_attacks(trace, tasks, instance.rt_tasks.size(),
                        instance.security_tasks.size(), config);
}

AdaptiveDetectionResult measure_detection_times_adaptive(
    const core::Instance& instance, const core::Allocation& allocation,
    const DetectionConfig& config, const ModeControllerConfig& controller) {
  controller.validate();
  const core::ModeTable table =
      core::build_mode_table(instance, allocation, controller.num_levels);
  const std::vector<ModeTask> mode_tasks = build_mode_tasks(instance, allocation, table);

  // Size the attack window from the minimum-mode periods — the loosest rate
  // the monitors can ever fall back to, so detection has room to complete no
  // matter what the controller decided near the end of the horizon.
  std::vector<SimTask> window_tasks;
  window_tasks.reserve(mode_tasks.size());
  for (const auto& mt : mode_tasks) window_tasks.push_back(mt.task);

  // Plan the attacks BEFORE simulating and inject them as detection events,
  // so an attack-reactive policy (boost) sees exactly the attacks the
  // measurement will score.  Policies that ignore detections produce the
  // trace the un-injected engine would — injection touches no RNG stream.
  const AttackPlan plan = plan_attacks(window_tasks, instance.rt_tasks.size(),
                                       instance.security_tasks.size(), config);

  ModeSwitchOptions sim_options;
  sim_options.horizon = config.horizon;
  sim_options.seed = config.seed;
  sim_options.controller = controller;
  sim_options.attack_times = plan.sorted_times();
  ModeSwitchResult run = simulate_mode_switching(mode_tasks, sim_options);

  AdaptiveDetectionResult result;
  result.detection = detect_planned_attacks(run.trace, instance.rt_tasks.size(),
                                            instance.security_tasks.size(), config, plan);
  result.modes = std::move(run.stats);
  const std::size_t nr = instance.rt_tasks.size();
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    if (mode_tasks[nr + s].switchable()) result.switchable_tasks.push_back(nr + s);
  }
  return result;
}

}  // namespace hydra::sim
