// Priority assignment (paper §II).
//
// RT tasks get distinct rate-monotonic priorities (shorter period = higher
// priority).  Security tasks are prioritized by ascending Tmax — paper §II-C:
// pri(τs1) > pri(τs2) iff Tmax_s1 < Tmax_s2 — and *every* security task sits
// strictly below every RT task on its core.  Ties are broken by index so that
// priority order is total and deterministic.
//
// Orders are represented as index permutations: order[0] is the index (into
// the original vector) of the highest-priority task.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rt/task.h"

namespace hydra::rt {

/// Rate-monotonic order for RT tasks: ascending period, ties by index.
std::vector<std::size_t> rm_priority_order(const std::vector<RtTask>& tasks);

/// Security-task order: ascending Tmax, ties by index (paper §II-C).
std::vector<std::size_t> security_priority_order(const std::vector<SecurityTask>& tasks);

/// Rank of each task in a priority order: rank_of[i] = position of task i
/// (0 = highest priority).  Inverse permutation of the order.
std::vector<std::size_t> rank_of(const std::vector<std::size_t>& order);

/// Default weights ωs from the priority order: the highest-priority security
/// task receives weight n, the next n−1, … (paper: "higher priority tasks
/// would have large ωs").
std::vector<double> priority_weights(const std::vector<SecurityTask>& tasks);

/// Resolves the security priority order used by allocators, the validator and
/// the simulator: `override` (validated to be a permutation of 0..n−1) when
/// present — e.g. a sec::chain_consistent_order — else the paper's
/// ascending-Tmax order.
std::vector<std::size_t> resolve_security_order(
    const std::vector<SecurityTask>& tasks,
    const std::optional<std::vector<std::size_t>>& override_order);

}  // namespace hydra::rt
