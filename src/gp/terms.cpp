#include "gp/terms.h"

#include <cmath>

namespace hydra::gp {

Monomial::Monomial(double coeff, std::size_t num_vars) : coeff_(coeff), exponents_(num_vars, 0.0) {
  HYDRA_REQUIRE(std::isfinite(coeff) && coeff > 0.0, "monomial coefficient must be positive");
}

Monomial& Monomial::with(VarId v, double exponent) {
  HYDRA_REQUIRE(v < exponents_.size(), "monomial variable index out of range");
  HYDRA_REQUIRE(std::isfinite(exponent), "monomial exponent must be finite");
  exponents_[v] += exponent;
  return *this;
}

double Monomial::exponent(VarId v) const {
  HYDRA_REQUIRE(v < exponents_.size(), "monomial variable index out of range");
  return exponents_[v];
}

double Monomial::eval(const std::vector<double>& x) const {
  HYDRA_REQUIRE(x.size() == exponents_.size(), "monomial evaluation point size mismatch");
  double acc = coeff_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (exponents_[i] == 0.0) continue;
    HYDRA_REQUIRE(x[i] > 0.0, "monomial variables must be positive");
    acc *= std::pow(x[i], exponents_[i]);
  }
  return acc;
}

double Monomial::log_eval(const linalg::Vector& y) const {
  HYDRA_REQUIRE(y.size() == exponents_.size(), "monomial log point size mismatch");
  double acc = std::log(coeff_);
  for (std::size_t i = 0; i < exponents_.size(); ++i) acc += exponents_[i] * y[i];
  return acc;
}

Monomial operator*(const Monomial& a, const Monomial& b) {
  HYDRA_REQUIRE(a.exponents_.size() == b.exponents_.size(), "monomial size mismatch");
  Monomial out(a.coeff_ * b.coeff_, a.exponents_.size());
  for (std::size_t i = 0; i < out.exponents_.size(); ++i) {
    out.exponents_[i] = a.exponents_[i] + b.exponents_[i];
  }
  return out;
}

Monomial Monomial::reciprocal() const {
  Monomial out(1.0 / coeff_, exponents_.size());
  for (std::size_t i = 0; i < exponents_.size(); ++i) out.exponents_[i] = -exponents_[i];
  return out;
}

Monomial Monomial::scaled(double factor) const {
  HYDRA_REQUIRE(std::isfinite(factor) && factor > 0.0, "scale factor must be positive");
  Monomial out = *this;
  out.coeff_ *= factor;
  return out;
}

Posynomial::Posynomial(Monomial m) : num_vars_(m.num_vars()) { terms_.push_back(std::move(m)); }

Posynomial& Posynomial::operator+=(const Monomial& m) {
  HYDRA_REQUIRE(m.num_vars() == num_vars_, "posynomial term size mismatch");
  terms_.push_back(m);
  return *this;
}

Posynomial& Posynomial::operator+=(const Posynomial& p) {
  HYDRA_REQUIRE(p.num_vars_ == num_vars_, "posynomial size mismatch");
  for (const auto& t : p.terms_) terms_.push_back(t);
  return *this;
}

double Posynomial::eval(const std::vector<double>& x) const {
  double acc = 0.0;
  for (const auto& t : terms_) acc += t.eval(x);
  return acc;
}

LogEval Posynomial::log_eval(const linalg::Vector& y, bool need_hess) const {
  HYDRA_REQUIRE(!terms_.empty(), "cannot evaluate the log of an empty posynomial");
  const std::size_t n = num_vars_;
  const std::size_t k = terms_.size();

  // u_k = a_kᵀ y + log c_k, max-shifted for stability.
  std::vector<double> u(k);
  double u_max = -1e308;
  for (std::size_t t = 0; t < k; ++t) {
    u[t] = terms_[t].log_eval(y);
    u_max = std::fmax(u_max, u[t]);
  }
  double wsum = 0.0;
  std::vector<double> w(k);
  for (std::size_t t = 0; t < k; ++t) {
    w[t] = std::exp(u[t] - u_max);
    wsum += w[t];
  }

  LogEval out;
  out.value = u_max + std::log(wsum);
  out.grad = linalg::Vector(n);
  for (std::size_t t = 0; t < k; ++t) {
    const double p = w[t] / wsum;  // softmax weight
    for (std::size_t i = 0; i < n; ++i) out.grad[i] += p * terms_[t].exponent(i);
  }

  if (need_hess) {
    // H = Σ p_k a_k a_kᵀ − g gᵀ  (positive semidefinite).
    out.hess = linalg::Matrix(n, n);
    linalg::Vector a(n);
    for (std::size_t t = 0; t < k; ++t) {
      const double p = w[t] / wsum;
      for (std::size_t i = 0; i < n; ++i) a[i] = terms_[t].exponent(i);
      out.hess.add_outer(a, p);
    }
    out.hess.add_outer(out.grad, -1.0);
    out.has_hess = true;
  }
  return out;
}

double Posynomial::log_value(const linalg::Vector& y) const {
  HYDRA_REQUIRE(!terms_.empty(), "cannot evaluate the log of an empty posynomial");
  double u_max = -1e308;
  for (const auto& t : terms_) u_max = std::fmax(u_max, t.log_eval(y));
  double wsum = 0.0;
  for (const auto& t : terms_) wsum += std::exp(t.log_eval(y) - u_max);
  return u_max + std::log(wsum);
}

Posynomial Posynomial::times(const Monomial& m) const {
  Posynomial out(num_vars_);
  for (const auto& t : terms_) out += t * m;
  return out;
}

}  // namespace hydra::gp
