// Name-indexed construction of GP solver backends, mirroring
// core::AllocatorRegistry one layer down: CLI flags like
// `--gp-backend ipm/filter` and SweepSpec::gp_backend pick the solver that
// every plain-GP solve in the process runs through, without compiling against
// backend option structs.
//
// The global registry ships three backends:
//
//     scp/barrier   log-space primal barrier with phase-I feasibility — the
//                   incumbent stack the signomial SCP layer drives (default)
//     ipm/filter    primal-dual interior point: perturbed KKT Newton system,
//                   fraction-to-boundary rule, inertia-corrected Cholesky,
//                   filter line search; certifies a dual point (kkt_residual)
//     pick-best     meta-backend: runs scp/barrier, falls back to ipm/filter
//                   on kError / non-convergence / infeasible verdicts, and
//                   keeps the better objective when both are optimal
//
// Backend selection threads through the stack two ways: explicitly (ScpOptions,
// JointPeriodOptions, SweepSpec carry a backend name) and ambiently via the
// thread-local GpBackendScope RAII seam, which reaches call sites that have no
// options plumbing (period_adaptation's one-variable GP inside contego).
// Registered names are stable identifiers: SweepSpec::gp_backend is stamped
// into sweep_fingerprint, so rows solved by different backends disagree loudly.
// docs/solver-authoring.md walks through adding a backend end to end;
// docs/solver-catalog.md is the generated catalog of this registry.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gp/problem.h"
#include "gp/solver.h"

namespace hydra::gp {

/// The backend every call site uses when neither an option struct nor a
/// GpBackendScope names one.  Keeping this the incumbent stack preserves
/// byte-identical sweep rows across the registry refactor (tested).
inline constexpr const char* kDefaultGpBackend = "scp/barrier";

/// A plain-GP solve strategy.  The signomial SCP layer sits ABOVE this
/// interface: it builds condensed convex GPs and solves each through a
/// backend, so every backend automatically serves SCP too.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// The registered name (stamped into SolveResult::backend).
  virtual const std::string& name() const = 0;

  /// Solves the program.  Same contract as GpSolver::solve: throws
  /// std::invalid_argument on malformed programs, never throws for numerical
  /// failures (those come back as kError with a diagnostic message).
  virtual SolveResult solve(const GpProblem& problem,
                            const std::optional<std::vector<double>>& initial_guess =
                                std::nullopt) const = 0;
};

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SolverBackend>(const SolveOptions&)>;

  /// Registers a backend.  Throws std::invalid_argument on duplicate names.
  void add(std::string name, std::string description, Factory factory);

  bool contains(const std::string& name) const;

  /// Constructs the backend registered under `name` (the result's
  /// SolverBackend::name() reports exactly `name`).  Throws
  /// std::invalid_argument for unknown names, listing the registered ones.
  std::unique_ptr<SolverBackend> make(const std::string& name,
                                      const SolveOptions& options = {}) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The registration-time description of `name` (throws when unknown).
  const std::string& description(const std::string& name) const;

  /// The process-wide registry pre-populated with the built-in backends.
  static SolverRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// RAII thread-local backend selection, mirroring core::ScpWarmStartScope:
/// scopes nest innermost-wins, and call sites without options plumbing
/// resolve the ambient backend through `current()`.  An empty backend string
/// re-selects the default, which is how the sweep-layer warm-start memo pins
/// its canonical solves to scp/barrier regardless of the spec's backend.
class GpBackendScope {
 public:
  explicit GpBackendScope(std::string backend);
  ~GpBackendScope();
  GpBackendScope(const GpBackendScope&) = delete;
  GpBackendScope& operator=(const GpBackendScope&) = delete;

  /// The innermost scope's backend name on this thread, or nullptr when none.
  static const std::string* current();

 private:
  std::string backend_;
  const std::string* previous_;
};

/// Resolves which backend a call site should use: an explicitly configured
/// non-empty `configured` name wins, else the innermost GpBackendScope, else
/// kDefaultGpBackend.
const std::string& resolve_gp_backend(const std::string& configured);

/// One-shot convenience: resolve (explicit > scope > default), construct from
/// the global registry, solve.  The hot SCP loop instead holds the
/// constructed backend across rounds; this is for one-off solves.
SolveResult solve_with_backend(const GpProblem& problem,
                               const std::optional<std::vector<double>>& initial_guess =
                                   std::nullopt,
                               const std::string& backend = {},
                               const SolveOptions& options = {});

/// Renders the registry as the markdown solver catalog committed at
/// docs/solver-catalog.md (name + description, registration order).  A pure
/// function of the registry contents, so `test_solver_catalog` can diff the
/// committed file against the live registry byte for byte.  Regenerate with
/// `bench_table1_catalog --solver-catalog-out docs/solver-catalog.md` (or
/// `HYDRA_UPDATE_CATALOG=1 ./build/test_solver_catalog`).
std::string solver_catalog_markdown(const SolverRegistry& registry);

}  // namespace hydra::gp
