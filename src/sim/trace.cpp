#include <algorithm>

#include "sim/task.h"
#include "util/contracts.h"

namespace hydra::sim {

std::size_t Trace::total_jobs() const {
  std::size_t n = 0;
  for (const auto& per_task : jobs) n += per_task.size();
  return n;
}

std::size_t Trace::deadline_misses() const {
  std::size_t n = 0;
  for (const auto& per_task : jobs) {
    for (const auto& rec : per_task) {
      if (rec.deadline_missed) ++n;
    }
  }
  return n;
}

std::vector<double> Trace::response_times_ms(std::size_t task) const {
  HYDRA_REQUIRE(task < jobs.size(), "task index out of range");
  std::vector<double> out;
  out.reserve(jobs[task].size());
  for (const auto& rec : jobs[task]) {
    if (rec.completed) out.push_back(hydra::util::to_millis(rec.completion - rec.release));
  }
  return out;
}

std::optional<double> Trace::max_response_time_ms(std::size_t task) const {
  const auto all = response_times_ms(task);
  if (all.empty()) return std::nullopt;
  return *std::max_element(all.begin(), all.end());
}

std::optional<util::SimTime> Trace::first_completion_released_after(std::size_t task,
                                                                    util::SimTime t) const {
  HYDRA_REQUIRE(task < jobs.size(), "task index out of range");
  const auto& per_task = jobs[task];
  // Releases are chronological, so binary-search the first release >= t.
  const auto it = std::lower_bound(
      per_task.begin(), per_task.end(), t,
      [](const JobRecord& rec, util::SimTime value) { return rec.release < value; });
  for (auto j = it; j != per_task.end(); ++j) {
    if (j->completed) return j->completion;
  }
  return std::nullopt;
}

}  // namespace hydra::sim
