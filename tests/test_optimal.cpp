// Tests for the exhaustive Optimal allocator: dominance over HYDRA, agreement
// with brute force on tiny cases, and the enumeration guard.
#include <gtest/gtest.h>

#include "core/hydra.h"
#include "core/optimal.h"
#include "core/validation.h"
#include "rt/task.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

namespace {

core::Instance contended_instance(std::uint64_t seed, std::size_t ns) {
  hydra::util::Xoshiro256 rng(seed);
  core::Instance inst;
  inst.num_cores = 2;
  for (int i = 0; i < 3; ++i) {
    const double period = rng.uniform(20.0, 200.0);
    inst.rt_tasks.push_back(
        rt::make_rt_task("r" + std::to_string(i), rng.uniform(0.1, 0.25) * period, period));
  }
  for (std::size_t i = 0; i < ns; ++i) {
    const double t_des = rng.uniform(800.0, 3000.0);
    inst.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.15, 0.45) * t_des, t_des, 10.0 * t_des));
  }
  return inst;
}

}  // namespace

TEST(Optimal, FeasibleAndValidOnSmallInstance) {
  const auto inst = contended_instance(9, 3);
  const auto allocation = core::OptimalAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
  const auto report = core::validate_allocation(inst, allocation);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(Optimal, DominatesHydraTightness) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const auto inst = contended_instance(seed, 4);
    const auto hydra_alloc = core::HydraAllocator().allocate(inst);
    const auto optimal_alloc = core::OptimalAllocator().allocate(inst);
    if (!hydra_alloc.feasible) continue;  // nothing to dominate
    ASSERT_TRUE(optimal_alloc.feasible) << "optimal must succeed whenever HYDRA does";
    EXPECT_GE(optimal_alloc.cumulative_tightness(inst.security_tasks),
              hydra_alloc.cumulative_tightness(inst.security_tasks) - 1e-6)
        << "seed " << seed;
  }
}

TEST(Optimal, SeparatesHeavyMonitorsThatCannotShareACore) {
  // Two monitors whose combined demand saturates a core: the only feasible
  // assignments use distinct cores, and Optimal must find one.
  core::Instance inst;
  inst.num_cores = 2;
  inst.security_tasks = {rt::make_security_task("a", 800.0, 1000.0, 1500.0),
                         rt::make_security_task("b", 800.0, 1000.0, 1500.0)};
  const auto optimal_alloc = core::OptimalAllocator().allocate(inst);
  ASSERT_TRUE(optimal_alloc.feasible);
  EXPECT_NE(optimal_alloc.placements[0].core, optimal_alloc.placements[1].core);
}

TEST(Optimal, MatchesBruteForceOnTinyCase) {
  // One core, one security task: optimal period = closed form.
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 3.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 200.0, 500.0, 5000.0)};
  const auto allocation = core::OptimalAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  // (200 + 3)/(1 − 0.3) = 290 < 500 → period Tdes, η = 1.
  EXPECT_NEAR(allocation.placements[0].period, 500.0, 1.0);
}

TEST(Optimal, InfeasibleWhenNoAssignmentWorks) {
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r0", 9.0, 10.0), rt::make_rt_task("r1", 9.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 800.0, 1000.0, 1500.0)};
  const auto allocation = core::OptimalAllocator().allocate(inst);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_FALSE(allocation.failure_reason.empty());
}

TEST(Optimal, EnumerationGuardThrows) {
  core::Instance inst;
  inst.num_cores = 4;
  for (int i = 0; i < 12; ++i) {
    inst.security_tasks.push_back(
        rt::make_security_task("s" + std::to_string(i), 1.0, 100.0, 1000.0));
  }
  core::OptimalOptions opts;
  opts.max_assignments = 1000;  // 4^12 »  1000
  EXPECT_THROW(core::OptimalAllocator(opts).allocate(inst), std::invalid_argument);
}

TEST(Optimal, EmptySecuritySetFeasible) {
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r", 1.0, 10.0)};
  const auto allocation = core::OptimalAllocator().allocate(inst);
  EXPECT_TRUE(allocation.feasible);
  EXPECT_TRUE(allocation.placements.empty());
}

// Property: on random small instances, Optimal(SignomialScp) is never beaten
// by HYDRA and both validate independently.
class OptimalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalProperty, DominanceAndValidity) {
  const auto inst = contended_instance(GetParam(), 3);
  const auto hydra_alloc = core::HydraAllocator().allocate(inst);
  const auto optimal_alloc = core::OptimalAllocator().allocate(inst);
  if (optimal_alloc.feasible) {
    const auto report = core::validate_allocation(inst, optimal_alloc);
    EXPECT_TRUE(report.valid) << report.problem;
  }
  if (hydra_alloc.feasible) {
    ASSERT_TRUE(optimal_alloc.feasible);
    EXPECT_GE(optimal_alloc.cumulative_tightness(inst.security_tasks),
              hydra_alloc.cumulative_tightness(inst.security_tasks) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));
