#include "stats/ecdf.h"

#include <algorithm>
#include <numeric>

#include "util/contracts.h"

namespace hydra::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  HYDRA_REQUIRE(!sorted_.empty(), "empirical CDF needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  HYDRA_REQUIRE(p > 0.0 && p <= 1.0, "quantile level must be in (0, 1]");
  const auto n = static_cast<double>(sorted_.size());
  // k = ceil(p·n), clamped to [1, n]; the quantile is the k-th order statistic.
  std::size_t k = static_cast<std::size_t>(p * n);
  if (static_cast<double>(k) < p * n) ++k;
  if (k == 0) k = 1;
  if (k > sorted_.size()) k = sorted_.size();
  return sorted_[k - 1];
}

double EmpiricalCdf::mean() const {
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(double hi,
                                                            std::size_t points) const {
  HYDRA_REQUIRE(points >= 2, "series needs at least two points");
  HYDRA_REQUIRE(hi > 0.0, "series upper bound must be positive");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = hi * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace hydra::stats
