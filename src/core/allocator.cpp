#include "core/allocator.h"

#include <limits>

#include "sec/tightness.h"

namespace hydra::core {

Allocation Allocator::allocate_with_default_partition(const Instance& instance) const {
  instance.validate();
  const auto partition = rt::partition_rt_tasks(instance.rt_tasks, instance.num_cores);
  if (!partition.has_value()) {
    return infeasible_allocation(std::numeric_limits<std::size_t>::max(),
                                 "RT tasks cannot be partitioned on M cores");
  }
  return allocate(instance, *partition);
}

namespace {

DesignPoint finish(const Allocator& scheme, const Instance& instance,
                   Allocation allocation) {
  DesignPoint point;
  point.scheme = scheme.name();
  point.allocation = std::move(allocation);
  if (point.allocation.feasible) {
    point.cumulative_tightness =
        point.allocation.cumulative_tightness(instance.security_tasks);
    const double upper = sec::max_cumulative_tightness(instance.security_tasks);
    point.normalized_tightness = upper > 0.0 ? point.cumulative_tightness / upper : 0.0;
    const auto report =
        validate_allocation(instance, point.allocation, scheme.blocking(),
                            scheme.priority_order(), scheme.schedule_test());
    point.validated = report.valid;
    point.validation_problem = report.problem;
  }
  return point;
}

}  // namespace

DesignPoint evaluate_scheme(const Allocator& scheme, const Instance& instance) {
  return finish(scheme, instance, scheme.allocate(instance));
}

DesignPoint evaluate_scheme(const Allocator& scheme, const Instance& instance,
                            const rt::Partition& rt_partition) {
  return finish(scheme, instance, scheme.allocate(instance, rt_partition));
}

}  // namespace hydra::core
