// Minimal command-line option parser shared by benches and examples.
//
// Supports `--name value` and `--name=value` long options plus `--flag`
// booleans.  Unknown options are an error so typos in experiment sweeps fail
// loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hydra::util {

class CliParser {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input.
  /// Positional (non `--`) arguments are an error unless `allow_positionals`
  /// is set — benches stay typo-strict, while file-consuming tools
  /// (hydra_merge shard0.jsonl shard1.jsonl ...) opt in and read them back
  /// via positionals(), in order.
  ///
  /// Options named in `value_less_flags` never consume a following token as
  /// their value (`--flag=value` still works): without this, a bare boolean
  /// flag in front of a positional would eat it — `--allow-partial s0.jsonl`
  /// must mean "flag on, one positional", not "--allow-partial=s0.jsonl".
  CliParser(int argc, const char* const* argv, bool allow_positionals = false,
            std::vector<std::string> value_less_flags = {});

  /// True if --name was given (with or without a value).
  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --cores 2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> fallback) const;

  /// Comma-separated list of numbers, e.g. --utilizations 0.4,0.8,1.6 —
  /// custom sweep axes without touching code.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// Comma-separated list of strings with surrounding whitespace trimmed,
  /// e.g. --schemes hydra,single-core,optimal.  Empty tokens are dropped; an
  /// explicitly given but empty list is an error.
  std::vector<std::string> get_string_list(const std::string& name,
                                           std::vector<std::string> fallback) const;

  /// Positional arguments in command-line order (empty unless the parser was
  /// constructed with allow_positionals).
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Name of the executable (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace hydra::util
