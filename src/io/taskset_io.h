// Plain-text serialization of problem instances, so workloads can be stored
// next to the code, diffed in review, and loaded by the examples.
//
// Format (one record per line, '#' starts a comment):
//
//     cores 4
//     rt   <name> <wcet_ms> <period_ms> [deadline_ms]
//     sec  <name> <wcet_ms> <tdes_ms> <tmax_ms> [weight]
//
// Times are milliseconds; deadline defaults to the period (implicit), weight
// to 1.
#pragma once

#include <string>

#include "core/instance.h"

namespace hydra::io {

/// Renders the instance in the format above (round-trips with parse).
std::string to_text(const core::Instance& instance);

/// Parses the format above.  Throws std::invalid_argument with a line number
/// on malformed input; the result is validated.
core::Instance instance_from_text(const std::string& text);

/// File wrappers.  Throw std::runtime_error when the file cannot be opened.
void save_instance(const core::Instance& instance, const std::string& path);
core::Instance load_instance(const std::string& path);

}  // namespace hydra::io
