#include "gp/ipm.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "gp/barrier.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/contracts.h"

namespace hydra::gp {

namespace {

/// %g-formatted double for diagnostics (std::to_string renders small
/// residuals as "0.000000").
std::string format_diag(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

linalg::Vector to_log_point(const std::vector<double>& x) {
  linalg::Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    HYDRA_REQUIRE(x[i] > 0.0, "initial guess must be strictly positive");
    y[i] = std::log(x[i]);
  }
  return y;
}

std::vector<double> to_positive_point(const linalg::Vector& y) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[i] = std::exp(y[i]);
  return x;
}

/// Full first/second-order picture of the log-space program at one iterate.
struct Eval {
  double f0 = 0.0;
  linalg::Vector g0;
  linalg::Matrix h0;
  std::vector<double> f;         ///< Fi(y)
  std::vector<linalg::Vector> g; ///< ∇Fi(y)
  std::vector<linalg::Matrix> h; ///< ∇²Fi(y)

  bool finite(std::size_t n) const {
    if (!std::isfinite(f0) || !g0.all_finite()) return false;
    for (double v : f) {
      if (!std::isfinite(v)) return false;
    }
    for (const auto& gi : g) {
      if (!gi.all_finite()) return false;
    }
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        if (!std::isfinite(h0(r, c))) return false;
      }
    }
    return true;
  }
};

Eval evaluate(const GpProblem& problem, const linalg::Vector& y) {
  Eval e;
  LogEval obj = problem.objective().log_eval(y, /*need_hess=*/true);
  e.f0 = obj.value;
  e.g0 = std::move(obj.grad);
  e.h0 = std::move(obj.hess);
  e.f.reserve(problem.constraints().size());
  e.g.reserve(problem.constraints().size());
  e.h.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints()) {
    LogEval le = c.log_eval(y, /*need_hess=*/true);
    e.f.push_back(le.value);
    e.g.push_back(std::move(le.grad));
    e.h.push_back(std::move(le.hess));
  }
  return e;
}

/// IPOPT-style scaled KKT errors at (y, s, λ).
struct Residuals {
  double e0 = 0.0;        ///< error with μ = 0 (convergence test)
  double e_mu = 0.0;      ///< error with the current μ (μ-advance test)
  double theta = 0.0;     ///< Σ_i |Fi + s_i|  (primal infeasibility, 1-norm)
  double primal_inf = 0.0;  ///< max_i |Fi + s_i|
  double worst = 0.0;     ///< max_i Fi(y): signed constraint violation
};

Residuals compute_residuals(const Eval& e, const linalg::Vector& s,
                            const linalg::Vector& lam, double mu) {
  const std::size_t n = e.g0.size();
  const std::size_t m = e.f.size();
  Residuals r;
  linalg::Vector rd = e.g0;
  double lam_l1 = 0.0;
  r.worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) rd[j] += lam[i] * e.g[i][j];
    lam_l1 += lam[i];
    const double rp = e.f[i] + s[i];
    r.theta += std::fabs(rp);
    r.primal_inf = std::fmax(r.primal_inf, std::fabs(rp));
    r.worst = std::fmax(r.worst, e.f[i]);
    const double comp = s[i] * lam[i];
    r.e0 = std::fmax(r.e0, comp);
    r.e_mu = std::fmax(r.e_mu, std::fabs(comp - mu));
  }
  if (m == 0) r.worst = 0.0;
  // Dual/complementarity scaling guards against huge multipliers making the
  // unscaled residual unattainable (IPOPT eq. 6, s_max = 100).
  const double s_max = 100.0;
  const double scale =
      m == 0 ? 1.0 : std::fmax(s_max, lam_l1 / static_cast<double>(m)) / s_max;
  r.e0 = std::fmax(rd.norm_inf() / scale, std::fmax(r.primal_inf, r.e0 / scale));
  r.e_mu = std::fmax(rd.norm_inf() / scale, std::fmax(r.primal_inf, r.e_mu / scale));
  return r;
}

/// θ and barrier objective φ = F0 − μ Σ log s_i at a trial point (value-only).
struct Merit {
  double theta = 0.0;
  double phi = 0.0;
  bool finite = false;
};

Merit trial_merit(const GpProblem& problem, const linalg::Vector& y,
                  const linalg::Vector& s, double mu) {
  Merit m;
  m.phi = problem.objective().log_value(y);
  const auto& cons = problem.constraints();
  for (std::size_t i = 0; i < cons.size(); ++i) {
    if (s[i] <= 0.0) return m;  // not finite: slack left the cone
    m.theta += std::fabs(cons[i].log_value(y) + s[i]);
    m.phi -= mu * std::log(s[i]);
  }
  m.finite = std::isfinite(m.theta) && std::isfinite(m.phi);
  return m;
}

/// Unconstrained programs have no slacks or multipliers; the damped-Newton
/// machinery inside barrier_minimize (with an empty constraint set) is
/// exactly the right tool, so delegate rather than duplicate it.
SolveResult solve_unconstrained(const GpProblem& problem, const linalg::Vector& y0,
                                const IpmOptions& options) {
  SolveResult result;
  try {
    const Posynomial& objective = problem.objective();
    const SmoothFn f0 = [&objective](const linalg::Vector& y, EvalLevel level) {
      FnEval out;
      if (level == EvalLevel::kValue) {
        out.value = objective.log_value(y);
        return out;
      }
      LogEval le = objective.log_eval(y, /*need_hess=*/true);
      out.value = le.value;
      out.grad = std::move(le.grad);
      out.hess = std::move(le.hess);
      return out;
    };
    BarrierOptions bopts;
    bopts.newton_tol = options.tol;
    bopts.unbounded_below = options.unbounded_below;
    const BarrierResult br = barrier_minimize(f0, {}, y0, bopts);
    result.newton_steps = br.newton_steps;
    switch (br.status) {
      case BarrierStatus::kOptimal:
      case BarrierStatus::kMaxIterations:
        result.x = to_positive_point(br.y);
        result.objective = problem.objective().eval(result.x);
        result.kkt_residual = objective.log_eval(br.y, /*need_hess=*/false).grad.norm_inf();
        result.status = SolveStatus::kOptimal;
        if (br.status == BarrierStatus::kMaxIterations) {
          result.converged = false;
          result.message = "ipm: unconstrained Newton budget reached; returning best iterate";
        }
        return result;
      case BarrierStatus::kUnbounded:
        result.status = SolveStatus::kUnbounded;
        result.message = "ipm: unconstrained objective unbounded below";
        return result;
    }
  } catch (const std::exception& e) {
    result.status = SolveStatus::kError;
    result.message = std::string("ipm: unconstrained Newton failed: ") +
                     (e.what()[0] != '\0' ? e.what() : "unnamed exception");
    return result;
  }
  result.status = SolveStatus::kError;
  result.message = "ipm: unconstrained Newton returned an unknown status";
  return result;
}

}  // namespace

SolveResult ipm_solve(const GpProblem& problem,
                      const std::optional<std::vector<double>>& initial_guess,
                      const IpmOptions& options) {
  SolveResult result;
  HYDRA_REQUIRE(problem.has_objective(), "GP has no objective");
  HYDRA_REQUIRE(problem.num_variables() > 0, "GP has no variables");
  const std::size_t n = problem.num_variables();
  const std::size_t m = problem.constraints().size();

  linalg::Vector y(n);
  if (initial_guess.has_value()) {
    HYDRA_REQUIRE(initial_guess->size() == n, "initial guess size mismatch");
    y = to_log_point(*initial_guess);
  }

  if (m == 0) return solve_unconstrained(problem, y, options);

  double mu = options.mu0;
  const double mu_min = options.tol / 10.0;
  double tau = std::fmax(options.tau_min, 1.0 - mu);

  // Slack-form infeasible start: s covers the violation (or the actual slack
  // when the start is feasible), multipliers sit on the central path for μ.
  linalg::Vector s(m), lam(m);
  {
    for (std::size_t i = 0; i < m; ++i) {
      const double fi = problem.constraints()[i].log_value(y);
      if (!std::isfinite(fi)) {
        result.status = SolveStatus::kError;
        result.message = "ipm: non-finite constraint value at the starting point";
        return result;
      }
      s[i] = std::fmax(-fi, 1e-2);
      lam[i] = mu / s[i];
    }
  }

  // Filter of (θ, φ) pairs a trial point must dominate; reset at each μ.
  std::deque<std::pair<double, double>> filter;
  constexpr std::size_t kFilterCapacity = 128;
  double theta_max = 0.0;  // set from θ_0 below

  linalg::SpdWorkspace ws;
  linalg::Matrix newton(n, n);
  linalg::Vector rhs(n), dy(n), ds(m), dlam(m);
  double delta_last = 0.0;
  constexpr double kSigma = 1e10;  // multiplier safeguard corridor

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const Eval e = evaluate(problem, y);
    if (!e.finite(n)) {
      result.status = SolveStatus::kError;
      result.message = "ipm: non-finite evaluation at iteration " + std::to_string(iter);
      result.newton_steps = iter;
      return result;
    }
    if (e.f0 < options.unbounded_below || y.norm_inf() > options.diverged_log) {
      result.status = SolveStatus::kUnbounded;
      result.message = "ipm: objective diverged towards -inf (log-space iterate escaped)";
      result.newton_steps = iter;
      return result;
    }

    const Residuals res = compute_residuals(e, s, lam, mu);
    result.kkt_residual = res.e0;
    if (iter == 0) theta_max = 1e4 * std::fmax(1.0, res.theta);

    if (res.e0 <= options.tol && res.worst <= options.tol) {
      result.status = SolveStatus::kOptimal;
      result.x = to_positive_point(y);
      result.objective = problem.objective().eval(result.x);
      result.newton_steps = iter;
      return result;
    }

    // Monotone Fiacco-McCormick μ schedule: once the μ-perturbed KKT system
    // is solved loosely, tighten μ (superlinearly near the end) and drop the
    // filter, whose φ entries were measured against the old barrier.
    if (mu > mu_min && res.e_mu <= options.kappa_eps * mu) {
      mu = std::fmax(mu_min, std::fmin(options.kappa_mu * mu,
                                       std::pow(mu, options.theta_mu)));
      tau = std::fmax(options.tau_min, 1.0 - mu);
      filter.clear();
      continue;
    }

    // Condensed primal-dual Newton system (W + JᵀDJ + δI) Δy = rhs with
    // D = diag(λ/s); Δs and Δλ recovered by back-substitution below.
    newton.assign(n, n);
    newton += e.h0;
    rhs.assign(n);
    linalg::Vector rd = e.g0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) rd[j] += lam[i] * e.g[i][j];
    }
    for (std::size_t j = 0; j < n; ++j) rhs[j] = -rd[j];
    for (std::size_t i = 0; i < m; ++i) {
      newton.add_scaled(e.h[i], lam[i]);
      newton.add_outer(e.g[i], lam[i] / s[i]);
      const double rp = e.f[i] + s[i];
      const double w = mu / s[i] - lam[i] + (lam[i] / s[i]) * rp;
      for (std::size_t j = 0; j < n; ++j) rhs[j] -= w * e.g[i][j];
    }

    // Inertia correction: grow a diagonal shift δ until the condensed matrix
    // factorizes.  Warm-start the ladder from the last successful shift so a
    // barely-curved stretch does not re-climb from δ0 every iteration.
    bool factored = false;
    double delta = delta_last > 0.0 ? std::fmax(options.delta0, delta_last / 10.0) : 0.0;
    while (true) {
      ws.work = newton;
      if (delta > 0.0) {
        for (std::size_t j = 0; j < n; ++j) ws.work(j, j) += delta;
      }
      if (linalg::cholesky_factorize(ws.work, ws.l)) {
        factored = true;
        break;
      }
      delta = delta == 0.0 ? options.delta0 : delta * options.delta_growth;
      if (delta > options.delta_max) break;
    }
    if (!factored) {
      result.status = SolveStatus::kError;
      result.message = "ipm: inertia correction exhausted (Newton matrix not PD up to shift " +
                       format_diag(options.delta_max) + ")";
      result.newton_steps = iter;
      return result;
    }
    delta_last = delta;
    linalg::cholesky_solve_into(ws.l, rhs, ws.y, ws.x);
    dy = ws.x;
    for (std::size_t i = 0; i < m; ++i) {
      const double rp = e.f[i] + s[i];
      const double jdy = dot(e.g[i], dy);
      ds[i] = -rp - jdy;
      dlam[i] = mu / s[i] - lam[i] + (lam[i] / s[i]) * (rp + jdy);
    }

    // Fraction-to-boundary caps keep s and λ strictly inside the cone.
    double alpha_max = 1.0;
    double alpha_dual = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (ds[i] < 0.0) alpha_max = std::fmin(alpha_max, -tau * s[i] / ds[i]);
      if (dlam[i] < 0.0) alpha_dual = std::fmin(alpha_dual, -tau * lam[i] / dlam[i]);
    }

    // Filter line search on (θ, φ): accept a trial that improves feasibility
    // or the barrier objective past every filter entry and the current pair,
    // or that satisfies Armijo on φ along a descent direction.
    double phi_k = e.f0;
    double dphi = dot(e.g0, dy);
    for (std::size_t i = 0; i < m; ++i) {
      phi_k -= mu * std::log(s[i]);
      dphi -= (mu / s[i]) * ds[i];
    }
    const double theta_k = res.theta;

    double alpha = alpha_max;
    bool accepted = false;
    bool f_type = false;
    Merit trial;
    linalg::Vector y_trial(n), s_trial(m);
    for (int bt = 0; bt < options.max_backtracks; ++bt, alpha *= 0.5) {
      y_trial = y + alpha * dy;
      s_trial = s + alpha * ds;
      trial = trial_merit(problem, y_trial, s_trial, mu);
      if (!trial.finite || trial.theta > theta_max) continue;
      bool filter_ok = true;
      for (const auto& [ft, fp] : filter) {
        if (trial.theta > (1.0 - options.gamma_theta) * ft && trial.phi > fp - options.gamma_phi * ft) {
          filter_ok = false;
          break;
        }
      }
      if (!filter_ok) continue;
      const bool armijo = dphi < 0.0 && trial.phi <= phi_k + options.eta_phi * alpha * dphi;
      const bool pair_ok = trial.theta <= (1.0 - options.gamma_theta) * theta_k ||
                           trial.phi <= phi_k - options.gamma_phi * theta_k;
      if (armijo || pair_ok) {
        accepted = true;
        f_type = armijo && !pair_ok;
        break;
      }
    }

    if (!accepted) {
      result.newton_steps = iter;
      if (theta_k > options.feas_tol) {
        result.status = SolveStatus::kInfeasible;
        result.message = "ipm: restoration — line search stalled at primal infeasibility theta=" +
                         format_diag(theta_k) + "; declaring the program infeasible";
      } else if (res.e0 <= 1e-6 && res.worst <= 1e-7) {
        result.status = SolveStatus::kOptimal;
        result.converged = false;
        result.x = to_positive_point(y);
        result.objective = problem.objective().eval(result.x);
        result.message = "ipm: filter line search stalled near the optimum; returning best iterate";
      } else {
        result.status = SolveStatus::kError;
        result.message = "ipm: filter line search failed (theta=" + format_diag(theta_k) +
                         ", kkt=" + format_diag(res.e0) + ")";
      }
      return result;
    }

    // A θ-type step must block the region it left, or the iteration can
    // cycle; pure Armijo (f-type) steps leave the filter untouched.
    if (!f_type) {
      filter.emplace_back((1.0 - options.gamma_theta) * theta_k,
                          phi_k - options.gamma_phi * theta_k);
      if (filter.size() > kFilterCapacity) filter.pop_front();
    }

    y = y_trial;
    s = s_trial;
    for (std::size_t i = 0; i < m; ++i) {
      lam[i] += alpha_dual * dlam[i];
      // Safeguard corridor (IPOPT's κ_Σ): a multiplier drifting far off the
      // central path for its slack is clipped back, keeping D well scaled.
      lam[i] = std::clamp(lam[i], mu / (kSigma * s[i]), kSigma * mu / s[i]);
    }
  }

  // Budget exhausted: classify the final iterate the same way the stall path
  // does so callers always get a verdict plus diagnostics.
  const Eval e = evaluate(problem, y);
  const Residuals res = compute_residuals(e, s, lam, mu);
  result.kkt_residual = res.e0;
  result.newton_steps = options.max_iterations;
  if (res.e0 <= 1e-6 && res.worst <= 1e-7) {
    result.status = SolveStatus::kOptimal;
    result.converged = false;
    result.x = to_positive_point(y);
    result.objective = problem.objective().eval(result.x);
    result.message = "ipm: iteration budget reached; returning near-optimal iterate";
  } else if (res.theta > options.feas_tol) {
    result.status = SolveStatus::kInfeasible;
    result.message = "ipm: iteration budget reached at primal infeasibility theta=" +
                     format_diag(res.theta);
  } else {
    result.status = SolveStatus::kError;
    result.message = "ipm: iteration budget reached without convergence (kkt=" +
                     format_diag(res.e0) + ")";
  }
  return result;
}

}  // namespace hydra::gp
