// Runtime mode-switching walkthrough: allocate the UAV case study with the
// Contego-style adaptive scheme, print the design-time mode table it commits
// (minimum mode = Tmax, adapted mode = the tightened periods), then EXECUTE
// the adaptation at runtime — the per-core ModeController watches sliding-
// window idle slack and flips each monitor between its two modes at job
// boundaries — and compare what an attacker experiences under the fallback,
// the live controller, and the frozen design-time periods.
//
// The finale is a hand-rolled shared-core scenario where the RT load leaves
// NO analysis-visible slack but its jobs finish below WCET at runtime — the
// controller discovers slack the schedulability analysis could never promise,
// which is exactly the situation mode switching exists for.
//
// Usage: ./build/runtime_adaptation [--cores 2] [--trials 150]
//            [--horizon-s 300] [--seed 3] [--tighten 0.25] [--relax 0.05]
#include <iostream>

#include "core/contego.h"
#include "core/mode_table.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "sim/mode_switch.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;
namespace sim = hydra::sim;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 2));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 150));
  const auto horizon_s = static_cast<std::uint64_t>(cli.get_int("horizon-s", 300));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  const auto instance = hydra::gen::uav_case_study(m);
  const auto allocation = core::ContegoAllocator().allocate(instance);
  if (!allocation.feasible) {
    std::cerr << "unschedulable: " << allocation.failure_reason << "\n";
    return 1;
  }

  // --- The design-time commitment: two feasible period vectors. ---
  const auto table = core::build_mode_table(instance, allocation);
  io::print_banner(std::cout, "Mode table committed by contego (M = " +
                                  std::to_string(m) + ")");
  io::Table modes({"monitor", "core", "min mode Tmax (ms)", "adapted mode (ms)",
                   "headroom"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    modes.add_row({instance.security_tasks[s].name, std::to_string(table.modes[s].core),
                   io::fmt(table.modes[s].min_period, 0),
                   io::fmt(table.modes[s].adapted_period, 0),
                   table.has_headroom(s) ? "yes" : "no"});
  }
  modes.print(std::cout);
  std::cout << table.switchable_tasks() << " of " << instance.security_tasks.size()
            << " monitors can switch at runtime.\n";

  // --- Execute the adaptation and watch the controller work. ---
  sim::DetectionConfig config;
  config.horizon = horizon_s * 1000u * hydra::util::kTicksPerMilli;
  config.trials = trials;
  config.seed = seed;
  // Single-victim scope: the paper's worst-case-across-monitors scope is
  // dominated by the slowest monitor (whose Tmax barely tightens on the UAV
  // set); per-victim latency shows what adaptation buys each monitor.
  config.scope = sim::AttackScope::kSingleTask;
  sim::ModeControllerConfig controller;
  controller.tighten_threshold = cli.get_double("tighten", 0.25);
  controller.relax_threshold = cli.get_double("relax", 0.05);

  const auto adaptive =
      sim::measure_detection_times_adaptive(instance, allocation, config, controller);
  const std::size_t nr = instance.rt_tasks.size();

  io::print_banner(std::cout, "Controller behaviour over " +
                                  std::to_string(horizon_s) + " s");
  io::Table residency({"monitor", "min-mode jobs", "adapted jobs",
                       "adapted residency", "switches"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    residency.add_row(
        {instance.security_tasks[s].name,
         std::to_string(adaptive.modes.min_jobs[nr + s]),
         std::to_string(adaptive.modes.adapted_jobs[nr + s]),
         io::fmt(adaptive.modes.adapted_fraction(nr + s), 3),
         std::to_string(adaptive.modes.switches[nr + s])});
  }
  residency.print(std::cout);
  std::cout << "first switches: ";
  std::size_t shown = 0;
  for (const auto& ev : adaptive.modes.events) {
    if (shown++ == 6) break;
    std::cout << instance.security_tasks[ev.task - nr].name << (ev.to_adapted ? "+" : "-")
              << "@" << hydra::util::to_millis(ev.at) << "ms ";
  }
  std::cout << "(" << adaptive.modes.total_switches() << " total)\n";

  // --- What the attacker sees: fallback vs live controller vs frozen. ---
  const auto fallback = sim::measure_detection_times(
      instance, core::min_mode_allocation(instance, allocation), config);
  const auto frozen = sim::measure_detection_times(instance, allocation, config);

  io::print_banner(std::cout, "Detection latency, " + std::to_string(trials) +
                                  " attacks (uniformly chosen victim monitor)");
  io::Table detection({"policy", "mean (ms)", "p95 (ms)"});
  const auto add_policy = [&](const std::string& name, const std::vector<double>& ms) {
    detection.add_row({name, io::fmt(hydra::stats::summarize(ms).mean, 1),
                       io::fmt(hydra::stats::percentile(ms, 0.95), 1)});
  };
  add_policy("minimum mode (fallback)", fallback.detection_ms);
  add_policy("mode switching (live)", adaptive.detection.detection_ms);
  add_policy("static adapted (frozen)", frozen.detection_ms);
  detection.print(std::cout);

  // --- Runtime slack the analysis cannot see: RT below WCET. ---
  // One shared core, loaded to 80% by WCET analysis: at full WCET the idle
  // fraction (0.2) never reaches the tighten threshold (0.3) and the monitor
  // stays in minimum mode.  The same system with RT jobs finishing at 40-100%
  // of WCET has runtime idle the analysis never promised — the controller
  // spends it on monitoring frequency without leaving the two feasible modes.
  const auto shared_core_run = [&](double exc_fraction_min) {
    sim::ModeTask rt;
    rt.task.name = "control_loop";
    rt.task.wcet = 8 * hydra::util::kTicksPerMilli;
    rt.task.period = 10 * hydra::util::kTicksPerMilli;
    rt.task.deadline = rt.task.period;
    rt.task.priority = 0;
    rt.task.exec_fraction_min = exc_fraction_min;
    sim::ModeTask monitor;
    monitor.task.name = "monitor";
    monitor.task.wcet = 1 * hydra::util::kTicksPerMilli;
    monitor.task.period = 1000 * hydra::util::kTicksPerMilli;  // minimum mode
    monitor.task.deadline = monitor.task.period;
    monitor.task.priority = 1;
    monitor.adapted_period = 100 * hydra::util::kTicksPerMilli;
    sim::ModeSwitchOptions opts;
    opts.horizon = 60u * 1000u * hydra::util::kTicksPerMilli;
    opts.seed = seed;
    opts.controller.tighten_threshold = 0.3;
    opts.controller.relax_threshold = 0.1;
    return sim::simulate_mode_switching({rt, monitor}, opts);
  };
  const auto at_wcet = shared_core_run(1.0);
  const auto below_wcet = shared_core_run(0.4);
  io::print_banner(std::cout, "Shared 80%-loaded core: slack that exists only at runtime");
  io::Table shared({"RT execution", "monitor adapted residency", "switches",
                    "monitor jobs", "deadline misses"});
  const auto add_run = [&](const std::string& label, const sim::ModeSwitchResult& run) {
    shared.add_row({label, io::fmt(run.stats.adapted_fraction(1), 3),
                    std::to_string(run.stats.switches[1]),
                    std::to_string(run.stats.min_jobs[1] + run.stats.adapted_jobs[1]),
                    std::to_string(run.trace.deadline_misses())});
  };
  add_run("always WCET (analysis view)", at_wcet);
  add_run("40-100% of WCET (runtime)", below_wcet);
  shared.print(std::cout);
  std::cout << "\nThe controller turns slack the schedulability analysis can never "
               "promise into monitoring frequency — without ever leaving the two "
               "analysis-feasible mode vectors.\n";
  return 0;
}
