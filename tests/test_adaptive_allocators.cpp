// Tests for the adaptive allocator families (contego, period-adapt, util/*):
// validation-contract conformance, period-mode monotonicity of the
// slack-aware tightening pass, and the hydra-dominates-period-adapt property
// over seeded synthetic batches.
#include <gtest/gtest.h>

#include "core/contego.h"
#include "core/period_adapt.h"
#include "core/registry.h"
#include "core/util_fit.h"
#include "core/validation.h"
#include "exp/metrics.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace gen = hydra::gen;

namespace {

const char* kNewSchemes[] = {"contego",         "contego/no-adapt", "period-adapt",
                             "period-adapt/gp", "util/worst-fit",   "util/best-fit"};

/// Seeded synthetic instances at one utilization: the deterministic batch the
/// property tests run over.
std::vector<core::Instance> seeded_batch(std::size_t count, double utilization,
                                         std::uint64_t seed, std::size_t cores = 2) {
  gen::SyntheticConfig config;
  config.num_cores = cores;
  std::vector<core::Instance> out;
  hydra::util::Xoshiro256 rng(seed);
  while (out.size() < count) {
    const auto drawn = gen::generate_filtered_instance(config, utilization, rng);
    if (drawn.has_value()) out.push_back(drawn->instance);
  }
  return out;
}

}  // namespace

TEST(AdaptiveFamilies, RegistryListsAllSixNewSchemes) {
  const auto& registry = core::AllocatorRegistry::global();
  for (const char* name : kNewSchemes) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.description(name).empty()) << name;
  }
  // The acceptance bar for this milestone: at least 15 named schemes.
  EXPECT_GE(registry.names().size(), 15u);
}

TEST(AdaptiveFamilies, ValidationContractConformanceOnCaseStudyAndSynthetic) {
  // Every new scheme produces allocations that pass the INDEPENDENT validator
  // under its own declared contract — on the UAV case study and on a seeded
  // synthetic batch (where infeasible verdicts are legitimate, invalid
  // feasible ones are not).
  const auto& registry = core::AllocatorRegistry::global();
  std::vector<core::Instance> instances = {hydra::gen::uav_case_study(2),
                                           hydra::gen::uav_case_study(4)};
  for (const auto& extra : seeded_batch(10, 1.2, 99)) instances.push_back(extra);

  for (const char* name : kNewSchemes) {
    const auto scheme = registry.make(name);
    EXPECT_EQ(scheme->schedule_test(), core::ScheduleTest::kLinearBound) << name;
    EXPECT_DOUBLE_EQ(scheme->blocking(), 0.0) << name;
    EXPECT_EQ(scheme->priority_order(), std::nullopt) << name;
    EXPECT_DOUBLE_EQ(scheme->search_space(instances.front()), 1.0) << name;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto point = core::evaluate_scheme(*scheme, instances[i]);
      if (!point.allocation.feasible) continue;
      EXPECT_TRUE(point.validated)
          << name << " instance " << i << ": " << point.validation_problem;
      EXPECT_GT(point.cumulative_tightness, 0.0) << name;
    }
  }
}

TEST(AdaptiveFamilies, ContegoNoAdaptLeavesEveryMonitorInMinimumMode) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto scheme = core::AllocatorRegistry::global().make("contego/no-adapt");
  const auto point = core::evaluate_scheme(*scheme, instance);
  ASSERT_TRUE(point.allocation.feasible);
  ASSERT_TRUE(point.validated) << point.validation_problem;
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    EXPECT_DOUBLE_EQ(point.allocation.placements[s].period,
                     instance.security_tasks[s].period_max);
  }
}

TEST(AdaptiveFamilies, ContegoPeriodsStayBetweenTheTwoModes) {
  const auto scheme = core::AllocatorRegistry::global().make("contego");
  for (const auto& instance : seeded_batch(15, 1.4, 7)) {
    const auto point = core::evaluate_scheme(*scheme, instance);
    if (!point.allocation.feasible) continue;
    for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
      const auto& task = instance.security_tasks[s];
      const auto& place = point.allocation.placements[s];
      EXPECT_GE(place.period, task.period_des - 1e-9) << task.name;
      EXPECT_LE(place.period, task.period_max + 1e-9) << task.name;
    }
  }
}

TEST(AdaptiveFamilies, ContegoAdaptationIsMonotoneInRounds) {
  // Period-mode monotonicity: adaptation never loosens a period, so the
  // cumulative tightness is non-decreasing from no-adapt through increasing
  // round counts, on every instance of a seeded batch.
  for (const auto& instance : seeded_batch(15, 1.3, 21)) {
    double previous = -1.0;
    for (const std::size_t rounds : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      core::ContegoOptions options;
      options.adapt = rounds > 0;
      options.adaptation_rounds = rounds == 0 ? 1 : rounds;
      const auto point =
          core::evaluate_scheme(core::ContegoAllocator(options), instance);
      if (!point.allocation.feasible) {
        previous = -1.0;  // placement infeasible: nothing to compare
        continue;
      }
      ASSERT_TRUE(point.validated) << rounds << " rounds: " << point.validation_problem;
      EXPECT_GE(point.cumulative_tightness, previous - 1e-9)
          << "tightness regressed between rounds";
      previous = point.cumulative_tightness;
    }
  }
}

TEST(AdaptiveFamilies, TightenCorePeriodsNeverLoosensAndStaysFeasible) {
  // Direct unit test of the shared pass: a loaded core where full tightening
  // to Tdes is impossible, so the lp-safety floor must engage.
  const std::vector<hydra::rt::RtTask> rt = {
      hydra::rt::make_rt_task("r1", 10.0, 40.0),   // U = 0.25
      hydra::rt::make_rt_task("r2", 30.0, 120.0),  // U = 0.25
  };
  std::vector<core::CommittedSecurityTask> tasks = {
      {hydra::rt::make_security_task("s1", 60.0, 500.0, 5000.0), 5000.0},
      {hydra::rt::make_security_task("s2", 80.0, 700.0, 7000.0), 7000.0},
      {hydra::rt::make_security_task("s3", 90.0, 900.0, 9000.0), 9000.0},
  };
  const auto before = tasks;
  core::tighten_core_periods(rt, tasks, 0.0, 2);

  core::Instance instance;
  instance.num_cores = 1;
  instance.rt_tasks = rt;
  core::Allocation allocation;
  allocation.feasible = true;
  allocation.rt_partition.num_cores = 1;
  allocation.rt_partition.core_of.assign(rt.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i].period, before[i].period + 1e-9) << "loosened " << i;
    EXPECT_GE(tasks[i].period, tasks[i].task.period_des - 1e-9);
    instance.security_tasks.push_back(tasks[i].task);
    allocation.placements.push_back(core::TaskPlacement{
        0, tasks[i].period, tasks[i].task.period_des / tasks[i].period});
  }
  EXPECT_LT(tasks[0].period, before[0].period);  // something actually tightened
  const auto report = core::validate_allocation(instance, allocation);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(AdaptiveFamilies, HydraDominatesPeriodAdaptOnTightnessOverSeededBatches) {
  // The ISSUE's headline property: placement freedom (hydra adapts WHERE and
  // WHEN) buys at least as much as period freedom alone (period-adapt's fixed
  // partition), instance by instance over seeded batches spanning low to high
  // utilization.
  const auto& registry = core::AllocatorRegistry::global();
  const auto hydra_scheme = registry.make("hydra");
  const auto pa_scheme = registry.make("period-adapt");
  std::size_t both_accepted = 0;
  for (const double utilization : {0.8, 1.2, 1.6}) {
    for (const auto& instance : seeded_batch(20, utilization, 42)) {
      const auto h = core::evaluate_scheme(*hydra_scheme, instance);
      const auto p = core::evaluate_scheme(*pa_scheme, instance);
      if (!h.allocation.feasible || !h.validated) continue;
      if (!p.allocation.feasible || !p.validated) continue;
      ++both_accepted;
      EXPECT_GE(h.cumulative_tightness, p.cumulative_tightness - 1e-9)
          << "u=" << utilization;
    }
  }
  EXPECT_GT(both_accepted, 30u);  // the property must have real coverage
}

TEST(AdaptiveFamilies, PeriodAdaptGpRefinementNeverHurts) {
  // The /gp variant keeps the better of (sequential, joint GP) on the same
  // fixed partition, so per instance it is at least as tight.
  const auto& registry = core::AllocatorRegistry::global();
  const auto seq = registry.make("period-adapt");
  const auto gp = registry.make("period-adapt/gp");
  std::size_t compared = 0;
  for (const auto& instance : seeded_batch(10, 1.2, 5)) {
    const auto s = core::evaluate_scheme(*seq, instance);
    const auto g = core::evaluate_scheme(*gp, instance);
    ASSERT_EQ(s.allocation.feasible, g.allocation.feasible);
    if (!s.allocation.feasible) continue;
    ++compared;
    EXPECT_GE(g.cumulative_tightness, s.cumulative_tightness - 1e-9);
    // Same fixed partition underneath.
    for (std::size_t t = 0; t < instance.security_tasks.size(); ++t) {
      EXPECT_EQ(g.allocation.placements[t].core, s.allocation.placements[t].core);
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(AdaptiveFamilies, UtilWorstFitSpreadsAndBestFitConcentrates) {
  // On the M = 4 UAV case study the two fit rules must differ in how many
  // cores host security work: worst-fit uses at least as many as best-fit.
  const auto instance = hydra::gen::uav_case_study(4);
  const auto& registry = core::AllocatorRegistry::global();
  const auto count_used = [&](const core::Allocation& allocation) {
    std::size_t used = 0;
    for (std::size_t c = 0; c < instance.num_cores; ++c) {
      used += allocation.security_on_core(c).empty() ? 0 : 1;
    }
    return used;
  };
  const auto worst = core::evaluate_scheme(*registry.make("util/worst-fit"), instance);
  const auto best = core::evaluate_scheme(*registry.make("util/best-fit"), instance);
  ASSERT_TRUE(worst.allocation.feasible && worst.validated);
  ASSERT_TRUE(best.allocation.feasible && best.validated);
  EXPECT_GE(count_used(worst.allocation), count_used(best.allocation));
  EXPECT_GT(count_used(worst.allocation), 1u);  // it really spreads
}

TEST(AdaptiveFamilies, PeriodModeMetricsPartitionTheTaskSet) {
  const auto instance = hydra::gen::uav_case_study(2);
  const auto metrics = hydra::exp::period_mode_metrics();
  ASSERT_EQ(metrics.size(), 3u);
  for (const char* name : {"contego", "contego/no-adapt", "hydra"}) {
    const auto point =
        core::evaluate_scheme(*core::AllocatorRegistry::global().make(name), instance);
    ASSERT_TRUE(point.allocation.feasible) << name;
    double total = 0.0;
    for (const auto& metric : metrics) total += metric.compute(instance, point);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(instance.security_tasks.size())) << name;
  }
  // The no-adapt ablation sits entirely in minimum mode.
  const auto no_adapt = core::evaluate_scheme(
      *core::AllocatorRegistry::global().make("contego/no-adapt"), instance);
  EXPECT_DOUBLE_EQ(metrics[1].compute(instance, no_adapt),
                   static_cast<double>(instance.security_tasks.size()));
}
