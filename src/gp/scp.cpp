#include "gp/scp.h"

#include <cmath>

#include "gp/solver_registry.h"
#include "util/contracts.h"

namespace hydra::gp {

Monomial condense(const Posynomial& f, const std::vector<double>& x_bar) {
  HYDRA_REQUIRE(!f.empty(), "cannot condense an empty posynomial");
  const double total = f.eval(x_bar);
  HYDRA_REQUIRE(total > 0.0 && std::isfinite(total), "condensation point must give f > 0");

  // f̂ = Π (u_k/α_k)^{α_k}: coefficient Π (c_k/α_k)^{α_k}, exponents Σ α_k·a_k.
  Monomial out(1.0, f.num_vars());
  double log_coeff = 0.0;
  for (const auto& term : f.terms()) {
    const double alpha = term.eval(x_bar) / total;
    if (alpha <= 0.0) continue;  // vanishing weight contributes nothing
    log_coeff += alpha * (std::log(term.coeff()) - std::log(alpha));
    for (VarId v = 0; v < f.num_vars(); ++v) {
      const double e = term.exponent(v);
      if (e != 0.0) out.with(v, alpha * e);
    }
  }
  return out.scaled(std::exp(log_coeff));
}

namespace {

/// One condensation pass from `x0`; returns the best-seen iterate or nullopt
/// if the very first inner GP fails.  A later inner-GP failure ends the
/// refinement but keeps what was already found.
std::optional<ScpResult> refine_from(const GpProblem& constraints, const Posynomial& objective,
                                     std::vector<double> x0, const ScpOptions& options) {
  // Resolve the backend once and hold it across rounds (the hot path runs
  // dozens of inner solves per refinement).
  const auto solver =
      SolverRegistry::global().make(resolve_gp_backend(options.backend), options.gp);
  ScpResult best;
  double prev = -1.0;

  // The inner GP keeps the same variables and constraint set for every
  // condensation round — only the condensed objective moves — so build the
  // problem once and swap objectives instead of recloning it per round.
  GpProblem gp;
  for (VarId v = 0; v < constraints.num_variables(); ++v) {
    gp.add_variable(constraints.variable_name(v));
  }
  for (std::size_t i = 0; i < constraints.constraints().size(); ++i) {
    gp.add_constraint_leq1(constraints.constraints()[i], constraints.constraint_labels()[i]);
  }

  for (int round = 0; round < options.max_rounds; ++round) {
    // GP: minimize the reciprocal of the monomial lower bound at x0.
    gp.set_objective(Posynomial(condense(objective, x0).reciprocal()));

    const SolveResult sr = solver->solve(gp, x0);
    if (!sr.ok()) {
      if (best.feasible) break;  // keep the best iterate found before the failure
      return std::nullopt;
    }

    const double value = objective.eval(sr.x);
    // Condensation is monotone in exact arithmetic but not under loose inner
    // tolerances, so the latest iterate may be worse than an earlier one:
    // keep the best-seen objective/iterate, not the last.
    if (!best.feasible || value > best.objective) {
      best.feasible = true;
      best.x = sr.x;
      best.objective = value;
    }
    best.rounds = round + 1;
    if (options.on_round) options.on_round(round + 1, sr.x, value);
    if (prev > 0.0 && std::fabs(value - prev) <= options.rel_tol * std::fabs(prev)) break;
    prev = value;
    x0 = sr.x;
  }
  return best;
}

}  // namespace

ScpResult maximize_posynomial_scp(const GpProblem& constraints, const Posynomial& objective,
                                  const std::vector<std::vector<double>>& start_points,
                                  const ScpOptions& options) {
  HYDRA_REQUIRE(objective.num_vars() == constraints.num_variables(),
                "objective/constraint variable count mismatch");
  HYDRA_REQUIRE(!start_points.empty(), "at least one start point required");

  ScpResult best;
  for (const auto& x0 : start_points) {
    HYDRA_REQUIRE(x0.size() == constraints.num_variables(), "start point size mismatch");
    const auto refined = refine_from(constraints, objective, x0, options);
    if (refined.has_value() && refined->feasible &&
        (!best.feasible || refined->objective > best.objective)) {
      best = *refined;
    }
  }
  return best;
}

ScpResult maximize_posynomial_scp_warm(const GpProblem& constraints, const Posynomial& objective,
                                       const std::vector<std::vector<double>>& start_points,
                                       const std::vector<std::vector<double>>& warm_start_points,
                                       const ScpOptions& options) {
  ScpResult best = maximize_posynomial_scp(constraints, objective, start_points, options);

  for (const auto& warm : warm_start_points) {
    if (warm.size() != constraints.num_variables()) continue;
    bool positive = true;
    for (const double w : warm) {
      if (!(w > 0.0) || !std::isfinite(w)) positive = false;
    }
    if (!positive) continue;

    const auto refined = refine_from(constraints, objective, warm, options);
    if (!refined.has_value() || !refined->feasible) continue;
    // Ties (within rel_tol) go to the cold-start result so warm starts can
    // only change the answer when they are materially better — see header.
    if (!best.feasible ||
        refined->objective > best.objective * (1.0 + options.rel_tol) + options.rel_tol) {
      best = *refined;
    }
  }
  return best;
}

}  // namespace hydra::gp
