#include "exp/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/registry.h"

namespace hydra::exp {

namespace {

using SchemeSet = std::vector<std::unique_ptr<core::Allocator>>;

SchemeSet make_schemes(const std::vector<std::string>& names) {
  return core::AllocatorRegistry::global().make_all(names);
}

/// Evaluates every scheme on one batch item.  Pure function of the item (and
/// the spec), which is what makes the engine's output independent of worker
/// count and scheduling order.
std::vector<BatchRow> evaluate_item(const BatchSpec& spec, const BatchItem& item,
                                    const core::Instance* preloaded,
                                    const SchemeSet& schemes,
                                    std::size_t optimal_budget,
                                    const std::vector<RowMetric>& metrics) {
  std::vector<BatchRow> rows;
  rows.reserve(schemes.size());

  BatchRow base;
  base.instance_index = item.index;
  base.instance_label = item.label;
  base.seed = item.seed;

  MaterializedItem materialized;
  const core::Instance* instance = preloaded;
  if (instance == nullptr) {
    materialized = materialize(spec, item);
    if (materialized.instance.has_value()) instance = &*materialized.instance;
    base.rt_utilization = materialized.rt_utilization;
    base.sec_utilization = materialized.sec_utilization;
  }

  if (instance == nullptr) {
    for (const auto& scheme : schemes) {
      BatchRow row = base;
      row.scheme = scheme->name();
      row.status = "no-instance";
      row.note = materialized.error;
      rows.push_back(std::move(row));
    }
    return rows;
  }

  // Cheap schemes report search_space 1, so a budget of 0 (or 1) still runs
  // them while skipping every exhaustive scheme.
  const double budget = static_cast<double>(std::max<std::size_t>(optimal_budget, 1));
  for (const auto& scheme : schemes) {
    BatchRow row = base;
    row.scheme = scheme->name();
    if (scheme->search_space(*instance) > budget) {
      row.status = "skipped";
      row.note = "search space exceeds the engine budget of " +
                 std::to_string(optimal_budget);
      rows.push_back(std::move(row));
      continue;
    }
    try {
      const auto point = core::evaluate_scheme(*scheme, *instance);
      row.feasible = point.allocation.feasible;
      row.validated = point.validated;
      row.cumulative_tightness = point.cumulative_tightness;
      row.normalized_tightness = point.normalized_tightness;
      if (!point.allocation.feasible) {
        row.note = point.allocation.failure_reason;
      } else if (!point.validated) {
        row.note = point.validation_problem;
      } else {
        // Metric hooks only see results that passed independent validation —
        // a metric over an invalid allocation would measure a fiction.
        for (const auto& metric : metrics) {
          row.metrics.emplace_back(metric.name, metric.compute(*instance, point));
        }
      }
    } catch (const std::exception& e) {
      row.status = "error";
      row.note = e.what();
      row.metrics.clear();  // no partial metric lists on error rows
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

// evaluate_item with a last-resort catch: a throw outside the per-scheme try
// (materialization preconditions, allocation failure) becomes one "error"
// row per scheme instead of escaping — essential on worker threads, where an
// escaped exception would terminate the process.
std::vector<BatchRow> evaluate_batch_item(const BatchSpec& spec, const BatchItem& item,
                                          const core::Instance* preloaded,
                                          const SchemeSet& schemes,
                                          std::size_t optimal_budget,
                                          const std::vector<RowMetric>& metrics) {
  try {
    return evaluate_item(spec, item, preloaded, schemes, optimal_budget, metrics);
  } catch (const std::exception& e) {
    std::vector<BatchRow> rows;
    rows.reserve(schemes.size());
    for (const auto& scheme : schemes) {
      BatchRow row;
      row.instance_index = item.index;
      row.instance_label = item.label;
      row.seed = item.seed;
      row.scheme = scheme->name();
      row.status = "error";
      row.note = e.what();
      rows.push_back(std::move(row));
    }
    return rows;
  }
}

namespace {

/// Joins every still-joinable worker on scope exit, so an exception on the
/// coordinating thread (e.g. a sink throwing mid-emission) cannot reach
/// std::thread's terminate-on-destruction.  Workers always drain the shared
/// counter, so the join completes.
struct JoinGuard {
  std::vector<std::thread>& workers;
  ~JoinGuard() {
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
  }
};

}  // namespace

ExplorationEngine::ExplorationEngine(EngineOptions options) : options_(std::move(options)) {
  if (options_.schemes.empty()) {
    throw std::invalid_argument("exploration engine needs at least one scheme");
  }
  // Fail on typos before any work is scheduled (make throws on unknown names).
  make_schemes(options_.schemes);
}

RunSummary ExplorationEngine::run(const BatchSpec& spec,
                                  const std::vector<ResultSink*>& sinks) const {
  const auto started = std::chrono::steady_clock::now();
  const auto items = enumerate(spec);

  RunSummary summary;
  summary.instances = items.size();
  for (auto* sink : sinks) sink->begin();

  const auto emit = [&](std::vector<BatchRow> rows) {
    for (auto& row : rows) {
      if (row.status == "ok") {
        ++summary.evaluated;
        if (row.feasible && row.validated) ++summary.feasible;
      } else if (row.status == "skipped") {
        ++summary.skipped;
      } else {
        ++summary.errors;
      }
      for (auto* sink : sinks) sink->row(row);
      summary.rows.push_back(std::move(row));
    }
  };

  std::size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  jobs = std::min(jobs, std::max<std::size_t>(1, items.size()));

  if (jobs <= 1) {
    const auto schemes = make_schemes(options_.schemes);
    for (const auto& item : items) {
      emit(evaluate_batch_item(spec, item, nullptr, schemes, options_.optimal_budget));
    }
  } else {
    // Reorder buffer: workers drop finished items into `results`; the calling
    // thread emits them strictly by index so sink output order never depends
    // on which worker finished first.
    std::vector<std::vector<BatchRow>> results(items.size());
    std::vector<char> done(items.size(), 0);
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable ready;

    std::vector<std::thread> workers;
    workers.reserve(jobs);
    JoinGuard join_guard{workers};
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        // Per-worker allocator set: schemes are stateless between allocate
        // calls, but giving each worker its own copies removes any sharing
        // question outright.
        const auto schemes = make_schemes(options_.schemes);
        for (std::size_t i = next.fetch_add(1); i < items.size(); i = next.fetch_add(1)) {
          auto rows =
              evaluate_batch_item(spec, items[i], nullptr, schemes, options_.optimal_budget);
          {
            std::lock_guard<std::mutex> lock(mutex);
            results[i] = std::move(rows);
            done[i] = 1;
          }
          ready.notify_one();
        }
      });
    }

    for (std::size_t i = 0; i < items.size(); ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      ready.wait(lock, [&] { return done[i] != 0; });
      auto rows = std::move(results[i]);
      lock.unlock();
      emit(std::move(rows));
    }
  }

  for (auto* sink : sinks) sink->end();
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return summary;
}

RunSummary ExplorationEngine::run_instance(const core::Instance& instance,
                                           const std::vector<ResultSink*>& sinks) const {
  const auto started = std::chrono::steady_clock::now();
  instance.validate();

  RunSummary summary;
  summary.instances = 1;
  for (auto* sink : sinks) sink->begin();

  BatchItem item;
  item.label = "instance";
  const BatchSpec empty_spec;
  const auto schemes = make_schemes(options_.schemes);
  auto rows =
      evaluate_batch_item(empty_spec, item, &instance, schemes, options_.optimal_budget);
  for (auto& row : rows) {
    if (row.status == "ok") {
      ++summary.evaluated;
      if (row.feasible && row.validated) ++summary.feasible;
    } else if (row.status == "skipped") {
      ++summary.skipped;
    } else {
      ++summary.errors;
    }
    for (auto* sink : sinks) sink->row(row);
    summary.rows.push_back(std::move(row));
  }

  for (auto* sink : sinks) sink->end();
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return summary;
}

}  // namespace hydra::exp
