#include "rt/partition.h"

#include <algorithm>
#include <numeric>

#include "rt/analysis.h"
#include "util/contracts.h"

namespace hydra::rt {

std::vector<RtTask> Partition::tasks_on_core(const std::vector<RtTask>& tasks,
                                             std::size_t core) const {
  HYDRA_REQUIRE(tasks.size() == core_of.size(), "partition does not match task set");
  HYDRA_REQUIRE(core < num_cores, "core index out of range");
  std::vector<RtTask> out;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (core_of[i] == core) out.push_back(tasks[i]);
  }
  return out;
}

std::vector<double> Partition::core_utilizations(const std::vector<RtTask>& tasks) const {
  HYDRA_REQUIRE(tasks.size() == core_of.size(), "partition does not match task set");
  std::vector<double> u(num_cores, 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) u[core_of[i]] += tasks[i].utilization();
  return u;
}

namespace {

/// Feasibility of adding `candidate` to a core currently holding `resident`
/// (kept in RM priority order): the whole core must remain RM-schedulable by
/// exact RTA.  core_admits_rm re-analyzes only the candidate and the
/// residents it preempts — placements are identical to rebuilding the trial
/// set and running the full per-core test.
bool fits(const std::vector<RtTask>& resident_by_priority, const RtTask& candidate) {
  return core_admits_rm(resident_by_priority, candidate);
}

/// Inserts `task` after every resident with period <= its own, mirroring
/// where rm_priority_order's stable sort places a last-appended task.
void insert_by_priority(std::vector<RtTask>& resident_by_priority, const RtTask& task) {
  auto it = std::upper_bound(
      resident_by_priority.begin(), resident_by_priority.end(), task,
      [](const RtTask& a, const RtTask& b) { return a.period < b.period; });
  resident_by_priority.insert(it, task);
}

}  // namespace

std::optional<Partition> partition_rt_tasks(const std::vector<RtTask>& tasks,
                                            std::size_t num_cores,
                                            const PartitionOptions& options) {
  HYDRA_REQUIRE(num_cores >= 1, "need at least one core");
  validate(tasks);

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.decreasing_utilization) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return tasks[a].utilization() > tasks[b].utilization();
    });
  }

  Partition partition;
  partition.num_cores = num_cores;
  partition.core_of.assign(tasks.size(), 0);

  std::vector<std::vector<RtTask>> residents(num_cores);
  std::vector<double> load(num_cores, 0.0);
  std::size_t next_fit_cursor = 0;

  for (const std::size_t ti : order) {
    const RtTask& task = tasks[ti];
    std::optional<std::size_t> chosen;

    switch (options.strategy) {
      case FitStrategy::kFirstFit: {
        for (std::size_t c = 0; c < num_cores; ++c) {
          if (fits(residents[c], task)) {
            chosen = c;
            break;
          }
        }
        break;
      }
      case FitStrategy::kBestFit: {
        double best_load = -1.0;
        for (std::size_t c = 0; c < num_cores; ++c) {
          if (fits(residents[c], task) && load[c] > best_load) {
            best_load = load[c];
            chosen = c;
          }
        }
        break;
      }
      case FitStrategy::kWorstFit: {
        double best_load = 2.0;  // any utilization is < 2
        for (std::size_t c = 0; c < num_cores; ++c) {
          if (fits(residents[c], task) && load[c] < best_load) {
            best_load = load[c];
            chosen = c;
          }
        }
        break;
      }
      case FitStrategy::kNextFit: {
        for (std::size_t probe = 0; probe < num_cores; ++probe) {
          const std::size_t c = (next_fit_cursor + probe) % num_cores;
          if (fits(residents[c], task)) {
            chosen = c;
            next_fit_cursor = c;
            break;
          }
        }
        break;
      }
    }

    if (!chosen.has_value()) return std::nullopt;
    insert_by_priority(residents[*chosen], task);
    load[*chosen] += task.utilization();
    partition.core_of[ti] = *chosen;
  }
  return partition;
}

}  // namespace hydra::rt
