// Benchmark-result comparison: the parse/compare/gate logic behind the
// hydra_bench_diff tool, exposed as a library so the regression gate is unit
// testable (the tool is a thin main around these calls).
//
// Inputs are google-benchmark JSON files ("benchmarks" array, one field per
// line — the shape google-benchmark actually emits; we lean on that rather
// than carrying a full JSON parser for two numeric fields).
//
// Comparison semantics the CI gate relies on:
//   * A benchmark present only in the current run is `_new_` — reported,
//     never gated (there is nothing to regress against).
//   * A benchmark present only in the baseline is `_missing_` — reported.
//   * A baseline row with a zero/absent real_time is `_incomparable_`: a
//     0% delta would silently PASS a --fail-over gate, so it is flagged
//     instead of compared.
//   * A compared benchmark fails the gate when real_time grew more than
//     the threshold OR items_per_second DROPPED more than the threshold —
//     wall-time growth and throughput collapse are both regressions.
#pragma once

#include <istream>
#include <map>
#include <string>
#include <vector>

namespace hydra::io {

struct BenchResult {
  double real_time = 0.0;          ///< in `time_unit` (google-benchmark's field)
  std::string time_unit = "ns";
  double items_per_second = -1.0;  ///< -1 = not reported
};

/// Parses google-benchmark JSON from a stream (`origin` names it in errors).
/// Throws std::runtime_error when no benchmarks are found.
std::map<std::string, BenchResult> parse_bench_results(std::istream& in,
                                                       const std::string& origin);

/// File convenience wrapper; throws std::runtime_error when unreadable.
std::map<std::string, BenchResult> load_bench_results(const std::string& path);

/// One benchmark's comparison verdict.
struct BenchDelta {
  enum class Kind {
    kCompared,      ///< both sides present and comparable
    kNew,           ///< current only
    kMissing,       ///< baseline only
    kIncomparable,  ///< baseline real_time zero/absent — no valid delta exists
  };

  std::string name;
  Kind kind = Kind::kCompared;
  BenchResult baseline;     ///< meaningless when kNew
  BenchResult current;      ///< meaningless when kMissing
  double time_pct = 0.0;    ///< real_time change, % (kCompared only)
  bool has_items = false;   ///< both sides reported items_per_second
  double items_pct = 0.0;   ///< items/s change, % (kCompared && has_items)
};

/// Compares current against baseline: current benchmarks in name order
/// (compared / new / incomparable), then baseline-only benchmarks (missing).
std::vector<BenchDelta> diff_bench_results(
    const std::map<std::string, BenchResult>& baseline,
    const std::map<std::string, BenchResult>& current);

/// The --fail-over gate: human-readable violation lines, empty when the gate
/// passes.  `fail_over_pct < 0` disables the gate.  Violations are compared
/// rows whose real_time grew more than `fail_over_pct` percent or whose
/// items_per_second dropped more than `fail_over_pct` percent; new, missing,
/// and incomparable rows never gate (but render flagged, never as 0%).
std::vector<std::string> bench_gate_violations(const std::vector<BenchDelta>& deltas,
                                               double fail_over_pct);

/// GitHub-flavored markdown table (for $GITHUB_STEP_SUMMARY).
std::string render_bench_diff_markdown(const std::vector<BenchDelta>& deltas);

/// Fixed-width terminal table.
std::string render_bench_diff_text(const std::vector<BenchDelta>& deltas);

}  // namespace hydra::io
