// Fig. 3 reproduction: difference in cumulative tightness between HYDRA and
// the optimal (exhaustive) assignment, M = 2, NS ∈ [2, 6].
//
// For every schedulable instance both schemes run against the same best-fit
// RT partition (Allocator::allocate(instance, partition)); the gap is
// Δη = (η_REF − η_CAND)/η_REF × 100 %.  The paper reports ~0 gap at
// low/medium utilization, growing but bounded by ≈22 % at high utilization.
// Defaults compare hydra against optimal; any registered pair whose placement
// honours a shared partition works, e.g. --schemes hydra/first-fit,optimal.
//
// Usage: bench_fig3_optimal_gap [--tasksets 50] [--seed 11]
//                               [--schemes hydra,optimal] [--csv]
//        (the paper's Fig. 3 uses M = 2; the exhaustive comparator is
//         exponential, so per-point taskset counts are smaller than Fig. 2's)
#include <iostream>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "rt/partition.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "optimal"});
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,reference)\n";
    return 2;
  }
  const auto candidate = core::AllocatorRegistry::global().make(scheme_names[0]);
  const auto reference = core::AllocatorRegistry::global().make(scheme_names[1]);

  io::print_banner(std::cout, "Fig. 3: " + candidate->name() + " vs " +
                                  reference->name() +
                                  " exhaustive assignment (M = 2, NS in [2, 6])");
  std::cout << tasksets << " schedulable tasksets per utilization point.\n";

  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;  // NS ∈ [2, 6] as in the paper's Fig. 3
  config.max_sec_per_core = 3;

  io::Table table({"total utilization", "mean gap (%)", "max gap (%)", "samples"});
  hydra::util::Xoshiro256 rng(seed);

  for (int step = 1; step <= 39; ++step) {
    const double u = 0.025 * static_cast<double>(step) * 2.0;
    std::vector<double> gaps;
    int attempts = 0;
    while (static_cast<int>(gaps.size()) < tasksets && attempts < tasksets * 8) {
      ++attempts;
      auto trial_rng = rng.fork();
      const auto drawn = gen::generate_filtered_instance(config, u, trial_rng);
      if (!drawn.has_value()) break;  // utilization point structurally hopeless
      const auto partition = hydra::rt::partition_rt_tasks(drawn->instance.rt_tasks, 2);
      if (!partition.has_value()) continue;
      const auto c = candidate->allocate(drawn->instance, *partition);
      if (!c.feasible) continue;  // the paper compares on schedulable sets
      const auto r = reference->allocate(drawn->instance, *partition);
      if (!r.feasible) continue;  // cannot happen if the candidate succeeded; guard anyway
      const double eta_c = c.cumulative_tightness(drawn->instance.security_tasks);
      const double eta_r = r.cumulative_tightness(drawn->instance.security_tasks);
      gaps.push_back(hydra::stats::gap_percent(eta_r, eta_c));
    }
    if (gaps.empty()) {
      table.add_row({io::fmt(u, 3), "-", "-", "0"});
      continue;
    }
    const auto s = hydra::stats::summarize(gaps);
    table.add_row({io::fmt(u, 3), io::fmt(s.mean, 2), io::fmt(s.max, 2),
                   std::to_string(s.count)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nShape target: gap ~0 at low/medium utilization, growing at "
               "high utilization yet staying well below ~25% (paper: <= 22%).\n";
  return 0;
}
