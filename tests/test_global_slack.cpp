// Tests for the global slack scheduler (paper §V extension): RT cores stay
// exclusive, security jobs fill idle cores by priority and may migrate, and
// the paper's intuition — migration improves detection latency — holds on the
// case study.
#include <gtest/gtest.h>

#include "core/hydra.h"
#include "gen/uav.h"
#include "sim/attack.h"
#include "sim/global_slack.h"
#include "stats/summary.h"

namespace sim = hydra::sim;
namespace core = hydra::core;
using hydra::util::SimTime;

namespace {

sim::GlobalSimTask rt_task(const std::string& name, SimTime wcet, SimTime period,
                           std::size_t core, int priority) {
  sim::SimTask t;
  t.name = name;
  t.wcet = wcet;
  t.period = period;
  t.deadline = period;
  t.core = core;
  t.priority = priority;
  return sim::GlobalSimTask{t, false};
}

sim::GlobalSimTask sec_task(const std::string& name, SimTime wcet, SimTime period,
                            int priority) {
  sim::SimTask t;
  t.name = name;
  t.wcet = wcet;
  t.period = period;
  t.deadline = period;
  t.priority = priority;
  return sim::GlobalSimTask{t, true};
}

}  // namespace

TEST(GlobalSlack, SecurityRunsOnIdleCoreImmediately) {
  // Core 0 is fully busy [0, 50); core 1 idle.  A security job released at 0
  // must start at 0 on core 1 — not wait for core 0's slack.
  const auto rt = rt_task("busy", 50, 100, 0, 0);
  const auto sec = sec_task("mon", 10, 100, 100);
  sim::GlobalSimOptions opts;
  opts.horizon = 100;
  opts.num_cores = 2;
  const auto trace = sim::simulate_global_slack({rt, sec}, opts);
  EXPECT_EQ(trace.jobs[1][0].start, 0u);
  EXPECT_EQ(trace.jobs[1][0].completion, 10u);
  EXPECT_EQ(trace.migrations, 0u);
}

TEST(GlobalSlack, SecurityWaitsWhenAllCoresBusy) {
  // Both cores busy [0, 30): the security job starts at 30.
  const auto rt0 = rt_task("b0", 30, 100, 0, 0);
  const auto rt1 = rt_task("b1", 30, 100, 1, 0);
  const auto sec = sec_task("mon", 10, 100, 100);
  sim::GlobalSimOptions opts;
  opts.horizon = 100;
  opts.num_cores = 2;
  const auto trace = sim::simulate_global_slack({rt0, rt1, sec}, opts);
  EXPECT_EQ(trace.jobs[2][0].start, 30u);
  EXPECT_EQ(trace.jobs[2][0].completion, 40u);
}

TEST(GlobalSlack, JobMigratesAcrossSlackHoles) {
  // Core 1's slack is [0, 20); core 0's is [10, 100).  A 30-tick security job
  // released at 0 runs on core 1 first, then (core 1 becomes busy at 20,
  // core 0 frees at 10) continues on core 0 — one migration, completing well
  // before a static placement on either single core could.
  const auto rt0 = rt_task("rt0", 10, 200, 0, 0);  // busy [0,10) on core 0
  sim::SimTask rt1_task_;
  rt1_task_.name = "rt1";
  rt1_task_.wcet = 80;
  rt1_task_.period = 200;
  rt1_task_.deadline = 200;
  rt1_task_.core = 1;
  rt1_task_.priority = 1;
  rt1_task_.release_offset = 20;  // busy [20,100) on core 1
  const auto sec = sec_task("mon", 30, 200, 100);
  sim::GlobalSimOptions opts;
  opts.horizon = 200;
  opts.num_cores = 2;
  const auto trace =
      sim::simulate_global_slack({rt0, sim::GlobalSimTask{rt1_task_, false}, sec}, opts);
  // The monitor runs [0,?) somewhere: core 1 free at 0 (rt1 not yet released),
  // core 0 busy till 10.  Priority assignment gives it an idle core at 0.
  EXPECT_EQ(trace.jobs[2][0].start, 0u);
  EXPECT_TRUE(trace.jobs[2][0].completed);
  EXPECT_EQ(trace.jobs[2][0].completion, 30u);
  EXPECT_EQ(trace.deadline_misses(), 0u);
}

TEST(GlobalSlack, HigherPrioritySecurityGetsTheSlackFirst) {
  // One idle core, two security jobs released together: the smaller-priority
  // value runs first.
  const auto hi = sec_task("hi", 20, 200, 100);
  const auto lo = sec_task("lo", 20, 200, 101);
  sim::GlobalSimOptions opts;
  opts.horizon = 200;
  opts.num_cores = 1;
  const auto trace = sim::simulate_global_slack({hi, lo}, opts);
  EXPECT_EQ(trace.jobs[0][0].completion, 20u);
  EXPECT_EQ(trace.jobs[1][0].start, 20u);
  EXPECT_EQ(trace.jobs[1][0].completion, 40u);
}

TEST(GlobalSlack, TwoIdleCoresRunSecurityInParallel) {
  const auto a = sec_task("a", 50, 200, 100);
  const auto b = sec_task("b", 50, 200, 101);
  sim::GlobalSimOptions opts;
  opts.horizon = 200;
  opts.num_cores = 2;
  const auto trace = sim::simulate_global_slack({a, b}, opts);
  EXPECT_EQ(trace.jobs[0][0].completion, 50u);
  EXPECT_EQ(trace.jobs[1][0].completion, 50u);  // parallel, not serialized
}

TEST(GlobalSlack, RtTasksNeverMigrateAndKeepTheirCore) {
  const auto rt0 = rt_task("rt0", 40, 100, 0, 0);
  const auto rt1 = rt_task("rt1", 40, 100, 1, 0);
  const auto sec = sec_task("mon", 30, 300, 100);
  sim::GlobalSimOptions opts;
  opts.horizon = 600;
  opts.num_cores = 2;
  const auto trace = sim::simulate_global_slack({rt0, rt1, sec}, opts);
  EXPECT_EQ(trace.deadline_misses(), 0u);
  // RT busy time must land on the right cores: each core carries >= its own
  // RT demand (6 jobs x 40).
  EXPECT_GE(trace.core_busy[0], 240u);
  EXPECT_GE(trace.core_busy[1], 240u);
}

TEST(GlobalSlack, ValidatesInputs) {
  sim::GlobalSimOptions opts;
  opts.horizon = 100;
  opts.num_cores = 1;
  auto bad = sec_task("np", 10, 100, 100);
  bad.task.preemptive = false;  // migration requires preemptivity
  EXPECT_THROW(sim::simulate_global_slack({bad}, opts), std::invalid_argument);

  const auto dup1 = sec_task("a", 10, 100, 100);
  const auto dup2 = sec_task("b", 10, 100, 100);
  EXPECT_THROW(sim::simulate_global_slack({dup1, dup2}, opts), std::invalid_argument);

  auto misplaced = rt_task("r", 10, 100, 7, 0);
  EXPECT_THROW(sim::simulate_global_slack({misplaced}, opts), std::invalid_argument);
}

TEST(GlobalSlack, DetectionNeverWorseThanStaticOnCaseStudy) {
  // The §V intuition: with the same periods, letting monitors use any core's
  // slack cannot hurt (and usually helps) detection latency.
  for (const std::size_t m : {2u, 4u}) {
    const auto inst = hydra::gen::uav_case_study(m);
    const auto allocation = core::HydraAllocator().allocate(inst);
    ASSERT_TRUE(allocation.feasible);
    sim::DetectionConfig config;
    config.horizon = 200u * 1000u * hydra::util::kTicksPerMilli;
    config.trials = 150;
    config.seed = 5;
    const auto fixed = sim::measure_detection_times(inst, allocation, config);
    const auto global = sim::measure_detection_times_global(inst, allocation, config);
    ASSERT_GT(fixed.detection_ms.size(), 0u);
    ASSERT_GT(global.detection_ms.size(), 0u);
    EXPECT_EQ(global.deadline_misses, 0u);
    EXPECT_LE(hydra::stats::summarize(global.detection_ms).mean,
              hydra::stats::summarize(fixed.detection_ms).mean * 1.05)
        << "M = " << m;
  }
}
