// Human-readable schedule inspection: ASCII Gantt charts and CSV export of
// recorded execution segments.  Requires a trace captured with
// SimOptions::record_segments = true.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/task.h"

namespace hydra::sim {

struct GanttOptions {
  util::SimTime from = 0;   ///< window start
  util::SimTime to = 0;     ///< window end (0 = trace horizon)
  std::size_t width = 100;  ///< characters per core row
};

/// Renders one row per core over [from, to): each column is a time bucket
/// showing the letter of the task that ran longest within it ('.' = idle,
/// lowercase a.. for the first 26 tasks, '?' beyond).  A legend line maps
/// letters to task names.
std::string render_gantt(const Trace& trace, const std::vector<SimTask>& tasks,
                         const GanttOptions& options = {});

/// Writes segments as CSV: task,name,core,from_us,to_us.
void write_segments_csv(const Trace& trace, const std::vector<SimTask>& tasks,
                        std::ostream& os);

/// Writes per-job records as CSV: task,name,job,release_us,start_us,
/// completion_us,completed,deadline_missed.
void write_jobs_csv(const Trace& trace, const std::vector<SimTask>& tasks, std::ostream& os);

}  // namespace hydra::sim
