// Independent re-validation of an allocation — recomputes Eq. (4) and
// Eq. (6) for every security task from nothing but the instance, the RT
// partition and the claimed placements.  Deliberately does not share code
// with the allocators so tests catch allocator bugs instead of reproducing
// them.  Also checks that the RT partition itself is RM-schedulable (the
// "do not perturb the real-time tasks" premise).
#pragma once

#include <string>

#include "core/instance.h"

namespace hydra::core {

struct ValidationReport {
  bool valid = false;
  std::string problem;  ///< empty when valid; first violation otherwise
};

/// Which schedulability test the allocator used (and hence which one the
/// validator must re-check): the paper's linear Eq. (5)/(6) bound, or exact
/// response-time analysis (PeriodSolver::kExactRta allocations satisfy the
/// latter but not necessarily the conservative former).
enum class ScheduleTest {
  kLinearBound,
  kExactRta,
};

/// Full check of a feasible allocation.  An infeasible allocation is vacuously
/// "valid" only if it is marked infeasible; passing one returns a report
/// saying so.  `priority_order` must match the order the allocator used
/// (absent = the paper's ascending-Tmax rule).
ValidationReport validate_allocation(
    const Instance& instance, const Allocation& allocation, util::Millis blocking = 0.0,
    const std::optional<std::vector<std::size_t>>& priority_order = std::nullopt,
    ScheduleTest test = ScheduleTest::kLinearBound);

}  // namespace hydra::core
