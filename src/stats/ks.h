// Two-sample Kolmogorov–Smirnov machinery: quantifies how far apart two
// empirical CDFs are (used to report the HYDRA-vs-SingleCore separation in
// Fig. 1 as a number rather than eyeballed curves) and whether one curve
// stochastically dominates the other.
#pragma once

#include "stats/ecdf.h"

namespace hydra::stats {

/// sup_x |F_a(x) − F_b(x)| evaluated exactly (at the jump points of both
/// CDFs, where the supremum of step functions is attained).
double ks_statistic(const EmpiricalCdf& a, const EmpiricalCdf& b);

/// Signed one-sided variants: sup_x (F_a(x) − F_b(x)) — how far a gets above b.
double ks_statistic_one_sided(const EmpiricalCdf& a, const EmpiricalCdf& b);

/// True iff F_a(x) ≥ F_b(x) − slack for all x: a (weakly) stochastically
/// dominates b, i.e. a's samples are distributionally smaller.  `slack`
/// absorbs sampling noise.
bool dominates(const EmpiricalCdf& a, const EmpiricalCdf& b, double slack = 0.0);

}  // namespace hydra::stats
