// Scalar summaries and the accounting helpers the experiment harnesses share:
// acceptance-ratio counters (Fig. 2) and relative-change computations.
#pragma once

#include <cstddef>
#include <vector>

namespace hydra::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Throws on empty input.
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolation percentile (the R-7 / NumPy "linear" definition):
/// with the samples sorted ascending, rank h = p·(n−1) and the result is
/// x[⌊h⌋] + (h − ⌊h⌋)·(x[⌊h⌋+1] − x[⌊h⌋]).  Degenerate cases are exact:
/// n = 1 returns the sample for every p, p = 0 the minimum, p = 1 the
/// maximum, and an even-n median averages the two middle samples.  The input
/// need not be sorted (a copy is sorted internally).  Throws on empty input
/// or p outside [0, 1].
double percentile(std::vector<double> samples, double p);

/// percentile() over already-ascending samples, without the copy/sort — the
/// aggregation layer sorts once and reads several levels.  Requires sorted
/// input (the contract checks the boundary samples; interior disorder is the
/// caller's responsibility).
double percentile_sorted(const std::vector<double>& sorted_samples, double p);

/// Normal-approximation 95 % confidence interval for the mean:
/// mean ± 1.96·s/√n (s = sample standard deviation).  Degenerates to a point
/// for n = 1.  Throws on empty input.
struct MeanCi {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
MeanCi mean_ci95(const std::vector<double>& samples);

/// Counts schedulable-vs-generated tasksets for one (scheme, utilization)
/// cell of the Fig. 2 sweep.
struct AcceptanceCounter {
  std::size_t accepted = 0;
  std::size_t total = 0;

  void record(bool schedulable) {
    ++total;
    if (schedulable) ++accepted;
  }
  /// δ = accepted/total; 0 when nothing was generated.
  double ratio() const {
    return total == 0 ? 0.0 : static_cast<double>(accepted) / static_cast<double>(total);
  }
};

/// Relative improvement of `ours` over `baseline` in percent:
/// (ours − baseline)/baseline × 100.  Returns 0 when both are 0 and +100 when
/// only the baseline is 0 (the convention used for Fig. 2, where SingleCore's
/// acceptance hits zero first).  NOTE: the paper prints the formula
/// (δ_SingleCore − δ_HYDRA)/δ_SingleCore, which is negative whenever HYDRA is
/// better while its Fig. 2 shows positive improvements — a sign typo we
/// correct here (EXPERIMENTS.md, Fig. 2 notes).
double improvement_percent(double ours, double baseline);

/// Relative gap of `approx` below `reference` in percent:
/// (reference − approx)/reference × 100 (Fig. 3's Δη).  0 when reference is 0.
double gap_percent(double reference, double approx);

/// Fig. 2's improvement metric, normalized to stay within the paper's 0–100 %
/// axis: (δ_HYDRA − δ_SingleCore)/δ_HYDRA × 100.  The paper's printed formula
/// divides by δ_SingleCore (unbounded, and with the operands swapped it would
/// be negative whenever HYDRA wins); dividing by the larger ratio is the only
/// reading consistent with the plotted range.  0 when δ_HYDRA is 0.
double acceptance_improvement_percent(double hydra_ratio, double single_core_ratio);

}  // namespace hydra::stats
