#include "core/registry.h"

#include <stdexcept>

#include "core/contego.h"
#include "core/hydra.h"
#include "core/optimal.h"
#include "core/period_adapt.h"
#include "core/single_core.h"
#include "core/util_fit.h"

namespace hydra::core {

void AllocatorRegistry::add(std::string name, std::string description, Factory factory) {
  if (name.empty()) throw std::invalid_argument("registry: empty scheme name");
  if (!factory) throw std::invalid_argument("registry: null factory for '" + name + "'");
  if (find(name) != nullptr) {
    throw std::invalid_argument("registry: duplicate scheme name '" + name + "'");
  }
  entries_.push_back({std::move(name), std::move(description), std::move(factory)});
}

bool AllocatorRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const AllocatorRegistry::Entry* AllocatorRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<Allocator> AllocatorRegistry::make(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    throw std::invalid_argument("unknown allocation scheme '" + name +
                                "' (registered: " + known + ")");
  }
  auto allocator = entry->factory();
  allocator->set_name(entry->name);
  return allocator;
}

std::vector<std::unique_ptr<Allocator>> AllocatorRegistry::make_all(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    throw std::invalid_argument("scheme selection names no schemes");
  }
  std::vector<std::unique_ptr<Allocator>> allocators;
  allocators.reserve(names.size());
  for (const auto& name : names) {
    allocators.push_back(make(name));
  }
  return allocators;
}

std::vector<std::string> AllocatorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

const std::string& AllocatorRegistry::description(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown allocation scheme '" + name + "'");
  }
  return entry->description;
}

namespace {

AllocatorRegistry build_global() {
  AllocatorRegistry registry;
  registry.add("hydra", "HYDRA, paper defaults (Algorithm 1, closed-form Eq. 7)",
               [] { return std::make_unique<HydraAllocator>(); });
  registry.add("hydra/gp", "HYDRA with the paper's GP subproblem solver", [] {
    HydraOptions options;
    options.solver = PeriodSolver::kGeometricProgram;
    return std::make_unique<HydraAllocator>(options);
  });
  registry.add("hydra/exact-rta",
               "HYDRA with exact response-time analysis (tighter periods)", [] {
                 HydraOptions options;
                 options.solver = PeriodSolver::kExactRta;
                 return std::make_unique<HydraAllocator>(options);
               });
  registry.add("hydra/first-fit",
               "ablation: first feasible core instead of argmax tightness", [] {
                 HydraOptions options;
                 options.core_pick = CorePick::kFirstFeasible;
                 return std::make_unique<HydraAllocator>(options);
               });
  registry.add("hydra/least-loaded", "ablation: least-loaded feasible core", [] {
    HydraOptions options;
    options.core_pick = CorePick::kLeastLoaded;
    return std::make_unique<HydraAllocator>(options);
  });
  registry.add("hydra/worst-tightness",
               "ablation: adversarial argmin-tightness core pick", [] {
                 HydraOptions options;
                 options.core_pick = CorePick::kWorstTightness;
                 return std::make_unique<HydraAllocator>(options);
               });
  registry.add("hydra/tie=lowest-index",
               "ablation: lowest-index tie break (default spreads load)", [] {
                 HydraOptions options;
                 options.tie_break = TieBreak::kLowestIndex;
                 return std::make_unique<HydraAllocator>(options);
               });
  registry.add("single-core", "all security tasks isolated on a dedicated core",
               [] { return std::make_unique<SingleCoreAllocator>(); });
  registry.add("single-core/joint",
               "single-core with joint GP refinement of the dedicated core", [] {
                 SingleCoreOptions options;
                 options.joint_refinement = true;
                 return std::make_unique<SingleCoreAllocator>(options);
               });
  registry.add("optimal",
               "exhaustive assignment search, signomial SCP joint periods",
               [] { return std::make_unique<OptimalAllocator>(); });
  registry.add("optimal/sum-surrogate",
               "exhaustive assignment search, sum-surrogate GP objective", [] {
                 OptimalOptions options;
                 options.joint.objective = JointObjective::kSumSurrogate;
                 return std::make_unique<OptimalAllocator>(options);
               });
  registry.add("contego",
               "Contego-style adaptive allocation: minimum-mode placement, "
               "slack-aware opportunistic tightening",
               [] { return std::make_unique<ContegoAllocator>(); });
  registry.add("contego/no-adapt",
               "ablation: Contego placement with every monitor left in minimum "
               "mode (Tmax)",
               [] {
                 ContegoOptions options;
                 options.adapt = false;
                 return std::make_unique<ContegoAllocator>(options);
               });
  registry.add("period-adapt",
               "period-adaptation-only baseline: fixed first-fit partition, "
               "per-core slack-aware period optimization",
               [] { return std::make_unique<PeriodAdaptAllocator>(); });
  registry.add("period-adapt/gp",
               "period adaptation with joint GP (signomial SCP) refinement of "
               "the fixed partition",
               [] {
                 PeriodAdaptOptions options;
                 options.joint_gp = true;
                 return std::make_unique<PeriodAdaptAllocator>(options);
               });
  registry.add("util/worst-fit",
               "utilization-aware worst-fit: least security-loaded feasible core",
               [] { return std::make_unique<UtilFitAllocator>(); });
  registry.add("util/best-fit",
               "utilization-aware best-fit: most security-loaded feasible core",
               [] {
                 UtilFitOptions options;
                 options.fit = UtilFit::kBestFit;
                 return std::make_unique<UtilFitAllocator>(options);
               });
  return registry;
}

}  // namespace

AllocatorRegistry& AllocatorRegistry::global() {
  static AllocatorRegistry registry = build_global();
  return registry;
}

std::string scheme_catalog_markdown(const AllocatorRegistry& registry) {
  std::string out;
  out += "# Scheme catalog\n\n";
  out += "Every allocation scheme registered in `AllocatorRegistry::global()`, in\n";
  out += "registration order.  The name is the stable identifier accepted by every\n";
  out += "`--schemes` flag and stamped verbatim on result rows.\n\n";
  out += "**Generated file — do not edit by hand.**  Regenerate after touching the\n";
  out += "registry with `./build/bench_table1_catalog --catalog-out "
         "docs/scheme-catalog.md`\n";
  out += "(or `HYDRA_UPDATE_CATALOG=1 ./build/test_scheme_catalog`); the ctest suite\n";
  out += "`test_scheme_catalog` fails whenever this file and the registry disagree.\n\n";
  out += "| Name | Description |\n|---|---|\n";
  for (const auto& name : registry.names()) {
    out += "| `" + name + "` | " + registry.description(name) + " |\n";
  }
  return out;
}

}  // namespace hydra::core
