#include "gen/randfixedsum.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace hydra::gen {

std::vector<double> randfixedsum(std::size_t n, double sum, double lo, double hi,
                                 util::Xoshiro256& rng) {
  HYDRA_REQUIRE(n >= 1, "randfixedsum: need at least one value");
  HYDRA_REQUIRE(lo < hi, "randfixedsum: empty range");
  const double nd = static_cast<double>(n);
  HYDRA_REQUIRE(nd * lo <= sum + 1e-12 && sum <= nd * hi + 1e-12,
                "randfixedsum: sum unreachable with given bounds");

  // Rescale to the unit cube: components in [0, 1], target sum s in [0, n].
  double s = (sum - nd * lo) / (hi - lo);
  s = std::clamp(s, 0.0, nd);

  if (n == 1) return {lo + (hi - lo) * s};

  // k: integer part of s, constrained so both s1 and s2 stay in [0, 1] where
  // they are used.
  const double kd = std::clamp(std::floor(s), 0.0, nd - 1.0);
  s = std::clamp(s, kd, kd + 1.0);
  const std::size_t k = static_cast<std::size_t>(kd);

  // s1[j] = s − (k − j),  s2[j] = (k + n − j) − s   for j = 0..n−1.
  std::vector<double> s1(n), s2(n);
  for (std::size_t j = 0; j < n; ++j) {
    s1[j] = s - (kd - static_cast<double>(j));
    s2[j] = (kd + nd - static_cast<double>(j)) - s;
  }

  // Probability table w (n rows, n+1 columns) and transition table t
  // (n−1 rows, n columns), exactly as in the MATLAB original.
  const double huge_val = std::numeric_limits<double>::max();
  const double tiny_val = std::numeric_limits<double>::min();
  std::vector<std::vector<double>> w(n, std::vector<double>(n + 1, 0.0));
  std::vector<std::vector<double>> t(n - 1, std::vector<double>(n, 0.0));
  w[0][1] = huge_val;

  for (std::size_t i = 2; i <= n; ++i) {
    const double id = static_cast<double>(i);
    for (std::size_t j = 0; j < i; ++j) {
      // tmp1 = w(i−1, j+1)·s1(j)/i ; tmp2 = w(i−1, j)·s2(n−i+j)/i  (0-based).
      const double tmp1 = w[i - 2][j + 1] * s1[j] / id;
      const double tmp2 = w[i - 2][j] * s2[n - i + j] / id;
      w[i - 1][j + 1] = tmp1 + tmp2;
      const double tmp3 = w[i - 1][j + 1] + tiny_val;
      if (s2[n - i + j] > s1[j]) {
        t[i - 2][j] = tmp2 / tmp3;
      } else {
        t[i - 2][j] = 1.0 - tmp1 / tmp3;
      }
    }
  }

  // Conditional sampling pass.
  std::vector<double> x(n, 0.0);
  double s_work = s;
  std::size_t j = k + 1;  // 1-based column into t
  double sm = 0.0;
  double pr = 1.0;
  for (std::size_t back = n - 1; back >= 1; --back) {  // MATLAB loop i = n−1..1
    const double id = static_cast<double>(back);
    const bool e = rng.uniform01() <= t[back - 1][j - 1];
    const double sx = std::pow(rng.uniform01(), 1.0 / id);
    sm += (1.0 - sx) * pr * s_work / (id + 1.0);
    pr *= sx;
    x[n - back - 1] = sm + pr * (e ? 1.0 : 0.0);
    if (e) {
      s_work -= 1.0;
      j -= 1;
    }
  }
  x[n - 1] = sm + pr * s_work;

  // Random permutation — components are exchangeable only after shuffling.
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(0, i));
    std::swap(x[i], x[pick]);
  }

  for (auto& v : x) v = lo + (hi - lo) * std::clamp(v, 0.0, 1.0);
  return x;
}

}  // namespace hydra::gen
