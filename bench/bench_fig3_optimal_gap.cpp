// Fig. 3 reproduction: difference in cumulative tightness between HYDRA and
// the optimal (exhaustive) assignment, M = 2, NS ∈ [2, 6].
//
// Runs as one exp::Sweep over the utilization axis with the reference scheme
// configured on the exp::Aggregator: the gap Δη = (η_REF − η_CAND)/η_REF ×
// 100 % is joined per instance over the instances BOTH schemes accepted —
// the paper's "schedulable task sets" protocol — and the mean/max columns
// come straight off the aggregated cells.  Both schemes partition the RT
// tasks best-fit over all M cores, so they run on identical footing.  The
// paper reports ~0 gap at low/medium utilization, growing but bounded by
// ≈22 % at high utilization.
//
// Usage: bench_fig3_optimal_gap [--tasksets 50] [--seed 11]
//                               [--schemes hydra,optimal] [--jobs 1]
//                               [--out rows.jsonl] [--resume rows.jsonl]
//                               [--shard i/N] [--agg-out cells.jsonl] [--csv]
//        (the paper's Fig. 3 uses M = 2; the exhaustive comparator is
//         exponential, so per-point taskset counts are smaller than Fig. 2's)
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/aggregate.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "optimal"});
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,reference)\n";
    return 2;
  }

  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;  // NS ∈ [2, 6] as in the paper's Fig. 3
  config.max_sec_per_core = 3;

  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.replications = tasksets;
  spec.base_seed = seed;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  if (shard.count > 1 && cli.has("agg-out")) {
    // A shard sees a fraction of every cell's samples; its aggregate file
    // would be indistinguishable from a full-grid one downstream.
    std::cerr << "--agg-out is not available on a sharded run: merge the shard "
                 "outputs with hydra_merge, then rerun with --resume "
                 "merged.jsonl --agg-out\n";
    return 2;
  }
  const std::string out_path = cli.get_string("out", "");
  if (shard.count > 1 && out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    std::cerr << "--shard needs a JSONL --out (the shard header and "
                 "hydra_merge have no CSV form)\n";
    return 2;
  }
  spec.add_utilization_grid(
      config, cli.get_double_list("utilizations", hexp::utilization_axis(2)));
  const hexp::Sweep sweep(std::move(spec));

  hexp::AggregateOptions agg_options;
  agg_options.reference_scheme = scheme_names[1];
  hexp::Aggregator aggregator(agg_options);

  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    // Sharded checkpoints open with a self-describing header so hydra_merge
    // can verify the shard set belongs together and is complete.
    const std::string header =
        shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
    file_sink = hexp::make_file_sink(cli.get_string("out", ""), header);
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Fig. 3: " + scheme_names[0] + " vs " + scheme_names[1] +
                                  " exhaustive assignment (M = 2, NS in [2, 6])");
  std::cout << tasksets << " tasksets per utilization point.\n";
  if (shard.count > 1) {
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << sweep.shard_header().cells
              << " of the grid's cells run here; merge the shard outputs with "
                 "hydra_merge (tables below cover this shard only).\n";
  }

  const auto summary = sweep.run(sinks);
  const auto cells = aggregator.cells();

  io::Table table({"total utilization", "mean gap (%)", "max gap (%)", "samples"});
  for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
    const auto& point = sweep.spec().points[p];
    const auto* cell = hexp::Aggregator::find(cells, p, scheme_names[0]);
    if (cell == nullptr || cell->gap_samples == 0) {
      table.add_row({io::fmt(point.total_utilization, 3), "-", "-", "0"});
      continue;
    }
    table.add_row({io::fmt(point.total_utilization, 3), io::fmt(cell->gap_mean_percent, 2),
                   io::fmt(cell->gap_max_percent, 2), std::to_string(cell->gap_samples)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (cli.has("agg-out")) {
    std::ofstream agg(cli.get_string("agg-out", ""));
    aggregator.write_jsonl(agg);
  }
  if (summary.resumed_cells > 0) {
    std::cout << "\nresumed " << summary.resumed_cells << " of " << summary.cells
              << " cells from " << sweep.spec().resume_path << "\n";
  }
  std::cout << "\nShape target: gap ~0 at low/medium utilization, growing at "
               "high utilization yet staying well below ~25% (paper: <= 22%).\n";
  return 0;
}
