// Direct tests of the barrier interior-point core (below the GP wrapper):
// known convex programs, strict-feasibility enforcement, unboundedness, and
// the value-only / full evaluation contract.
#include <gtest/gtest.h>

#include <cmath>

#include "gp/barrier.h"

namespace gp = hydra::gp;
namespace la = hydra::linalg;

namespace {

/// f(y) = Σ (y_i − c_i)² — smooth, strongly convex, minimum at c.
gp::SmoothFn quadratic(std::vector<double> center) {
  return [center](const la::Vector& y, gp::EvalLevel level) {
    gp::FnEval out;
    const std::size_t n = y.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double d = y[i] - center[i];
      out.value += d * d;
    }
    if (level == gp::EvalLevel::kFull) {
      out.grad = la::Vector(n);
      out.hess = la::Matrix(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        out.grad[i] = 2.0 * (y[i] - center[i]);
        out.hess(i, i) = 2.0;
      }
    }
    return out;
  };
}

/// Linear constraint a·y + b < 0.
gp::SmoothFn halfspace(std::vector<double> a, double b) {
  return [a, b](const la::Vector& y, gp::EvalLevel level) {
    gp::FnEval out;
    out.value = b;
    for (std::size_t i = 0; i < y.size(); ++i) out.value += a[i] * y[i];
    if (level == gp::EvalLevel::kFull) {
      out.grad = la::Vector(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) out.grad[i] = a[i];
      out.hess = la::Matrix(y.size(), y.size());
    }
    return out;
  };
}

}  // namespace

TEST(Barrier, UnconstrainedQuadraticFindsCenter) {
  la::Vector y0(2);
  const auto r = gp::barrier_minimize(quadratic({3.0, -1.5}), {}, y0);
  EXPECT_EQ(r.status, gp::BarrierStatus::kOptimal);
  EXPECT_NEAR(r.y[0], 3.0, 1e-6);
  EXPECT_NEAR(r.y[1], -1.5, 1e-6);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(Barrier, ActiveHalfspaceConstraint) {
  // min (y0 − 3)² s.t. y0 <= 1: optimum at the boundary y0 = 1.
  la::Vector y0(1);
  y0[0] = 0.0;
  const auto r =
      gp::barrier_minimize(quadratic({3.0}), {halfspace({1.0}, -1.0)}, y0);
  EXPECT_EQ(r.status, gp::BarrierStatus::kOptimal);
  EXPECT_NEAR(r.y[0], 1.0, 1e-4);
  EXPECT_NEAR(r.objective, 4.0, 1e-3);
}

TEST(Barrier, InactiveConstraintDoesNotBias) {
  // Same program but the constraint sits far from the optimum.
  la::Vector y0(1);
  const auto r =
      gp::barrier_minimize(quadratic({3.0}), {halfspace({1.0}, -100.0)}, y0);
  EXPECT_NEAR(r.y[0], 3.0, 1e-5);
}

TEST(Barrier, MultipleConstraintsPolytope) {
  // min ||y − (5,5)||² over the box −1 <= y_i <= 2: optimum at (2,2).
  la::Vector y0(2);
  const std::vector<gp::SmoothFn> cons{
      halfspace({1.0, 0.0}, -2.0), halfspace({-1.0, 0.0}, -1.0),
      halfspace({0.0, 1.0}, -2.0), halfspace({0.0, -1.0}, -1.0)};
  const auto r = gp::barrier_minimize(quadratic({5.0, 5.0}), cons, y0);
  EXPECT_NEAR(r.y[0], 2.0, 1e-4);
  EXPECT_NEAR(r.y[1], 2.0, 1e-4);
}

TEST(Barrier, InfeasibleStartRejected) {
  la::Vector y0(1);
  y0[0] = 5.0;  // violates y <= 1
  EXPECT_THROW(gp::barrier_minimize(quadratic({0.0}), {halfspace({1.0}, -1.0)}, y0),
               std::invalid_argument);
  // Boundary (not strictly feasible) also rejected.
  y0[0] = 1.0;
  EXPECT_THROW(gp::barrier_minimize(quadratic({0.0}), {halfspace({1.0}, -1.0)}, y0),
               std::invalid_argument);
}

TEST(Barrier, EmptyStartRejected) {
  EXPECT_THROW(gp::barrier_minimize(quadratic({}), {}, la::Vector()),
               std::invalid_argument);
}

TEST(Barrier, UnboundedLinearObjectiveDetected) {
  // min y0 with no constraints diverges to −inf.
  la::Vector y0(1);
  const auto r = gp::barrier_minimize(halfspace({1.0}, 0.0), {}, y0);
  EXPECT_EQ(r.status, gp::BarrierStatus::kUnbounded);
}

TEST(Barrier, ValueLevelNeverAsksForDerivatives) {
  // The contract: EvalLevel::kValue calls may leave grad/hess empty.  A
  // callback that *counts* full evaluations shows line searches stay cheap.
  int full_evals = 0;
  int value_evals = 0;
  const auto counting = [&](const la::Vector& y, gp::EvalLevel level) {
    gp::FnEval out;
    const double d = y[0] - 2.0;
    out.value = d * d;
    if (level == gp::EvalLevel::kFull) {
      ++full_evals;
      out.grad = la::Vector(1);
      out.grad[0] = 2.0 * d;
      out.hess = la::Matrix(1, 1);
      out.hess(0, 0) = 2.0;
    } else {
      ++value_evals;
    }
    return out;
  };
  la::Vector y0(1);
  const auto r = gp::barrier_minimize(counting, {}, y0);
  EXPECT_EQ(r.status, gp::BarrierStatus::kOptimal);
  EXPECT_NEAR(r.y[0], 2.0, 1e-6);
  EXPECT_GT(value_evals, 0);
  EXPECT_GT(full_evals, 0);
}

TEST(Barrier, TighterToleranceGivesBetterCentering) {
  la::Vector y0(1);
  y0[0] = -3.0;
  gp::BarrierOptions loose;
  loose.duality_gap_tol = 1e-3;
  gp::BarrierOptions tight;
  tight.duality_gap_tol = 1e-10;
  // min (y+5)² s.t. y >= 0 (−y < 0): optimum y = 0... flip: use y >= 0 via
  // halfspace(-1, 0): −y + 0 < 0 ⇔ y > 0. Feasible start −3 violates; use +1.
  y0[0] = 1.0;
  const auto r_loose =
      gp::barrier_minimize(quadratic({-5.0}), {halfspace({-1.0}, 0.0)}, y0, loose);
  const auto r_tight =
      gp::barrier_minimize(quadratic({-5.0}), {halfspace({-1.0}, 0.0)}, y0, tight);
  // Both approach y = 0 from inside; the tighter run must not be further out.
  EXPECT_GT(r_loose.y[0], 0.0);
  EXPECT_GT(r_tight.y[0], 0.0);
  EXPECT_LE(r_tight.y[0], r_loose.y[0] + 1e-9);
}
