// Design-space exploration on synthetic workloads: sweep total utilization on
// a chosen platform and chart how each integration strategy's acceptance
// ratio and achieved tightness degrade — the workflow a system designer would
// run before committing to a security-integration architecture.
//
// Built on the batch ExplorationEngine: each utilization point is a BatchSpec
// with deterministic per-instance seeds, evaluated across --jobs worker
// threads for any registry scheme selection; --out captures every
// per-(instance, scheme) row as JSONL or CSV for offline analysis.
//
// Usage: ./build/synthetic_exploration [--cores 4] [--tasksets 50] [--seed 21]
//                                      [--schemes hydra,single-core] [--jobs 4]
//                                      [--out sweep.jsonl]
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "exp/engine.h"
#include "exp/sinks.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 4));
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});

  hexp::EngineOptions engine_options;
  engine_options.schemes = scheme_names;
  engine_options.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  const hexp::ExplorationEngine engine(engine_options);

  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks;
  if (cli.has("out")) {
    file_sink = hexp::make_file_sink(cli.get_string("out", ""));
    sinks.push_back(file_sink.get());
  }

  gen::SyntheticConfig config;
  config.num_cores = m;

  io::print_banner(std::cout, "Design-space sweep on M = " + std::to_string(m) +
                                  " cores (" + std::to_string(tasksets) +
                                  " tasksets per point, " +
                                  std::to_string(scheme_names.size()) + " schemes)");
  std::vector<std::string> headers = {"utilization"};
  for (const auto& name : scheme_names) {
    headers.push_back(name + " accept");
    headers.push_back(name + " tightness");
  }
  io::Table table(headers);

  for (int step = 2; step <= 18; step += 2) {
    const double u = 0.05 * static_cast<double>(step) * static_cast<double>(m);

    hexp::BatchSpec spec;
    spec.count = tasksets;
    spec.synthetic = config;
    spec.total_utilization = u;
    spec.base_seed = seed + static_cast<std::uint64_t>(step);

    const auto summary = engine.run(spec, sinks);

    // Per-scheme acceptance and mean normalized tightness over the batch.
    std::map<std::string, hydra::stats::AcceptanceCounter> accept;
    std::map<std::string, std::vector<double>> tightness;
    for (const auto& row : summary.rows) {
      const bool accepted = row.status == "ok" && row.feasible && row.validated;
      accept[row.scheme].record(accepted);
      if (accepted) tightness[row.scheme].push_back(row.normalized_tightness);
    }

    std::vector<std::string> cells = {io::fmt(u, 2)};
    for (const auto& name : scheme_names) {
      const auto& t = tightness[name];
      cells.push_back(io::fmt(accept[name].ratio(), 2));
      cells.push_back(t.empty() ? std::string("-")
                                : io::fmt(hydra::stats::summarize(t).mean, 3));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << "\ntightness columns are normalized by the upper bound (every "
               "monitor at its desired rate = 1.0).\n";
  if (cli.has("out")) {
    std::cout << "per-(instance, scheme) rows written to " << cli.get_string("out", "")
              << ".\n";
  }
  return 0;
}
