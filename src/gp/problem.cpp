#include "gp/problem.h"

#include <optional>

#include "util/contracts.h"

namespace hydra::gp {

VarId GpProblem::add_variable(std::string name) {
  HYDRA_REQUIRE(!objective_.has_value() && constraints_.empty(),
                "add all variables before the objective and constraints");
  names_.push_back(std::move(name));
  return names_.size() - 1;
}

const std::string& GpProblem::variable_name(VarId v) const {
  HYDRA_REQUIRE(v < names_.size(), "variable id out of range");
  return names_[v];
}

void GpProblem::set_objective(Posynomial objective) {
  HYDRA_REQUIRE(objective.num_vars() == num_variables(), "objective variable count mismatch");
  HYDRA_REQUIRE(!objective.empty(), "objective must have at least one term");
  objective_ = std::move(objective);
}

void GpProblem::add_constraint_leq1(Posynomial p, std::string label) {
  HYDRA_REQUIRE(p.num_vars() == num_variables(), "constraint variable count mismatch");
  HYDRA_REQUIRE(!p.empty(), "constraint must have at least one term");
  constraints_.push_back(std::move(p));
  labels_.push_back(std::move(label));
}

void GpProblem::add_constraint(const Posynomial& lhs, const Monomial& rhs, std::string label) {
  add_constraint_leq1(lhs.times(rhs.reciprocal()), std::move(label));
}

void GpProblem::add_bounds(VarId v, double lo, double hi) {
  HYDRA_REQUIRE(v < num_variables(), "variable id out of range");
  HYDRA_REQUIRE(lo > 0.0 && lo <= hi, "bounds must satisfy 0 < lo <= hi");
  // lo <= x  ⇔  lo · x⁻¹ <= 1 ;  x <= hi  ⇔  (1/hi) · x <= 1.
  add_constraint_leq1(Posynomial(monomial(lo).with(v, -1.0)),
                      variable_name(v) + " >= " + std::to_string(lo));
  add_constraint_leq1(Posynomial(monomial(1.0 / hi).with(v, 1.0)),
                      variable_name(v) + " <= " + std::to_string(hi));
}

const Posynomial& GpProblem::objective() const {
  HYDRA_REQUIRE(objective_.has_value(), "objective not set");
  return *objective_;
}

bool GpProblem::is_feasible(const std::vector<double>& x, double tol) const {
  HYDRA_REQUIRE(x.size() == num_variables(), "point size mismatch");
  for (double xi : x) {
    if (!(xi > 0.0)) return false;
  }
  for (const auto& c : constraints_) {
    if (c.eval(x) > 1.0 + tol) return false;
  }
  return true;
}

}  // namespace hydra::gp
