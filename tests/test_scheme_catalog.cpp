// Keeps docs/scheme-catalog.md in sync with AllocatorRegistry::global().
//
// The committed catalog is generated (bench_table1_catalog --catalog-out);
// this suite fails whenever the registry gains, loses, or re-describes a
// scheme without the doc being regenerated.  After an intentional registry
// change:
//
//     HYDRA_UPDATE_CATALOG=1 ./build/test_scheme_catalog
//
// rewrites the file in place (review the diff like any other code change).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/registry.h"

namespace {

const std::string kCatalogPath =
    std::string(HYDRA_SOURCE_DIR) + "/docs/scheme-catalog.md";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(SchemeCatalog, MarkdownContainsEveryRegisteredScheme) {
  const auto& registry = hydra::core::AllocatorRegistry::global();
  const std::string markdown = hydra::core::scheme_catalog_markdown(registry);
  for (const auto& name : registry.names()) {
    EXPECT_NE(markdown.find("| `" + name + "` |"), std::string::npos) << name;
    EXPECT_NE(markdown.find(registry.description(name)), std::string::npos) << name;
  }
  EXPECT_NE(markdown.find("# Scheme catalog"), std::string::npos);
}

TEST(SchemeCatalog, CommittedDocMatchesTheLiveRegistry) {
  const std::string expected =
      hydra::core::scheme_catalog_markdown(hydra::core::AllocatorRegistry::global());

  if (std::getenv("HYDRA_UPDATE_CATALOG") != nullptr) {
    std::ofstream out(kCatalogPath);
    out << expected;
    GTEST_SKIP() << "scheme catalog regenerated at " << kCatalogPath;
  }

  const std::string committed = read_file(kCatalogPath);
  ASSERT_FALSE(committed.empty())
      << "missing " << kCatalogPath
      << " — generate it with ./build/bench_table1_catalog --catalog-out "
         "docs/scheme-catalog.md";
  EXPECT_EQ(committed, expected)
      << "docs/scheme-catalog.md is out of sync with AllocatorRegistry::global(); "
         "regenerate with HYDRA_UPDATE_CATALOG=1 ./build/test_scheme_catalog or "
         "./build/bench_table1_catalog --catalog-out docs/scheme-catalog.md";
}
