#include "rt/interference.h"

#include "util/contracts.h"

namespace hydra::rt {

void InterferenceBound::add_interferer(util::Millis wcet, util::Millis period) {
  HYDRA_REQUIRE(wcet > 0.0 && period > 0.0, "interferer needs positive WCET and period");
  const_part += wcet;
  util_part += wcet / period;
}

InterferenceBound interference_bound(const std::vector<RtTask>& rt_on_core,
                                     const std::vector<PlacedSecurityTask>& hp_security_on_core,
                                     util::Millis blocking) {
  HYDRA_REQUIRE(blocking >= 0.0, "blocking must be non-negative");
  InterferenceBound bound;
  bound.const_part = blocking;
  for (const auto& r : rt_on_core) bound.add_interferer(r.wcet, r.period);
  for (const auto& h : hp_security_on_core) bound.add_interferer(h.wcet, h.period);
  return bound;
}

bool security_schedulable(const SecurityTask& task, util::Millis period,
                          const InterferenceBound& bound) {
  return util::leq_tol(task.wcet + bound.eval(period), period);
}

}  // namespace hydra::rt
