#include "exp/metrics.h"

#include "util/units.h"

namespace hydra::exp {

namespace {

enum class PeriodMode { kBest, kMin, kAdapted };

PeriodMode mode_of(const core::TaskPlacement& placement, const rt::SecurityTask& task,
                   double rel_tol) {
  if (util::approx_equal(placement.period, task.period_des, rel_tol, rel_tol)) {
    return PeriodMode::kBest;
  }
  if (util::approx_equal(placement.period, task.period_max, rel_tol, rel_tol)) {
    return PeriodMode::kMin;
  }
  return PeriodMode::kAdapted;
}

double count_mode(const core::Instance& instance, const core::DesignPoint& point,
                  PeriodMode mode, double rel_tol) {
  std::size_t count = 0;
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    if (mode_of(point.allocation.placements[s], instance.security_tasks[s], rel_tol) ==
        mode) {
      ++count;
    }
  }
  return static_cast<double>(count);
}

}  // namespace

std::vector<RowMetric> period_mode_metrics(double rel_tol) {
  return {
      RowMetric{"best_mode_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kBest, rel_tol);
                }},
      RowMetric{"min_mode_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kMin, rel_tol);
                }},
      RowMetric{"adapted_tasks",
                [rel_tol](const core::Instance& instance, const core::DesignPoint& point) {
                  return count_mode(instance, point, PeriodMode::kAdapted, rel_tol);
                }},
  };
}

}  // namespace hydra::exp
