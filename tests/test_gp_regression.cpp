// Regression pins for the signomial-SCP stack on the two adversarial corpus
// workloads built for it (gp_tinybox: nearly degenerate period box;
// gp_hugespan: four-orders-of-magnitude span).  These freeze observable
// behaviour — feasibility verdict, cumulative tightness to tolerance, the
// best-iterate rule — so solver-registry refactors cannot silently shift the
// production SCP route.  Golden values were captured from the pre-registry
// solver stack; a legitimate solver change that moves them must update the
// constants knowingly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/joint_period.h"
#include "core/period_adapt.h"
#include "gp/scp.h"
#include "io/taskset_io.h"

namespace core = hydra::core;
namespace gp = hydra::gp;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";

struct ScpRun {
  core::Instance instance;
  core::JointPeriodResult result;
};

/// First-fit allocation + SCP joint-period optimization, the production route
/// the sweep's optimal/period-adapt schemes take.
ScpRun run_scp(const std::string& workload) {
  ScpRun run;
  run.instance = hydra::io::load_instance(kCorpusDir + "/" + workload);
  const core::PeriodAdaptAllocator first_fit;
  const core::Allocation alloc = first_fit.allocate(run.instance);
  EXPECT_TRUE(alloc.feasible) << workload << ": first-fit allocation regressed";
  if (!alloc.feasible) return run;
  std::vector<std::size_t> core_of(alloc.placements.size());
  for (std::size_t s = 0; s < core_of.size(); ++s) core_of[s] = alloc.placements[s].core;
  core::JointPeriodOptions options;
  options.objective = core::JointObjective::kSignomialScp;
  run.result = core::optimize_joint_periods(run.instance, alloc.rt_partition, core_of, options);
  return run;
}

void expect_periods_in_box(const ScpRun& run) {
  ASSERT_EQ(run.result.periods.size(), run.instance.security_tasks.size());
  for (std::size_t s = 0; s < run.result.periods.size(); ++s) {
    const auto& task = run.instance.security_tasks[s];
    EXPECT_GE(run.result.periods[s], task.period_des * (1.0 - 1e-9));
    EXPECT_LE(run.result.periods[s], task.period_max * (1.0 + 1e-9));
  }
}

}  // namespace

TEST(GpRegression, TinyboxScpStaysFeasibleAndPinned) {
  const ScpRun run = run_scp("gp_tinybox_2core_g.txt");
  ASSERT_TRUE(run.result.feasible);
  expect_periods_in_box(run);
  // The 4 ms box pins every period to essentially Tdes: tightness ≈ ω count.
  EXPECT_NEAR(run.result.cumulative_tightness, 2.0, 1e-6);
  // Both tasks sit at the tight end of their boxes.
  EXPECT_NEAR(run.result.periods[0], 400.0, 1e-3);
  EXPECT_NEAR(run.result.periods[1], 900.0, 1e-3);
}

TEST(GpRegression, HugespanScpStaysFeasibleAndPinned) {
  const ScpRun run = run_scp("gp_hugespan_2core_h.txt");
  ASSERT_TRUE(run.result.feasible);
  expect_periods_in_box(run);
  // Optimum deep inside the four-decade box, far from both bounds: the SCP
  // fixed point lands at Ts = 1150/3 ms ⇒ η = 3/23.
  EXPECT_NEAR(run.result.cumulative_tightness, 0.130434782609, 1e-6);
  EXPECT_NEAR(run.result.periods[0], 1150.0 / 3.0, 1e-3);
}

TEST(GpRegression, BestIterateRuleReturnsBestObservedRound) {
  // max 3/x + 1/y  s.t.  1/x + 1/y <= 0.8,  x,y ∈ [1.5, 30] — the coupled
  // instance from test_gp_scp, here instrumented through on_round: the result
  // must equal the best objective seen across all condensation rounds of all
  // starts (rounds are not guaranteed monotone, so "last iterate" would be
  // the wrong rule — that is exactly the regression this test pins).
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 1.5, 30.0);
  cons.add_bounds(y, 1.5, 30.0);
  gp::Posynomial budget = cons.posynomial();
  budget += cons.monomial(1.25).with(x, -1.0);
  budget += cons.monomial(1.25).with(y, -1.0);
  cons.add_constraint_leq1(budget);

  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(3.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  gp::ScpOptions options;
  double best_seen = 0.0;
  int rounds_seen = 0;
  options.on_round = [&](int, const std::vector<double>&, double objective) {
    best_seen = std::max(best_seen, objective);
    ++rounds_seen;
  };
  const gp::ScpResult r =
      gp::maximize_posynomial_scp(cons, obj, {{2.0, 2.0}, {20.0, 20.0}}, options);
  ASSERT_TRUE(r.feasible);
  ASSERT_GT(rounds_seen, 0);
  // Best-iterate rule: never worse than any observed round, and not better
  // than anything that was actually observed.
  EXPECT_GE(r.objective, best_seen - 1e-12);
  EXPECT_LE(r.objective, best_seen + 1e-12);
  EXPECT_TRUE(cons.is_feasible(r.x, 1e-7));
}
