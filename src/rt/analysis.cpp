#include "rt/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::rt {

double dbf(const RtTask& task, util::Millis t) {
  if (t < task.deadline) return 0.0;
  const double jobs = std::floor((t - task.deadline) / task.period) + 1.0;
  return jobs * task.wcet;
}

bool dbf_necessary_condition(const std::vector<RtTask>& tasks, std::size_t num_cores,
                             std::optional<util::Millis> horizon) {
  HYDRA_REQUIRE(num_cores >= 1, "need at least one core");
  if (tasks.empty()) return true;

  const double m = static_cast<double>(num_cores);
  // Asymptotic limit of Eq. (1): total utilization at most M.
  if (total_utilization(tasks) > m + util::kTimeEpsilon) return false;

  util::Millis h = 0.0;
  if (horizon.has_value()) {
    h = *horizon;
  } else {
    for (const auto& task : tasks) h = std::max(h, 2.0 * (task.deadline + task.period));
  }

  // Demand only changes at absolute deadline points D_i + k·T_i, so those are
  // the only t values worth checking.  Each task contributes one sorted stream
  // of checkpoints; merge them with a binary min-heap and accumulate demand
  // incrementally — crossing D_i + k·T_i raises Σ DBF by exactly C_i.  The
  // k-th checkpoint is computed as D + k·T by multiplication: the previous
  // `t += period` accumulation drifts for non-representable periods and can
  // skip or duplicate the deadline point nearest the horizon.
  const std::size_t n = tasks.size();
  std::vector<util::Millis> next(n);
  std::vector<std::uint64_t> jobs(n, 0);
  std::vector<std::size_t> heap;
  heap.reserve(n);
  const auto later = [&](std::size_t a, std::size_t b) { return next[a] > next[b]; };
  for (std::size_t i = 0; i < n; ++i) {
    if (tasks[i].deadline <= h) {
      next[i] = tasks[i].deadline;
      heap.push_back(i);
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);

  double demand = 0.0;
  while (!heap.empty()) {
    const util::Millis t = next[heap.front()];
    // Drain every stream whose checkpoint equals t before testing Eq. (1):
    // demand steps by the whole coincident batch at once.
    do {
      std::pop_heap(heap.begin(), heap.end(), later);
      const std::size_t i = heap.back();
      demand += tasks[i].wcet;
      ++jobs[i];
      next[i] = tasks[i].deadline + static_cast<double>(jobs[i]) * tasks[i].period;
      if (next[i] <= h) {
        std::push_heap(heap.begin(), heap.end(), later);
      } else {
        heap.pop_back();
      }
    } while (!heap.empty() && next[heap.front()] == t);
    if (demand > m * t + util::kTimeEpsilon) return false;
  }
  return true;
}

namespace {

/// Fixpoint R = C + B + Σ ⌈R/T_j⌉·C_j over the interferers
/// `a[0..na) ++ {inserted?} ++ b[0..nb)`, accumulated in exactly that order.
/// The split form lets core_admits_rm rebuild a resident's interferer list
/// with the candidate spliced into its priority slot without copying tasks.
///
/// The iterate is seeded at C + B + Σ C_j (every ceil term is ≥ 1 for any
/// positive iterate, so the seed sits at or below the least fixpoint); the
/// monotone iteration converges to the same fixpoint as seeding at C + B —
/// the final value is the same ceil-stable sum either way — just in fewer
/// rounds.
std::optional<util::Millis> response_time_spliced(const RtTask& task, const RtTask* a,
                                                 std::size_t na, const RtTask* inserted,
                                                 const RtTask* b, std::size_t nb,
                                                 util::Millis blocking) {
  HYDRA_REQUIRE(blocking >= 0.0, "blocking must be non-negative");
  double hp_util = 0.0;
  for (std::size_t i = 0; i < na; ++i) hp_util += a[i].utilization();
  if (inserted != nullptr) hp_util += inserted->utilization();
  for (std::size_t i = 0; i < nb; ++i) hp_util += b[i].utilization();
  if (hp_util >= 1.0) return std::nullopt;

  double r = task.wcet + blocking;
  for (std::size_t i = 0; i < na; ++i) r += a[i].wcet;
  if (inserted != nullptr) r += inserted->wcet;
  for (std::size_t i = 0; i < nb; ++i) r += b[i].wcet;

  const auto add = [](double acc, double r_cur, const RtTask& hp) {
    return acc + std::ceil(r_cur / hp.period - util::kTimeEpsilon) * hp.wcet;
  };
  for (int iter = 0; iter < 10000; ++iter) {
    double next = task.wcet + blocking;
    for (std::size_t i = 0; i < na; ++i) next = add(next, r, a[i]);
    if (inserted != nullptr) next = add(next, r, *inserted);
    for (std::size_t i = 0; i < nb; ++i) next = add(next, r, b[i]);
    if (next > task.deadline + util::kTimeEpsilon) return std::nullopt;
    if (util::approx_equal(next, r, util::kTimeEpsilon, 0.0)) return next;
    r = next;
  }
  // Non-convergence with hp_util < 1 would indicate a numeric pathology;
  // treat conservatively as unschedulable.
  return std::nullopt;
}

/// Hyperbolic-bound fast accept (sufficient only): valid for the fully
/// preemptive model with deadlines no earlier than periods.  Uses the strict
/// Π(Ui+1) ≤ 2 form — no epsilon slack — so an accept implies the exact RTA
/// below would accept too.
bool hyperbolic_fast_accept(const std::vector<RtTask>& tasks, const RtTask* extra,
                            util::Millis blocking) {
  if (blocking != 0.0) return false;
  double product = 1.0;
  for (const auto& t : tasks) {
    if (t.deadline < t.period) return false;
    product *= t.utilization() + 1.0;
  }
  if (extra != nullptr) {
    if (extra->deadline < extra->period) return false;
    product *= extra->utilization() + 1.0;
  }
  return product <= 2.0;
}

}  // namespace

std::optional<util::Millis> response_time(const RtTask& task, const std::vector<RtTask>& hp,
                                          util::Millis blocking) {
  return response_time_spliced(task, hp.data(), hp.size(), nullptr, nullptr, 0, blocking);
}

bool core_schedulable_rm(const std::vector<RtTask>& tasks_on_core) {
  return core_schedulable_rm_with_blocking(tasks_on_core, 0.0);
}

bool core_schedulable_rm_with_blocking(const std::vector<RtTask>& tasks_on_core,
                                       util::Millis blocking) {
  if (hyperbolic_fast_accept(tasks_on_core, nullptr, blocking)) return true;
  const auto order = rm_priority_order(tasks_on_core);
  std::vector<RtTask> hp;
  hp.reserve(tasks_on_core.size());
  for (const std::size_t idx : order) {
    if (!response_time(tasks_on_core[idx], hp, blocking).has_value()) return false;
    hp.push_back(tasks_on_core[idx]);
  }
  return true;
}

bool core_admits_rm(const std::vector<RtTask>& resident_by_priority, const RtTask& candidate,
                    util::Millis blocking) {
  if (hyperbolic_fast_accept(resident_by_priority, &candidate, blocking)) return true;

  // The candidate slots in after every resident with period <= its own —
  // exactly where rm_priority_order's stable sort puts a last-appended task.
  const auto* base = resident_by_priority.data();
  const std::size_t n = resident_by_priority.size();
  std::size_t pos = 0;
  while (pos < n && base[pos].period <= candidate.period) ++pos;

  // The candidate against everything that outranks it ...
  if (!response_time_spliced(candidate, base, pos, nullptr, nullptr, 0, blocking).has_value()) {
    return false;
  }
  // ... and each resident it preempts, with the candidate spliced into its
  // interferer list.  Residents at positions < pos keep their interferer set
  // (and hence their already-verified response times) unchanged.
  for (std::size_t j = pos; j < n; ++j) {
    if (!response_time_spliced(base[j], base, pos, &candidate, base + pos, j - pos, blocking)
             .has_value()) {
      return false;
    }
  }
  return true;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool hyperbolic_bound_holds(const std::vector<RtTask>& tasks) {
  double product = 1.0;
  for (const auto& t : tasks) product *= t.utilization() + 1.0;
  return product <= 2.0 + util::kTimeEpsilon;
}

std::optional<util::Millis> security_response_time(
    const SecurityTask& task, util::Millis period, const std::vector<RtTask>& rt_on_core,
    const std::vector<PlacedSecurityTask>& hp_security_on_core, util::Millis blocking,
    const InterferenceBound* interferer_sums) {
  HYDRA_REQUIRE(period > 0.0, "candidate period must be positive");
  double hp_util = 0.0;
  double r = task.wcet + blocking;
  if (interferer_sums != nullptr) {
    hp_util = interferer_sums->util_part;
    r = task.wcet + interferer_sums->const_part;
  } else {
    for (const auto& h : rt_on_core) hp_util += h.utilization();
    for (const auto& h : hp_security_on_core) hp_util += h.wcet / h.period;
    for (const auto& h : rt_on_core) r += h.wcet;
    for (const auto& h : hp_security_on_core) r += h.wcet;
  }
  if (hp_util >= 1.0) return std::nullopt;

  for (int iter = 0; iter < 10000; ++iter) {
    double next = task.wcet + blocking;
    for (const auto& hp : rt_on_core) {
      next += std::ceil(r / hp.period - util::kTimeEpsilon) * hp.wcet;
    }
    for (const auto& hp : hp_security_on_core) {
      next += std::ceil(r / hp.period - util::kTimeEpsilon) * hp.wcet;
    }
    if (next > period + util::kTimeEpsilon) return std::nullopt;  // deadline = period
    if (util::approx_equal(next, r, util::kTimeEpsilon, 0.0)) return next;
    r = next;
  }
  return std::nullopt;
}

}  // namespace hydra::rt
