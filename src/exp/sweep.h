// The sweep layer: one declarative SweepSpec crossing schemes × grid points ×
// replications, evaluated as a single work-stealing job queue.
//
// A sweep generalizes the ExplorationEngine's one-BatchSpec run to the
// paper-style evaluation grids (Figs. 1–3: utilization × scheme × core
// count).  Properties the benches and the regression harness rely on:
//
//   * One queue, no per-point barrier — a worker that finishes the last
//     instance of point 3 immediately steals an instance of point 7, so a
//     slow cell (the exhaustive optimal at high utilization) never idles the
//     pool the way per-point engine runs did.
//   * Determinism — every (point, instance) unit derives its seed from
//     (base_seed, point index, instance index) alone and evaluation is pure,
//     so the row stream is byte-identical for any --jobs value.
//   * Stable order — rows reach the sinks point-major, instance-minor, then
//     scheme order, via the same reorder-buffer technique as the engine.
//   * Resumability — every row is stamped with a deterministic cell key
//     ("p<point>:<label>:i<instance>").  `resume_path` points at the JSONL of
//     a previous (possibly killed mid-run) invocation; cells whose full
//     scheme row-set is present and matches the spec are spliced in verbatim
//     instead of re-evaluated, and the final output is byte-identical to an
//     uninterrupted run.
//   * Shardability — `shard_index`/`shard_count` restrict a run to the cells
//     `sweep_shard_of` assigns to that shard.  The partition is a pure
//     function of the cell key, so shards are disjoint, exhaustive, and
//     independent of `--jobs`; N shard outputs merged by cell key
//     (exp/merge.h, tools/hydra_merge) are byte-identical to one
//     single-process run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "exp/engine.h"

namespace hydra::exp {

/// One grid point of a sweep.  Exactly one source applies, checked in this
/// order: a preset `instance` (case studies), a `files` list (workload
/// corpora), else `replications` synthetic draws at `total_utilization`.
struct SweepPoint {
  std::string label;                       ///< "" = auto ("m=<M> u=<U>", ...)
  gen::SyntheticConfig synthetic;          ///< synthetic-source configuration
  double total_utilization = 1.0;          ///< RT + security target (synthetic)
  std::vector<std::string> files;          ///< file source, overrides synthetic
  std::optional<core::Instance> instance;  ///< preset source, overrides both
};

struct SweepSpec {
  /// Registry names evaluated per instance, in this order.
  std::vector<std::string> schemes = {"hydra", "single-core"};
  std::vector<SweepPoint> points;
  std::size_t replications = 1;   ///< synthetic instances per point
  std::uint64_t base_seed = 1;    ///< sweep-level seed
  int max_attempts = 64;          ///< Eq. (1) redraw budget per instance
  std::size_t jobs = 1;           ///< worker threads; 0 = hardware concurrency
  std::size_t optimal_budget = 4096;  ///< per-scheme search-space skip budget
  std::vector<RowMetric> metrics;     ///< extra per-row metric hooks
  /// JSONL checkpoint of a previous invocation; completed cells are spliced
  /// in instead of re-evaluated.  "" (or a missing file) means a cold start.
  std::string resume_path;
  /// Multi-process sharding: this run evaluates only the cells
  /// `sweep_shard_of` maps to `shard_index` out of `shard_count`.  The
  /// default (0 of 1) is an unsharded run.  Sharding never changes a cell's
  /// key, seed, or bytes — only which process computes it.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Seed each cell's signomial-SCP joint solves with the canonical
  /// converged period vector of its grid neighbor — the nearest preceding
  /// synthetic point with the same core count, at the same instance index
  /// (exp/scp_warm.h).  The seed is a pure function of the spec (computed
  /// on demand behind a process-wide memo, never taken from another
  /// worker's live progress), so rows stay byte-identical for any --jobs,
  /// sharding, resume, or work-stealing order; and warm-derived results are
  /// adopted only when materially better than the cold solve (gp/scp.h), so
  /// flipping this flag leaves rows byte-identical too unless a warm start
  /// legitimately improves a cell's optimum.  Excluded from
  /// sweep_fingerprint for exactly that reason: like jobs/resume/sharding
  /// it is solver plumbing, not a row-byte input.
  bool scp_warm_start = true;
  /// GP solver backend (gp::SolverRegistry name) every cell's GP solves run
  /// through, installed as a gp::GpBackendScope around each unit.  "" means
  /// the registry default (scp/barrier).  Unlike jobs/resume/sharding this IS
  /// a row-byte input — two runs solving with different backends can land on
  /// different KKT points — so the RESOLVED name is stamped into
  /// sweep_fingerprint and differently-solved checkpoints refuse to merge.
  std::string gp_backend;
  /// Runtime controller policy (sim::ControllerRegistry name) the adaptive
  /// metrics of every cell resolve when their config names none, installed as
  /// a sim::ControllerScope around each unit.  "" means the registry default
  /// (hysteresis).  Like gp_backend this IS a row-byte input — two runs
  /// simulating under different policies produce different adaptive columns —
  /// so the RESOLVED name is stamped into sweep_fingerprint and
  /// differently-controlled checkpoints refuse to merge.
  std::string controller_policy;

  /// Appends a synthetic grid point per utilization value — the Fig. 2/3
  /// "sweep total utilization on platform `config`" idiom in one call.
  void add_utilization_grid(const gen::SyntheticConfig& config,
                            const std::vector<double>& utilizations);

  /// Appends one file-sourced point for a workload corpus (see
  /// expand_workload_files for the directory/glob semantics).
  void add_corpus_point(const std::string& path_or_glob, std::string label = "");
};

/// The paper's utilization axis: `steps` equally spaced multiples of
/// `increment`·M, i.e. {1·inc·M, …, steps·inc·M} (Fig. 2: 39 steps of
/// 0.025·M).
std::vector<double> utilization_axis(std::size_t num_cores, std::size_t steps = 39,
                                     double increment = 0.025);

/// The deterministic per-point seed: one more splitmix64 level above
/// instance_seed, so point p's instance k never collides with point q's.
std::uint64_t sweep_point_seed(std::uint64_t base_seed, std::size_t point_index);

/// The cell key stamped on every row: "p<point>:<label>:i<instance>".  The
/// resume loader only splices a checkpointed cell whose key, seed, labels and
/// scheme set all match the current spec, so editing the spec invalidates
/// exactly the cells it changes.
std::string sweep_cell_key(std::size_t point_index, const std::string& point_label,
                           std::size_t instance_index);

/// Deterministic shard assignment of one cell: FNV-1a over the key bytes,
/// mod `shard_count`.  A pure function of the key alone — no dependence on
/// --jobs, enumeration order, or process — so for any N the shard cell-key
/// sets are disjoint and exhaustive by construction.
std::size_t sweep_shard_of(const std::string& cell_key, std::size_t shard_count);

/// One shard out of N, as given on a command line.
struct ShardRef {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses the CLI `--shard i/N` syntax (0-based, e.g. "0/3", "2/3"; "0/1" is
/// the unsharded default).  Throws std::invalid_argument on anything else,
/// including i >= N.
ShardRef parse_shard_spec(const std::string& text);

/// Stable fingerprint of everything that determines a sweep's row bytes:
/// schemes (in order), every point's label and source (preset instances
/// down to their task parameters, workload files down to their content),
/// replications, base_seed, max_attempts, optimal_budget, and the metric
/// names + identities (RowMetric::identity).  Sharding, job/resume
/// plumbing, and the scp_warm_start accelerator are deliberately excluded —
/// all shards of one logical sweep share the fingerprint, which is how the
/// merge tool refuses to union checkpoints from different specs.  Expects
/// defaulted point labels (i.e. a `Sweep::spec()`, not a raw user spec).
std::string sweep_fingerprint(const SweepSpec& spec);

/// The self-description line a sharded run prepends to its JSONL checkpoint:
///
///   {"hydra_sweep_shard":{"fingerprint":"...","shard":0,"shards":3,
///    "cells":117,"schemes":["hydra","single-core"]}}
///
/// `cells` is the number of (point, instance) units assigned to the shard,
/// so the merge tool can prove a shard set is complete.  parse_jsonl_row
/// rejects the line (unknown key), which is what lets the resume loader skip
/// it transparently.
struct SweepShardHeader {
  std::string fingerprint;
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::size_t cells = 0;
  std::vector<std::string> schemes;
};

std::string format_shard_header(const SweepShardHeader& header);

/// Strict inverse of format_shard_header (we are the only producer); returns
/// nullopt for anything else, including ordinary row lines.
std::optional<SweepShardHeader> parse_shard_header(const std::string& line);

/// Reads the first line of `path` and parses it as a shard header; nullopt
/// when the file is missing, empty, or starts with a plain row.
std::optional<SweepShardHeader> read_shard_header(const std::string& path);

/// Parses a JSONL checkpoint into rows grouped by cell key, tolerating a
/// truncated final line (the row that was mid-write when the run died).
/// A missing file yields an empty map — "resume from nothing" is a cold
/// start, so the same command line works for the first and the Nth attempt.
std::map<std::string, std::vector<BatchRow>> load_sweep_checkpoint(
    const std::string& path);

struct SweepSummary {
  std::size_t points = 0;         ///< grid points in the spec
  std::size_t cells = 0;          ///< (point, instance) units
  std::size_t resumed_cells = 0;  ///< units spliced from the checkpoint
  std::size_t evaluated = 0;      ///< rows with status "ok"
  std::size_t feasible = 0;       ///< ok rows with a feasible, validated result
  std::size_t skipped = 0;        ///< rows with status "skipped"
  std::size_t errors = 0;         ///< rows with status "error" or "no-instance"
  double wall_ms = 0.0;
  std::vector<BatchRow> rows;     ///< every row, in emission order
};

class Sweep {
 public:
  /// Validates the spec up front (scheme names against the registry, at least
  /// one point, a non-zero replication count, shard_index < shard_count) and
  /// assigns the default labels, so cell keys are fixed from construction on.
  /// Throws std::invalid_argument.
  ///
  /// The resume checkpoint (if any) is read HERE, not in run() — so callers
  /// may pass the same path as checkpoint and output file: construct the
  /// Sweep first, then open the (truncating) output sink, then run.  A
  /// checkpoint that provably belongs to a different run — a cell key outside
  /// the spec's grid, or a shard header whose fingerprint or shard position
  /// does not match — throws std::runtime_error instead of silently
  /// recomputing: resuming the wrong file is a misconfiguration, not a cold
  /// start.
  explicit Sweep(SweepSpec spec);

  /// Runs the whole grid, streaming rows to every sink in stable order.
  /// Sinks are invoked from the coordinating thread only.
  SweepSummary run(const std::vector<ResultSink*>& sinks = {}) const;

  /// The spec with defaulted labels filled in (what cell keys are built from).
  const SweepSpec& spec() const { return spec_; }

  /// sweep_fingerprint of the defaulted spec.
  std::string fingerprint() const { return sweep_fingerprint(spec_); }

  /// The header describing this run's shard (cells = units this shard owns).
  /// Callers writing a sharded checkpoint prepend format_shard_header of this
  /// to the JSONL output (make_file_sink's header argument).
  SweepShardHeader shard_header() const;

 private:
  /// Every cell key of the FULL grid, in emission order (all shards).
  std::vector<std::string> all_cell_keys() const;

  SweepSpec spec_;
  std::map<std::string, std::vector<BatchRow>> checkpoint_;
};

}  // namespace hydra::exp
