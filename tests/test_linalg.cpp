// Unit tests for src/linalg: vectors, matrices, Cholesky/SPD solves.
#include <gtest/gtest.h>

#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/rng.h"

namespace la = hydra::linalg;

TEST(Vector, BasicArithmetic) {
  la::Vector a{1.0, 2.0, 3.0};
  la::Vector b{4.0, 5.0, 6.0};
  const la::Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 5.0);
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  const la::Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  const la::Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[2], 6.0);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vector, Norms) {
  la::Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(Vector, AllFiniteDetectsNan) {
  la::Vector v{1.0, 2.0};
  EXPECT_TRUE(v.all_finite());
  v[1] = std::nan("");
  EXPECT_FALSE(v.all_finite());
}

TEST(Vector, SizeMismatchThrows) {
  la::Vector a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(a[5], std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply) {
  const la::Matrix eye = la::Matrix::identity(3);
  la::Vector v{1.0, 2.0, 3.0};
  const la::Vector out = eye * v;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(out[i], v[i]);
}

TEST(Matrix, MatVec) {
  la::Matrix m(2, 3);
  m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = 3.0;
  m(1, 0) = 4.0; m(1, 1) = 5.0; m(1, 2) = 6.0;
  const la::Vector out = m * la::Vector{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Matrix, AddOuterProduct) {
  la::Matrix m(2, 2);
  m.add_outer(la::Vector{1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 12.0);
}

TEST(Cholesky, FactorizesKnownSpdMatrix) {
  // A = [[4, 2], [2, 3]] = L·Lᵀ with L = [[2, 0], [1, sqrt(2)]].
  la::Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 3.0;
  const auto l = la::cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3 and -1
  EXPECT_FALSE(la::cholesky(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  la::Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 3.0;
  const la::Vector x_true{1.0, -2.0};
  const la::Vector b = a * x_true;
  const la::Vector x = la::solve_spd(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], -2.0, 1e-10);
}

TEST(Cholesky, RandomSpdRoundTrip) {
  hydra::util::Xoshiro256 rng(99);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rep) % 8;
    // Build SPD as Bᵀ·B + I.
    la::Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
    }
    la::Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = (i == j) ? 1.0 : 0.0;
        for (std::size_t k = 0; k < n; ++k) acc += b(k, i) * b(k, j);
        a(i, j) = acc;
      }
    }
    la::Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-5.0, 5.0);
    const la::Vector rhs = a * x_true;
    const la::Vector x = la::solve_spd(a, rhs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Cholesky, SingularMatrixRegularizedSolveStillFinite) {
  // Rank-deficient: solve_spd should regularize rather than crash.
  la::Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  const la::Vector x = la::solve_spd(a, la::Vector{1.0, 1.0});
  EXPECT_TRUE(x.all_finite());
}

TEST(Cholesky, SolveSizeMismatchThrows) {
  la::Matrix a(2, 2);
  EXPECT_THROW(la::solve_spd(a, la::Vector(3)), std::invalid_argument);
}
