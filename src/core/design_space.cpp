#include "core/design_space.h"

#include <cmath>
#include <exception>
#include <limits>

#include "core/registry.h"

namespace hydra::core {

std::optional<std::size_t> ExplorationReport::best_index() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].allocation.feasible || !points[i].validated) continue;
    if (!best.has_value() ||
        points[i].cumulative_tightness > points[*best].cumulative_tightness) {
      best = i;
    }
  }
  return best;
}

bool ExplorationReport::any_feasible() const {
  for (const auto& p : points) {
    if (p.allocation.feasible && p.validated) return true;
  }
  return false;
}

std::vector<std::unique_ptr<Allocator>> paper_scheme_lineup(
    const Instance& instance, const ExplorationOptions& options) {
  std::vector<std::unique_ptr<Allocator>> schemes;

  // 1. HYDRA in the caller's configuration (paper defaults unless changed).
  {
    auto allocator = std::make_unique<HydraAllocator>(options.hydra);
    allocator->set_name("HYDRA");
    schemes.push_back(std::move(allocator));
  }

  // 2. HYDRA with exact RTA (skipped when the caller already asked for it).
  if (options.hydra.solver != PeriodSolver::kExactRta) {
    HydraOptions exact = options.hydra;
    exact.solver = PeriodSolver::kExactRta;
    auto allocator = std::make_unique<HydraAllocator>(exact);
    allocator->set_name("HYDRA(exact-RTA)");
    schemes.push_back(std::move(allocator));
  }

  // 3. SingleCore (needs a spare core).
  if (instance.num_cores >= 2) {
    auto allocator = std::make_unique<SingleCoreAllocator>(options.single_core);
    allocator->set_name("SingleCore");
    schemes.push_back(std::move(allocator));
  }

  // 4. Optimal, when the enumeration fits the budget.
  if (options.optimal_budget > 0 && !instance.security_tasks.empty()) {
    const double combos = std::pow(static_cast<double>(instance.num_cores),
                                   static_cast<double>(instance.security_tasks.size()));
    if (combos <= static_cast<double>(options.optimal_budget)) {
      OptimalOptions opt = options.optimal;
      opt.max_assignments = options.optimal_budget;
      auto allocator = std::make_unique<OptimalAllocator>(opt);
      allocator->set_name("Optimal");
      schemes.push_back(std::move(allocator));
    }
  }
  return schemes;
}

ExplorationReport explore_design_space(const Instance& instance,
                                       const ExplorationOptions& options) {
  instance.validate();
  ExplorationReport report;
  for (const auto& scheme : paper_scheme_lineup(instance, options)) {
    report.points.push_back(evaluate_scheme(*scheme, instance));
  }
  return report;
}

ExplorationReport explore_design_space(const Instance& instance,
                                       const std::vector<std::string>& schemes) {
  instance.validate();
  ExplorationReport report;
  const auto& registry = AllocatorRegistry::global();
  for (const auto& name : schemes) {
    const auto scheme = registry.make(name);  // unknown names still throw
    try {
      report.points.push_back(evaluate_scheme(*scheme, instance));
    } catch (const std::exception& e) {
      // E.g. the exhaustive optimal tripping its enumeration cap on a large
      // instance: report the scheme as infeasible instead of losing the
      // whole comparison.
      DesignPoint point;
      point.scheme = name;
      point.allocation = infeasible_allocation(
          std::numeric_limits<std::size_t>::max(),
          std::string("evaluation failed: ") + e.what());
      report.points.push_back(std::move(point));
    }
  }
  return report;
}

}  // namespace hydra::core
