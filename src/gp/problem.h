// Geometric program in standard form (Boyd et al., "A tutorial on geometric
// programming" [28]):
//
//     minimize    f0(x)                    (posynomial)
//     subject to  f_i(x) <= 1, i = 1..p    (posynomials)
//                 x > 0
//
// Monomial equality constraints are intentionally unsupported: every program
// HYDRA builds fixes assignments outside the GP, and callers can always
// eliminate a monomial equality by substitution.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gp/terms.h"

namespace hydra::gp {

class GpProblem {
 public:
  /// Registers a new positive decision variable and returns its id.
  VarId add_variable(std::string name);

  std::size_t num_variables() const { return names_.size(); }
  const std::string& variable_name(VarId v) const;

  /// Convenience factories tied to this problem's variable count.
  Monomial monomial(double coeff) const { return Monomial(coeff, num_variables()); }
  Posynomial posynomial() const { return Posynomial(num_variables()); }

  /// Sets the posynomial objective to minimize.  Must be non-empty.
  void set_objective(Posynomial objective);

  /// Adds the constraint `p <= 1`.
  void add_constraint_leq1(Posynomial p, std::string label = {});

  /// Adds `lhs <= rhs` for posynomial lhs and *monomial* rhs (a GP-compatible
  /// form): stored as lhs · rhs⁻¹ <= 1.
  void add_constraint(const Posynomial& lhs, const Monomial& rhs, std::string label = {});

  /// Adds the box constraint lo <= x_v <= hi (lo > 0).
  void add_bounds(VarId v, double lo, double hi);

  bool has_objective() const { return objective_.has_value(); }
  const Posynomial& objective() const;
  const std::vector<Posynomial>& constraints() const { return constraints_; }
  const std::vector<std::string>& constraint_labels() const { return labels_; }

  /// Checks a candidate point against every constraint with tolerance `tol`
  /// (multiplicative: f_i(x) <= 1 + tol).  Used by tests and by callers that
  /// re-validate solver output independently.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-7) const;

 private:
  std::vector<std::string> names_;
  std::optional<Posynomial> objective_;
  std::vector<Posynomial> constraints_;
  std::vector<std::string> labels_;
};

}  // namespace hydra::gp
