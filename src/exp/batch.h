// Batch specification for the exploration engine: where the instances of a
// sweep come from and how each one is reproduced.
//
// Two sources are supported:
//
//   * synthetic — `count` draws from gen/synthetic with a deterministic
//     per-instance seed derived from `base_seed` and the instance index
//     (splitmix64 mix), so instance k is byte-identical no matter which
//     worker thread draws it or in what order;
//   * files — task-set files in io/taskset_io format, one instance per path
//     (set `files`; it overrides the synthetic source when non-empty).
//
// `enumerate` expands a spec into lightweight per-instance descriptors;
// `materialize` performs the actual draw/load for one descriptor.  The split
// exists so the engine can parallelize materialization across workers while
// the descriptor list stays cheap and ordered.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "gen/synthetic.h"

namespace hydra::exp {

struct BatchSpec {
  // Synthetic source.
  std::size_t count = 0;                ///< number of instances to draw
  gen::SyntheticConfig synthetic;       ///< generator configuration
  double total_utilization = 1.0;       ///< RT + security utilization target
  std::uint64_t base_seed = 1;          ///< sweep-level seed
  int max_attempts = 64;                ///< Eq. (1) redraw budget per instance

  // File source (overrides synthetic when non-empty).
  std::vector<std::string> files;

  std::size_t size() const { return files.empty() ? count : files.size(); }
};

/// One instance of a batch, before materialization.
struct BatchItem {
  std::size_t index = 0;      ///< position in the batch (stable output order)
  std::string label;          ///< "seed=..." or the file path
  std::uint64_t seed = 0;     ///< per-instance seed (0 for file items)
  std::string file;           ///< empty for synthetic items
};

/// The deterministic per-instance seed: splitmix64 over (base_seed, index).
std::uint64_t instance_seed(std::uint64_t base_seed, std::size_t index);

/// Expands a workload-corpus path spec into the ordered file list a
/// BatchSpec::files (or SweepPoint::files) source consumes:
///
///   * a directory — every regular file inside with a workload extension
///     (.txt / .taskset / .workload), recursively, sorted lexicographically
///     so the batch order never depends on directory-iteration order;
///   * a pattern whose last component contains '*' or '?' — the matching
///     regular files in the parent directory, sorted;
///   * anything else — the path itself, unchecked (materialize reports a
///     per-instance error if it cannot be loaded).
///
/// Throws std::runtime_error when a directory or pattern matches nothing —
/// an empty regression sweep is always a misconfiguration, not a result.
std::vector<std::string> expand_workload_files(const std::string& spec);

/// Expands the spec into its ordered descriptor list.
std::vector<BatchItem> enumerate(const BatchSpec& spec);

/// Result of materializing one descriptor.  `instance` is empty when the
/// synthetic draw found no Eq.-(1)-satisfying task set (a normal outcome at
/// extreme utilization — the engine reports it per scheme as "no-instance")
/// or when a file failed to load (`error` carries the reason).
struct MaterializedItem {
  std::optional<core::Instance> instance;
  double rt_utilization = 0.0;
  double sec_utilization = 0.0;
  std::string error;
};

MaterializedItem materialize(const BatchSpec& spec, const BatchItem& item);

}  // namespace hydra::exp
