#include "sec/tightness.h"

#include "util/contracts.h"

namespace hydra::sec {

double tightness(const rt::SecurityTask& task, util::Millis period) {
  HYDRA_REQUIRE(period > 0.0, "period must be positive");
  HYDRA_REQUIRE(util::leq_tol(task.period_des, period) && util::leq_tol(period, task.period_max),
                "period outside [Tdes, Tmax] for task '" + task.name + "'");
  return task.period_des / period;
}

double cumulative_tightness(const std::vector<rt::SecurityTask>& tasks,
                            const std::vector<util::Millis>& periods) {
  HYDRA_REQUIRE(tasks.size() == periods.size(), "tasks/periods size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    acc += tasks[i].weight * tightness(tasks[i], periods[i]);
  }
  return acc;
}

double max_cumulative_tightness(const std::vector<rt::SecurityTask>& tasks) {
  double acc = 0.0;
  for (const auto& t : tasks) acc += t.weight;
  return acc;
}

double min_cumulative_tightness(const std::vector<rt::SecurityTask>& tasks) {
  double acc = 0.0;
  for (const auto& t : tasks) acc += t.weight * t.min_tightness();
  return acc;
}

}  // namespace hydra::sec
