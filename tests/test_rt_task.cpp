// Tests for the task model (§II) and priority orders.
#include <gtest/gtest.h>

#include "rt/priority.h"
#include "rt/task.h"

namespace rt = hydra::rt;

TEST(RtTask, MakeImplicitDeadline) {
  const auto t = rt::make_rt_task("a", 2.0, 10.0);
  EXPECT_DOUBLE_EQ(t.deadline, 10.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_NO_THROW(rt::validate(t));
}

TEST(RtTask, ValidationRejectsBadShapes) {
  EXPECT_THROW(rt::validate(rt::RtTask{"z", 0.0, 10.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(rt::validate(rt::RtTask{"z", -1.0, 10.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(rt::validate(rt::RtTask{"z", 11.0, 10.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(rt::validate(rt::RtTask{"z", 1.0, 10.0, 12.0}), std::invalid_argument);  // D > T
  EXPECT_NO_THROW(rt::validate(rt::RtTask{"z", 1.0, 10.0, 5.0}));  // constrained deadline ok
}

TEST(SecurityTask, ValidationAndDerivedQuantities) {
  const auto s = rt::make_security_task("s", 10.0, 100.0, 1000.0, 2.0);
  EXPECT_NO_THROW(rt::validate(s));
  EXPECT_DOUBLE_EQ(s.max_utilization(), 0.1);
  EXPECT_DOUBLE_EQ(s.min_utilization(), 0.01);
  EXPECT_DOUBLE_EQ(s.min_tightness(), 0.1);
}

TEST(SecurityTask, ValidationRejectsBadShapes) {
  EXPECT_THROW(rt::validate(rt::make_security_task("s", 0.0, 10.0, 20.0)),
               std::invalid_argument);
  EXPECT_THROW(rt::validate(rt::make_security_task("s", 15.0, 10.0, 20.0)),
               std::invalid_argument);  // C > Tdes
  EXPECT_THROW(rt::validate(rt::make_security_task("s", 1.0, 30.0, 20.0)),
               std::invalid_argument);  // Tmax < Tdes
  EXPECT_THROW(rt::validate(rt::make_security_task("s", 1.0, 10.0, 20.0, -1.0)),
               std::invalid_argument);  // bad weight
}

TEST(TotalUtilization, Sums) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("a", 1.0, 10.0),
                                      rt::make_rt_task("b", 2.0, 10.0)};
  EXPECT_DOUBLE_EQ(rt::total_utilization(tasks), 0.3);
  const std::vector<rt::SecurityTask> sec{rt::make_security_task("s", 10.0, 100.0, 1000.0)};
  EXPECT_DOUBLE_EQ(rt::total_max_utilization(sec), 0.1);
}

TEST(Priority, RateMonotonicOrder) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("slow", 1.0, 100.0),
                                      rt::make_rt_task("fast", 1.0, 10.0),
                                      rt::make_rt_task("mid", 1.0, 50.0)};
  const auto order = rt::rm_priority_order(tasks);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // fast first
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(Priority, RmTiesBrokenByIndex) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("a", 1.0, 10.0),
                                      rt::make_rt_task("b", 1.0, 10.0)};
  const auto order = rt::rm_priority_order(tasks);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(Priority, SecurityOrderByTmaxAscending) {
  // Paper §II-C: pri(τ1) > pri(τ2) iff Tmax1 < Tmax2.
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("loose", 1.0, 10.0, 500.0),
      rt::make_security_task("tight", 1.0, 20.0, 100.0),
  };
  const auto order = rt::security_priority_order(tasks);
  EXPECT_EQ(order[0], 1u);  // smaller Tmax → higher priority, despite larger Tdes
  EXPECT_EQ(order[1], 0u);
}

TEST(Priority, RankIsInversePermutation) {
  const std::vector<rt::RtTask> tasks{rt::make_rt_task("a", 1.0, 30.0),
                                      rt::make_rt_task("b", 1.0, 10.0),
                                      rt::make_rt_task("c", 1.0, 20.0)};
  const auto order = rt::rm_priority_order(tasks);
  const auto rank = rt::rank_of(order);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    EXPECT_EQ(rank[order[pos]], pos);
  }
}

TEST(Priority, ResolveOrderDefaultsToTmaxRule) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("loose", 1.0, 10.0, 500.0),
      rt::make_security_task("tight", 1.0, 20.0, 100.0),
  };
  EXPECT_EQ(rt::resolve_security_order(tasks, std::nullopt),
            rt::security_priority_order(tasks));
}

TEST(Priority, ResolveOrderAcceptsValidOverride) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("a", 1.0, 10.0, 100.0),
      rt::make_security_task("b", 1.0, 10.0, 200.0),
  };
  const std::vector<std::size_t> flipped{1, 0};
  EXPECT_EQ(rt::resolve_security_order(tasks, flipped), flipped);
}

TEST(Priority, ResolveOrderRejectsBadOverride) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("a", 1.0, 10.0, 100.0),
      rt::make_security_task("b", 1.0, 10.0, 200.0),
  };
  EXPECT_THROW(rt::resolve_security_order(tasks, std::vector<std::size_t>{0}),
               std::invalid_argument);  // wrong size
  EXPECT_THROW(rt::resolve_security_order(tasks, std::vector<std::size_t>{0, 0}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(rt::resolve_security_order(tasks, std::vector<std::size_t>{0, 5}),
               std::invalid_argument);  // out of range
}

TEST(Priority, WeightsDecreaseWithPriorityRank) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("low", 1.0, 10.0, 300.0),
      rt::make_security_task("high", 1.0, 10.0, 100.0),
      rt::make_security_task("mid", 1.0, 10.0, 200.0),
  };
  const auto w = rt::priority_weights(tasks);
  EXPECT_DOUBLE_EQ(w[1], 3.0);  // highest priority → largest weight
  EXPECT_DOUBLE_EQ(w[2], 2.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}
