// Geometric-program solver: log-space convex transform + barrier method.
//
// This is the C++ replacement for the paper's GPkit [20] + CVXOPT [21] stack.
// Given a GpProblem in standard form it:
//   1. substitutes x = exp(y), turning the objective and constraints into
//      smooth convex log-sum-exp functions (paper appendix);
//   2. finds a strictly feasible start (caller hint, else a basic phase-I
//      program minimizing the worst constraint violation);
//   3. minimizes with the primal barrier interior-point method.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gp/barrier.h"
#include "gp/problem.h"

namespace hydra::gp {

enum class SolveStatus {
  kOptimal,     ///< converged; solution satisfies every constraint
  kInfeasible,  ///< phase I proved no strictly feasible point exists
  kUnbounded,   ///< objective can be driven to -inf (malformed program)
  kError,       ///< numerical failure
};

struct SolveResult {
  SolveStatus status = SolveStatus::kError;
  std::vector<double> x;      ///< optimal point in the original domain
  double objective = 0.0;     ///< posynomial objective value at x
  int newton_steps = 0;       ///< total Newton iterations (phases I+II)
  std::string message;        ///< human-readable diagnostic on failure

  bool ok() const { return status == SolveStatus::kOptimal; }
};

struct SolveOptions {
  BarrierOptions barrier;
  /// Phase I declares the problem infeasible when the minimized max-violation
  /// slack cannot be pushed below this margin (log-space units).
  double phase1_margin = 1e-9;
};

class GpSolver {
 public:
  explicit GpSolver(SolveOptions options = {}) : options_(options) {}

  /// Solves the program.  `initial_guess`, when provided, must be a positive
  /// point; if it is strictly feasible phase I is skipped entirely.
  SolveResult solve(const GpProblem& problem,
                    const std::optional<std::vector<double>>& initial_guess = std::nullopt) const;

 private:
  SolveOptions options_;
};

}  // namespace hydra::gp
