// Ablation: the joint period-optimization objective (DESIGN.md §5).
//
// The paper's appendix claims the joint maximization of Σ ω·Tdes/T is a
// convex program; it is actually signomial.  This bench quantifies how much
// the three implemented objectives differ on random fixed assignments:
//   SumSurrogate (rigorous GP), LogUtility (rigorous GP), SignomialScp
//   (the literal objective via sequential convex programming).
//
// Usage: bench_ablation_joint_objective [--tasksets 60] [--seed 5] [--csv]
#include <iostream>
#include <vector>

#include "core/joint_period.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "rt/partition.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const int tasksets = static_cast<int>(cli.get_int("tasksets", 60));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout, "Ablation: joint period objective on fixed assignments (M = 2)");

  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 3;

  const std::vector<std::pair<std::string, core::JointObjective>> modes{
      {"SumSurrogate", core::JointObjective::kSumSurrogate},
      {"LogUtility", core::JointObjective::kLogUtility},
      {"SignomialScp", core::JointObjective::kSignomialScp},
  };

  // Collect per-instance cumulative tightness under each mode on a random
  // (uniform) assignment of security tasks to cores.
  std::vector<std::vector<double>> values(modes.size());
  hydra::util::Xoshiro256 rng(seed);
  int solved = 0;
  int attempts = 0;
  while (solved < tasksets && attempts < tasksets * 10) {
    ++attempts;
    auto trial_rng = rng.fork();
    const auto drawn = gen::generate_filtered_instance(config, trial_rng.uniform(0.8, 1.6),
                                                       trial_rng);
    if (!drawn.has_value()) continue;
    const auto partition = hydra::rt::partition_rt_tasks(drawn->instance.rt_tasks, 2);
    if (!partition.has_value()) continue;
    std::vector<std::size_t> core_of(drawn->instance.security_tasks.size());
    for (auto& c : core_of) c = static_cast<std::size_t>(trial_rng.uniform_int(0, 1));

    std::vector<double> row;
    bool all_feasible = true;
    for (const auto& [name, mode] : modes) {
      core::JointPeriodOptions opts;
      opts.objective = mode;
      const auto r = core::optimize_joint_periods(drawn->instance, *partition, core_of, opts);
      if (!r.feasible) {
        all_feasible = false;
        break;
      }
      row.push_back(r.cumulative_tightness);
    }
    if (!all_feasible) continue;  // feasibility is objective-independent; skip fully
    for (std::size_t i = 0; i < modes.size(); ++i) values[i].push_back(row[i]);
    ++solved;
  }

  io::Table table({"objective", "mean cumulative tightness", "vs SignomialScp (%)"});
  if (solved == 0) {
    std::cout << "no feasible instances drawn\n";
    return 0;
  }
  const double scp_mean = hydra::stats::summarize(values.back()).mean;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const double mean = hydra::stats::summarize(values[i]).mean;
    table.add_row({modes[i].first, io::fmt(mean, 4),
                   io::fmt((mean - scp_mean) / scp_mean * 100.0, 2)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n(" << solved << " instances) Reading: SignomialScp optimizes the paper's "
               "literal objective and should lead; the rigorous GP surrogates "
               "trail it only slightly, justifying their use when a"
               " deterministic convex solve is preferred.\n";
  return 0;
}
