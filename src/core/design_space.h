// Design-space exploration driver — the workflow the paper's title and
// conclusion describe: "Since we provide comparisons of our solution with two
// extremes — an 'optimal' assignment strategy and isolating all security
// tasks to a single core — we are able to provide valuable hints to designers
// on how to build security into such systems."
//
// Given one instance, evaluates every applicable allocation scheme, collects
// feasibility / tightness / per-task placements, and emits machine-checkable
// results plus a human-readable comparison (io::Table-ready rows).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/hydra.h"
#include "core/instance.h"
#include "core/optimal.h"
#include "core/single_core.h"

namespace hydra::core {

/// One evaluated design point.
struct DesignPoint {
  std::string scheme;            ///< e.g. "HYDRA", "SingleCore", "Optimal"
  Allocation allocation;         ///< the scheme's result
  double cumulative_tightness = 0.0;  ///< Σ ω·η (0 when infeasible)
  double normalized_tightness = 0.0;  ///< divided by Σ ω (1.0 = every monitor at Tdes)
  bool validated = false;        ///< passed the independent checker
  std::string validation_problem;
};

struct ExplorationOptions {
  HydraOptions hydra;
  SingleCoreOptions single_core;
  /// The exhaustive comparator is exponential in NS; it is skipped unless
  /// M^NS stays within this budget (0 disables it entirely).
  std::size_t optimal_budget = 4096;
  OptimalOptions optimal;
};

struct ExplorationReport {
  std::vector<DesignPoint> points;

  /// The feasible point with the highest cumulative tightness, if any.
  std::optional<std::size_t> best_index() const;

  /// True iff at least one scheme produced a feasible, validated allocation.
  bool any_feasible() const;
};

/// Evaluates HYDRA (paper configuration), HYDRA with exact RTA, SingleCore,
/// and — when affordable — the exhaustive Optimal on `instance`.
ExplorationReport explore_design_space(const Instance& instance,
                                       const ExplorationOptions& options = {});

}  // namespace hydra::core
