#include "gen/uunifast.h"

#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace hydra::gen {

std::vector<double> uunifast(std::size_t n, double sum, util::Xoshiro256& rng) {
  HYDRA_REQUIRE(n >= 1, "uunifast: need at least one value");
  HYDRA_REQUIRE(sum > 0.0, "uunifast: sum must be positive");
  std::vector<double> u(n);
  double remaining = sum;
  for (std::size_t i = 0; i < n - 1; ++i) {
    // next = remaining · r^(1/(n-i-1)) keeps the partial sums uniform over
    // the simplex (Bini & Buttazzo's recurrence).
    const double exponent = 1.0 / static_cast<double>(n - i - 1);
    const double next = remaining * std::pow(rng.uniform01(), exponent);
    u[i] = remaining - next;
    remaining = next;
  }
  u[n - 1] = remaining;
  return u;
}

std::vector<double> uunifast_discard(std::size_t n, double sum, double cap,
                                     util::Xoshiro256& rng, int max_attempts) {
  HYDRA_REQUIRE(cap > 0.0, "uunifast_discard: cap must be positive");
  HYDRA_REQUIRE(sum <= cap * static_cast<double>(n) + 1e-12,
                "uunifast_discard: sum unreachable under the cap");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto u = uunifast(n, sum, rng);
    bool ok = true;
    for (const double v : u) {
      if (v > cap) {
        ok = false;
        break;
      }
    }
    if (ok) return u;
  }
  throw std::runtime_error("uunifast_discard: cap rejected every draw");
}

}  // namespace hydra::gen
