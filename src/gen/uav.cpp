#include "gen/uav.h"

#include "sec/catalog.h"

namespace hydra::gen {

std::vector<rt::RtTask> uav_taskset() {
  // (name, WCET ms, period ms); utilizations sum to ≈ 0.615.
  std::vector<rt::RtTask> tasks = {
      rt::make_rt_task("fast_navigation", 10.0, 50.0),   // u = 0.200
      rt::make_rt_task("controller", 15.0, 100.0),       // u = 0.150
      rt::make_rt_task("slow_navigation", 20.0, 200.0),  // u = 0.100
      rt::make_rt_task("guidance", 25.0, 250.0),         // u = 0.100
      rt::make_rt_task("missile_control", 5.0, 200.0),   // u = 0.025
      rt::make_rt_task("reconnaissance", 40.0, 1000.0),  // u = 0.040
  };
  rt::validate(tasks);
  return tasks;
}

core::Instance uav_case_study(std::size_t num_cores) {
  core::Instance instance;
  instance.num_cores = num_cores;
  instance.rt_tasks = uav_taskset();
  instance.security_tasks = sec::tripwire_bro_tasks();
  instance.validate();
  return instance;
}

}  // namespace hydra::gen
