#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace hydra::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HYDRA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HYDRA_REQUIRE(cells.size() == headers_.size(), "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << pad << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_quote(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string csv_quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted += '"';
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double value, int precision) { return fmt(value, precision) + "%"; }

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace hydra::io
