// The period-adaptation-only baseline (Hasan et al.'s follow-up,
// arXiv:1911.11937): the security-task-to-core partition is FIXED by a
// placement rule that knows nothing about tightness, and all of the scheme's
// quality comes from per-core period optimization afterwards.
//
//   1. Fixed partition — each security task goes, in priority order, to the
//      first core that admits it at its loosest period Tmax (first-fit at
//      minimum mode).  No tightness information enters the placement, which
//      is exactly what separates this baseline from HYDRA's joint
//      allocation-and-adaptation and makes the Fig.-4 comparison meaningful.
//   2. Per-core period optimization — the committed Tmax periods are
//      tightened with the slack-aware sequential pass shared with the
//      Contego-style allocator (`tighten_core_periods`, closed-form Eq. (7)
//      machinery).  The `/gp` variant additionally runs the joint GP
//      optimizer (signomial SCP, src/gp) over the fixed assignment and keeps
//      whichever period vector scores the higher cumulative tightness.
#pragma once

#include <string>

#include "core/allocator.h"
#include "core/instance.h"
#include "core/period_adaptation.h"

namespace hydra::core {

struct PeriodAdaptOptions {
  PeriodSolver solver = PeriodSolver::kClosedForm;
  /// Also optimize the fixed assignment's periods jointly (signomial SCP GP)
  /// and keep the better of the two period vectors.
  bool joint_gp = false;
  /// Tightening passes per core (monotone; see tighten_core_periods).
  std::size_t adaptation_rounds = 2;
  /// GP solver backend (gp::SolverRegistry name) for every GP this allocator
  /// runs — the joint refinement and, under PeriodSolver::kGeometricProgram,
  /// each one-variable Eq. (7) subproblem.  "" defers to the ambient
  /// gp::GpBackendScope (the sweep layer's), then the registry default.
  std::string gp_backend;
};

class PeriodAdaptAllocator : public Allocator {
 public:
  explicit PeriodAdaptAllocator(PeriodAdaptOptions options = {})
      : Allocator("period-adapt"), options_(options) {}

  /// Fixed first-fit partition + per-core period optimization against an
  /// externally supplied RT partition.
  Allocation allocate(const Instance& instance,
                      const rt::Partition& rt_partition) const override;

  /// Best-fit-partitions the RT tasks over all M cores first.
  Allocation allocate(const Instance& instance) const override;

  std::string describe() const override;

  const PeriodAdaptOptions& options() const { return options_; }

 private:
  PeriodAdaptOptions options_;
};

}  // namespace hydra::core
