// Table I reproduction: the security-task catalog (Tripwire + Bro) with the
// parameters used throughout the evaluation, plus a sweep-backed integration
// summary — the catalog placed on the UAV platform for each core count and
// scheme, evaluated through exp::Sweep/exp::Aggregator like every other
// bench (the exhaustive optimal is skipped automatically where its M^NS
// enumeration exceeds the sweep budget).
//
// Usage: bench_table1_catalog [--cores 2,4,8]
//                             [--schemes hydra,single-core,optimal]
//                             [--jobs 1] [--out rows.jsonl] [--csv]
//                             [--catalog-md] [--catalog-out docs/scheme-catalog.md]
//                             [--solver-catalog-md]
//                             [--solver-catalog-out docs/solver-catalog.md]
//                             [--controller-catalog-md]
//                             [--controller-catalog-out docs/controller-catalog.md]
//
// --catalog-md prints the full allocator registry (name + description) as the
// markdown scheme catalog and exits; --catalog-out writes it to a file — the
// committed docs/scheme-catalog.md is generated this way and kept in sync by
// the test_scheme_catalog ctest suite.  --solver-catalog-md/--solver-catalog-out
// do the same for the GP solver registry (docs/solver-catalog.md,
// test_solver_catalog), and --controller-catalog-md/--controller-catalog-out
// for the runtime controller-policy registry (docs/controller-catalog.md,
// test_controller_catalog).
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "exp/aggregate.h"
#include "exp/sweep.h"
#include "gp/solver_registry.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sec/catalog.h"
#include "sim/controller.h"
#include "util/cli.h"

namespace hexp = hydra::exp;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);

  const std::string catalog =
      hydra::core::scheme_catalog_markdown(hydra::core::AllocatorRegistry::global());
  if (cli.has("catalog-out")) {
    const std::string path = cli.get_string("catalog-out", "");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << " for writing\n";
      return 2;
    }
    out << catalog;
    std::cout << "wrote scheme catalog (" << hydra::core::AllocatorRegistry::global()
                                                 .names()
                                                 .size()
              << " schemes) to " << path << "\n";
    return 0;
  }
  if (cli.get_bool("catalog-md", false)) {
    std::cout << catalog;
    return 0;
  }
  const std::string solver_catalog =
      hydra::gp::solver_catalog_markdown(hydra::gp::SolverRegistry::global());
  if (cli.has("solver-catalog-out")) {
    const std::string path = cli.get_string("solver-catalog-out", "");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << " for writing\n";
      return 2;
    }
    out << solver_catalog;
    std::cout << "wrote solver catalog ("
              << hydra::gp::SolverRegistry::global().names().size() << " backends) to "
              << path << "\n";
    return 0;
  }
  if (cli.get_bool("solver-catalog-md", false)) {
    std::cout << solver_catalog;
    return 0;
  }
  const std::string controller_catalog = hydra::sim::controller_catalog_markdown(
      hydra::sim::ControllerRegistry::global());
  if (cli.has("controller-catalog-out")) {
    const std::string path = cli.get_string("controller-catalog-out", "");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << " for writing\n";
      return 2;
    }
    out << controller_catalog;
    std::cout << "wrote controller catalog ("
              << hydra::sim::ControllerRegistry::global().names().size()
              << " policies) to " << path << "\n";
    return 0;
  }
  if (cli.get_bool("controller-catalog-md", false)) {
    std::cout << controller_catalog;
    return 0;
  }
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto scheme_names =
      cli.get_string_list("schemes", {"hydra", "single-core", "optimal"});
  const bool csv = cli.get_bool("csv", false);

  hydra::io::print_banner(std::cout, "Table I: security tasks (Tripwire TR / Bro BR)");
  hydra::io::Table table({"task", "app", "function", "C (ms)", "Tdes (ms)", "Tmax (ms)",
                          "U_des"});
  for (const auto& entry : hydra::sec::tripwire_bro_catalog()) {
    table.add_row({entry.task.name,
                   entry.app == hydra::sec::SecurityApp::kTripwire ? "TR" : "BR",
                   entry.function, hydra::io::fmt(entry.task.wcet, 0),
                   hydra::io::fmt(entry.task.period_des, 0),
                   hydra::io::fmt(entry.task.period_max, 0),
                   hydra::io::fmt(entry.task.max_utilization(), 3)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // The catalog in action: one sweep point per core count, every scheme.
  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  for (const auto m : cores) {
    hexp::SweepPoint point;
    point.instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    point.label = "m=" + std::to_string(m);
    spec.points.push_back(std::move(point));
  }
  const hexp::Sweep sweep(std::move(spec));

  hexp::Aggregator aggregator;
  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    file_sink = hexp::make_file_sink(cli.get_string("out", ""));
    sinks.push_back(file_sink.get());
  }
  sweep.run(sinks);
  const auto cells = aggregator.cells();

  hydra::io::print_banner(std::cout, "catalog integrated on the UAV platform");
  hydra::io::Table integration({"cores", "scheme", "accepted", "normalized tightness"});
  for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
    for (const auto& name : scheme_names) {
      const auto* cell = hexp::Aggregator::find(cells, p, name);
      if (cell == nullptr) continue;
      const bool accepted = cell->accepted > 0;
      integration.add_row(
          {sweep.spec().points[p].label, name,
           accepted ? "yes" : (cell->skipped > 0 ? "skipped (budget)" : "no"),
           accepted ? hydra::io::fmt(cell->tightness.mean, 3) : "-"});
    }
  }
  if (csv) {
    integration.print_csv(std::cout);
  } else {
    integration.print(std::cout);
  }
  std::cout << "\nNote: WCETs are representative embedded-board scan costs "
               "(DESIGN.md section 6: the paper measured Tripwire/Bro on an "
               "ARM Cortex-A8; absolute values scale the curves, contention "
               "drives the comparisons).\n";
  return 0;
}
