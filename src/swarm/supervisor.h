// The supervisor core shared by both hydra_swarm modes: child lifecycle,
// synchronous reaping, stall detection, and a bounded-retry exponential
// backoff policy — all expressed against the ProcessBackend interface and an
// injected clock, so every edge (crash, stall, retry exhaustion) is unit
// testable without spawning a real process or sleeping real time
// (tests/test_swarm_supervisor.cpp drives a fake backend through a fake
// clock).
//
// The supervisor is deliberately policy-only: it does not know what a shard
// or a checkpoint is.  The sweep runner feeds it progress observations
// (checkpoint byte growth) and reads task states back; the service mode
// reuses only the event log.  Time is a caller-supplied monotone seconds
// value — the supervisor never reads a clock of its own.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "swarm/events.h"
#include "swarm/process.h"

namespace hydra::swarm {

struct SupervisorPolicy {
  /// Total launches allowed per task (first launch included): 3 means one
  /// start plus two restarts.  Must be >= 1.
  int max_attempts = 3;
  double backoff_initial_s = 0.5;  ///< delay before the first restart
  double backoff_factor = 2.0;     ///< growth per subsequent restart
  double backoff_max_s = 30.0;     ///< backoff ceiling
  /// A running task whose progress value has not CHANGED for this long is
  /// presumed wedged: it is killed and the death handled like any crash
  /// (counts against the retry budget).  0 disables stall detection.
  double stall_timeout_s = 0.0;
};

enum class TaskState {
  kPending,  ///< waiting for its (re)start time
  kRunning,
  kDone,     ///< worker exited 0
  kFailed,   ///< retry budget exhausted (or shutdown) — terminal
};

struct TaskStatus {
  std::string name;
  TaskState state = TaskState::kPending;
  int attempts = 0;               ///< launches so far
  double progress = 0.0;          ///< last reported progress value
  double next_start_t = 0.0;      ///< when kPending becomes eligible to launch
  std::optional<ExitStatus> last_exit;
  std::string failure;            ///< terminal failure description (kFailed)
  WorkerId worker = 0;            ///< backend handle while kRunning
};

class Supervisor {
 public:
  using Clock = std::function<double()>;  ///< monotone seconds

  /// `backend` and `log` are borrowed and must outlive the supervisor.
  /// Throws std::invalid_argument on a nonsensical policy.
  Supervisor(ProcessBackend& backend, SupervisorPolicy policy, EventLog& log,
             Clock clock);

  /// Registers a task (does not launch it — tick() does).  Returns its index.
  std::size_t add_task(std::string name, WorkerSpec spec);

  /// One scheduling pass at the current clock value: launches eligible
  /// pending tasks, reaps exited workers, fires stall kills, schedules
  /// restarts with backoff, marks exhausted tasks failed.  Call repeatedly
  /// from the orchestration loop.
  void tick();

  /// Feeds an external progress observation (e.g. checkpoint size).  The
  /// stall timer resets whenever the value CHANGES — not only when it grows,
  /// because a restarted worker legitimately rewrites its checkpoint from
  /// the resume splice, shrinking then regrowing it.
  void report_progress(std::size_t task, double progress);

  /// SIGKILLs the task's current worker (chaos injection, shutdown).  The
  /// death is observed by a later tick() and handled per policy — i.e. a
  /// killed task is retried like a crashed one unless the budget is gone.
  void kill(std::size_t task, const std::string& reason);

  /// Kills every live worker and marks every unfinished task failed.  Used
  /// on orchestrator abort so no worker outlives its swarm.
  void shutdown(const std::string& reason);

  bool all_done() const;    ///< every task kDone
  bool any_failed() const;
  /// True when no task can make further progress (each is kDone or kFailed).
  bool finished() const;
  /// Sum over tasks of (attempts - 1): how many restarts the swarm absorbed.
  std::size_t restarts() const;

  const TaskStatus& status(std::size_t task) const { return tasks_.at(task).status; }
  std::size_t size() const { return tasks_.size(); }

 private:
  struct Task {
    TaskStatus status;
    WorkerSpec spec;
    double last_progress_change_t = 0.0;
    bool kill_requested = false;     ///< stop() sent, death not yet reaped
    std::string kill_reason;
  };

  void launch(std::size_t index);
  void handle_death(std::size_t index, const ExitStatus& exit);
  double backoff_delay(int attempts) const;

  ProcessBackend& backend_;
  SupervisorPolicy policy_;
  EventLog& log_;
  Clock clock_;
  std::vector<Task> tasks_;
};

}  // namespace hydra::swarm
