// End-to-end swarm orchestration against REAL processes: this binary
// re-execs itself as the shard worker (see worker_main below), so the suite
// can SIGKILL a worker mid-checkpoint — torn FINAL line included — and
// assert that the production restart path resumes it with zero recompute and
// a merged stream byte-identical to the single-process run.
//
// Custom main (linked against GTest::gtest, not gtest_main): `--swarm-worker`
// routes to the worker entry point before gtest ever sees argv.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/merge.h"
#include "exp/sinks.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "swarm/process.h"
#include "swarm/sweep_runner.h"
#include "util/cli.h"

namespace fs = std::filesystem;
namespace hexp = hydra::exp;
namespace swarm = hydra::swarm;

namespace {

std::string g_self_exe;  ///< argv[0], captured by main for self-respawn

/// The grid every test (and every spawned worker) runs: small enough for the
/// fast label, wide enough that a 3-way shard split leaves no shard empty.
hexp::SweepSpec swarm_grid() {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra", "single-core"};
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  spec.add_utilization_grid(config, {0.8, 1.4, 1.9});
  spec.replications = 4;
  spec.base_seed = 77;
  return spec;
}

/// File sink that (optionally) sleeps before and flushes after every row, so
/// the orchestrator's poll loop reliably observes durable rows while the
/// worker is still alive — the chaos-injection test needs that window; the
/// production make_file_sink buffers small runs entirely in memory.
class ThrottledFileSink : public hexp::ResultSink {
 public:
  ThrottledFileSink(const std::string& path, const std::string& header,
                    int row_delay_ms)
      : out_(path, std::ios::binary | std::ios::trunc),
        jsonl_(out_),
        row_delay_ms_(row_delay_ms) {
    if (!header.empty()) out_ << header << "\n";
    out_.flush();
  }
  void row(const hexp::BatchRow& row) override {
    if (row_delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(row_delay_ms_));
    }
    jsonl_.row(row);
    out_.flush();
  }

 private:
  std::ofstream out_;
  hexp::JsonlSink jsonl_;
  int row_delay_ms_;
};

/// The shard worker this binary becomes under `--swarm-worker`.  Flags beyond
/// the orchestrator-appended --shard/--out/--resume:
///   --crash-shard I   on shard I's FIRST attempt (marker file absent), write
///                     --crash-rows complete rows plus a torn trailing
///                     fragment and raise(SIGKILL) — a deterministic
///                     mid-checkpoint death;
///   --always-fail     exit 1 unconditionally (retry-exhaustion tests);
///   --row-delay-ms N  throttle row emission (chaos-injection timing).
/// A clean run writes "<out>.summary" with resumed/cells/rows so tests can
/// assert the zero-recompute property from outside the process.
int worker_main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv, /*allow_positionals=*/true,
                                   /*value_less_flags=*/{"always-fail"});
  if (cli.get_bool("always-fail", false)) return 1;

  auto spec = swarm_grid();
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  const std::string out = cli.get_string("out", "");

  const int crash_shard = static_cast<int>(cli.get_int("crash-shard", -1));
  const std::string marker = out + ".crashed";
  if (crash_shard >= 0 && shard.index == static_cast<std::size_t>(crash_shard) &&
      !fs::exists(marker)) {
    // First attempt of the victim shard: lay down a checkpoint whose tail is
    // a torn (newline-less) fragment — exactly what a SIGKILL mid-write
    // leaves — then die by the same signal.
    std::ostringstream rows;
    hexp::JsonlSink sink(rows);
    const hexp::Sweep sweep(spec);
    const std::string header = hexp::format_shard_header(sweep.shard_header());
    sweep.run({&sink});

    std::istringstream lines(rows.str());
    std::ofstream torn(out, std::ios::binary | std::ios::trunc);
    torn << header << "\n";
    std::string line;
    for (int i = 0; i < static_cast<int>(cli.get_int("crash-rows", 4)) &&
                    std::getline(lines, line);
         ++i) {
      torn << line << "\n";
    }
    if (std::getline(lines, line)) {
      torn << line.substr(0, line.size() / 2);  // the torn FINAL line
    }
    torn.flush();
    std::ofstream(marker) << "crashed\n";
    raise(SIGKILL);
  }

  spec.resume_path = cli.get_string("resume", "");
  const hexp::Sweep sweep(std::move(spec));
  const std::string header =
      shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
  ThrottledFileSink sink(out, header,
                         static_cast<int>(cli.get_int("row-delay-ms", 0)));
  const auto summary = sweep.run({&sink});
  std::ofstream(out + ".summary")
      << "resumed=" << summary.resumed_cells << " cells=" << summary.cells
      << " rows=" << summary.rows.size() << "\n";
  return 0;
}

/// The single-process reference bytes every swarm run must reproduce.
std::string reference_rows() {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  hexp::Sweep(swarm_grid()).run({&sink});
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::map<std::string, std::string> parse_summary(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::istringstream in(slurp(path));
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

swarm::SweepRunnerOptions base_options(const std::string& dir) {
  swarm::SweepRunnerOptions options;
  options.shards = 3;
  options.dir = dir;
  options.out_path = dir + "/merged.jsonl";
  options.poll_interval_s = 0.01;
  options.merge_interval_s = 3600;  // timer-driven partials off unless tested
  options.policy.backoff_initial_s = 0.01;
  options.policy.backoff_max_s = 0.05;
  options.worker_command = {g_self_exe, "--swarm-worker"};
  return options;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path(testing::TempDir() + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

}  // namespace

TEST(SwarmSweep, CleanSwarmMatchesSingleProcessBytes) {
  TempDir dir("swarm_clean");
  auto options = base_options(dir.path);
  options.partial_path = dir.path + "/partial.jsonl";
  options.expect_fingerprint = hexp::Sweep(swarm_grid()).fingerprint();

  swarm::LocalProcessBackend backend;
  swarm::EventLog log;
  swarm::SweepRunner runner(options, backend, log);
  std::ostringstream status;
  const auto result = runner.run(status);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.restarts, 0u);
  EXPECT_EQ(slurp(options.out_path), reference_rows());
  // The final partial refresh ran after success: same complete union.
  EXPECT_EQ(slurp(options.partial_path), reference_rows());
  EXPECT_EQ(log.count("swarm-complete"), 1u);
  // Workers report zero recompute the OTHER way around here: nothing was
  // resumed because nothing crashed.
  for (int i = 0; i < 3; ++i) {
    const auto summary =
        parse_summary(dir.path + "/shard_" + std::to_string(i) + ".jsonl.summary");
    EXPECT_EQ(summary.at("resumed"), "0");
  }
}

TEST(SwarmSweep, SigkilledWorkerResumesWithZeroRecompute) {
  TempDir dir("swarm_crash");
  auto options = base_options(dir.path);
  options.worker_command.insert(options.worker_command.end(),
                                {"--crash-shard", "1", "--crash-rows", "4"});

  swarm::LocalProcessBackend backend;
  swarm::EventLog log;
  swarm::SweepRunner runner(options, backend, log);
  std::ostringstream status;
  const auto result = runner.run(status);

  // THE acceptance criterion: one worker SIGKILLed mid-checkpoint (torn
  // trailing line on disk), and the merged stream is still byte-identical to
  // the single-process run.
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(slurp(options.out_path), reference_rows());
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(log.count("worker-restarted"), 1u);
  EXPECT_EQ(log.count("worker-started"), 3u);

  // Zero recompute: the restarted shard spliced every durable cell its dead
  // predecessor left behind.  4 complete rows at 2 schemes/cell = 2 cells.
  const auto summary = parse_summary(dir.path + "/shard_1.jsonl.summary");
  EXPECT_EQ(summary.at("resumed"), "2");
  // The torn fragment was discarded, not resurrected: the victim's final
  // checkpoint parses clean and complete for its sub-grid.
  hexp::MergeOptions partial;
  partial.require_complete = false;  // one shard of three is partial by design
  const auto merged =
      hexp::merge_checkpoints({dir.path + "/shard_1.jsonl"}, partial);
  EXPECT_EQ(merged.torn_lines, 0u);
}

TEST(SwarmSweep, ChaosKillThroughRunnerAlsoConverges) {
  TempDir dir("swarm_chaos");
  auto options = base_options(dir.path);
  options.worker_command.insert(options.worker_command.end(),
                                {"--row-delay-ms", "25"});
  options.chaos_kill_shard = 2;
  options.chaos_after_rows = 2;

  swarm::LocalProcessBackend backend;
  swarm::EventLog log;
  swarm::SweepRunner runner(options, backend, log);
  std::ostringstream status;
  const auto result = runner.run(status);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(slurp(options.out_path), reference_rows());
  EXPECT_EQ(log.count("worker-killed"), 1u);
  EXPECT_GE(result.restarts, 1u);
}

TEST(SwarmSweep, RetryExhaustionFailsLoudlyWithoutMergedOutput) {
  TempDir dir("swarm_fail");
  auto options = base_options(dir.path);
  options.worker_command.insert(options.worker_command.end(), {"--always-fail"});
  options.policy.max_attempts = 2;

  swarm::LocalProcessBackend backend;
  swarm::EventLog log;
  swarm::SweepRunner runner(options, backend, log);
  std::ostringstream status;
  const auto result = runner.run(status);

  ASSERT_FALSE(result.ok);
  // LOUD, actionable failure: names the exhausted shards, points at salvage,
  // and never fabricates a merged stream.
  EXPECT_NE(result.error.find("swarm FAILED"), std::string::npos);
  EXPECT_NE(result.error.find("hydra_merge --allow-partial"), std::string::npos);
  EXPECT_FALSE(fs::exists(options.out_path));
  EXPECT_GE(log.count("worker-gave-up"), 1u);
  EXPECT_EQ(log.count("swarm-failed"), 1u);
}

TEST(SwarmSweep, RemoteBackendWithLocalLauncherConvergesThroughChaos) {
  TempDir dir("swarm_remote");
  auto options = base_options(dir.path);
  options.worker_command.insert(options.worker_command.end(),
                                {"--row-delay-ms", "25"});
  options.chaos_kill_shard = 1;
  options.chaos_after_rows = 2;

  // The same swarm, but every worker launches through the remote seam with a
  // plain local launcher template — the CI-testable stand-in for
  // "ssh {host} {cmd}".  The chaos SIGKILL lands on the LAUNCHER process
  // (sh exec's the worker, so they are one), and liveness still flows from
  // the checkpoint probes; the merged stream must not care.
  swarm::RemoteBackendOptions remote;
  remote.launcher = "sh -c {cmd}";
  swarm::RemoteProcessBackend backend(remote);
  swarm::EventLog log;
  swarm::SweepRunner runner(options, backend, log);
  std::ostringstream status;
  const auto result = runner.run(status);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(slurp(options.out_path), reference_rows());
  EXPECT_EQ(log.count("worker-killed"), 1u);
  EXPECT_GE(result.restarts, 1u);
}

TEST(SwarmSweep, RunnerRejectsBusySpinPollIntervals) {
  TempDir dir("swarm_bad_poll");
  swarm::LocalProcessBackend backend;
  swarm::EventLog log;

  auto zero = base_options(dir.path);
  zero.poll_interval_s = 0.0;  // would busy-spin the probe loop
  EXPECT_THROW(swarm::SweepRunner(zero, backend, log), std::invalid_argument);

  auto negative = base_options(dir.path);
  negative.poll_interval_s = -0.5;
  EXPECT_THROW(swarm::SweepRunner(negative, backend, log), std::invalid_argument);

  auto bad_merge = base_options(dir.path);
  bad_merge.merge_interval_s = 0.0;
  EXPECT_THROW(swarm::SweepRunner(bad_merge, backend, log), std::invalid_argument);
}

TEST(SwarmSweep, ProbeCountsDurableRowsAndIgnoresTornTail) {
  TempDir dir("swarm_probe");
  const std::string path = dir.path + "/probe.jsonl";

  EXPECT_FALSE(swarm::probe_shard_checkpoint(path).exists);

  const hexp::Sweep sweep(swarm_grid());
  auto header = sweep.shard_header();
  std::ofstream out(path, std::ios::binary);
  out << hexp::format_shard_header(header) << "\n";
  out << "{\"cell\":\"a\"}\n{\"cell\":\"b\"}\n{\"cell\":\"c\"}\n";
  out << "{\"cell\":\"torn";  // no newline: not durable
  out.flush();

  const auto probe = swarm::probe_shard_checkpoint(path);
  EXPECT_TRUE(probe.exists);
  EXPECT_EQ(probe.durable_rows, 3u);
  ASSERT_TRUE(probe.header.has_value());
  EXPECT_EQ(probe.header->fingerprint, header.fingerprint);
  EXPECT_EQ(probe.header->cells, header.cells);
}

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--swarm-worker") {
    return worker_main(argc - 1, argv + 1);
  }
  g_self_exe = argv[0];
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
