// Unit tests for src/util: contracts, time units, RNG, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/cli.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/units.h"

namespace hu = hydra::util;

TEST(Contracts, RequireThrowsInvalidArgument) {
  EXPECT_THROW(HYDRA_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(HYDRA_REQUIRE(true, "fine"));
}

TEST(Contracts, AssertThrowsLogicError) {
  EXPECT_THROW(HYDRA_ASSERT(false, "bug"), std::logic_error);
  EXPECT_NO_THROW(HYDRA_ASSERT(true, "fine"));
}

TEST(Contracts, MessageNamesExpressionAndLocation) {
  try {
    HYDRA_REQUIRE(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
    EXPECT_NE(msg.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Units, MillisToTicksRoundTrip) {
  EXPECT_EQ(hu::to_ticks(1.0), 1000u);
  EXPECT_EQ(hu::to_ticks(0.0), 0u);
  EXPECT_EQ(hu::to_ticks(2.5), 2500u);
  EXPECT_DOUBLE_EQ(hu::to_millis(2500), 2.5);
  EXPECT_DOUBLE_EQ(hu::to_millis(hu::to_ticks(123.456)), 123.456);
}

TEST(Units, TicksRoundToNearestMicrosecond) {
  EXPECT_EQ(hu::to_ticks(0.0004), 0u);   // 0.4 us rounds down
  EXPECT_EQ(hu::to_ticks(0.0006), 1u);   // 0.6 us rounds up
}

TEST(Units, NegativeAndNonFiniteRejected) {
  EXPECT_THROW(hu::to_ticks(-1.0), std::invalid_argument);
  EXPECT_THROW(hu::to_ticks(std::nan("")), std::invalid_argument);
  EXPECT_THROW(hu::to_ticks(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(Units, ToleranceComparisons) {
  EXPECT_TRUE(hu::leq_tol(1.0, 1.0));
  EXPECT_TRUE(hu::leq_tol(1.0 + 1e-9, 1.0));
  EXPECT_FALSE(hu::leq_tol(1.0 + 1e-3, 1.0));
  EXPECT_TRUE(hu::approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(hu::approx_equal(1.0, 1.1));
}

TEST(Rng, DeterministicGivenSeed) {
  hu::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  hu::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  hu::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  hu::Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  hu::Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  hu::Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9u);
}

TEST(Rng, UniformRejectsEmptyRange) {
  hu::Xoshiro256 rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  hu::Xoshiro256 parent(5);
  hu::Xoshiro256 child = parent.fork();
  // The child must not replay the parent's continuation.
  hu::Xoshiro256 parent_copy(5);
  (void)parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++same;
  }
  EXPECT_LT(same, 2);
}

namespace {

hu::CliParser parse(std::vector<const char*> argv) {
  return hu::CliParser(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const auto cli = parse({"prog", "--alpha", "3", "--beta=4.5", "--flag"});
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_FALSE(cli.has("gamma"));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = parse({"prog"});
  EXPECT_EQ(cli.get_int("n", 17), 17);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("b", false));
}

TEST(Cli, IntListParsing) {
  const auto cli = parse({"prog", "--cores", "2,4,8"});
  const auto cores = cli.get_int_list("cores", {});
  ASSERT_EQ(cores.size(), 3u);
  EXPECT_EQ(cores[0], 2);
  EXPECT_EQ(cores[1], 4);
  EXPECT_EQ(cores[2], 8);
}

TEST(Cli, StringListParsing) {
  const auto cli = parse({"prog", "--schemes", "hydra, single-core ,optimal"});
  const auto schemes = cli.get_string_list("schemes", {});
  ASSERT_EQ(schemes.size(), 3u);
  EXPECT_EQ(schemes[0], "hydra");
  EXPECT_EQ(schemes[1], "single-core");  // whitespace trimmed
  EXPECT_EQ(schemes[2], "optimal");
}

TEST(Cli, StringListFallbackAndEmpty) {
  const auto absent = parse({"prog"});
  const auto fallback = absent.get_string_list("schemes", {"hydra"});
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0], "hydra");
  const auto empty = parse({"prog", "--schemes", ","});
  EXPECT_THROW(empty.get_string_list("schemes", {}), std::invalid_argument);
}

TEST(Cli, RejectsPositionalAndMalformed) {
  EXPECT_THROW(parse({"prog", "positional"}), std::invalid_argument);
  const auto cli = parse({"prog", "--n", "notanint"});
  EXPECT_THROW(cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("n", false), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const auto cli = parse({"prog", "--a", "yes", "--b", "off", "--c", "1"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(Cli, PositionalsAreCollectedWhenOptedIn) {
  const std::vector<const char*> argv = {"prog", "a.jsonl", "--out",
                                         "m.jsonl", "b.jsonl"};
  const hu::CliParser cli(static_cast<int>(argv.size()), argv.data(),
                          /*allow_positionals=*/true);
  EXPECT_EQ(cli.get_string("out", ""), "m.jsonl");
  ASSERT_EQ(cli.positionals().size(), 2u);
  EXPECT_EQ(cli.positionals()[0], "a.jsonl");
  EXPECT_EQ(cli.positionals()[1], "b.jsonl");
}

TEST(Cli, ValueLessFlagsDoNotSwallowPositionals) {
  // Regression: a bare boolean flag in front of a positional used to eat it
  // as its "value" — `hydra_merge --allow-partial s0.jsonl s1.jsonl` lost
  // its first shard file and then rejected "s0.jsonl" as a boolean.
  const std::vector<const char*> argv = {"prog", "--allow-partial", "s0.jsonl",
                                         "s1.jsonl"};
  const hu::CliParser cli(static_cast<int>(argv.size()), argv.data(),
                          /*allow_positionals=*/true,
                          /*value_less_flags=*/{"allow-partial"});
  EXPECT_TRUE(cli.get_bool("allow-partial", false));
  ASSERT_EQ(cli.positionals().size(), 2u);
  EXPECT_EQ(cli.positionals()[0], "s0.jsonl");
  // The explicit `=` form still overrides a value-less flag.
  const std::vector<const char*> eq = {"prog", "--allow-partial=false", "x"};
  const hu::CliParser eq_cli(static_cast<int>(eq.size()), eq.data(), true,
                             {"allow-partial"});
  EXPECT_FALSE(eq_cli.get_bool("allow-partial", true));
  ASSERT_EQ(eq_cli.positionals().size(), 1u);
}
