// Global slack scheduling of security jobs (paper §V: "security tasks can
// also move across multiple cores if there is available slack at runtime (for
// faster detection and better schedulability)").
//
// Model: RT tasks stay partitioned and always own their core at their RM
// priority.  Security jobs live in one *global* ready queue ordered by
// security priority; at every scheduling point each core that has no pending
// RT work picks the highest-priority unserved security job.  Security jobs
// may migrate between cores at preemption points (job-level migration, no
// migration cost — the optimistic end of the design space; the bench
// quantifies the gap to HYDRA's static placement).
//
// Unlike the partitioned engine (sim/engine.h) this cannot simulate cores
// independently: a single global timeline drives all cores.
#pragma once

#include <vector>

#include "sim/task.h"

namespace hydra::sim {

/// Inputs mirror build_sim_tasks' output: `tasks[i].core` is honoured for RT
/// tasks; for tasks flagged `global_band` the core field is ignored.
struct GlobalSimTask {
  SimTask task;
  bool global_band = false;  ///< true: security job, may run on any core
};

struct GlobalSimOptions {
  util::SimTime horizon = 0;
  util::SimTime grace = 0;  ///< 0 = auto (largest deadline)
  std::size_t num_cores = 0;
};

/// Runs the global-slack schedule.  RT (non-global) tasks must carry distinct
/// priorities per core; global tasks must carry distinct priorities among
/// themselves.  Returns the same Trace shape as the partitioned engine.
Trace simulate_global_slack(const std::vector<GlobalSimTask>& tasks,
                            const GlobalSimOptions& options);

}  // namespace hydra::sim
