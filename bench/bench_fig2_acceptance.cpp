// Fig. 2 reproduction: improvement in acceptance ratio (HYDRA vs SingleCore)
// as a function of total utilization, for M ∈ {2, 4, 8} cores.
//
// Paper setup (§IV-B): utilization swept from 0.025·M to 0.975·M in steps of
// 0.025·M (39 points), 250 random tasksets per point, NR ∈ [3M, 10M],
// NS ∈ [2M, 5M], tasksets failing Eq. (1) discarded and redrawn.
//
// Runs as ONE exp::Sweep across every (core count, utilization) point — a
// single work-stealing queue with deterministic per-instance seeds, so the
// row stream is byte-identical for any --jobs value — and reads every
// reported number off the exp::Aggregator cells (no hand-rolled acceptance
// counting).  --out captures the per-(instance, scheme) rows; --resume
// splices the completed cells of a previous (possibly interrupted) run.
//
// NOTE on the improvement formula: the paper prints
// (δ_SingleCore − δ_HYDRA)/δ_SingleCore × 100 %, which is negative whenever
// HYDRA accepts more — yet its Fig. 2 shows positive values on a 0–100 axis
// and the text says HYDRA outperforms.  We plot
// (δ_HYDRA − δ_SingleCore)/δ_HYDRA × 100 % (positive = HYDRA better, bounded
// by 100), the only reading consistent with the figure; see EXPERIMENTS.md.
//
// Multi-process fan-out: `--shard i/N` restricts the run to the cells the
// deterministic cell-key partition assigns to shard i; the N shard outputs
// (each stamped with a spec-fingerprint header) merged by hydra_merge are
// byte-identical to the unsharded run's --out, and the merged file resumes
// cleanly via --resume to re-print the tables without recomputing.
//
// Usage: bench_fig2_acceptance [--cores 2,4,8] [--tasksets 250] [--seed 7]
//                              [--schemes hydra,single-core] [--jobs 1]
//                              [--shard 0/1] [--out sweep.jsonl]
//                              [--resume sweep.jsonl]
//                              [--agg-out cells.jsonl] [--csv]
//                              [--gp-backend scp/barrier|ipm/filter|pick-best]
//
// --gp-backend selects the GP solver backend every cell's period optimization
// runs through (docs/solver-catalog.md lists the registry).  It is a row-byte
// input: the fingerprint covers it, so shards and resumes must name the same
// backend, and the default ("" = scp/barrier) reproduces historical outputs.
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/aggregate.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "gp/solver_registry.h"
#include "io/table.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 250));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,baseline)\n";
    return 2;
  }

  // The whole figure is one sweep: cores × 39 utilization points × tasksets,
  // every cell drawn from (seed, point index, instance index) alone.
  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.replications = tasksets;
  spec.base_seed = seed;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  spec.gp_backend = cli.get_string("gp-backend", "");
  if (!spec.gp_backend.empty() &&
      !hydra::gp::SolverRegistry::global().contains(spec.gp_backend)) {
    std::cerr << "--gp-backend: unknown backend '" << spec.gp_backend
              << "'; see docs/solver-catalog.md (or --solver-catalog-md on "
                 "bench_table1_catalog)\n";
    return 2;
  }
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  if (shard.count > 1 && cli.has("agg-out")) {
    // A shard sees a fraction of every cell's samples; its aggregate file
    // would be indistinguishable from a full-grid one downstream.
    std::cerr << "--agg-out is not available on a sharded run: merge the shard "
                 "outputs with hydra_merge, then rerun with --resume "
                 "merged.jsonl --agg-out\n";
    return 2;
  }
  const std::string out_path = cli.get_string("out", "");
  if (shard.count > 1 && out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    std::cerr << "--shard needs a JSONL --out (the shard header and "
                 "hydra_merge have no CSV form)\n";
    return 2;
  }
  for (const auto m : cores) {
    gen::SyntheticConfig config;
    config.num_cores = static_cast<std::size_t>(m);
    spec.add_utilization_grid(
        config, cli.get_double_list("utilizations",
                                    hexp::utilization_axis(config.num_cores)));
  }
  const hexp::Sweep sweep(std::move(spec));

  hexp::Aggregator aggregator;
  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    // Sharded checkpoints open with a self-describing header so hydra_merge
    // can verify the shard set belongs together and is complete.
    const std::string header =
        shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
    file_sink = hexp::make_file_sink(cli.get_string("out", ""), header);
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Fig. 2: improvement in acceptance ratio (" +
                                  scheme_names[0] + " vs " + scheme_names[1] + ")");
  std::cout << tasksets << " tasksets per utilization point.\n";
  if (shard.count > 1) {
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << sweep.shard_header().cells
              << " of the grid's cells run here; merge the shard outputs with "
                 "hydra_merge (tables below cover this shard only).\n";
  }

  const auto summary = sweep.run(sinks);
  const auto cells = aggregator.cells();

  for (const auto m : cores) {
    io::Table table({"total utilization", "accept " + scheme_names[0],
                     "accept " + scheme_names[1], "improvement (%)"});
    for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
      const auto& point = sweep.spec().points[p];
      if (point.synthetic.num_cores != static_cast<std::size_t>(m)) continue;
      const auto* candidate = hexp::Aggregator::find(cells, p, scheme_names[0]);
      const auto* baseline = hexp::Aggregator::find(cells, p, scheme_names[1]);
      if (candidate == nullptr || baseline == nullptr) continue;
      const double improvement = hydra::stats::acceptance_improvement_percent(
          candidate->acceptance_ratio, baseline->acceptance_ratio);
      table.add_row({io::fmt(point.total_utilization, 3),
                     io::fmt(candidate->acceptance_ratio, 3),
                     io::fmt(baseline->acceptance_ratio, 3), io::fmt(improvement, 1)});
    }
    io::print_banner(std::cout, "M = " + std::to_string(m) + " cores");
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

  if (cli.has("agg-out")) {
    std::ofstream agg(cli.get_string("agg-out", ""));
    aggregator.write_jsonl(agg);
  }
  if (summary.resumed_cells > 0) {
    std::cout << "\nresumed " << summary.resumed_cells << " of " << summary.cells
              << " cells from " << sweep.spec().resume_path << "\n";
  }
  std::cout << "\nShape target: improvement ~0 at low utilization, rising "
               "toward 100% at high utilization (SingleCore runs out of RT "
               "capacity on M-1 cores and of security capacity on one core).\n";
  return 0;
}
