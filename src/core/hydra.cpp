#include "core/hydra.h"

#include <algorithm>
#include <limits>

#include "rt/analysis.h"
#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

namespace {

/// Mutable per-core bookkeeping while the greedy pass runs.
struct CoreState {
  std::vector<rt::RtTask> rt_tasks;                   ///< RT tasks partitioned here
  std::vector<rt::PlacedSecurityTask> placed;         ///< security tasks already assigned
  double utilization = 0.0;                           ///< RT + assigned security demand
  util::Millis max_security_wcet = 0.0;               ///< longest hosted scan

  /// Eq. (5) interferer sums, maintained incrementally: seeded from the RT
  /// tasks (+ blocking) once, then extended via add_interferer as monitors
  /// commit — the same accumulation order interference_bound uses, so the
  /// cached sums are bitwise identical to a fresh rebuild.
  rt::InterferenceBound interferers;

  const rt::InterferenceBound& bound(util::Millis /*blocking*/) const { return interferers; }

  /// Non-preemptive admission: the RT tasks must tolerate being blocked by
  /// the longest scan that would live here if `candidate_wcet` joins.
  bool rt_tolerates_blocking(util::Millis candidate_wcet) const {
    const util::Millis worst = std::max(max_security_wcet, candidate_wcet);
    return rt::core_schedulable_rm_with_blocking(rt_tasks, worst);
  }
};

}  // namespace

Allocation HydraAllocator::allocate(const Instance& instance,
                                    const rt::Partition& rt_partition) const {
  instance.validate();
  HYDRA_REQUIRE(rt_partition.num_cores == instance.num_cores,
                "RT partition core count must match the instance");
  HYDRA_REQUIRE(rt_partition.core_of.size() == instance.rt_tasks.size(),
                "RT partition does not cover the RT task set");

  std::vector<CoreState> cores(instance.num_cores);
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    cores[c].rt_tasks = rt_partition.tasks_on_core(instance.rt_tasks, c);
    for (const auto& t : cores[c].rt_tasks) cores[c].utilization += t.utilization();
    cores[c].interferers = rt::interference_bound(cores[c].rt_tasks, {}, options_.blocking);
  }

  Allocation result;
  result.rt_partition = rt_partition;
  result.placements.assign(instance.security_tasks.size(), TaskPlacement{});

  // Lines 2–14: highest to lowest security priority (ascending Tmax, unless
  // the caller supplied a chain-consistent override).
  const auto order =
      rt::resolve_security_order(instance.security_tasks, options_.priority_order);
  for (const std::size_t s : order) {
    const rt::SecurityTask& task = instance.security_tasks[s];

    // Lines 3–5: solve Eq. (7) on every core.
    std::optional<std::size_t> best_core;
    PeriodAdaptation best{};
    for (std::size_t c = 0; c < instance.num_cores; ++c) {
      if (options_.non_preemptive_security && !cores[c].rt_tolerates_blocking(task.wcet)) {
        continue;  // a scan this long would blow the RT deadlines here
      }
      const PeriodAdaptation candidate =
          options_.solver == PeriodSolver::kExactRta
              ? adapt_period_exact(task, cores[c].rt_tasks, cores[c].placed, options_.blocking,
                                   &cores[c].interferers)
              : adapt_period(task, cores[c].bound(options_.blocking), options_.solver);
      if (!candidate.feasible) continue;

      bool take = false;
      if (!best_core.has_value()) {
        take = true;
      } else {
        switch (options_.core_pick) {
          case CorePick::kMaxTightness:
            if (candidate.tightness > best.tightness + 1e-12) {
              take = true;
            } else if (candidate.tightness > best.tightness - 1e-12 &&
                       options_.tie_break == TieBreak::kLeastLoaded &&
                       cores[c].utilization < cores[*best_core].utilization) {
              take = true;
            }
            break;
          case CorePick::kFirstFeasible:
            break;  // first feasible core already held in `best`
          case CorePick::kLeastLoaded:
            if (cores[c].utilization < cores[*best_core].utilization) take = true;
            break;
          case CorePick::kWorstTightness:
            if (candidate.tightness < best.tightness - 1e-12) take = true;
            break;
        }
      }
      if (take) {
        best_core = c;
        best = candidate;
      }
    }

    // Lines 7–10: no feasible core anywhere ⇒ unschedulable.
    if (!best_core.has_value()) {
      return infeasible_allocation(
          s, "no core admits an acceptable period for security task '" + task.name + "'");
    }

    // Lines 12–13: commit assignment and period.
    result.placements[s] = TaskPlacement{*best_core, best.period, best.tightness};
    cores[*best_core].placed.push_back(rt::PlacedSecurityTask{task.wcet, best.period});
    cores[*best_core].interferers.add_interferer(task.wcet, best.period);
    cores[*best_core].utilization += task.wcet / best.period;
    cores[*best_core].max_security_wcet = std::max(cores[*best_core].max_security_wcet,
                                                   task.wcet);
  }

  result.feasible = true;
  return result;
}

Allocation HydraAllocator::allocate(const Instance& instance) const {
  return allocate_with_default_partition(instance);
}

std::string HydraAllocator::describe() const {
  std::string text = "greedy joint allocation + period adaptation (Algorithm 1); ";
  switch (options_.solver) {
    case PeriodSolver::kClosedForm: text += "closed-form subproblem"; break;
    case PeriodSolver::kGeometricProgram: text += "GP subproblem"; break;
    case PeriodSolver::kExactRta: text += "exact-RTA subproblem"; break;
  }
  switch (options_.core_pick) {
    case CorePick::kMaxTightness: break;  // the paper's rule; not worth naming
    case CorePick::kFirstFeasible: text += "; first-fit core pick"; break;
    case CorePick::kLeastLoaded: text += "; least-loaded core pick"; break;
    case CorePick::kWorstTightness: text += "; worst-tightness core pick (ablation)"; break;
  }
  if (options_.core_pick == CorePick::kMaxTightness &&
      options_.tie_break == TieBreak::kLowestIndex) {
    text += "; lowest-index tie break";
  }
  if (options_.non_preemptive_security) text += "; non-preemptive security";
  return text;
}

}  // namespace hydra::core
