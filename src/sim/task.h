// Runtime task descriptors and per-job records for the discrete-event
// simulator.  The simulator replaces the paper's ARM Cortex-A8 + Xenomai
// testbed (DESIGN.md §6): it executes a partitioned fixed-priority
// preemptive schedule at microsecond resolution.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace hydra::sim {

/// A task as the simulator sees it: fully resolved (period fixed, core
/// fixed, distinct priority).  With `release_jitter == 0` releases are
/// strictly periodic from `release_offset` — the worst-case arrival pattern
/// of a sporadic task; with jitter, each inter-arrival gap is
/// period + U(0, jitter], preserving the sporadic minimum separation.
struct SimTask {
  std::string name;
  util::SimTime wcet = 0;            ///< execution budget per job (ticks)
  util::SimTime period = 0;          ///< minimum inter-release separation (ticks)
  util::SimTime deadline = 0;        ///< relative deadline (ticks)
  std::size_t core = 0;              ///< partitioned: fixed core
  int priority = 0;                  ///< smaller value = higher priority
  bool preemptive = true;            ///< false: job runs to completion once started
  util::SimTime release_offset = 0;  ///< first release time
  util::SimTime release_jitter = 0;  ///< extra random gap per release (sporadic)
  /// Each job executes wcet·U(exec_fraction_min, 1] — models actual execution
  /// times below the worst case.  1.0 = always the WCET (analysis-faithful).
  double exec_fraction_min = 1.0;
};

/// What happened to one job.
struct JobRecord {
  util::SimTime release = 0;
  util::SimTime start = 0;       ///< first time the job got the CPU
  util::SimTime completion = 0;  ///< valid iff completed
  bool completed = false;
  bool deadline_missed = false;  ///< completed after release + deadline (or never)
};

/// A contiguous stretch of execution of one job on one core.
struct ExecutionSegment {
  std::size_t task = 0;
  std::size_t core = 0;
  util::SimTime from = 0;
  util::SimTime to = 0;
};

/// Per-task job history plus core-level accounting.
struct Trace {
  std::vector<std::vector<JobRecord>> jobs;  ///< jobs[task_index], release order
  std::vector<util::SimTime> core_busy;      ///< busy ticks per core
  util::SimTime horizon = 0;
  /// Cross-core job resumptions; only the global-slack engine migrates, the
  /// partitioned engine always reports 0.
  std::size_t migrations = 0;
  /// Execution intervals in chronological order per core; filled only when
  /// the engine is asked to record them (SimOptions::record_segments).
  std::vector<ExecutionSegment> segments;

  std::size_t total_jobs() const;
  std::size_t deadline_misses() const;

  /// Completion time of the first job of `task` released at or after `t`;
  /// nullopt if no such job completed within the trace.
  std::optional<util::SimTime> first_completion_released_after(std::size_t task,
                                                              util::SimTime t) const;

  /// Observed response times (completion − release) of `task`'s completed
  /// jobs, in milliseconds.  The empirical counterpart of response-time
  /// analysis: observed max ≤ analytic bound on any feasible system.
  std::vector<double> response_times_ms(std::size_t task) const;

  /// Largest observed response time of `task`; nullopt if no job completed.
  std::optional<double> max_response_time_ms(std::size_t task) const;
};

}  // namespace hydra::sim
