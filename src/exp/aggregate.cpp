#include "exp/aggregate.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/contracts.h"

namespace hydra::exp {

/// Raw per-cell material: counters plus the sample vectors the statistics
/// are computed from on demand.  `accepted_by_instance` keeps the cumulative
/// tightness keyed by instance index so the gap join can pair this cell's
/// results with the reference scheme's on identical instances.
struct Aggregator::CellAccum {
  std::size_t point_index = 0;
  std::string point_label;
  double target_utilization = 0.0;
  std::string scheme;

  std::size_t total = 0;
  std::size_t accepted = 0;
  std::size_t skipped = 0;
  std::size_t errors = 0;
  std::size_t no_instance = 0;

  std::vector<double> normalized_tightness;
  std::map<std::size_t, double> accepted_by_instance;  ///< instance → Σ ω·η
  std::map<std::string, std::vector<double>> metric_samples;
};

namespace {

CellDistribution distribution(std::vector<double> samples,
                              const std::vector<double>& levels) {
  CellDistribution dist;
  dist.count = samples.size();
  if (samples.empty()) return dist;
  const auto s = stats::summarize(samples);
  dist.mean = s.mean;
  dist.stddev = s.stddev;
  dist.min = s.min;
  dist.max = s.max;
  const auto ci = stats::mean_ci95(samples);
  dist.ci95_lo = ci.lo;
  dist.ci95_hi = ci.hi;
  std::sort(samples.begin(), samples.end());
  dist.percentiles.reserve(levels.size());
  for (const double p : levels) {
    dist.percentiles.push_back(stats::percentile_sorted(samples, p));
  }
  return dist;
}

/// Percentile key suffix: 0.5 → "p50", 0.999 → "p99.9".
std::string percentile_key(double level) { return "p" + format_double(level * 100.0); }

void write_distribution(std::ostream& os, const CellDistribution& dist,
                        const std::vector<double>& levels) {
  os << "{\"count\":" << dist.count;
  if (dist.count == 0) {
    os << ",\"mean\":null,\"stddev\":null,\"ci95_lo\":null,\"ci95_hi\":null"
          ",\"min\":null,\"max\":null";
    for (const double level : levels) os << ",\"" << percentile_key(level) << "\":null";
  } else {
    os << ",\"mean\":" << json_number(dist.mean)
       << ",\"stddev\":" << json_number(dist.stddev)
       << ",\"ci95_lo\":" << json_number(dist.ci95_lo)
       << ",\"ci95_hi\":" << json_number(dist.ci95_hi)
       << ",\"min\":" << json_number(dist.min)
       << ",\"max\":" << json_number(dist.max);
    for (std::size_t i = 0; i < levels.size(); ++i) {
      os << ",\"" << percentile_key(levels[i])
         << "\":" << json_number(dist.percentiles[i]);
    }
  }
  os << '}';
}

}  // namespace

Aggregator::~Aggregator() = default;

Aggregator::Aggregator(AggregateOptions options) : options_(std::move(options)) {
  for (const double level : options_.percentiles) {
    HYDRA_REQUIRE(level >= 0.0 && level <= 1.0,
                  "aggregator percentile levels must be in [0, 1]");
  }
}

Aggregator::CellAccum& Aggregator::accum_for(const BatchRow& row) {
  const auto key = std::make_pair(row.point_index, row.scheme);
  const auto found = index_.find(key);
  if (found != index_.end()) return accums_[found->second];
  index_.emplace(key, accums_.size());
  CellAccum accum;
  accum.point_index = row.point_index;
  accum.point_label = row.point_label;
  accum.target_utilization = row.target_utilization;
  accum.scheme = row.scheme;
  accums_.push_back(std::move(accum));
  return accums_.back();
}

void Aggregator::row(const BatchRow& row) {
  auto& accum = accum_for(row);
  ++accum.total;
  if (row.status == "skipped") {
    ++accum.skipped;
  } else if (row.status == "error") {
    ++accum.errors;
  } else if (row.status == "no-instance") {
    ++accum.no_instance;
  }
  const bool accepted = row.status == "ok" && row.feasible && row.validated;
  if (!accepted) return;
  ++accum.accepted;
  accum.normalized_tightness.push_back(row.normalized_tightness);
  accum.accepted_by_instance.emplace(row.instance_index, row.cumulative_tightness);
  for (const auto& [name, value] : row.metrics) {
    accum.metric_samples[name].push_back(value);
  }
}

void Aggregator::clear() {
  accums_.clear();
  index_.clear();
}

CellStats Aggregator::finalize(const CellAccum& accum) const {
  CellStats cell;
  cell.point_index = accum.point_index;
  cell.point_label = accum.point_label;
  cell.target_utilization = accum.target_utilization;
  cell.scheme = accum.scheme;
  cell.total = accum.total;
  cell.accepted = accum.accepted;
  cell.skipped = accum.skipped;
  cell.errors = accum.errors;
  cell.no_instance = accum.no_instance;
  cell.acceptance_ratio =
      accum.total == 0
          ? 0.0
          : static_cast<double>(accum.accepted) / static_cast<double>(accum.total);
  if (accum.total > 0) {
    // Binomial normal-approximation CI (mean_ci95 over the 0/1 accept
    // indicator, in closed form: the indicator's sample variance is
    // n·p·(1−p)/(n−1)), clamped to [0, 1] — a probability bound outside the
    // unit interval is an artifact of the approximation, not a statistic.
    const double n = static_cast<double>(accum.total);
    const double p = cell.acceptance_ratio;
    const double half =
        accum.total > 1 ? 1.96 * std::sqrt(p * (1.0 - p) * n / (n - 1.0) / n) : 0.0;
    cell.acceptance_ci95_lo = std::max(0.0, p - half);
    cell.acceptance_ci95_hi = std::min(1.0, p + half);
  }
  cell.tightness = distribution(accum.normalized_tightness, options_.percentiles);
  for (const auto& [name, samples] : accum.metric_samples) {
    cell.metrics.emplace(name, distribution(samples, options_.percentiles));
  }

  if (!options_.reference_scheme.empty() && accum.scheme != options_.reference_scheme) {
    const auto ref_key = std::make_pair(accum.point_index, options_.reference_scheme);
    const auto ref = index_.find(ref_key);
    if (ref != index_.end()) {
      const auto& ref_accum = accums_[ref->second];
      std::vector<double> gaps;
      for (const auto& [instance, eta] : accum.accepted_by_instance) {
        const auto match = ref_accum.accepted_by_instance.find(instance);
        if (match == ref_accum.accepted_by_instance.end()) continue;
        gaps.push_back(stats::gap_percent(match->second, eta));
      }
      if (!gaps.empty()) {
        const auto s = stats::summarize(gaps);
        cell.gap_samples = s.count;
        cell.gap_mean_percent = s.mean;
        cell.gap_max_percent = s.max;
        const auto ci = stats::mean_ci95(gaps);
        cell.gap_ci95_lo_percent = ci.lo;
        cell.gap_ci95_hi_percent = ci.hi;
      }
    }
  }
  return cell;
}

std::vector<CellStats> Aggregator::cells() const {
  std::vector<CellStats> out;
  out.reserve(accums_.size());
  for (const auto& accum : accums_) out.push_back(finalize(accum));
  return out;
}

const CellStats* Aggregator::find(const std::vector<CellStats>& cells,
                                  std::size_t point_index, const std::string& scheme) {
  for (const auto& cell : cells) {
    if (cell.point_index == point_index && cell.scheme == scheme) return &cell;
  }
  return nullptr;
}

const CellStats* Aggregator::find(const std::vector<CellStats>& cells,
                                  const std::string& point_label,
                                  const std::string& scheme) {
  for (const auto& cell : cells) {
    if (cell.point_label == point_label && cell.scheme == scheme) return &cell;
  }
  return nullptr;
}

void Aggregator::write_jsonl(std::ostream& os) const {
  for (const auto& cell : cells()) {
    os << "{\"point\":" << cell.point_index
       << ",\"point_label\":\"" << json_escape(cell.point_label) << '"'
       << ",\"target_utilization\":" << json_number(cell.target_utilization)
       << ",\"scheme\":\"" << json_escape(cell.scheme) << '"'
       << ",\"total\":" << cell.total
       << ",\"accepted\":" << cell.accepted
       << ",\"skipped\":" << cell.skipped
       << ",\"errors\":" << cell.errors
       << ",\"no_instance\":" << cell.no_instance
       << ",\"acceptance_ratio\":" << json_number(cell.acceptance_ratio)
       << ",\"acceptance_ci95_lo\":" << json_number(cell.acceptance_ci95_lo)
       << ",\"acceptance_ci95_hi\":" << json_number(cell.acceptance_ci95_hi)
       << ",\"tightness\":";
    write_distribution(os, cell.tightness, options_.percentiles);
    if (cell.gap_samples > 0) {
      os << ",\"gap_samples\":" << cell.gap_samples
         << ",\"gap_mean_percent\":" << json_number(cell.gap_mean_percent)
         << ",\"gap_max_percent\":" << json_number(cell.gap_max_percent)
         << ",\"gap_ci95_lo_percent\":" << json_number(cell.gap_ci95_lo_percent)
         << ",\"gap_ci95_hi_percent\":" << json_number(cell.gap_ci95_hi_percent);
    }
    if (!cell.metrics.empty()) {
      os << ",\"metrics\":{";
      bool first = true;
      for (const auto& [name, dist] : cell.metrics) {
        if (!first) os << ',';
        os << '"' << json_escape(name) << "\":";
        write_distribution(os, dist, options_.percentiles);
        first = false;
      }
      os << '}';
    }
    os << "}\n";
  }
}

}  // namespace hydra::exp
