// Loading a workload from a taskset file: the integration workflow for a
// system whose task parameters live in version control rather than in code.
// Writes a demo file if none is given, then loads it, allocates with HYDRA,
// and prints the resulting security configuration.
//
// Usage: ./build/examples/workload_from_file [--file path/to/taskset.txt]
#include <fstream>
#include <iostream>

#include "core/hydra.h"
#include "io/table.h"
#include "io/taskset_io.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;

namespace {

constexpr const char* kDemoTaskset = R"(# industrial controller retrofit demo (times in ms)
cores 4

# legacy real-time tasks (never modified)
rt plc_scan        4    20
rt motion_control  6    40
rt fieldbus_poll   3    50
rt hmi_update      20   200
rt data_logger     15   500

# security monitors to integrate: name wcet tdes tmax [weight]
sec fw_rule_audit      120  1500  15000  3
sec binary_integrity   450  2000  20000  2
sec anomaly_detector   300  2500  25000  1
sec log_tamper_check   200  4000  40000  1
)";

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  std::string path = cli.get_string("file", "");
  if (path.empty()) {
    path = "/tmp/hydra_demo_taskset.txt";
    std::ofstream(path) << kDemoTaskset;
    std::cout << "no --file given; wrote demo workload to " << path << "\n";
  }

  const core::Instance instance = io::load_instance(path);
  std::cout << "loaded " << instance.rt_tasks.size() << " RT tasks and "
            << instance.security_tasks.size() << " security tasks on "
            << instance.num_cores << " cores\n";

  const auto allocation = core::HydraAllocator().allocate(instance);
  if (!allocation.feasible) {
    std::cerr << "unschedulable: " << allocation.failure_reason << "\n"
              << "hint: relax the failing monitor's Tmax or desired period.\n";
    return 1;
  }

  io::print_banner(std::cout, "security configuration");
  io::Table table({"monitor", "core", "period (ms)", "tightness", "weight"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& task = instance.security_tasks[s];
    const auto& p = allocation.placements[s];
    table.add_row({task.name, std::to_string(p.core), io::fmt(p.period, 1),
                   io::fmt(p.tightness, 3), io::fmt(task.weight, 1)});
  }
  table.print(std::cout);
  std::cout << "weighted cumulative tightness: "
            << io::fmt(allocation.cumulative_tightness(instance.security_tasks), 3) << "\n";

  // Round-trip demonstration: re-serialize the instance.
  std::cout << "\ncanonical serialization:\n" << io::to_text(instance);
  return 0;
}
