// Multi-client service stress: N concurrent clients issuing mixed
// ping/allocate/stats/duplicate-key ops over real Unix-socket connections,
// one client hanging up mid-response, one client pipelining far more than
// the socket buffers hold without reading — asserting per-client response
// integrity (every response byte-identical to a solo evaluation of the same
// request), deterministic hit/coalesce/miss accounting, and above all that
// the daemon survives and keeps serving.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "swarm/proto.h"
#include "swarm/service.h"
#include "swarm/socket.h"

namespace swarm = hydra::swarm;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string json_string(const std::string& raw) {
  std::string out = "\"";
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

std::string allocate_line(const std::string& corpus_file) {
  return "{\"op\":\"allocate\",\"taskset_text\":" +
         json_string(slurp(kCorpusDir + "/" + corpus_file)) + "}";
}

swarm::ServiceOptions stress_options() {
  swarm::ServiceOptions options;
  options.default_schemes = {"hydra"};
  return options;
}

/// A raw client that can misbehave: send without reading, hang up whenever.
struct RawClient {
  int fd = -1;

  explicit RawClient(const std::string& socket_path) {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);  // EXPECT: fatal asserts cannot be used in constructors
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                        sizeof(address)),
              0)
        << socket_path;
  }
  ~RawClient() {
    if (fd >= 0) ::close(fd);
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + sent, framed.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }
};

struct ServerFixture {
  swarm::AllocationService service;
  swarm::EventLog log;
  swarm::ServiceServer server;
  std::thread thread;
  std::string socket_path;

  explicit ServerFixture(const std::string& name,
                         swarm::ServiceOptions service_options = stress_options(),
                         std::size_t max_pending_bytes = 64u * 1024 * 1024)
      : service(std::move(service_options)),
        server(service, make_server_options(name, max_pending_bytes), log),
        socket_path(server.socket_path()) {
    thread = std::thread([this] { server.run(); });
  }
  ~ServerFixture() {
    if (thread.joinable()) {
      // Belt and braces: tests normally shut down via the protocol.
      server.stop();
      thread.join();
    }
    std::remove(socket_path.c_str());
  }

  static swarm::ServerOptions make_server_options(const std::string& name,
                                                  std::size_t max_pending) {
    swarm::ServerOptions options;
    options.socket_path = testing::TempDir() + name;
    std::remove(options.socket_path.c_str());
    options.poll_interval_s = 0.005;
    options.max_pending_bytes = max_pending;
    return options;
  }
};

double stat_number(const std::string& stats_line, const std::string& field) {
  const auto fields = swarm::parse_flat_json(stats_line);
  if (!fields.has_value()) return -1.0;
  const auto it = fields->find(field);
  if (it == fields->end() || !it->second.number_value.has_value()) return -1.0;
  return *it->second.number_value;
}

}  // namespace

TEST(SwarmStress, ConcurrentMixedClientsKeepPerClientIntegrity) {
  // The ground truth each thread checks against: a solo service evaluating
  // the same requests (cache hits are byte-identical by contract, so every
  // concurrent response must equal the solo bytes).
  swarm::AllocationService solo(stress_options());
  const std::string mid = allocate_line("mid_2core_b.txt");
  const std::string easy = allocate_line("easy_2core_a.txt");
  const std::string expected_mid = solo.handle_line(mid);
  const std::string expected_easy = solo.handle_line(easy);

  ServerFixture fixture("hydra_stress_mixed.sock");

  constexpr int kClients = 8;
  constexpr int kRounds = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int client_index = 0; client_index < kClients; ++client_index) {
    clients.emplace_back([&, client_index] {
      try {
        swarm::ServiceClient client(fixture.socket_path);
        for (int round = 0; round < kRounds; ++round) {
          switch ((client_index + round) % 4) {
            case 0:
              if (client.request("{\"op\":\"ping\"}") !=
                  "{\"ok\":true,\"op\":\"ping\"}") {
                ++failures;
              }
              break;
            case 1:
              if (client.request(mid) != expected_mid) ++failures;
              break;
            case 2:
              if (client.request(easy) != expected_easy) ++failures;
              break;
            case 3: {
              const std::string stats = client.request("{\"op\":\"stats\"}");
              if (stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0) != 0) ++failures;
              break;
            }
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  // One extra client hangs up mid-response: request in, connection gone
  // before the response can be written.  The daemon must shrug.
  {
    RawClient rude(fixture.socket_path);
    rude.send_line(mid);
  }  // closed immediately

  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);

  // The daemon is alive and its books balance: every allocate was a hit,
  // a coalesce, or one of exactly two misses (two distinct fingerprints).
  swarm::ServiceClient post(fixture.socket_path);
  EXPECT_EQ(post.request("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");
  const std::string stats = post.request("{\"op\":\"stats\"}");
  EXPECT_EQ(stat_number(stats, "errors"), 0.0) << stats;
  EXPECT_EQ(stat_number(stats, "misses"), 2.0) << stats;
  const double allocs = stat_number(stats, "allocate_requests");
  EXPECT_EQ(stat_number(stats, "hits") + stat_number(stats, "coalesced") + 2.0,
            allocs)
      << stats;
  EXPECT_EQ(post.request("{\"op\":\"shutdown\"}"),
            "{\"ok\":true,\"op\":\"shutdown\"}");
  fixture.thread.join();
  EXPECT_EQ(fixture.log.count("service-stopped"), 1u);
}

TEST(SwarmStress, SlowClientBacklogDoesNotStallOtherClients) {
  ServerFixture fixture("hydra_stress_slow.sock");

  // The slow client pipelines far more response bytes than the socket
  // buffers hold WITHOUT reading: with the old blocking send_all the daemon
  // would wedge on this connection (and the test would deadlock — the slow
  // client only starts reading after it finished writing, which the daemon
  // would never let happen).  With POLLOUT buffering the backlog parks in
  // the daemon while everyone else is served.
  constexpr std::size_t kPipelined = 40000;  // ~1MB of responses, >> socket buffers
  std::atomic<bool> slow_done_sending{false};
  std::thread slow([&] {
    // ServiceClient::request is strictly request/response; drive the fd
    // directly for the pipelined phase.
    RawClient pipeliner(fixture.socket_path);
    std::string burst;
    for (std::size_t i = 0; i < kPipelined; ++i) burst += "{\"op\":\"ping\"}\n";
    std::size_t sent = 0;
    while (sent < burst.size()) {
      const ssize_t n = ::send(pipeliner.fd, burst.data() + sent,
                               burst.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
    slow_done_sending.store(true);
    // Now drain every response and verify nothing was lost or reordered.
    std::string buffer;
    std::size_t responses = 0;
    char chunk[65536];
    while (responses < kPipelined) {
      const ssize_t n = ::recv(pipeliner.fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0) << "server hung up after " << responses << " responses";
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t newline = buffer.find('\n', start);
        if (newline == std::string::npos) break;
        EXPECT_EQ(buffer.substr(start, newline - start),
                  "{\"ok\":true,\"op\":\"ping\"}");
        ++responses;
        start = newline + 1;
      }
      buffer.erase(0, start);
    }
    EXPECT_EQ(responses, kPipelined);
  });

  // Meanwhile a well-behaved client keeps getting prompt round trips.
  {
    swarm::ServiceClient nimble(fixture.socket_path);
    const std::string mid = allocate_line("mid_2core_b.txt");
    const std::string first = nimble.request(mid);
    int rounds = 0;
    while (rounds < 3 || (!slow_done_sending.load() && rounds < 10000)) {
      EXPECT_EQ(nimble.request("{\"op\":\"ping\"}"),
                "{\"ok\":true,\"op\":\"ping\"}");
      EXPECT_EQ(nimble.request(mid), first);
      ++rounds;
    }
    EXPECT_GT(rounds, 0);
  }
  slow.join();

  swarm::ServiceClient post(fixture.socket_path);
  EXPECT_EQ(post.request("{\"op\":\"shutdown\"}"),
            "{\"ok\":true,\"op\":\"shutdown\"}");
  fixture.thread.join();
}

TEST(SwarmStress, RunawayBacklogClosesOnlyTheOverrunClient) {
  // A 4KB pending cap: a client that never reads is cut loose instead of
  // growing the daemon's memory; everyone else is untouched.
  ServerFixture fixture("hydra_stress_overrun.sock", stress_options(),
                        /*max_pending_bytes=*/4096);

  RawClient hog(fixture.socket_path);
  // Enough pings that the responses (~500KB) cannot fit the kernel socket
  // buffers: the daemon's own pending buffer must absorb the excess, which
  // trips the 4KB cap.  The daemon may hang up mid-burst — that IS the
  // feature — so sending tolerates being cut off (and must not SIGPIPE).
  std::string burst;
  for (int i = 0; i < 20000; ++i) burst += "{\"op\":\"ping\"}\n";
  std::size_t sent = 0;
  while (sent < burst.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(hog.fd, burst.data() + sent, burst.size() - sent,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(hog.fd, burst.data() + sent, burst.size() - sent, 0);
#endif
    if (n <= 0) break;  // cut off by the cap — expected
    sent += static_cast<std::size_t>(n);
  }

  // The overrun is detected while the hog never reads; the daemon stays
  // responsive throughout and eventually hangs up on the hog.
  bool hog_closed = false;
  swarm::ServiceClient fine(fixture.socket_path);
  for (int i = 0; i < 2000 && !hog_closed; ++i) {
    EXPECT_EQ(fine.request("{\"op\":\"ping\"}"), "{\"ok\":true,\"op\":\"ping\"}");
    hog_closed = fixture.log.count("client-overrun") > 0;
  }
  EXPECT_TRUE(hog_closed);

  EXPECT_EQ(fine.request("{\"op\":\"shutdown\"}"),
            "{\"ok\":true,\"op\":\"shutdown\"}");
  fixture.thread.join();
}
