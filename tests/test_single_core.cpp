// Tests for the SingleCore comparator: dedicated-core semantics, the
// "no RT interference" property, and comparisons against HYDRA.
#include <gtest/gtest.h>

#include "core/hydra.h"
#include "core/single_core.h"
#include "core/validation.h"
#include "gen/uav.h"
#include "rt/task.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

TEST(SingleCore, AllSecurityOnLastCore) {
  const auto inst = hydra::gen::uav_case_study(4);
  const auto allocation = core::SingleCoreAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible) << allocation.failure_reason;
  for (const auto& p : allocation.placements) EXPECT_EQ(p.core, 3u);
  // And no RT task sits there.
  for (const std::size_t c : allocation.rt_partition.core_of) EXPECT_LT(c, 3u);
}

TEST(SingleCore, ValidAgainstIndependentChecker) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::SingleCoreAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  const auto report = core::validate_allocation(inst, allocation);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(SingleCore, RequiresAtLeastTwoCores) {
  auto inst = hydra::gen::uav_case_study(2);
  inst.num_cores = 1;
  EXPECT_THROW(core::SingleCoreAllocator().allocate(inst), std::invalid_argument);
}

TEST(SingleCore, RtPackingOnMMinusOneCanFail) {
  core::Instance inst;
  inst.num_cores = 2;  // RT must fit on a single core
  inst.rt_tasks = {rt::make_rt_task("r0", 6.0, 10.0), rt::make_rt_task("r1", 6.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 1.0, 100.0, 1000.0)};
  const auto allocation = core::SingleCoreAllocator().allocate(inst);
  EXPECT_FALSE(allocation.feasible);
  EXPECT_NE(allocation.failure_reason.find("M-1"), std::string::npos);
}

TEST(SingleCore, SecurityTasksSeeNoRtInterference) {
  // A heavy RT load must not affect the dedicated core's periods: the same
  // security set must get identical periods regardless of RT demand.
  core::Instance heavy;
  heavy.num_cores = 3;
  heavy.rt_tasks = {rt::make_rt_task("r0", 7.0, 10.0), rt::make_rt_task("r1", 7.0, 10.0)};
  heavy.security_tasks = {rt::make_security_task("s0", 100.0, 1000.0, 10000.0),
                          rt::make_security_task("s1", 200.0, 1500.0, 15000.0)};
  core::Instance light = heavy;
  light.rt_tasks = {rt::make_rt_task("tiny", 0.1, 1000.0)};

  const auto a_heavy = core::SingleCoreAllocator().allocate(heavy);
  const auto a_light = core::SingleCoreAllocator().allocate(light);
  ASSERT_TRUE(a_heavy.feasible);
  ASSERT_TRUE(a_light.feasible);
  for (std::size_t s = 0; s < heavy.security_tasks.size(); ++s) {
    EXPECT_DOUBLE_EQ(a_heavy.placements[s].period, a_light.placements[s].period);
  }
}

TEST(SingleCore, MutualInterferenceInflatesLowPriorityPeriods) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto allocation = core::SingleCoreAllocator().allocate(inst);
  ASSERT_TRUE(allocation.feasible);
  // The Table-I catalog demands ≈1.6 cores at desired rates: the lowest-
  // priority monitors cannot hold η = 1 on one core.
  const auto& last = allocation.placements.back();  // bro (largest Tmax)
  EXPECT_GT(last.period, inst.security_tasks.back().period_des * 1.5);
}

TEST(SingleCore, HydraDominatesOnTightness) {
  // With more cores available HYDRA must achieve at least SingleCore's
  // cumulative tightness on the case study.
  for (const std::size_t m : {2u, 4u, 8u}) {
    const auto inst = hydra::gen::uav_case_study(m);
    const auto hydra_alloc = core::HydraAllocator().allocate(inst);
    const auto single_alloc = core::SingleCoreAllocator().allocate(inst);
    ASSERT_TRUE(hydra_alloc.feasible);
    ASSERT_TRUE(single_alloc.feasible);
    EXPECT_GE(hydra_alloc.cumulative_tightness(inst.security_tasks),
              single_alloc.cumulative_tightness(inst.security_tasks) - 1e-9)
        << "M = " << m;
  }
}

TEST(SingleCore, JointRefinementNeverHurtsTightness) {
  const auto inst = hydra::gen::uav_case_study(2);
  core::SingleCoreOptions refined;
  refined.joint_refinement = true;
  const auto plain = core::SingleCoreAllocator().allocate(inst);
  const auto joint = core::SingleCoreAllocator(refined).allocate(inst);
  ASSERT_TRUE(plain.feasible);
  ASSERT_TRUE(joint.feasible);
  EXPECT_GE(joint.cumulative_tightness(inst.security_tasks),
            plain.cumulative_tightness(inst.security_tasks) - 1e-9);
  const auto report = core::validate_allocation(inst, joint);
  EXPECT_TRUE(report.valid) << report.problem;
}

TEST(SingleCore, InfeasibleSecurityTaskNamed) {
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r", 1.0, 10.0)};
  // Two monitors that cannot share one core even at Tmax:
  // (C=900, Tdes=1000, Tmax=1200) twice → utilization at Tmax is 1.5.
  inst.security_tasks = {rt::make_security_task("s0", 900.0, 1000.0, 1200.0),
                         rt::make_security_task("s1", 900.0, 1000.0, 1200.0)};
  const auto allocation = core::SingleCoreAllocator().allocate(inst);
  ASSERT_FALSE(allocation.feasible);
  EXPECT_EQ(allocation.failed_task, 1u);  // the lower-priority twin fails
}
