// Runtime controller policies and their registry, mirroring
// core::AllocatorRegistry / gp::SolverRegistry one layer over: CLI flags like
// `--policies hysteresis,boost` and SweepSpec::controller_policy pick the
// decision rule the mode-switching engine (sim/mode_switch.h) runs each
// monitor through, without compiling against policy internals.
//
// The global registry ships four policies:
//
//     hysteresis          the incumbent two-point rule: jump to the fastest
//                         level when idle >= tighten_threshold, fall back to
//                         minimum mode when idle <= relax_threshold (default)
//     hysteresis/nlevel   the same band, one level at a time: tighten one
//                         step on idle >= tighten, loosen one step on
//                         idle <= relax — the N-level generalization
//     never-switch        inert baseline: every monitor stays in minimum
//                         mode, job-for-job identical to the static engine
//     boost               attack-triggered (Contego): a detection event
//                         pins the affected monitor at its fastest level for
//                         `boost_window` ticks, after which it decays back
//                         level-by-level toward what hysteresis/nlevel wants
//
// Registered names are stable identifiers: SweepSpec::controller_policy is
// stamped into sweep_fingerprint, so rows simulated under different policies
// disagree loudly.  Policy selection resolves explicit config > the
// thread-local ControllerScope > kDefaultControllerPolicy, exactly like
// gp::resolve_gp_backend.  docs/controller-catalog.md is the generated
// catalog of this registry; the authoring path is documented in
// docs/architecture.md ("Runtime adaptation").
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace hydra::sim {

/// The policy every call site uses when neither a config field nor a
/// ControllerScope names one.  Keeping this the incumbent rule preserves
/// byte-identical fig5 rows across the registry refactor (tested).
inline constexpr const char* kDefaultControllerPolicy = "hysteresis";

/// Controller knobs, shared by every core's controller instance.  Validated
/// by validate() at simulate_mode_switching entry AND at every construction
/// seam (ControllerRegistry::make, exp::adaptive_detection_metrics), so an
/// impossible configuration — a threshold the idle fraction can never reach,
/// a zero switch budget — fails loudly instead of yielding a controller that
/// silently never switches.
struct ModeControllerConfig {
  /// ControllerRegistry policy name; "" resolves via the ambient
  /// ControllerScope, else kDefaultControllerPolicy.
  std::string policy;
  /// Sliding slack-window length; the idle fraction is measured over
  /// [t − window, t] at decision instant t.  0 = auto: per core, 4× the
  /// largest minimum-mode period among its switchable tasks.
  util::SimTime slack_window = 0;
  /// Idle fraction at/above which a task tightens.  Must be finite and in
  /// [0, 1] — the idle fraction is a ratio, so anything outside that range
  /// (e.g. 2.0) is a configuration that can never fire, not a policy.
  double tighten_threshold = 0.25;
  /// Idle fraction at/below which a task loosens.  Finite, in [0, 1], and
  /// strictly below tighten_threshold (the gap is the hysteresis band).
  double relax_threshold = 0.05;
  /// Minimum ticks between two committed switches of the same task; a
  /// decision denied by the dwell is counted in ModeStats::denied_dwell.
  /// 0 = auto: the task's own minimum-mode period.  Interacts with
  /// slack_window: a dwell much shorter than the window commits switches
  /// faster than the observation that justified them can leave the window,
  /// which is what the hysteresis band is for — the band, not the dwell, is
  /// the thrash guard; the dwell only rate-limits.
  util::SimTime min_dwell = 0;
  /// Maximum committed switches per task over the whole run; once spent, the
  /// task stays in its current mode and further decisions are counted in
  /// ModeStats::denied_budget.  Must be >= 1: a zero budget is a controller
  /// that can never act — use the `never-switch` policy to say that loudly.
  std::size_t switch_budget = std::numeric_limits<std::size_t>::max();
  /// Mode-table levels per monitor (minimum mode and the fastest committed
  /// level included), >= 2.  2 is the incumbent {min, adapted} pair; larger
  /// values interpolate geometrically (core/mode_table.h).  Consumed by the
  /// seams that build mode tables from this config
  /// (sim::measure_detection_times_adaptive, exp::adaptive_detection_metrics).
  std::size_t num_levels = 2;
  /// How long a detection event pins a boosted monitor at its fastest level
  /// (the `boost` policy's dwell window).  0 = auto: the resolved slack
  /// window of the monitor's core.
  util::SimTime boost_window = 0;

  /// Throws std::invalid_argument when any knob is out of range (non-finite
  /// or out-of-[0,1] thresholds, relax >= tighten, zero switch budget,
  /// num_levels < 2 or > 64).  Does NOT resolve the policy name — that needs
  /// the registry, and happens wherever a policy is constructed.
  void validate() const;
};

/// What a policy sees at one task's release boundary.  Levels are mode-table
/// ladder indices: 0 = minimum mode (slowest), `top_level` = the fastest
/// analysis-feasible level.
struct LevelObservation {
  util::SimTime now = 0;          ///< the release boundary (decision instant)
  double idle_fraction = 0.0;     ///< over the slack window ending at now
  std::size_t current_level = 0;  ///< the task's committed level
  std::size_t top_level = 0;      ///< fastest level index (num_levels - 1)
};

/// One core's decision rule.  Instantiated per core (policies hold per-task
/// state and cores are simulated independently); decisions must be pure
/// functions of the observations and detection events delivered on that core,
/// so a fixed seed replays the level stream byte-for-byte.
class ControllerPolicy {
 public:
  virtual ~ControllerPolicy() = default;

  /// The registered name.
  virtual const std::string& name() const = 0;

  /// Desired level for `task` at a release boundary.  The engine REQUIREs
  /// the result <= obs.top_level (a policy may never exceed the
  /// analysis-feasible fastest level), then applies the dwell / budget
  /// machinery before committing.
  virtual std::size_t decide(std::size_t task, const LevelObservation& obs) = 0;

  /// Detection event: switchable monitor `task` completed the first fresh
  /// scan after an injected attack, at time `at`.  Default: ignore.
  virtual void on_detection(std::size_t task, util::SimTime at);
};

/// Construction-time context a policy factory receives beside the config.
struct PolicyInit {
  std::size_t num_tasks = 0;        ///< global task count (state vector size)
  util::SimTime slack_window = 1;   ///< the core's RESOLVED slack window
};

class ControllerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ControllerPolicy>(
      const ModeControllerConfig&, const PolicyInit&)>;

  /// Registers a policy.  Throws std::invalid_argument on duplicate names.
  void add(std::string name, std::string description, Factory factory);

  bool contains(const std::string& name) const;

  /// Constructs the policy registered under `name` (the result's
  /// ControllerPolicy::name() reports exactly `name`).  Validates `config`
  /// first.  Throws std::invalid_argument for unknown names, listing the
  /// registered ones.
  std::unique_ptr<ControllerPolicy> make(const std::string& name,
                                         const ModeControllerConfig& config,
                                         const PolicyInit& init) const;

  /// Throws std::invalid_argument (listing the registered names) when `name`
  /// is unknown — the cheap existence check Sweep construction uses.
  void require(const std::string& name) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The registration-time description of `name` (throws when unknown).
  const std::string& description(const std::string& name) const;

  /// The process-wide registry pre-populated with the built-in policies.
  static ControllerRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string description;
    Factory factory;
  };

  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// RAII thread-local policy selection, mirroring gp::GpBackendScope: scopes
/// nest innermost-wins, and call sites whose config carries no policy name
/// resolve the ambient policy through `current()`.  The sweep layer installs
/// one per unit from SweepSpec::controller_policy.
class ControllerScope {
 public:
  explicit ControllerScope(std::string policy);
  ~ControllerScope();
  ControllerScope(const ControllerScope&) = delete;
  ControllerScope& operator=(const ControllerScope&) = delete;

  /// The innermost scope's policy name on this thread, or nullptr when none.
  static const std::string* current();

 private:
  std::string policy_;
  const std::string* previous_;
};

/// Resolves which policy a call site should use: an explicitly configured
/// non-empty `configured` name wins, else the innermost ControllerScope, else
/// kDefaultControllerPolicy.
const std::string& resolve_controller_policy(const std::string& configured);

/// Renders the registry as the markdown controller catalog committed at
/// docs/controller-catalog.md (name + description, registration order).  A
/// pure function of the registry contents, so `test_controller_catalog` can
/// diff the committed file against the live registry byte for byte.
/// Regenerate with `bench_table1_catalog --controller-catalog-out
/// docs/controller-catalog.md` (or
/// `HYDRA_UPDATE_CATALOG=1 ./build/test_controller_catalog`).
std::string controller_catalog_markdown(const ControllerRegistry& registry);

}  // namespace hydra::sim
