// Supervisor edge cases driven through a fake backend and a fake clock: no
// real processes, no real sleeping, so every path — crash, backoff growth,
// stall kill, chaos kill, retry exhaustion, shutdown — is deterministic.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "swarm/supervisor.h"

namespace swarm = hydra::swarm;

namespace {

/// In-memory backend: workers "run" until the test finishes them.  stop()
/// lands a SIGKILL synchronously (the next poll reaps it), matching the
/// contract the real backend provides.
class FakeBackend : public swarm::ProcessBackend {
 public:
  swarm::WorkerId start(const swarm::WorkerSpec& spec) override {
    const swarm::WorkerId id = next_id_++;
    specs_[id] = spec;
    ++launches_;
    return id;
  }

  std::optional<swarm::ExitStatus> poll(swarm::WorkerId id) override {
    const auto it = exits_.find(id);
    if (it == exits_.end()) return std::nullopt;
    return it->second;
  }

  void stop(swarm::WorkerId id) override {
    if (exits_.find(id) == exits_.end()) {
      exits_[id] = swarm::ExitStatus{/*signaled=*/true, /*value=*/9};
    }
    ++stops_;
  }

  /// Test control: end a worker with an explicit status.
  void finish(swarm::WorkerId id, bool signaled, int value) {
    exits_[id] = swarm::ExitStatus{signaled, value};
  }

  const swarm::WorkerSpec& spec(swarm::WorkerId id) const { return specs_.at(id); }
  int launches() const { return launches_; }
  int stops() const { return stops_; }

 private:
  swarm::WorkerId next_id_ = 1;
  std::map<swarm::WorkerId, swarm::WorkerSpec> specs_;
  std::map<swarm::WorkerId, swarm::ExitStatus> exits_;
  int launches_ = 0;
  int stops_ = 0;
};

swarm::WorkerSpec spec_named(const std::string& name) {
  swarm::WorkerSpec spec;
  spec.argv = {"/bin/worker", name};
  return spec;
}

struct Fixture {
  double now = 0.0;
  FakeBackend backend;
  swarm::EventLog log;
  swarm::SupervisorPolicy policy;

  swarm::Supervisor make() {
    return swarm::Supervisor(backend, policy, log, [this] { return now; });
  }
};

TEST(SwarmSupervisor, PolicyValidation) {
  Fixture fx;
  fx.policy.max_attempts = 0;
  EXPECT_THROW(fx.make(), std::invalid_argument);
  fx.policy = {};
  fx.policy.backoff_factor = 0.5;
  EXPECT_THROW(fx.make(), std::invalid_argument);
}

TEST(SwarmSupervisor, CleanRunToDone) {
  Fixture fx;
  auto supervisor = fx.make();
  const auto a = supervisor.add_task("shard-0", spec_named("a"));
  const auto b = supervisor.add_task("shard-1", spec_named("b"));

  supervisor.tick();  // both launch immediately
  EXPECT_EQ(fx.backend.launches(), 2);
  EXPECT_EQ(supervisor.status(a).state, swarm::TaskState::kRunning);

  fx.backend.finish(supervisor.status(a).worker, false, 0);
  fx.backend.finish(supervisor.status(b).worker, false, 0);
  fx.now = 1.0;
  supervisor.tick();

  EXPECT_TRUE(supervisor.all_done());
  EXPECT_TRUE(supervisor.finished());
  EXPECT_FALSE(supervisor.any_failed());
  EXPECT_EQ(supervisor.restarts(), 0u);
  EXPECT_EQ(fx.log.count("worker-started"), 2u);
  EXPECT_EQ(fx.log.count("worker-done"), 2u);
}

TEST(SwarmSupervisor, CrashRestartsWithExponentialBackoff) {
  Fixture fx;
  fx.policy.max_attempts = 4;
  fx.policy.backoff_initial_s = 0.5;
  fx.policy.backoff_factor = 2.0;
  fx.policy.backoff_max_s = 1.5;  // cap below the un-capped third delay (2.0)
  auto supervisor = fx.make();
  const auto t = supervisor.add_task("shard-0", spec_named("crashy"));

  supervisor.tick();
  fx.backend.finish(supervisor.status(t).worker, true, 11);  // SIGSEGV
  fx.now = 1.0;
  supervisor.tick();
  ASSERT_EQ(supervisor.status(t).state, swarm::TaskState::kPending);
  EXPECT_DOUBLE_EQ(supervisor.status(t).next_start_t, 1.0 + 0.5);

  // Not eligible before the backoff elapses.
  fx.now = 1.2;
  supervisor.tick();
  EXPECT_EQ(supervisor.status(t).state, swarm::TaskState::kPending);

  fx.now = 1.5;
  supervisor.tick();
  ASSERT_EQ(supervisor.status(t).state, swarm::TaskState::kRunning);
  EXPECT_EQ(supervisor.status(t).attempts, 2);

  fx.backend.finish(supervisor.status(t).worker, true, 11);
  fx.now = 2.0;
  supervisor.tick();
  EXPECT_DOUBLE_EQ(supervisor.status(t).next_start_t, 2.0 + 1.0);  // 0.5 * 2

  fx.now = 3.0;
  supervisor.tick();
  fx.backend.finish(supervisor.status(t).worker, true, 11);
  fx.now = 4.0;
  supervisor.tick();
  // Third restart delay would be 2.0 but the ceiling clamps it to 1.5.
  EXPECT_DOUBLE_EQ(supervisor.status(t).next_start_t, 4.0 + 1.5);

  fx.now = 6.0;
  supervisor.tick();
  ASSERT_EQ(supervisor.status(t).attempts, 4);
  fx.backend.finish(supervisor.status(t).worker, false, 0);
  supervisor.tick();
  EXPECT_TRUE(supervisor.all_done());
  EXPECT_EQ(supervisor.restarts(), 3u);
  EXPECT_EQ(fx.log.count("worker-restarted"), 3u);
}

TEST(SwarmSupervisor, RetryExhaustionFailsLoudly) {
  Fixture fx;
  fx.policy.max_attempts = 2;
  fx.policy.backoff_initial_s = 0.0;
  auto supervisor = fx.make();
  const auto t = supervisor.add_task("shard-0", spec_named("doomed"));

  for (int attempt = 0; attempt < 2; ++attempt) {
    supervisor.tick();
    ASSERT_EQ(supervisor.status(t).state, swarm::TaskState::kRunning);
    fx.backend.finish(supervisor.status(t).worker, true, 9);
    fx.now += 1.0;
    supervisor.tick();
  }

  ASSERT_EQ(supervisor.status(t).state, swarm::TaskState::kFailed);
  EXPECT_TRUE(supervisor.any_failed());
  EXPECT_TRUE(supervisor.finished());
  EXPECT_FALSE(supervisor.all_done());
  // The terminal failure names the exhausted budget — the LOUD part.
  EXPECT_NE(supervisor.status(t).failure.find("retry budget exhausted"),
            std::string::npos);
  EXPECT_EQ(fx.log.count("worker-gave-up"), 1u);
  // A finished-but-failed swarm never launches more workers.
  supervisor.tick();
  EXPECT_EQ(fx.backend.launches(), 2);
}

TEST(SwarmSupervisor, StallTimeoutKillsAndRestarts) {
  Fixture fx;
  fx.policy.stall_timeout_s = 5.0;
  fx.policy.backoff_initial_s = 0.0;
  auto supervisor = fx.make();
  const auto t = supervisor.add_task("shard-0", spec_named("wedged"));

  supervisor.tick();
  supervisor.report_progress(t, 100.0);

  fx.now = 4.9;  // just under the timeout since the progress change
  supervisor.tick();
  EXPECT_EQ(fx.backend.stops(), 0);

  fx.now = 5.0;
  supervisor.tick();  // fires the stall kill; death reaped on a later tick
  EXPECT_EQ(fx.backend.stops(), 1);
  EXPECT_EQ(fx.log.count("worker-stalled"), 1u);

  fx.now = 5.1;
  supervisor.tick();  // reap the SIGKILL, schedule the restart
  fx.now = 5.2;
  supervisor.tick();
  EXPECT_EQ(supervisor.status(t).state, swarm::TaskState::kRunning);
  EXPECT_EQ(supervisor.status(t).attempts, 2);
}

TEST(SwarmSupervisor, ProgressChangeResetsStallTimer) {
  Fixture fx;
  fx.policy.stall_timeout_s = 5.0;
  auto supervisor = fx.make();
  const auto t = supervisor.add_task("shard-0", spec_named("busy"));

  supervisor.tick();
  supervisor.report_progress(t, 10.0);
  fx.now = 4.0;
  supervisor.report_progress(t, 20.0);  // growth resets
  fx.now = 8.0;
  // A restarted worker truncates and rewrites its checkpoint, so a SHRINK is
  // progress too — only an unchanged value may trip the stall timer.
  supervisor.report_progress(t, 5.0);
  fx.now = 12.0;
  supervisor.tick();
  EXPECT_EQ(fx.backend.stops(), 0);

  fx.now = 13.0;
  supervisor.tick();  // 5s with no change since t=8 → stalled
  EXPECT_EQ(fx.backend.stops(), 1);
}

TEST(SwarmSupervisor, ChaosKillRoutesThroughRetryPolicy) {
  Fixture fx;
  fx.policy.backoff_initial_s = 0.0;
  auto supervisor = fx.make();
  const auto t = supervisor.add_task("shard-0", spec_named("victim"));

  supervisor.tick();
  supervisor.kill(t, "chaos injection");
  EXPECT_EQ(fx.log.count("worker-killed"), 1u);

  fx.now = 1.0;
  supervisor.tick();  // reap, schedule
  fx.now = 2.0;
  supervisor.tick();  // relaunch
  EXPECT_EQ(supervisor.status(t).state, swarm::TaskState::kRunning);
  EXPECT_EQ(supervisor.status(t).attempts, 2);

  // Killing a finished task is a no-op.
  fx.backend.finish(supervisor.status(t).worker, false, 0);
  supervisor.tick();
  supervisor.kill(t, "too late");
  EXPECT_EQ(supervisor.status(t).state, swarm::TaskState::kDone);
  EXPECT_EQ(fx.log.count("worker-killed"), 1u);
}

TEST(SwarmSupervisor, ShutdownKillsEverythingUnfinished) {
  Fixture fx;
  fx.policy.backoff_initial_s = 10.0;
  auto supervisor = fx.make();
  const auto running = supervisor.add_task("shard-0", spec_named("a"));
  const auto pending = supervisor.add_task("shard-1", spec_named("b"));
  const auto done = supervisor.add_task("shard-2", spec_named("c"));

  supervisor.tick();
  fx.backend.finish(supervisor.status(done).worker, false, 0);
  fx.backend.finish(supervisor.status(pending).worker, true, 9);
  fx.now = 1.0;
  supervisor.tick();  // done→kDone, pending→crash→kPending (10s backoff)
  ASSERT_EQ(supervisor.status(pending).state, swarm::TaskState::kPending);

  supervisor.shutdown("sibling failed");
  EXPECT_EQ(supervisor.status(running).state, swarm::TaskState::kFailed);
  EXPECT_EQ(supervisor.status(pending).state, swarm::TaskState::kFailed);
  EXPECT_EQ(supervisor.status(done).state, swarm::TaskState::kDone);
  EXPECT_TRUE(supervisor.finished());
  EXPECT_EQ(fx.log.count("worker-shutdown"), 2u);
}

TEST(SwarmSupervisor, EventsCarryMonotoneSequence) {
  Fixture fx;
  auto supervisor = fx.make();
  supervisor.add_task("shard-0", spec_named("a"));
  supervisor.tick();
  fx.backend.finish(supervisor.status(0).worker, false, 0);
  supervisor.tick();

  const auto events = fx.log.snapshot();
  ASSERT_GE(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(events.front().kind, "worker-started");
  EXPECT_EQ(events.back().kind, "worker-done");
}

TEST(SwarmSupervisor, WorkerSpecPassedToBackendVerbatim) {
  Fixture fx;
  auto supervisor = fx.make();
  swarm::WorkerSpec spec;
  spec.argv = {"/bin/sweep", "--shard", "1/3"};
  spec.stdout_path = "/tmp/s.log";
  const auto t = supervisor.add_task("shard-1", spec);
  supervisor.tick();
  const auto& seen = fx.backend.spec(supervisor.status(t).worker);
  EXPECT_EQ(seen.argv, spec.argv);
  EXPECT_EQ(seen.stdout_path, "/tmp/s.log");
}

}  // namespace
