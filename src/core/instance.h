// Problem instance and allocation result types shared by every allocation
// scheme (HYDRA, SingleCore, Optimal).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "rt/partition.h"
#include "rt/task.h"
#include "util/units.h"

namespace hydra::core {

/// The input of the design-space exploration: an M-core platform, the legacy
/// RT task set ΓR (whose parameters must not change) and the security task
/// set ΓS to integrate.
struct Instance {
  std::size_t num_cores = 0;                    ///< M
  std::vector<rt::RtTask> rt_tasks;             ///< ΓR
  std::vector<rt::SecurityTask> security_tasks; ///< ΓS

  /// Throws std::invalid_argument on malformed instances.
  void validate() const;
};

/// Where one security task ended up.
struct TaskPlacement {
  std::size_t core = 0;          ///< assigned core (0-based)
  util::Millis period = 0.0;     ///< assigned period Ts ∈ [Tdes, Tmax]
  double tightness = 0.0;        ///< ηs = Tdes/Ts
};

/// Outcome of an allocation scheme.  `feasible == false` mirrors the paper's
/// "Unschedulable" return: `failed_task` is the first security task for which
/// no core admitted any acceptable period.
struct Allocation {
  bool feasible = false;
  std::size_t failed_task = std::numeric_limits<std::size_t>::max();
  std::string failure_reason;

  /// Parallel to Instance::security_tasks; meaningful when feasible.
  std::vector<TaskPlacement> placements;

  /// The RT partition the scheme ran against (HYDRA: all M cores;
  /// SingleCore: RT on M−1 cores, core M−1 left for security).
  rt::Partition rt_partition;

  /// Σs ωs·ηs (Eq. 3) of this allocation; 0 when infeasible.
  double cumulative_tightness(const std::vector<rt::SecurityTask>& tasks) const;

  /// Convenience: indices of security tasks placed on `core`.
  std::vector<std::size_t> security_on_core(std::size_t core) const;
};

/// Creates an infeasible result blaming `task_index`.
Allocation infeasible_allocation(std::size_t task_index, std::string reason);

/// Returns a copy of `instance` with the paper's weight rule applied
/// ("higher priority tasks would have large ωs", Eq. 3): the highest-priority
/// security task (smallest Tmax) gets ω = NS, the next NS−1, and so on.  The
/// default instances keep ω = 1 so the cumulative tightness is the plain sum
/// the figures report.
Instance with_priority_weights(Instance instance);

}  // namespace hydra::core
