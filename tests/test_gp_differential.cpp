// Differential testing harness for the GP solver registry: the incumbent
// barrier stack (`scp/barrier`) and the primal-dual interior-point backend
// (`ipm/filter`) are run on the same problems and must agree — on objective
// value at mutual optimality (1e-6 relative), on feasibility of every
// returned point (re-verified against the problem, never trusted from the
// solver), and on infeasible/unbounded verdicts.  Problem sources:
//
//   1. every committed corpus workload's joint-period GP (the production
//      problem shape, via core::make_joint_period_gp),
//   2. 200+ seeded random GPs from tests/gp_testlib.h (feasible by
//      construction, so "both optimal" is an assertion, not a hope),
//   3. deliberately infeasible and unbounded programs,
//   4. the gp_tinybox-class degenerate box where phase I fails and only the
//      IPM survives — the `pick-best` rescue the meta-backend exists for.
//
// A 60+-iteration fuzz pass at the end exists for the sanitizer CI job: it
// asserts nothing beyond "no crash, sane verdict, non-empty diagnostics".
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/joint_period.h"
#include "core/period_adapt.h"
#include "gp/solver_registry.h"
#include "gp_testlib.h"
#include "io/taskset_io.h"
#include "util/rng.h"

namespace core = hydra::core;
namespace gp = hydra::gp;
namespace testlib = hydra::testlib;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";

/// Relative difference with an absolute floor, symmetric in its arguments.
double rel_diff(double a, double b) {
  return std::fabs(a - b) / std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
}

gp::SolveResult solve_backend(const gp::GpProblem& problem, const std::string& backend) {
  return gp::solve_with_backend(problem, std::nullopt, backend);
}

/// The full differential contract for one problem.  `expect_optimal` is set
/// for feasible-by-construction instances, where anything short of mutual
/// optimality is a solver bug rather than a hard problem.
void check_differential(const gp::GpProblem& problem, const std::string& context,
                        bool expect_optimal) {
  const gp::SolveResult scp = solve_backend(problem, "scp/barrier");
  const gp::SolveResult ipm = solve_backend(problem, "ipm/filter");

  SCOPED_TRACE(context + " [scp: " + scp.message + "] [ipm: " + ipm.message + "]");
  EXPECT_EQ(scp.backend, "scp/barrier");
  EXPECT_EQ(ipm.backend, "ipm/filter");

  if (expect_optimal) {
    ASSERT_EQ(scp.status, gp::SolveStatus::kOptimal) << "barrier failed a feasible GP";
    ASSERT_EQ(ipm.status, gp::SolveStatus::kOptimal) << "IPM failed a feasible GP";
  }

  // Non-optimal exits always carry a diagnostic (satellite contract).
  for (const auto* r : {&scp, &ipm}) {
    if (r->status != gp::SolveStatus::kOptimal) {
      EXPECT_FALSE(r->message.empty()) << "silent non-optimal exit";
    }
  }

  // Returned points are re-verified against the problem, never trusted.
  if (scp.status == gp::SolveStatus::kOptimal) {
    ASSERT_EQ(scp.x.size(), problem.num_variables());
    EXPECT_TRUE(problem.is_feasible(scp.x, 1e-6)) << "barrier returned an infeasible point";
  }
  if (ipm.status == gp::SolveStatus::kOptimal) {
    ASSERT_EQ(ipm.x.size(), problem.num_variables());
    EXPECT_TRUE(problem.is_feasible(ipm.x, 1e-6)) << "IPM returned an infeasible point";
    EXPECT_TRUE(std::isfinite(ipm.kkt_residual));
    if (ipm.converged) {
      EXPECT_LE(ipm.kkt_residual, 1e-6) << "converged IPM with large KKT residual";
    }
  }

  // Mutual optimality: the objectives must agree to 1e-6 relative.
  if (scp.status == gp::SolveStatus::kOptimal && ipm.status == gp::SolveStatus::kOptimal &&
      scp.converged && ipm.converged) {
    EXPECT_LE(rel_diff(scp.objective, ipm.objective), 1e-6)
        << "objective disagreement: barrier=" << scp.objective
        << " ipm=" << ipm.objective;
  }

  // Verdict agreement on hard conclusions: if either side proves the problem
  // infeasible or unbounded, the other must not claim an optimum.
  const auto hard_verdict = [](const gp::SolveResult& r) {
    return r.status == gp::SolveStatus::kInfeasible || r.status == gp::SolveStatus::kUnbounded;
  };
  if (hard_verdict(scp)) {
    EXPECT_NE(ipm.status, gp::SolveStatus::kOptimal)
        << "barrier says " << static_cast<int>(scp.status) << " but IPM found an optimum";
  }
  if (hard_verdict(ipm)) {
    EXPECT_NE(scp.status, gp::SolveStatus::kOptimal)
        << "IPM says " << static_cast<int>(ipm.status) << " but barrier found an optimum";
  }
}

/// Corpus workload files, in sorted order for determinism.
std::vector<std::filesystem::path> corpus_workloads() {
  const std::set<std::string> extensions{".txt", ".workload", ".taskset"};
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(kCorpusDir)) {
    if (!entry.is_regular_file()) continue;
    if (extensions.count(entry.path().extension().string()) == 0) continue;
    if (entry.path().filename() == "README.md") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Joint-period GP for a corpus instance under its first-fit allocation, or
/// nullopt when the workload has no GP stage (no security tasks, or no
/// feasible allocation to optimize over).
std::optional<gp::GpProblem> corpus_gp(const core::Instance& instance) {
  if (instance.security_tasks.empty()) return std::nullopt;
  const core::PeriodAdaptAllocator first_fit;
  core::Allocation alloc;
  try {
    alloc = first_fit.allocate(instance);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!alloc.feasible) return std::nullopt;
  std::vector<std::size_t> core_of(alloc.placements.size());
  for (std::size_t s = 0; s < core_of.size(); ++s) core_of[s] = alloc.placements[s].core;
  return core::make_joint_period_gp(instance, alloc.rt_partition, core_of);
}

/// The gp_tinybox degenerate shape: a box of width 2e-10 around 2.0.  Phase I
/// cannot certify strict feasibility within its margin, so the barrier stack
/// reports kInfeasible; the IPM's slack formulation does not need an interior
/// point and solves it.
gp::GpProblem tinybox_problem() {
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  p.add_bounds(x, 2.0, 2.0 + 2e-10);
  gp::Posynomial obj = p.posynomial();
  obj += p.monomial(1.0).with(x, 1.0);
  p.set_objective(obj);
  return p;
}

}  // namespace

// --- 1. Corpus workloads -----------------------------------------------------

TEST(GpDifferential, CorpusJointPeriodGpsAgree) {
  const auto files = corpus_workloads();
  ASSERT_GE(files.size(), 10u) << "corpus shrank under " << kCorpusDir;
  std::size_t gp_count = 0;
  for (const auto& file : files) {
    const core::Instance instance = hydra::io::load_instance(file.string());
    const auto problem = corpus_gp(instance);
    if (!problem.has_value()) continue;
    ++gp_count;
    check_differential(*problem, "corpus:" + file.filename().string(),
                       /*expect_optimal=*/true);
  }
  // Most corpus workloads admit a first-fit allocation and hence a GP stage;
  // if this count collapses the corpus no longer exercises the solvers.
  EXPECT_GE(gp_count, 5u);
}

// --- 2. Seeded random GPs ----------------------------------------------------

TEST(GpDifferential, TwoHundredSeededRandomGpsAgree) {
  hydra::util::Xoshiro256 rng(0xD1FFu);
  for (int i = 0; i < 200; ++i) {
    const testlib::RandomGp sample = testlib::make_random_gp(rng);
    ASSERT_TRUE(sample.problem.is_feasible(sample.witness, 1e-9))
        << "generator invariant broken at draw " << i;
    check_differential(sample.problem, "random-gp #" + std::to_string(i),
                       /*expect_optimal=*/true);
  }
}

TEST(GpDifferential, InfeasibleRandomGpsGetMatchingVerdicts) {
  hydra::util::Xoshiro256 rng(0xBADFu);
  for (int i = 0; i < 40; ++i) {
    const testlib::RandomGp sample = testlib::make_infeasible_gp(rng);
    const gp::SolveResult scp = solve_backend(sample.problem, "scp/barrier");
    const gp::SolveResult ipm = solve_backend(sample.problem, "ipm/filter");
    SCOPED_TRACE("infeasible-gp #" + std::to_string(i) + " [scp: " + scp.message +
                 "] [ipm: " + ipm.message + "]");
    EXPECT_EQ(scp.status, gp::SolveStatus::kInfeasible);
    EXPECT_NE(ipm.status, gp::SolveStatus::kOptimal);
    EXPECT_FALSE(scp.message.empty());
    EXPECT_FALSE(ipm.message.empty());
  }
}

// --- 3. Hard-verdict programs ------------------------------------------------

TEST(GpDifferential, UnboundedBelowAgreesAcrossBackends) {
  // min 1/x with x >= 1 and no upper bound: infimum 0, never attained.
  gp::GpProblem p;
  const auto x = p.add_variable("x");
  gp::Posynomial lower = p.posynomial();
  lower += p.monomial(1.0).with(x, -1.0);  // 1/x <= 1, i.e. x >= 1
  p.add_constraint_leq1(lower);
  gp::Posynomial obj = p.posynomial();
  obj += p.monomial(1.0).with(x, -1.0);
  p.set_objective(obj);

  const gp::SolveResult scp = solve_backend(p, "scp/barrier");
  const gp::SolveResult ipm = solve_backend(p, "ipm/filter");
  EXPECT_EQ(scp.status, gp::SolveStatus::kUnbounded) << scp.message;
  EXPECT_EQ(ipm.status, gp::SolveStatus::kUnbounded) << ipm.message;
  EXPECT_FALSE(scp.message.empty());
  EXPECT_FALSE(ipm.message.empty());
}

// --- 4. The pick-best rescue -------------------------------------------------

TEST(GpDifferential, PickBestRescuesTinyboxClassInstance) {
  const gp::GpProblem p = tinybox_problem();

  // The incumbent stack genuinely fails this instance…
  const gp::SolveResult scp = solve_backend(p, "scp/barrier");
  ASSERT_EQ(scp.status, gp::SolveStatus::kInfeasible)
      << "tinybox no longer defeats phase I — rescue test needs a new instance: "
      << scp.message;

  // …the IPM solves it…
  const gp::SolveResult ipm = solve_backend(p, "ipm/filter");
  ASSERT_EQ(ipm.status, gp::SolveStatus::kOptimal) << ipm.message;
  EXPECT_NEAR(ipm.objective, 2.0, 1e-6);
  EXPECT_TRUE(p.is_feasible(ipm.x, 1e-6));

  // …and pick-best adopts the rescue, stamping the backend that won.
  const gp::SolveResult best = solve_backend(p, "pick-best");
  EXPECT_EQ(best.status, gp::SolveStatus::kOptimal) << best.message;
  EXPECT_EQ(best.backend, "ipm/filter");
  EXPECT_NEAR(best.objective, 2.0, 1e-6);
}

TEST(GpDifferential, PickBestPrefersPrimaryWhenBothSolve) {
  hydra::util::Xoshiro256 rng(0x9E37u);
  const testlib::RandomGp sample = testlib::make_random_gp(rng);
  const gp::SolveResult scp = solve_backend(sample.problem, "scp/barrier");
  const gp::SolveResult best = solve_backend(sample.problem, "pick-best");
  ASSERT_EQ(scp.status, gp::SolveStatus::kOptimal) << scp.message;
  ASSERT_EQ(best.status, gp::SolveStatus::kOptimal) << best.message;
  // The primary short-circuits on converged optimality: same point, same stamp.
  EXPECT_EQ(best.backend, "scp/barrier");
  EXPECT_LE(rel_diff(best.objective, scp.objective), 1e-12);
}

// --- 5. Sanitizer fuzz pass --------------------------------------------------

TEST(GpDifferential, FuzzSixtyPlusIterationsNoCrash) {
  // Runs every backend (including the meta-backend) over mixed feasible /
  // infeasible draws.  Under the ASan/UBSan CI job this is the crash net;
  // assertions here are deliberately weak so sanitizers are the oracle.
  hydra::util::Xoshiro256 rng(0xF022u);
  const auto& registry = gp::SolverRegistry::global();
  const std::vector<std::string> backends = registry.names();
  ASSERT_GE(backends.size(), 3u);
  for (int i = 0; i < 72; ++i) {
    const bool infeasible = (i % 3 == 2);
    const testlib::RandomGp sample =
        infeasible ? testlib::make_infeasible_gp(rng) : testlib::make_random_gp(rng);
    const std::string& backend = backends[static_cast<std::size_t>(i) % backends.size()];
    const gp::SolveResult r = solve_backend(sample.problem, backend);
    SCOPED_TRACE("fuzz #" + std::to_string(i) + " backend=" + backend);
    EXPECT_FALSE(r.backend.empty());
    if (r.status == gp::SolveStatus::kOptimal) {
      EXPECT_EQ(r.x.size(), sample.problem.num_variables());
      EXPECT_TRUE(std::isfinite(r.objective));
    } else {
      EXPECT_FALSE(r.message.empty());
    }
  }
}
