// Result sinks for the exploration engine: each evaluated (instance, scheme)
// pair becomes one BatchRow, streamed — in stable batch order, regardless of
// worker completion order — to every attached sink.
//
// Built-in sinks:
//   * TableSink — buffers rows and renders a column-aligned io::Table;
//   * CsvSink   — streams RFC-4180 CSV (header first);
//   * JsonlSink — streams one JSON object per line, the machine-readable
//     format downstream tooling and the determinism tests consume.
//
// Rows deliberately carry no timing fields: the byte-identical-across-jobs
// guarantee (same BatchSpec ⇒ same JSONL for --jobs 1 and --jobs 8) would not
// survive wall-clock noise.  Timing lives in the engine's RunSummary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hydra::exp {

/// One evaluated (instance, scheme) result.
struct BatchRow {
  // Sweep context.  Plain engine runs leave these defaulted; the exp::Sweep
  // layer stamps every row with its grid cell so downstream tooling (and the
  // --resume checkpoint loader) can regroup a flat JSONL stream.
  std::string cell;                ///< deterministic cell key; "" outside sweeps
  std::size_t point_index = 0;     ///< sweep-point position in SweepSpec::points
  std::string point_label;         ///< e.g. "m=4 u=1.2"; "" outside sweeps
  double target_utilization = 0.0; ///< the point's requested total utilization

  std::size_t instance_index = 0;
  std::string instance_label;      ///< "seed=..." or the source file path
  std::uint64_t seed = 0;          ///< 0 for file-sourced instances
  std::string scheme;              ///< registry name, e.g. "hydra/exact-rta"
  /// "ok" (evaluated), "skipped" (e.g. optimal over budget), "no-instance"
  /// (the draw/load produced nothing), or "error" (the scheme threw).
  std::string status = "ok";
  std::string note;                ///< skip/error detail or validation problem
  bool feasible = false;
  bool validated = false;
  double cumulative_tightness = 0.0;
  double normalized_tightness = 0.0;
  double rt_utilization = 0.0;     ///< instance context (0 when unknown)
  double sec_utilization = 0.0;

  /// Extra per-row metrics a sweep's RowMetric hooks computed (e.g. mean
  /// detection latency from the attack simulator).  Emitted as a nested JSON
  /// object; the table/CSV sinks omit them (their schema is fixed).
  std::vector<std::pair<std::string, double>> metrics;
};

/// Parses one line previously produced by JsonlSink back into a BatchRow.
/// Returns nullopt for anything malformed or truncated (the resume loader
/// treats such lines as "cell not completed").  Round-trips exactly:
/// re-serializing the parsed row yields byte-identical JSONL, which is what
/// lets --resume splice checkpointed rows into a fresh run.
std::optional<BatchRow> parse_jsonl_row(const std::string& line);

/// Sinks are re-usable across several engine runs (a sweep passes the same
/// file sink to one run per utilization point), so begin() must be idempotent
/// and end() must leave the sink ready for more rows.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin() {}
  virtual void row(const BatchRow& row) = 0;
  virtual void end() {}
};

/// Buffers rows and prints a column-aligned io::Table on end().
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os);
  ~TableSink() override;
  void row(const BatchRow& row) override;
  void end() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Streams RFC-4180 CSV; the header is written once, on the first begin().
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& os) : os_(os) {}
  void begin() override;
  void row(const BatchRow& row) override;

 private:
  std::ostream& os_;
  bool header_written_ = false;
};

/// Streams one JSON object per line (JSON Lines).
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void row(const BatchRow& row) override;

 private:
  std::ostream& os_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

/// Locale-independent shortest-round-trip double formatting (std::to_chars),
/// so JSONL/CSV output is byte-stable across runs and platforms.  NaN and
/// infinities render as "nan"/"inf"/"-inf" — visible, not fake zeros.
std::string format_double(double value);

/// format_double for JSON number positions: non-finite values become "null"
/// so every emitted line stays parseable.
std::string json_number(double value);

/// A sink that owns its output file stream.  The format follows the
/// extension: ".jsonl"/".json" ⇒ JSONL, ".csv" ⇒ CSV; anything else throws
/// std::invalid_argument.  Throws std::runtime_error when the file cannot be
/// opened; flushes on destruction.
///
/// A non-empty `header_line` (e.g. a formatted exp::SweepShardHeader) is
/// written verbatim as the file's first line before any row — JSONL only;
/// CSV has its own header row, so combining the two throws.
std::unique_ptr<ResultSink> make_file_sink(const std::string& path,
                                           const std::string& header_line = "");

}  // namespace hydra::exp
