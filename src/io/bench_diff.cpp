#include "io/bench_diff.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hydra::io {

namespace {

/// Value of `"key": <...>` on this line, or "" when the key is absent.
std::string field_on_line(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t pos = line.find(':', at + needle.size());
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  std::size_t end = line.size();
  while (end > pos && (line[end - 1] == ',' || line[end - 1] == ' ' ||
                       line[end - 1] == '\r')) {
    --end;
  }
  std::string value = line.substr(pos, end - pos);
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

std::string format_time(double value, const std::string& unit) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(value < 10 ? 3 : 1) << value << " " << unit;
  return out.str();
}

std::string format_delta(double pct) {
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(1) << pct << "%";
  return out.str();
}

}  // namespace

std::map<std::string, BenchResult> parse_bench_results(std::istream& in,
                                                       const std::string& origin) {
  std::map<std::string, BenchResult> rows;
  std::string line, current;
  bool in_benchmarks = false;
  while (std::getline(in, line)) {
    if (!in_benchmarks) {
      if (line.find("\"benchmarks\"") != std::string::npos) in_benchmarks = true;
      continue;
    }
    const std::string name = field_on_line(line, "name");
    if (!name.empty()) {
      current = name;
      rows[current] = BenchResult{};
      continue;
    }
    if (current.empty()) continue;
    const std::string real_time = field_on_line(line, "real_time");
    if (!real_time.empty()) rows[current].real_time = std::stod(real_time);
    const std::string unit = field_on_line(line, "time_unit");
    if (!unit.empty()) rows[current].time_unit = unit;
    const std::string items = field_on_line(line, "items_per_second");
    if (!items.empty()) rows[current].items_per_second = std::stod(items);
  }
  if (rows.empty()) {
    throw std::runtime_error("no benchmarks found in " + origin +
                             " (expected google-benchmark JSON)");
  }
  return rows;
}

std::map<std::string, BenchResult> load_bench_results(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read benchmark file: " + path);
  return parse_bench_results(in, path);
}

std::vector<BenchDelta> diff_bench_results(
    const std::map<std::string, BenchResult>& baseline,
    const std::map<std::string, BenchResult>& current) {
  std::vector<BenchDelta> deltas;
  deltas.reserve(baseline.size() + current.size());
  for (const auto& [name, now] : current) {
    BenchDelta delta;
    delta.name = name;
    delta.current = now;
    const auto base_it = baseline.find(name);
    if (base_it == baseline.end()) {
      delta.kind = BenchDelta::Kind::kNew;
    } else if (!(base_it->second.real_time > 0.0)) {
      // A zero/absent baseline time admits no percentage: reporting 0.0%
      // would silently pass the gate, so flag it instead of comparing.
      delta.kind = BenchDelta::Kind::kIncomparable;
      delta.baseline = base_it->second;
    } else {
      delta.kind = BenchDelta::Kind::kCompared;
      delta.baseline = base_it->second;
      delta.time_pct = (now.real_time - delta.baseline.real_time) /
                       delta.baseline.real_time * 100.0;
      if (delta.baseline.items_per_second > 0.0 && now.items_per_second > 0.0) {
        delta.has_items = true;
        delta.items_pct = (now.items_per_second - delta.baseline.items_per_second) /
                          delta.baseline.items_per_second * 100.0;
      }
    }
    deltas.push_back(std::move(delta));
  }
  for (const auto& [name, base] : baseline) {
    if (current.find(name) != current.end()) continue;
    BenchDelta delta;
    delta.name = name;
    delta.kind = BenchDelta::Kind::kMissing;
    delta.baseline = base;
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

std::vector<std::string> bench_gate_violations(const std::vector<BenchDelta>& deltas,
                                               double fail_over_pct) {
  std::vector<std::string> violations;
  if (fail_over_pct < 0.0) return violations;
  for (const auto& delta : deltas) {
    if (delta.kind != BenchDelta::Kind::kCompared) continue;
    if (delta.time_pct > fail_over_pct) {
      violations.push_back(delta.name + " real_time " + format_delta(delta.time_pct));
    }
    // A throughput collapse is a regression even when wall time looks flat
    // (e.g. the batch shrank): gate drops symmetrically with time growth.
    if (delta.has_items && delta.items_pct < -fail_over_pct) {
      violations.push_back(delta.name + " items/s " + format_delta(delta.items_pct));
    }
  }
  return violations;
}

std::string render_bench_diff_markdown(const std::vector<BenchDelta>& deltas) {
  std::ostringstream out;
  out << "| benchmark | baseline | current | real_time Δ | items/s Δ |\n"
      << "|---|---|---|---|---|\n";
  for (const auto& delta : deltas) {
    out << "| " << delta.name << " | ";
    switch (delta.kind) {
      case BenchDelta::Kind::kNew:
        out << "_new_ | " << format_time(delta.current.real_time, delta.current.time_unit)
            << " | — | — |\n";
        break;
      case BenchDelta::Kind::kMissing:
        out << format_time(delta.baseline.real_time, delta.baseline.time_unit)
            << " | _missing_ | — | — |\n";
        break;
      case BenchDelta::Kind::kIncomparable:
        out << "_incomparable_ | "
            << format_time(delta.current.real_time, delta.current.time_unit)
            << " | — | — |\n";
        break;
      case BenchDelta::Kind::kCompared:
        out << format_time(delta.baseline.real_time, delta.baseline.time_unit) << " | "
            << format_time(delta.current.real_time, delta.current.time_unit) << " | "
            << format_delta(delta.time_pct) << " | "
            << (delta.has_items ? format_delta(delta.items_pct) : std::string("—"))
            << " |\n";
        break;
    }
  }
  return out.str();
}

std::string render_bench_diff_text(const std::vector<BenchDelta>& deltas) {
  std::ostringstream out;
  out << std::left << std::setw(44) << "benchmark" << std::setw(16) << "baseline"
      << std::setw(16) << "current" << std::setw(12) << "time Δ" << "items/s Δ\n";
  for (const auto& delta : deltas) {
    out << std::left << std::setw(44) << delta.name;
    switch (delta.kind) {
      case BenchDelta::Kind::kNew:
        out << std::setw(16) << "(new)"
            << format_time(delta.current.real_time, delta.current.time_unit) << "\n";
        break;
      case BenchDelta::Kind::kMissing:
        out << std::setw(16)
            << format_time(delta.baseline.real_time, delta.baseline.time_unit)
            << "(missing)\n";
        break;
      case BenchDelta::Kind::kIncomparable:
        out << std::setw(16) << "(incomparable)"
            << format_time(delta.current.real_time, delta.current.time_unit) << "\n";
        break;
      case BenchDelta::Kind::kCompared:
        out << std::setw(16)
            << format_time(delta.baseline.real_time, delta.baseline.time_unit)
            << std::setw(16)
            << format_time(delta.current.real_time, delta.current.time_unit)
            << std::setw(12) << format_delta(delta.time_pct)
            << (delta.has_items ? format_delta(delta.items_pct) : std::string("—"))
            << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace hydra::io
