// Empirical CDF exactly as defined under the paper's Fig. 1:
//
//     F̂_α(ε) = (1/α) Σ_{i=1..α} 1[ζ_i ≤ ε]
//
// where ζ_i are the observed detection times and α the number of
// observations.
#pragma once

#include <vector>

namespace hydra::stats {

class EmpiricalCdf {
 public:
  /// Builds from samples (copied and sorted).  Throws on empty input.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F̂(x): fraction of samples ≤ x.
  double operator()(double x) const;

  /// Smallest sample z with F̂(z) ≥ p, p ∈ (0, 1]; the empirical quantile.
  double quantile(double p) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  double mean() const;
  std::size_t size() const { return sorted_.size(); }

  /// Evaluates the CDF on an evenly spaced grid of `points` values over
  /// [0, hi]; convenient for printing figure series.
  std::vector<std::pair<double, double>> series(double hi, std::size_t points) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace hydra::stats
