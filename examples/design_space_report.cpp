// The paper's end-to-end workflow in one command: evaluate every integration
// strategy on a workload and print the designer-facing comparison — which
// scheme to pick, what it costs, and where each monitor lands.
//
// By default the paper's line-up runs (HYDRA, HYDRA(exact-RTA), SingleCore,
// Optimal-when-affordable).  --schemes switches to any registry selection,
// --list-schemes prints the catalog, and --out streams the comparison rows to
// a .jsonl/.csv file through a one-point exp::Sweep — the same row schema
// every sweep bench emits, so report output feeds the same downstream
// tooling.
//
// Usage: ./build/design_space_report [--cores 2]
//        ./build/design_space_report --file taskset.txt
//        ./build/design_space_report --schemes hydra,hydra/first-fit,optimal
//                                    --out report.jsonl
//        ./build/design_space_report --list-schemes
#include <iostream>
#include <memory>
#include <vector>

#include "core/design_space.h"
#include "core/registry.h"
#include "exp/sweep.h"
#include "gen/uav.h"
#include "io/table.h"
#include "io/taskset_io.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace hexp = hydra::exp;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);

  if (cli.get_bool("list-schemes", false)) {
    io::print_banner(std::cout, "registered allocation schemes");
    io::Table catalog({"name", "description"});
    const auto& registry = core::AllocatorRegistry::global();
    for (const auto& name : registry.names()) {
      catalog.add_row({name, registry.description(name)});
    }
    catalog.print(std::cout);
    return 0;
  }

  core::Instance instance;
  if (cli.has("file")) {
    instance = io::load_instance(cli.get_string("file", ""));
  } else {
    instance = hydra::gen::uav_case_study(static_cast<std::size_t>(cli.get_int("cores", 2)));
  }

  const auto report =
      cli.has("schemes")
          ? core::explore_design_space(instance, cli.get_string_list("schemes", {}))
          : core::explore_design_space(instance);

  io::print_banner(std::cout, "design-space comparison");
  io::Table table({"scheme", "feasible", "validated", "cumulative tightness",
                   "normalized", "security cores used"});
  for (const auto& p : report.points) {
    std::size_t cores_used = 0;
    if (p.allocation.feasible) {
      std::vector<bool> used(instance.num_cores, false);
      for (const auto& place : p.allocation.placements) used[place.core] = true;
      for (const bool u : used) cores_used += u ? 1u : 0u;
    }
    table.add_row({p.scheme, p.allocation.feasible ? "yes" : "no",
                   p.allocation.feasible ? (p.validated ? "yes" : p.validation_problem) : "-",
                   p.allocation.feasible ? io::fmt(p.cumulative_tightness, 3) : "-",
                   p.allocation.feasible ? io::fmt(p.normalized_tightness, 3) : "-",
                   p.allocation.feasible ? std::to_string(cores_used) : "-"});
  }
  table.print(std::cout);

  if (cli.has("out")) {
    // One-point sweep over the same instance and scheme selection: the file
    // gets bona fide sweep rows (status, validation, utilization context,
    // cell key) instead of a hand-assembled imitation.  This re-evaluates the
    // schemes (once for the table above, once here) — accepted for a one-shot
    // report CLI on a single instance; rows carry no Allocation, so reusing
    // `report.points` would mean hand-assembling rows again.  The default
    // line-up's display names ("HYDRA(exact-RTA)") are not registry names, so
    // the default maps to their registry equivalents.
    hexp::SweepSpec sweep_spec;
    sweep_spec.schemes = cli.has("schemes")
                             ? cli.get_string_list("schemes", {})
                             : std::vector<std::string>{"hydra", "hydra/exact-rta",
                                                        "single-core", "optimal"};
    hexp::SweepPoint point;
    point.instance = instance;
    point.label = cli.has("file") ? cli.get_string("file", "") : "uav-case-study";
    sweep_spec.points.push_back(std::move(point));
    const hexp::Sweep sweep(std::move(sweep_spec));
    const auto sink = hexp::make_file_sink(cli.get_string("out", ""));
    sweep.run({sink.get()});
    std::cout << "\nrows written to " << cli.get_string("out", "") << "\n";
  }

  const auto best = report.best_index();
  if (!best.has_value()) {
    std::cout << "\nno scheme produced a feasible integration — relax the "
                 "monitors' Tmax or desired periods.\n";
    return 1;
  }
  const auto& winner = report.points[*best];
  std::cout << "\nrecommended: " << winner.scheme << "\n\n";

  io::Table placement({"monitor", "core", "period (ms)", "tightness"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& p = winner.allocation.placements[s];
    placement.add_row({instance.security_tasks[s].name, std::to_string(p.core),
                       io::fmt(p.period, 1), io::fmt(p.tightness, 3)});
  }
  placement.print(std::cout);
  return 0;
}
