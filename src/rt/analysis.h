// Uniprocessor schedulability analysis: demand bound function (paper Eq. 1)
// and exact response-time analysis for fixed-priority preemptive scheduling
// (Audsley et al. [16], used by the paper's Eq. 5 reasoning).
#pragma once

#include <optional>
#include <vector>

#include "rt/interference.h"
#include "rt/task.h"
#include "util/units.h"

namespace hydra::rt {

/// DBF(τ, t) = max(0, (⌊(t − D)/T⌋ + 1)·C): the maximum cumulative execution
/// demand of jobs of τ with both release and deadline inside any window of
/// length t (Baruah & Fisher [15]).
double dbf(const RtTask& task, util::Millis t);

/// The paper's Eq. (1) necessary condition for M-core schedulability:
/// Σ DBF(τr, t) ≤ M·t for all t > 0.  Checked at every absolute-deadline
/// point D_i + k·T_i up to `horizon` (plus the asymptotic utilization bound
/// ΣU ≤ M, which is the t → ∞ limit).  When `horizon` is not given it
/// defaults to 2·max_i(D_i + T_i), enough to catch small-t violations that
/// the utilization bound misses.
bool dbf_necessary_condition(const std::vector<RtTask>& tasks, std::size_t num_cores,
                             std::optional<util::Millis> horizon = std::nullopt);

/// Exact worst-case response time of the task at `index` against the
/// higher-priority interferers `hp` on the same core, via the standard
/// fixed-point iteration R = C + B + Σ ⌈R/T_j⌉·C_j.  `blocking` is the
/// longest non-preemptive section of any lower-priority task on the core
/// (0 for the fully preemptive model).  Returns nullopt when the iteration
/// exceeds the deadline (unschedulable) or higher-priority utilization
/// is >= 1.
std::optional<util::Millis> response_time(const RtTask& task, const std::vector<RtTask>& hp,
                                          util::Millis blocking = 0.0);

/// True iff every RT task on the core still meets its deadline when a
/// lower-priority band may block it non-preemptively for up to `blocking`
/// (the longest non-preemptive security WCET hosted there).
bool core_schedulable_rm_with_blocking(const std::vector<RtTask>& tasks_on_core,
                                       util::Millis blocking);

/// Incremental admission test for partitioning loops.  `resident_by_priority`
/// must be RM-schedulable with `blocking` and sorted in RM priority order
/// (ascending period, earlier-placed first among equal periods — the order an
/// `upper_bound`-by-period insertion maintains).  Returns whether the core
/// stays schedulable with `candidate` added.
///
/// Verdict-equivalent to core_schedulable_rm_with_blocking on the combined
/// set: under preemptive fixed priorities a new task cannot disturb the tasks
/// that outrank it, so only the candidate itself and the residents it
/// preempts need fresh response times.  Interference sums are accumulated in
/// the same priority order as the full test so marginal fixpoints agree
/// bit-for-bit.
bool core_admits_rm(const std::vector<RtTask>& resident_by_priority, const RtTask& candidate,
                    util::Millis blocking = 0.0);

/// True iff every task on one core meets its deadline under fixed-priority
/// preemptive scheduling with rate-monotonic priorities.
bool core_schedulable_rm(const std::vector<RtTask>& tasks_on_core);

/// Liu–Layland utilization bound n·(2^{1/n} − 1) for n tasks [14].  A cheaper
/// sufficient test; used as a fast path and in tests against exact RTA.
double liu_layland_bound(std::size_t n);

/// Hyperbolic bound (Bini, Buttazzo & Buttazzo): Π(Ui + 1) ≤ 2 is sufficient
/// for RM schedulability and strictly dominates the Liu–Layland test.
bool hyperbolic_bound_holds(const std::vector<RtTask>& tasks);

/// Worst-case response time of a *security* task running below every RT task
/// on its core (and below the already-placed higher-priority security tasks),
/// by exact RTA.  This is the exact counterpart of the paper's linear Eq. (5)
/// bound: the bound is provably conservative w.r.t. this value (tested).
/// `period` is the security task's candidate period (= its deadline).
///
/// `interferer_sums`, when given, must equal
/// interference_bound(rt_on_core, hp_security_on_core, blocking); allocators
/// that probe many candidate periods against one core pass their incrementally
/// maintained bound so the Σ WCET / Σ utilization preamble — and the
/// utilization-overload early exit — run in O(1) instead of O(interferers)
/// per probe.  The converged response time is identical either way: the
/// fixpoint iteration seeds at or below the least fixpoint and lands on the
/// same ceil-stable sum regardless of the seed.
std::optional<util::Millis> security_response_time(
    const SecurityTask& task, util::Millis period, const std::vector<RtTask>& rt_on_core,
    const std::vector<PlacedSecurityTask>& hp_security_on_core, util::Millis blocking = 0.0,
    const InterferenceBound* interferer_sums = nullptr);

}  // namespace hydra::rt
