#include "swarm/sweep_runner.h"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "exp/merge.h"

namespace fs = std::filesystem;

namespace hydra::swarm {

ShardProbe probe_shard_checkpoint(const std::string& path) {
  ShardProbe probe;
  std::ifstream in(path, std::ios::binary);
  if (!in) return probe;
  probe.exists = true;

  std::string first_line;
  bool first_complete = false;
  std::size_t newlines = 0;
  char buffer[65536];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    const std::size_t n = static_cast<std::size_t>(in.gcount());
    for (std::size_t i = 0; i < n; ++i) {
      if (!first_complete) {
        if (buffer[i] == '\n') {
          first_complete = true;
        } else {
          first_line.push_back(buffer[i]);
        }
      }
      if (buffer[i] == '\n') ++newlines;
    }
    probe.bytes += n;
  }
  if (first_complete) probe.header = exp::parse_shard_header(first_line);
  probe.durable_rows = newlines - (probe.header.has_value() && newlines > 0 ? 1 : 0);
  return probe;
}

namespace {

std::string shard_path(const std::string& dir, std::size_t shard) {
  return dir + "/shard_" + std::to_string(shard) + ".jsonl";
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SweepRunner::SweepRunner(SweepRunnerOptions options, ProcessBackend& backend,
                         EventLog& log)
    : options_(std::move(options)), backend_(backend), log_(log) {
  if (options_.shards == 0) throw std::invalid_argument("swarm needs >= 1 shard");
  if (options_.worker_command.empty()) {
    throw std::invalid_argument("swarm needs a worker command (after --)");
  }
  if (options_.dir.empty()) throw std::invalid_argument("swarm needs a --dir");
  if (!std::isfinite(options_.poll_interval_s) || options_.poll_interval_s <= 0.0) {
    throw std::invalid_argument(
        "poll_interval_s must be finite and > 0 (0 busy-spins the probe loop,"
        " negative sleeps forever)");
  }
  if (!std::isfinite(options_.merge_interval_s) || options_.merge_interval_s <= 0.0) {
    throw std::invalid_argument("merge_interval_s must be finite and > 0");
  }
  if (options_.chaos_kill_shard >= 0 &&
      static_cast<std::size_t>(options_.chaos_kill_shard) >= options_.shards) {
    throw std::invalid_argument("chaos shard index out of range");
  }
}

SweepRunResult SweepRunner::run(std::ostream& status) {
  SweepRunResult result;
  fs::create_directories(options_.dir);

  Supervisor supervisor(backend_, options_.policy, log_, steady_seconds);
  std::vector<std::string> checkpoints;
  for (std::size_t i = 0; i < options_.shards; ++i) {
    const std::string checkpoint = shard_path(options_.dir, i);
    checkpoints.push_back(checkpoint);
    WorkerSpec spec;
    spec.argv = options_.worker_command;
    spec.argv.push_back("--shard");
    spec.argv.push_back(std::to_string(i) + "/" + std::to_string(options_.shards));
    spec.argv.push_back("--out");
    spec.argv.push_back(checkpoint);
    // Same path as --resume: a restart splices every durable cell of the
    // dead predecessor (the Sweep reads the checkpoint before the sink
    // truncates), so one argv serves cold start and recovery alike.
    spec.argv.push_back("--resume");
    spec.argv.push_back(checkpoint);
    spec.stdout_path = options_.dir + "/shard_" + std::to_string(i) + ".log";
    spec.stderr_path = options_.dir + "/shard_" + std::to_string(i) + ".err";
    supervisor.add_task("shard-" + std::to_string(i), std::move(spec));
  }
  log_.emit(steady_seconds(), "swarm-started", "",
            std::to_string(options_.shards) + " shard(s): " +
                options_.worker_command.front());

  bool chaos_fired = options_.chaos_kill_shard < 0;
  double next_merge_t = steady_seconds() + options_.merge_interval_s;
  std::vector<ShardProbe> probes(options_.shards);
  std::string last_status_line;

  const auto merge_partial = [&]() {
    if (options_.partial_path.empty()) return;
    std::vector<std::string> present;
    for (const auto& path : checkpoints) {
      if (fs::exists(path)) present.push_back(path);
    }
    if (present.empty()) return;
    exp::MergeOptions merge_options;
    merge_options.require_complete = false;
    merge_options.expect_fingerprint = options_.expect_fingerprint;
    try {
      const auto merged = exp::merge_checkpoints(present, merge_options);
      const std::string tmp = options_.partial_path + ".tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open " + tmp);
        exp::write_merged(merged, out);
      }
      fs::rename(tmp, options_.partial_path);
      log_.emit(steady_seconds(), "partial-merged", options_.partial_path,
                std::to_string(merged.cells.size()) + " cells, " +
                    std::to_string(merged.rows) + " rows" +
                    (merged.complete ? ", complete" : ""));
    } catch (const std::exception& error) {
      // A torn mid-write snapshot can be transiently unmergeable; the next
      // timer tick retries.  Never fatal for the swarm itself.
      log_.emit(steady_seconds(), "partial-merge-failed", options_.partial_path,
                error.what());
    }
  };

  while (!supervisor.finished()) {
    supervisor.tick();

    for (std::size_t i = 0; i < options_.shards; ++i) {
      probes[i] = probe_shard_checkpoint(checkpoints[i]);
      supervisor.report_progress(i, static_cast<double>(probes[i].bytes));
    }

    if (!chaos_fired) {
      const auto& probe = probes[static_cast<std::size_t>(options_.chaos_kill_shard)];
      if (probe.durable_rows >= options_.chaos_after_rows) {
        chaos_fired = true;
        supervisor.kill(static_cast<std::size_t>(options_.chaos_kill_shard),
                        "chaos injection after " +
                            std::to_string(probe.durable_rows) + " durable rows");
      }
    }

    std::string line;
    for (std::size_t i = 0; i < options_.shards; ++i) {
      const auto& task = supervisor.status(i);
      line += (i == 0 ? "" : "  ") + task.name + ": ";
      if (task.state == TaskState::kDone) {
        line += "done";
      } else if (task.state == TaskState::kFailed) {
        line += "FAILED";
      } else {
        line += std::to_string(probes[i].durable_rows) + " rows";
        if (probes[i].header.has_value()) {
          const auto schemes = probes[i].header->schemes.size();
          line += "/" + std::to_string(probes[i].header->cells *
                                       (schemes == 0 ? 1 : schemes));
        }
        if (task.attempts > 1) {
          line += " (attempt " + std::to_string(task.attempts) + ")";
        }
      }
    }
    if (line != last_status_line) {
      status << line << "\n";
      status.flush();
      last_status_line = line;
    }

    if (steady_seconds() >= next_merge_t) {
      merge_partial();
      next_merge_t = steady_seconds() + options_.merge_interval_s;
    }

    if (!supervisor.finished()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_interval_s));
    }
  }

  result.restarts = supervisor.restarts();

  if (!supervisor.all_done()) {
    // LOUD failure: never present a partial stream as the merged result.
    std::string why;
    for (std::size_t i = 0; i < supervisor.size(); ++i) {
      const auto& task = supervisor.status(i);
      if (task.state == TaskState::kFailed) {
        if (!why.empty()) why += "; ";
        why += task.name + ": " + task.failure;
      }
    }
    supervisor.shutdown("sibling shard exhausted its retry budget");
    merge_partial();
    result.error = "swarm FAILED (" + why + "); the merged stream was NOT " +
                   "written. Salvage the survivors with: hydra_merge "
                   "--allow-partial " + options_.dir + "/shard_*.jsonl";
    log_.emit(steady_seconds(), "swarm-failed", "", why);
    return result;
  }

  exp::MergeOptions merge_options;
  merge_options.require_complete = true;
  merge_options.expect_fingerprint = options_.expect_fingerprint;
  const auto merged = exp::merge_checkpoints(checkpoints, merge_options);
  if (options_.out_path.empty()) {
    exp::write_merged(merged, std::cout);
  } else {
    std::ofstream out(options_.out_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open output: " + options_.out_path);
    exp::write_merged(merged, out);
  }
  if (!options_.partial_path.empty()) merge_partial();
  result.ok = true;
  result.cells = merged.cells.size();
  result.rows = merged.rows;
  log_.emit(steady_seconds(), "swarm-complete", options_.out_path,
            std::to_string(merged.cells.size()) + " cells, " +
                std::to_string(merged.rows) + " rows, " +
                std::to_string(result.restarts) + " restart(s)");
  return result;
}

}  // namespace hydra::swarm
