#include "sec/catalog.h"

#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::sec {

std::vector<CatalogEntry> tripwire_bro_catalog() {
  // WCETs: representative hash-scan costs (see header note).  Tdes/Tmax follow
  // §IV-B conventions: Tdes ∈ [1000, 3000] ms, Tmax = 10·Tdes.  Order is by
  // ascending Tmax, i.e. catalog index == priority rank.
  // WCETs are heavyweight on purpose: directory-tree hash scans on an
  // embedded board take hundreds of ms to seconds, so the six monitors
  // together demand ≈ 1.6 cores at their desired rates.  That contention is
  // what differentiates the allocation schemes (a dedicated core saturates;
  // HYDRA can spread the load) — with toy WCETs every scheme trivially
  // achieves η = 1 and Fig. 1/2 would be flat.
  std::vector<CatalogEntry> catalog;
  catalog.push_back({rt::make_security_task("tw_check_own_binary", 300.0, 1000.0, 10000.0),
                     SecurityApp::kTripwire,
                     "Compare the hash value of the security application binary"});
  catalog.push_back({rt::make_security_task("tw_check_executables", 600.0, 1500.0, 15000.0),
                     SecurityApp::kTripwire, "Check hash of the file-system binaries (/bin, /sbin)"});
  catalog.push_back({rt::make_security_task("tw_check_libraries", 500.0, 1800.0, 18000.0),
                     SecurityApp::kTripwire, "Check library hashes (/lib)"});
  catalog.push_back({rt::make_security_task("tw_check_dev_kernel", 450.0, 2200.0, 22000.0),
                     SecurityApp::kTripwire,
                     "Check hash of peripherals and kernel information in /dev and /proc"});
  catalog.push_back({rt::make_security_task("tw_check_config", 400.0, 2500.0, 25000.0),
                     SecurityApp::kTripwire, "Check configuration hashes (/etc)"});
  catalog.push_back({rt::make_security_task("bro_monitor_network", 900.0, 3000.0, 30000.0),
                     SecurityApp::kBro, "Scan network interface (e.g., en0)"});
  for (const auto& entry : catalog) rt::validate(entry.task);
  return catalog;
}

std::vector<rt::SecurityTask> tripwire_bro_tasks() {
  std::vector<rt::SecurityTask> tasks;
  for (auto& entry : tripwire_bro_catalog()) tasks.push_back(entry.task);
  return tasks;
}

std::vector<Chain> default_chains() {
  // Tripwire self-check (index 0) precedes the system-binary check (index 1).
  return {Chain{{0, 1}}};
}

std::vector<std::size_t> chain_consistent_order(const std::vector<rt::SecurityTask>& tasks,
                                                const std::vector<Chain>& chains) {
  const std::size_t n = tasks.size();
  // Chain edges pred → succ; indegree-based Kahn sort picking, at every step,
  // the ready task that comes first in the Tmax base order (stable).
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<std::size_t> indegree(n, 0);
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.members.size(); ++i) {
      const std::size_t pred = chain.members[i];
      const std::size_t succ = chain.members[i + 1];
      HYDRA_REQUIRE(pred < n && succ < n, "chain member index out of range");
      succs[pred].push_back(succ);
      ++indegree[succ];
    }
  }

  const auto base = rt::security_priority_order(tasks);
  const auto base_rank = rt::rank_of(base);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    // Ready task with the smallest base rank.
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (emitted[i] || indegree[i] != 0) continue;
      if (best == n || base_rank[i] < base_rank[best]) best = i;
    }
    HYDRA_REQUIRE(best != n, "precedence chains contain a cycle");
    emitted[best] = true;
    order.push_back(best);
    for (const std::size_t s : succs[best]) --indegree[s];
  }
  return order;
}

bool respects_chains(const std::vector<Chain>& chains, const std::vector<std::size_t>& rank) {
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.members.size(); ++i) {
      const std::size_t pred = chain.members[i];
      const std::size_t succ = chain.members[i + 1];
      HYDRA_REQUIRE(pred < rank.size() && succ < rank.size(), "chain member index out of range");
      if (!(rank[pred] < rank[succ])) return false;
    }
  }
  return true;
}

}  // namespace hydra::sec
