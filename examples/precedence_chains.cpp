// Precedence chains (paper §V): "in order to ensure that the security
// application itself has not been compromised, the security application's own
// binary may need to be examined first before checking the system binary
// files."
//
// This example builds a catalog where the natural ascending-Tmax priority
// order VIOLATES that requirement, derives a chain-consistent order, runs
// HYDRA with it, and verifies the result end to end (validator + simulator).
//
// Usage: ./build/examples/precedence_chains [--cores 2]
#include <iostream>

#include "core/hydra.h"
#include "core/validation.h"
#include "gen/uav.h"
#include "io/table.h"
#include "rt/priority.h"
#include "sec/catalog.h"
#include "sim/attack.h"
#include "sim/engine.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;
namespace rt = hydra::rt;
namespace sec = hydra::sec;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 2));

  core::Instance instance;
  instance.num_cores = m;
  instance.rt_tasks = hydra::gen::uav_taskset();
  // A self-check with a LOOSE Tmax (it is cheap, so even rare runs help) and
  // a system scan with a tight Tmax: plain Tmax ordering would put the scan
  // first — violating "check thyself before checking others".
  instance.security_tasks = {
      rt::make_security_task("self_check", 80.0, 1000.0, 30000.0),
      rt::make_security_task("system_scan", 500.0, 1500.0, 15000.0),
      rt::make_security_task("network_monitor", 400.0, 2000.0, 20000.0),
  };
  const std::vector<sec::Chain> chains{sec::Chain{{0, 1}}};  // self_check → system_scan

  const auto natural = rt::security_priority_order(instance.security_tasks);
  const auto consistent = sec::chain_consistent_order(instance.security_tasks, chains);

  io::print_banner(std::cout, "priority orders (index 0 = highest priority)");
  io::Table orders({"rank", "ascending Tmax (violates chain)", "chain-consistent"});
  for (std::size_t r = 0; r < natural.size(); ++r) {
    orders.add_row({std::to_string(r), instance.security_tasks[natural[r]].name,
                    instance.security_tasks[consistent[r]].name});
  }
  orders.print(std::cout);
  std::cout << "natural order respects chain: "
            << (sec::respects_chains(chains, rt::rank_of(natural)) ? "yes" : "NO") << "\n";
  std::cout << "chain-consistent order respects chain: "
            << (sec::respects_chains(chains, rt::rank_of(consistent)) ? "yes" : "NO") << "\n";

  core::HydraOptions opts;
  opts.priority_order = consistent;
  const auto allocation = core::HydraAllocator(opts).allocate(instance);
  if (!allocation.feasible) {
    std::cerr << "unschedulable: " << allocation.failure_reason << "\n";
    return 1;
  }

  io::print_banner(std::cout, "allocation under the chain-consistent order");
  io::Table table({"monitor", "core", "period (ms)", "tightness"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& p = allocation.placements[s];
    table.add_row({instance.security_tasks[s].name, std::to_string(p.core),
                   io::fmt(p.period, 1), io::fmt(p.tightness, 3)});
  }
  table.print(std::cout);

  // End-to-end checks with the SAME order threaded through.
  const auto report = core::validate_allocation(instance, allocation, 0.0, consistent);
  std::cout << "validator: " << (report.valid ? "OK" : report.problem) << "\n";

  const auto tasks = hydra::sim::build_sim_tasks(instance, allocation, true, consistent);
  hydra::sim::SimOptions sim_opts;
  sim_opts.horizon = 60u * 1000u * hydra::util::kTicksPerMilli;
  const auto trace = hydra::sim::simulate(tasks, sim_opts);
  std::cout << "simulation (60 s): " << trace.total_jobs() << " jobs, "
            << trace.deadline_misses() << " deadline misses\n";
  return report.valid && trace.deadline_misses() == 0 ? 0 : 1;
}
