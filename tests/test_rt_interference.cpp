// Tests for the Eq. (5) interference bound and the Eq. (6) check.
#include <gtest/gtest.h>

#include "rt/interference.h"

namespace rt = hydra::rt;

TEST(Interference, EmptyCoreIsZero) {
  const auto b = rt::interference_bound({}, {});
  EXPECT_DOUBLE_EQ(b.const_part, 0.0);
  EXPECT_DOUBLE_EQ(b.util_part, 0.0);
  EXPECT_DOUBLE_EQ(b.eval(123.0), 0.0);
}

TEST(Interference, MatchesEquationFiveByHand) {
  // RT: (2, 10) and (3, 30); hp security: (1, 20).
  // I(Ts) = (1 + Ts/10)·2 + (1 + Ts/30)·3 + (1 + Ts/20)·1
  //       = 6 + Ts·(0.2 + 0.1 + 0.05) = 6 + 0.35·Ts.
  const std::vector<rt::RtTask> rts{rt::make_rt_task("a", 2.0, 10.0),
                                    rt::make_rt_task("b", 3.0, 30.0)};
  const std::vector<rt::PlacedSecurityTask> hp{{1.0, 20.0}};
  const auto b = rt::interference_bound(rts, hp);
  EXPECT_DOUBLE_EQ(b.const_part, 6.0);
  EXPECT_DOUBLE_EQ(b.util_part, 0.35);
  EXPECT_DOUBLE_EQ(b.eval(100.0), 41.0);
}

TEST(Interference, BlockingAddsConstantOnly) {
  const auto plain = rt::interference_bound({rt::make_rt_task("a", 2.0, 10.0)}, {});
  const auto blocked = rt::interference_bound({rt::make_rt_task("a", 2.0, 10.0)}, {}, 5.0);
  EXPECT_DOUBLE_EQ(blocked.const_part, plain.const_part + 5.0);
  EXPECT_DOUBLE_EQ(blocked.util_part, plain.util_part);
}

TEST(Interference, NegativeBlockingRejected) {
  EXPECT_THROW(rt::interference_bound({}, {}, -1.0), std::invalid_argument);
}

TEST(Interference, EvalIsAffineInPeriod) {
  const auto b = rt::interference_bound({rt::make_rt_task("a", 1.0, 4.0)}, {{2.0, 8.0}});
  const double at0 = b.const_part;
  EXPECT_DOUBLE_EQ(b.eval(0.0), at0);
  EXPECT_DOUBLE_EQ(b.eval(10.0) - b.eval(0.0), 10.0 * b.util_part);
  EXPECT_DOUBLE_EQ(b.eval(20.0) - b.eval(10.0), b.eval(10.0) - b.eval(0.0));
}

TEST(SecuritySchedulable, EquationSixBothSides) {
  const auto task = hydra::rt::make_security_task("s", 5.0, 50.0, 500.0);
  // Bound: I(Ts) = 10 + 0.5·Ts.  Need 5 + 10 + 0.5·Ts <= Ts → Ts >= 30.
  rt::InterferenceBound b;
  b.const_part = 10.0;
  b.util_part = 0.5;
  EXPECT_FALSE(rt::security_schedulable(task, 29.0, b));
  EXPECT_TRUE(rt::security_schedulable(task, 30.0, b));  // exactly tight
  EXPECT_TRUE(rt::security_schedulable(task, 100.0, b));
}

TEST(SecuritySchedulable, SaturatedCoreNeverSchedulable) {
  const auto task = hydra::rt::make_security_task("s", 1.0, 50.0, 5000.0);
  rt::InterferenceBound b;
  b.const_part = 0.5;
  b.util_part = 1.0;  // interferers consume the whole core asymptotically
  for (double period = 50.0; period <= 5000.0; period *= 2.0) {
    EXPECT_FALSE(rt::security_schedulable(task, period, b));
  }
}

TEST(Interference, AddInterfererAccumulates) {
  rt::InterferenceBound b;
  b.add_interferer(2.0, 10.0);
  b.add_interferer(3.0, 30.0);
  EXPECT_DOUBLE_EQ(b.const_part, 5.0);
  EXPECT_NEAR(b.util_part, 0.3, 1e-12);
  EXPECT_THROW(b.add_interferer(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(b.add_interferer(1.0, 0.0), std::invalid_argument);
}
