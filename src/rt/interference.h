// The paper's interference bound on a security task (Eq. 5).
//
// On core m, a security task τs (lowest-priority band) is interfered with by
// every RT task partitioned there and every *higher-priority* security task
// assigned there:
//
//   I_s^m = Σ_{τr on m} (1 + Ts/Tr)·Cr  +  Σ_{τh ∈ hpS(τs) on m} (1 + Ts/Th)·Ch
//
// which is affine in the unknown period Ts:  I(Ts) = A + B·Ts with
//   A = Σ C           (one full WCET per interferer)
//   B = Σ C/T          (the interferers' utilization).
//
// The schedulability constraint (Eq. 6), Cs + I(Ts) ≤ Ts, therefore has the
// closed-form minimum feasible period (Cs + A)/(1 − B) when B < 1 — this is
// what makes the per-(task, core) subproblem solvable both analytically and
// as a GP.  An optional blocking term extends the bound to non-preemptive
// lower-priority execution (paper §V future work).
#pragma once

#include <vector>

#include "rt/task.h"
#include "util/units.h"

namespace hydra::rt {

/// Affine interference bound I(Ts) = const_part + util_part · Ts.
struct InterferenceBound {
  double const_part = 0.0;  ///< A: sum of interferer WCETs (+ blocking)
  double util_part = 0.0;   ///< B: sum of interferer utilizations

  util::Millis eval(util::Millis period) const { return const_part + util_part * period; }

  /// Adds one interferer with the given WCET and period.
  void add_interferer(util::Millis wcet, util::Millis period);
};

/// One already-placed higher-priority security task as seen by Eq. (5):
/// its WCET and its *assigned* period.
struct PlacedSecurityTask {
  util::Millis wcet = 0.0;
  util::Millis period = 0.0;
};

/// Builds the Eq. (5) bound for a candidate core: `rt_on_core` are the RT
/// tasks partitioned there, `hp_security_on_core` the higher-priority
/// security tasks already assigned there.  `blocking` adds a constant
/// non-preemption blocking term (0 for the paper's preemptive model).
InterferenceBound interference_bound(const std::vector<RtTask>& rt_on_core,
                                     const std::vector<PlacedSecurityTask>& hp_security_on_core,
                                     util::Millis blocking = 0.0);

/// The paper's Eq. (6) check: Cs + I(Ts) ≤ Ts (with the shared tolerance).
bool security_schedulable(const SecurityTask& task, util::Millis period,
                          const InterferenceBound& bound);

}  // namespace hydra::rt
