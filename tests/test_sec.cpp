// Tests for the security metric (tightness, Eq. 2/3) and the Table-I catalog
// with its precedence chains.
#include <gtest/gtest.h>

#include "rt/priority.h"
#include "sec/catalog.h"
#include "sec/tightness.h"

namespace sec = hydra::sec;
namespace rt = hydra::rt;

TEST(Tightness, OneAtDesiredPeriod) {
  const auto t = rt::make_security_task("s", 1.0, 100.0, 1000.0);
  EXPECT_DOUBLE_EQ(sec::tightness(t, 100.0), 1.0);
}

TEST(Tightness, LowerBoundAtMaxPeriod) {
  const auto t = rt::make_security_task("s", 1.0, 100.0, 1000.0);
  EXPECT_DOUBLE_EQ(sec::tightness(t, 1000.0), 0.1);
  EXPECT_DOUBLE_EQ(t.min_tightness(), 0.1);
}

TEST(Tightness, StrictlyDecreasingInPeriod) {
  const auto t = rt::make_security_task("s", 1.0, 100.0, 1000.0);
  double prev = 2.0;
  for (double period = 100.0; period <= 1000.0; period += 50.0) {
    const double eta = sec::tightness(t, period);
    EXPECT_LT(eta, prev);
    EXPECT_GT(eta, 0.0);
    EXPECT_LE(eta, 1.0);
    prev = eta;
  }
}

TEST(Tightness, OutOfRangePeriodRejected) {
  const auto t = rt::make_security_task("s", 1.0, 100.0, 1000.0);
  EXPECT_THROW(sec::tightness(t, 99.0), std::invalid_argument);
  EXPECT_THROW(sec::tightness(t, 1001.0), std::invalid_argument);
  EXPECT_THROW(sec::tightness(t, -5.0), std::invalid_argument);
}

TEST(Tightness, CumulativeWeighted) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("a", 1.0, 100.0, 1000.0, 2.0),
      rt::make_security_task("b", 1.0, 200.0, 2000.0, 1.0),
  };
  // η_a = 0.5 (period 200), η_b = 1.0 (period 200): 2·0.5 + 1·1.0 = 2.0.
  EXPECT_DOUBLE_EQ(sec::cumulative_tightness(tasks, {200.0, 200.0}), 2.0);
  EXPECT_DOUBLE_EQ(sec::max_cumulative_tightness(tasks), 3.0);
  EXPECT_DOUBLE_EQ(sec::min_cumulative_tightness(tasks), 2.0 * 0.1 + 1.0 * 0.1);
}

TEST(Tightness, CumulativeSizeMismatchThrows) {
  const std::vector<rt::SecurityTask> tasks{rt::make_security_task("a", 1.0, 10.0, 100.0)};
  EXPECT_THROW(sec::cumulative_tightness(tasks, {10.0, 20.0}), std::invalid_argument);
}

TEST(Catalog, HasSixTableOneTasks) {
  const auto catalog = sec::tripwire_bro_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  // Five Tripwire tasks and one Bro task, as in Table I.
  int tripwire = 0, bro = 0;
  for (const auto& e : catalog) {
    (e.app == sec::SecurityApp::kTripwire ? tripwire : bro)++;
    EXPECT_FALSE(e.function.empty());
  }
  EXPECT_EQ(tripwire, 5);
  EXPECT_EQ(bro, 1);
}

TEST(Catalog, TasksAreValidAndFollowSectionIvbConventions) {
  for (const auto& t : sec::tripwire_bro_tasks()) {
    EXPECT_NO_THROW(rt::validate(t));
    EXPECT_GE(t.period_des, 1000.0);
    EXPECT_LE(t.period_des, 3000.0);
    EXPECT_DOUBLE_EQ(t.period_max, 10.0 * t.period_des);  // Tmax = 10·Tdes
  }
}

TEST(Catalog, OrderedByAscendingTmax) {
  const auto tasks = sec::tripwire_bro_tasks();
  for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
    EXPECT_LE(tasks[i].period_max, tasks[i + 1].period_max);
  }
  // Hence the priority order is the identity.
  const auto order = rt::security_priority_order(tasks);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Chains, DefaultChainRespectedByCatalogPriorities) {
  const auto tasks = sec::tripwire_bro_tasks();
  const auto rank = rt::rank_of(rt::security_priority_order(tasks));
  EXPECT_TRUE(sec::respects_chains(sec::default_chains(), rank));
}

TEST(Chains, ViolationDetected) {
  // Chain 0 → 1 violated when task 1 outranks task 0.
  const sec::Chain chain{{0, 1}};
  EXPECT_FALSE(sec::respects_chains({chain}, {1, 0}));
  EXPECT_TRUE(sec::respects_chains({chain}, {0, 1}));
}

TEST(Chains, MultiMemberChain) {
  const sec::Chain chain{{2, 0, 1}};
  // Ranks: task2 = 0 (highest), task0 = 1, task1 = 2 — consistent.
  EXPECT_TRUE(sec::respects_chains({chain}, {1, 2, 0}));
  // Ranks: task2 = 2 — breaks the first edge.
  EXPECT_FALSE(sec::respects_chains({chain}, {0, 1, 2}));
}

TEST(Chains, OutOfRangeIndexRejected) {
  const sec::Chain chain{{0, 9}};
  EXPECT_THROW(sec::respects_chains({chain}, {0, 1}), std::invalid_argument);
}

TEST(ChainOrder, NoChainsGivesTmaxOrder) {
  const auto tasks = sec::tripwire_bro_tasks();
  EXPECT_EQ(sec::chain_consistent_order(tasks, {}), rt::security_priority_order(tasks));
}

TEST(ChainOrder, ChainOverridesTmaxOrder) {
  // Task 1 has the smaller Tmax (would rank first), but the chain demands
  // 0 before 1.
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("late", 1.0, 100.0, 5000.0),
      rt::make_security_task("early", 1.0, 100.0, 1000.0),
  };
  const auto order = sec::chain_consistent_order(tasks, {sec::Chain{{0, 1}}});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_TRUE(sec::respects_chains({sec::Chain{{0, 1}}}, rt::rank_of(order)));
}

TEST(ChainOrder, UnconstrainedTasksKeepRelativeTmaxOrder) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("a", 1.0, 100.0, 4000.0),
      rt::make_security_task("b", 1.0, 100.0, 1000.0),
      rt::make_security_task("c", 1.0, 100.0, 2000.0),
      rt::make_security_task("d", 1.0, 100.0, 3000.0),
  };
  // Chain forces a before b; c and d are free and must stay Tmax-sorted.
  const auto order = sec::chain_consistent_order(tasks, {sec::Chain{{0, 1}}});
  const auto rank = rt::rank_of(order);
  EXPECT_LT(rank[0], rank[1]);  // chain edge
  EXPECT_LT(rank[2], rank[3]);  // Tmax order among free tasks
}

TEST(ChainOrder, CycleRejected) {
  const std::vector<rt::SecurityTask> tasks{
      rt::make_security_task("a", 1.0, 100.0, 1000.0),
      rt::make_security_task("b", 1.0, 100.0, 2000.0),
  };
  EXPECT_THROW(sec::chain_consistent_order(tasks, {sec::Chain{{0, 1}}, sec::Chain{{1, 0}}}),
               std::invalid_argument);
}

TEST(ChainOrder, CatalogWithDefaultChainsUnchanged) {
  // The catalog's Tmax order already satisfies the default chain, so the
  // chain-consistent order equals the plain order.
  const auto tasks = sec::tripwire_bro_tasks();
  EXPECT_EQ(sec::chain_consistent_order(tasks, sec::default_chains()),
            rt::security_priority_order(tasks));
}
