#include "core/joint_period.h"

#include <algorithm>
#include <cmath>

#include "core/period_adaptation.h"
#include "core/scp_warm.h"
#include "gp/problem.h"
#include "gp/scp.h"
#include "gp/solver.h"
#include "gp/solver_registry.h"
#include "rt/interference.h"
#include "rt/priority.h"
#include "util/contracts.h"

namespace hydra::core {

namespace {

/// Static (assignment-independent-period) data for one task's constraint:
/// (wcet_plus_const)·Ts⁻¹ + rt_util + Σ_h coupling_wcet[h]·T_h⁻¹ ≤ 1.
struct ConstraintShape {
  double wcet_plus_const = 0.0;           ///< Cs + blocking + Σ local Cr + Σ local hp Ch
  double rt_util = 0.0;                   ///< Σ local Cr/Tr
  std::vector<std::size_t> hp_local;      ///< indices of local higher-priority security tasks
};

std::vector<ConstraintShape> build_shapes(const Instance& instance,
                                          const rt::Partition& rt_partition,
                                          const std::vector<std::size_t>& core_of,
                                          util::Millis blocking) {
  const auto& sec = instance.security_tasks;
  const auto rank = rt::rank_of(rt::security_priority_order(sec));

  std::vector<double> core_rt_const(instance.num_cores, 0.0);
  std::vector<double> core_rt_util(instance.num_cores, 0.0);
  for (std::size_t i = 0; i < instance.rt_tasks.size(); ++i) {
    const auto& t = instance.rt_tasks[i];
    core_rt_const[rt_partition.core_of[i]] += t.wcet;
    core_rt_util[rt_partition.core_of[i]] += t.utilization();
  }

  std::vector<ConstraintShape> shapes(sec.size());
  for (std::size_t s = 0; s < sec.size(); ++s) {
    ConstraintShape& shape = shapes[s];
    const std::size_t c = core_of[s];
    shape.wcet_plus_const = sec[s].wcet + blocking + core_rt_const[c];
    shape.rt_util = core_rt_util[c];
    for (std::size_t h = 0; h < sec.size(); ++h) {
      if (h != s && core_of[h] == c && rank[h] < rank[s]) {
        shape.hp_local.push_back(h);
        shape.wcet_plus_const += sec[h].wcet;
      }
    }
  }
  return shapes;
}

/// Left-hand side of task s's constraint at the period vector `periods`.
double constraint_value(const Instance& instance, const ConstraintShape& shape, std::size_t s,
                        const std::vector<util::Millis>& periods) {
  double v = shape.wcet_plus_const / periods[s] + shape.rt_util;
  for (const std::size_t h : shape.hp_local) v += instance.security_tasks[h].wcet / periods[h];
  return v;
}

double tightness_sum(const Instance& instance, const std::vector<util::Millis>& periods) {
  double acc = 0.0;
  for (std::size_t s = 0; s < periods.size(); ++s) {
    const auto& t = instance.security_tasks[s];
    acc += t.weight * t.period_des / periods[s];
  }
  return acc;
}

/// Builds the constraint-only GP (no objective) shared by all modes.
gp::GpProblem build_constraint_problem(const Instance& instance,
                                       const std::vector<ConstraintShape>& shapes) {
  const auto& sec = instance.security_tasks;
  gp::GpProblem problem;
  std::vector<gp::VarId> var(sec.size());
  for (std::size_t s = 0; s < sec.size(); ++s) {
    var[s] = problem.add_variable("T[" + sec[s].name + "]");
  }
  for (std::size_t s = 0; s < sec.size(); ++s) {
    problem.add_bounds(var[s], sec[s].period_des, sec[s].period_max);
    gp::Posynomial sched = problem.posynomial();
    sched += problem.monomial(shapes[s].wcet_plus_const).with(var[s], -1.0);
    if (shapes[s].rt_util > 0.0) sched += problem.monomial(shapes[s].rt_util);
    for (const std::size_t h : shapes[s].hp_local) {
      sched += problem.monomial(sec[h].wcet).with(var[h], -1.0);
    }
    problem.add_constraint_leq1(std::move(sched), "sched[" + sec[s].name + "]");
  }
  return problem;
}

/// The rigorous sum-surrogate objective Σ (ωs/Tdes_s)·Ts as a posynomial.
gp::Posynomial sum_surrogate_objective(const Instance& instance, const gp::GpProblem& problem) {
  gp::Posynomial obj = problem.posynomial();
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& t = instance.security_tasks[s];
    obj += problem.monomial(t.weight / t.period_des).with(s, 1.0);
  }
  return obj;
}

/// The paper's literal objective Σ ωs·Tdes_s·Ts⁻¹ as a posynomial.
gp::Posynomial tightness_posynomial(const Instance& instance, const gp::GpProblem& problem) {
  gp::Posynomial obj = problem.posynomial();
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& t = instance.security_tasks[s];
    obj += problem.monomial(t.weight * t.period_des).with(s, -1.0);
  }
  return obj;
}

/// Priority-ordered sequential closed-form periods on the fixed assignment;
/// a good warm start for SCP.  May be infeasible even when the Tmax corner
/// is feasible (tight high-priority periods squeeze lower tasks).
std::optional<std::vector<util::Millis>> sequential_periods(
    const Instance& instance, const rt::Partition& rt_partition,
    const std::vector<std::size_t>& core_of, util::Millis blocking) {
  const auto& sec = instance.security_tasks;
  const auto order = rt::security_priority_order(sec);
  std::vector<std::vector<rt::PlacedSecurityTask>> placed(instance.num_cores);
  std::vector<util::Millis> periods(sec.size(), 0.0);

  for (const std::size_t s : order) {
    const std::size_t c = core_of[s];
    const auto bound =
        rt::interference_bound(rt_partition.tasks_on_core(instance.rt_tasks, c), placed[c],
                               blocking);
    const PeriodAdaptation pa = adapt_period(sec[s], bound, PeriodSolver::kClosedForm);
    if (!pa.feasible) return std::nullopt;
    periods[s] = pa.period;
    placed[c].push_back(rt::PlacedSecurityTask{sec[s].wcet, pa.period});
  }
  return periods;
}

}  // namespace

JointPeriodResult optimize_joint_periods(const Instance& instance,
                                         const rt::Partition& rt_partition,
                                         const std::vector<std::size_t>& core_of,
                                         const JointPeriodOptions& options) {
  instance.validate();
  HYDRA_REQUIRE(core_of.size() == instance.security_tasks.size(),
                "assignment must cover every security task");
  for (const std::size_t c : core_of) {
    HYDRA_REQUIRE(c < instance.num_cores, "assignment names a core that does not exist");
  }

  JointPeriodResult result;
  const auto& sec = instance.security_tasks;
  if (sec.empty()) {
    result.feasible = true;
    return result;
  }

  const auto shapes = build_shapes(instance, rt_partition, core_of, options.blocking);

  // Every constraint term is non-increasing in every period, so the corner
  // T = Tmax is the loosest point: feasibility is exactly feasibility there.
  std::vector<util::Millis> corner(sec.size());
  for (std::size_t s = 0; s < sec.size(); ++s) corner[s] = sec[s].period_max;
  for (std::size_t s = 0; s < sec.size(); ++s) {
    if (constraint_value(instance, shapes[s], s, corner) > 1.0 + util::kTimeEpsilon) {
      return result;  // infeasible
    }
  }

  // Fallback answer in case numerical optimization fails: the corner itself.
  result.feasible = true;
  result.periods = corner;
  result.cumulative_tightness = tightness_sum(instance, corner);

  // Strictly interior warm start: the corner sits ON the Ts <= Tmax boundary,
  // which would force the solver through its phase-I program on every call.
  // All constraints are monotone non-increasing in every period, so backing
  // every period off Tmax by the largest shrink that keeps the schedulability
  // constraints strictly satisfied lands inside the interior directly.
  std::vector<double> interior = corner;
  for (const double shrink : {1e-3, 1e-5, 1e-7, 1e-9}) {
    std::vector<double> candidate(sec.size());
    for (std::size_t s = 0; s < sec.size(); ++s) {
      candidate[s] = std::max(sec[s].period_des * (1.0 + 1e-9),
                              sec[s].period_max * (1.0 - shrink));
    }
    bool strict = true;
    for (std::size_t s = 0; s < sec.size() && strict; ++s) {
      strict = constraint_value(instance, shapes[s], s, candidate) < 1.0 - shrink * 1e-3;
    }
    if (strict) {
      interior = std::move(candidate);
      break;
    }
  }

  const gp::GpProblem constraints = build_constraint_problem(instance, shapes);
  const auto accept = [&](const std::vector<double>& x) {
    std::vector<util::Millis> periods(x.size());
    for (std::size_t s = 0; s < x.size(); ++s) {
      periods[s] = std::clamp(x[s], sec[s].period_des, sec[s].period_max);
    }
    // Only adopt points that re-validate against the exact constraints.
    for (std::size_t s = 0; s < sec.size(); ++s) {
      if (constraint_value(instance, shapes[s], s, periods) > 1.0 + 1e-7) return;
    }
    const double value = tightness_sum(instance, periods);
    if (value > result.cumulative_tightness) {
      result.periods = std::move(periods);
      result.cumulative_tightness = value;
    }
  };

  switch (options.objective) {
    case JointObjective::kSumSurrogate: {
      gp::GpProblem problem = constraints;
      problem.set_objective(sum_surrogate_objective(instance, problem));
      const gp::SolveResult sr = gp::solve_with_backend(problem, interior, options.gp_backend);
      if (sr.ok()) accept(sr.x);
      break;
    }
    case JointObjective::kLogUtility: {
      gp::GpProblem problem = constraints;
      gp::Monomial product = problem.monomial(1.0);
      for (std::size_t s = 0; s < sec.size(); ++s) product.with(s, sec[s].weight);
      problem.set_objective(gp::Posynomial(product));
      const gp::SolveResult sr = gp::solve_with_backend(problem, interior, options.gp_backend);
      if (sr.ok()) accept(sr.x);
      break;
    }
    case JointObjective::kSignomialScp: {
      std::vector<std::vector<double>> starts{interior};
      if (const auto seq = sequential_periods(instance, rt_partition, core_of, options.blocking)) {
        starts.push_back(*seq);
      }
      // A SumSurrogate solution is a cheap, usually-excellent warm start.
      {
        gp::GpProblem problem = constraints;
        problem.set_objective(sum_surrogate_objective(instance, problem));
        const gp::SolveResult sr = gp::solve_with_backend(problem, interior, options.gp_backend);
        if (sr.ok()) starts.push_back(sr.x);
      }
      // Warm-start seam: extra start points from the innermost scope (for
      // the sweep, a neighboring cell's converged periods).  Warm points are
      // added to the cold set, never replacing it, and the gp-layer tie rule
      // keeps the result byte-identical with the seam on or off unless a
      // warm start is materially better (core/scp_warm.h).
      std::vector<std::vector<double>> warm;
      const ScpWarmStartHooks* hooks = ScpWarmStartScope::current();
      if (hooks != nullptr && hooks->source) warm = hooks->source(sec.size());
      const gp::Posynomial objective = tightness_posynomial(instance, constraints);
      gp::ScpOptions scp_options;
      scp_options.backend = options.gp_backend;
      const gp::ScpResult scp =
          warm.empty()
              ? gp::maximize_posynomial_scp(constraints, objective, starts, scp_options)
              : gp::maximize_posynomial_scp_warm(constraints, objective, starts, warm,
                                                 scp_options);
      if (scp.feasible) {
        if (hooks != nullptr && hooks->sink) hooks->sink(scp.x);
        accept(scp.x);
      }
      break;
    }
  }
  return result;
}

gp::GpProblem make_joint_period_gp(const Instance& instance, const rt::Partition& rt_partition,
                                   const std::vector<std::size_t>& core_of,
                                   const JointPeriodOptions& options) {
  instance.validate();
  HYDRA_REQUIRE(core_of.size() == instance.security_tasks.size(),
                "assignment must cover every security task");
  for (const std::size_t c : core_of) {
    HYDRA_REQUIRE(c < instance.num_cores, "assignment names a core that does not exist");
  }
  HYDRA_REQUIRE(!instance.security_tasks.empty(),
                "joint-period GP needs at least one security task");
  const auto shapes = build_shapes(instance, rt_partition, core_of, options.blocking);
  gp::GpProblem problem = build_constraint_problem(instance, shapes);
  problem.set_objective(sum_surrogate_objective(instance, problem));
  return problem;
}

}  // namespace hydra::core
