#include "util/cli.h"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.h"

namespace hydra::util {

CliParser::CliParser(int argc, const char* const* argv, bool allow_positionals,
                     std::vector<std::string> value_less_flags) {
  HYDRA_REQUIRE(argc >= 1 && argv != nullptr, "argv must contain at least the program name");
  program_ = argv[0];
  const auto is_value_less = [&value_less_flags](const std::string& name) {
    return std::find(value_less_flags.begin(), value_less_flags.end(), name) !=
           value_less_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      if (allow_positionals) {
        positionals_.push_back(std::move(arg));
        continue;
      }
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token as value unless it is
    // itself an option, absent, or `name` never takes one — then it is a
    // boolean flag (and the token, if any, a positional in its own right).
    if (!is_value_less(arg) && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliParser::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliParser::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + it->second +
                                "'");
  }
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + it->second +
                                "'");
  }
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("option --" + name + " expects a boolean, got '" + v + "'");
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& name,
                                                  std::vector<std::int64_t> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& v = it->second;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string tok =
        comma == std::string::npos ? v.substr(pos) : v.substr(pos, comma - pos);
    if (!tok.empty()) {
      try {
        std::size_t used = 0;
        const std::int64_t value = std::stoll(tok, &used);
        if (used != tok.size()) throw std::invalid_argument(tok);  // "2x4" etc.
        out.push_back(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("option --" + name + " expects integers, got '" + tok + "'");
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("option --" + name + " expects a non-empty integer list");
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& name,
                                               std::vector<double> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  const std::string& v = it->second;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    const std::string tok =
        comma == std::string::npos ? v.substr(pos) : v.substr(pos, comma - pos);
    if (!tok.empty()) {
      // std::stod alone accepts trailing garbage ("0.4x0.8" parses as 0.4);
      // require the whole token to be consumed so typos fail loudly.
      try {
        std::size_t used = 0;
        const double value = std::stod(tok, &used);
        if (used != tok.size()) throw std::invalid_argument(tok);
        out.push_back(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("option --" + name + " expects numbers, got '" + tok + "'");
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("option --" + name + " expects a non-empty number list");
  }
  return out;
}

std::vector<std::string> CliParser::get_string_list(const std::string& name,
                                                    std::vector<std::string> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::string> out;
  const std::string& v = it->second;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const auto comma = v.find(',', pos);
    std::string tok = comma == std::string::npos ? v.substr(pos) : v.substr(pos, comma - pos);
    const auto begin = tok.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const auto end = tok.find_last_not_of(" \t");
      out.push_back(tok.substr(begin, end - begin + 1));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("option --" + name + " expects a non-empty list");
  }
  return out;
}

}  // namespace hydra::util
