#include "stats/ks.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hydra::stats {

namespace {

/// Merged, deduplicated jump points of both CDFs.
std::vector<double> jump_points(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  std::vector<double> xs;
  xs.reserve(a.size() + b.size());
  xs.insert(xs.end(), a.sorted_samples().begin(), a.sorted_samples().end());
  xs.insert(xs.end(), b.sorted_samples().begin(), b.sorted_samples().end());
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

}  // namespace

double ks_statistic(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  double sup = 0.0;
  for (const double x : jump_points(a, b)) sup = std::fmax(sup, std::fabs(a(x) - b(x)));
  return sup;
}

double ks_statistic_one_sided(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  double sup = 0.0;  // the difference is 0 at ±inf, so 0 is a valid floor
  for (const double x : jump_points(a, b)) sup = std::fmax(sup, a(x) - b(x));
  return sup;
}

bool dominates(const EmpiricalCdf& a, const EmpiricalCdf& b, double slack) {
  // a dominates b iff b never gets above a by more than slack.
  return ks_statistic_one_sided(b, a) <= slack;
}

}  // namespace hydra::stats
