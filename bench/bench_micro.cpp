// Micro-benchmarks (google-benchmark): the building blocks whose cost decides
// whether HYDRA-style design-space exploration is interactive — exact RTA,
// Randfixedsum draws, the one-variable GP solve vs its closed form, full
// HYDRA and SingleCore allocations, the exhaustive optimal search, and the
// discrete-event simulator.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/hydra.h"
#include "core/joint_period.h"
#include "core/optimal.h"
#include "core/period_adaptation.h"
#include "core/single_core.h"
#include "exp/engine.h"
#include "gen/randfixedsum.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "gp/solver_registry.h"
#include "rt/analysis.h"
#include "rt/partition.h"
#include "sim/attack.h"
#include "sim/engine.h"

namespace core = hydra::core;
namespace gen = hydra::gen;
namespace rt = hydra::rt;
namespace sim = hydra::sim;

namespace {

std::vector<rt::RtTask> random_rt_tasks(std::size_t n, double total_util,
                                        hydra::util::Xoshiro256& rng) {
  const auto utils = gen::randfixedsum(n, total_util, 1e-4, 0.9, rng);
  std::vector<rt::RtTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double period = rng.uniform(10.0, 1000.0);
    tasks.push_back(rt::make_rt_task("t" + std::to_string(i), utils[i] * period, period));
  }
  return tasks;
}

}  // namespace

static void BM_ResponseTimeAnalysis(benchmark::State& state) {
  hydra::util::Xoshiro256 rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tasks = random_rt_tasks(n, 0.6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::core_schedulable_rm(tasks));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

static void BM_Randfixedsum(benchmark::State& state) {
  hydra::util::Xoshiro256 rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::randfixedsum(n, 0.4 * static_cast<double>(n), 0.0, 1.0, rng));
  }
}
BENCHMARK(BM_Randfixedsum)->Arg(10)->Arg(40)->Arg(80);

static void BM_PeriodAdaptationClosedForm(benchmark::State& state) {
  const auto task = rt::make_security_task("s", 50.0, 1000.0, 10000.0);
  rt::InterferenceBound bound;
  bound.const_part = 200.0;
  bound.util_part = 0.55;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::adapt_period(task, bound, core::PeriodSolver::kClosedForm));
  }
}
BENCHMARK(BM_PeriodAdaptationClosedForm);

static void BM_PeriodAdaptationGp(benchmark::State& state) {
  const auto task = rt::make_security_task("s", 50.0, 1000.0, 10000.0);
  rt::InterferenceBound bound;
  bound.const_part = 200.0;
  bound.util_part = 0.55;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::adapt_period(task, bound, core::PeriodSolver::kGeometricProgram));
  }
}
BENCHMARK(BM_PeriodAdaptationGp);

static void BM_HydraAllocateUav(benchmark::State& state) {
  const auto instance = gen::uav_case_study(static_cast<std::size_t>(state.range(0)));
  const core::HydraAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(instance));
  }
}
BENCHMARK(BM_HydraAllocateUav)->Arg(2)->Arg(4)->Arg(8);

static void BM_SingleCoreAllocateUav(benchmark::State& state) {
  const auto instance = gen::uav_case_study(static_cast<std::size_t>(state.range(0)));
  const core::SingleCoreAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(instance));
  }
}
BENCHMARK(BM_SingleCoreAllocateUav)->Arg(2)->Arg(4)->Arg(8);

static void BM_HydraAllocateSynthetic(benchmark::State& state) {
  hydra::util::Xoshiro256 rng(4);
  gen::SyntheticConfig config;
  config.num_cores = static_cast<std::size_t>(state.range(0));
  const auto drawn =
      gen::generate_filtered_instance(config, 0.5 * static_cast<double>(state.range(0)), rng);
  if (!drawn.has_value()) {
    state.SkipWithError("no instance drawn");
    return;
  }
  const core::HydraAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(drawn->instance));
  }
}
BENCHMARK(BM_HydraAllocateSynthetic)->Arg(2)->Arg(4)->Arg(8);

static void BM_JointPeriodScp(benchmark::State& state) {
  // One signomial SCP joint-period solve (condensation rounds over barrier
  // GP solves) for Arg security tasks sharing one core — the inner kernel of
  // the exhaustive optimal search and the unit the SCP warm-start/scratch
  // work accelerates.
  hydra::util::Xoshiro256 rng(6);
  core::Instance instance;
  instance.num_cores = 1;
  instance.rt_tasks = random_rt_tasks(3, 0.3, rng);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const double t_des = rng.uniform(1000.0, 3000.0);
    instance.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.05, 0.15) * t_des, t_des, 10.0 * t_des));
  }
  rt::Partition partition;
  partition.num_cores = 1;
  partition.core_of.assign(instance.rt_tasks.size(), 0);
  const std::vector<std::size_t> core_of(instance.security_tasks.size(), 0);
  core::JointPeriodOptions options;
  options.objective = core::JointObjective::kSignomialScp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_joint_periods(instance, partition, core_of, options));
  }
}
BENCHMARK(BM_JointPeriodScp)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

static void BM_GpSolveBackend(benchmark::State& state, const std::string& backend) {
  // One plain-GP solve of the joint-period program (4 security tasks, one
  // loaded core) through each registered SolverRegistry backend — the
  // apples-to-apples backend cost comparison behind docs/solver-catalog.md.
  // pick-best should track scp/barrier (its primary short-circuits on
  // converged optimality); ipm/filter pays a different per-iteration cost.
  hydra::util::Xoshiro256 rng(6);
  core::Instance instance;
  instance.num_cores = 1;
  instance.rt_tasks = random_rt_tasks(3, 0.3, rng);
  for (std::int64_t i = 0; i < 4; ++i) {
    const double t_des = rng.uniform(1000.0, 3000.0);
    instance.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.05, 0.15) * t_des, t_des, 10.0 * t_des));
  }
  rt::Partition partition;
  partition.num_cores = 1;
  partition.core_of.assign(instance.rt_tasks.size(), 0);
  const std::vector<std::size_t> core_of(instance.security_tasks.size(), 0);
  const hydra::gp::GpProblem problem =
      core::make_joint_period_gp(instance, partition, core_of);
  for (auto _ : state) {
    const auto result = hydra::gp::solve_with_backend(problem, std::nullopt, backend);
    if (!result.ok()) {
      state.SkipWithError(("backend " + backend + " failed: " + result.message).c_str());
      return;
    }
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK_CAPTURE(BM_GpSolveBackend, scp_barrier, std::string("scp/barrier"));
BENCHMARK_CAPTURE(BM_GpSolveBackend, ipm_filter, std::string("ipm/filter"));
BENCHMARK_CAPTURE(BM_GpSolveBackend, pick_best, std::string("pick-best"));

static void BM_OptimalExhaustive(benchmark::State& state) {
  // M = 2, NS = range: cost doubles per extra task (2^NS joint solves).
  hydra::util::Xoshiro256 rng(5);
  core::Instance instance;
  instance.num_cores = 2;
  instance.rt_tasks = random_rt_tasks(4, 0.5, rng);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const double t_des = rng.uniform(1000.0, 3000.0);
    instance.security_tasks.push_back(rt::make_security_task(
        "s" + std::to_string(i), rng.uniform(0.1, 0.3) * t_des, t_des, 10.0 * t_des));
  }
  const core::OptimalAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(instance));
  }
}
BENCHMARK(BM_OptimalExhaustive)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

static void BM_SimulateUavSecond(benchmark::State& state) {
  // One simulated second of the M=4 UAV system (12 tasks).
  const auto instance = gen::uav_case_study(4);
  const auto allocation = core::HydraAllocator().allocate(instance);
  const auto tasks = sim::build_sim_tasks(instance, allocation);
  sim::SimOptions opts;
  opts.horizon = 1000u * hydra::util::kTicksPerMilli;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(tasks, opts));
  }
}
BENCHMARK(BM_SimulateUavSecond)->Unit(benchmark::kMicrosecond);

static void BM_ExplorationEngineBatch(benchmark::State& state) {
  // A 100-instance synthetic sweep (M = 4, mid utilization) through the batch
  // engine, Arg = worker threads.  Results are identical for every thread
  // count (tested); this benchmark measures the wall-clock scaling, so the
  // jobs=8 row against jobs=1 is the engine's parallel speedup.
  hydra::exp::BatchSpec spec;
  spec.count = 100;
  spec.synthetic.num_cores = 4;
  spec.total_utilization = 2.0;
  spec.base_seed = 9;

  hydra::exp::EngineOptions options;
  options.schemes = {"hydra", "single-core"};
  options.jobs = static_cast<std::size_t>(state.range(0));
  const hydra::exp::ExplorationEngine engine(options);

  std::size_t feasible = 0;
  for (auto _ : state) {
    const auto summary = engine.run(spec);
    feasible += summary.feasible;
    benchmark::DoNotOptimize(feasible);
  }
  state.counters["feasible"] =
      static_cast<double>(feasible) / static_cast<double>(state.iterations());
  // One item = one (instance, scheme) cell, so items_per_second is the
  // engine's cell throughput — the unit hydra_bench_diff tracks across
  // thread counts and baselines.
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * spec.count * options.schemes.size()));
}
BENCHMARK(BM_ExplorationEngineBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
