// Tests for the partitioning heuristics: correctness invariants (every core
// RM-schedulable, all tasks placed), strategy-specific behaviours, and
// failure cases.
#include <gtest/gtest.h>

#include "rt/analysis.h"
#include "rt/partition.h"
#include "util/rng.h"

namespace rt = hydra::rt;

namespace {

std::vector<rt::RtTask> uniform_tasks(int n, double util_each, double period) {
  std::vector<rt::RtTask> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back(rt::make_rt_task("t" + std::to_string(i), util_each * period, period));
  }
  return tasks;
}

}  // namespace

TEST(Partition, SingleTaskGoesToCoreZeroFirstFit) {
  const auto tasks = uniform_tasks(1, 0.5, 10.0);
  rt::PartitionOptions opts;
  opts.strategy = rt::FitStrategy::kFirstFit;
  const auto p = rt::partition_rt_tasks(tasks, 4, opts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->core_of[0], 0u);
}

TEST(Partition, EveryCoreRemainsSchedulable) {
  hydra::util::Xoshiro256 rng(42);
  for (const auto strategy :
       {rt::FitStrategy::kFirstFit, rt::FitStrategy::kBestFit, rt::FitStrategy::kWorstFit,
        rt::FitStrategy::kNextFit}) {
    std::vector<rt::RtTask> tasks;
    for (int i = 0; i < 16; ++i) {
      const double period = rng.uniform(10.0, 200.0);
      tasks.push_back(
          rt::make_rt_task("t" + std::to_string(i), rng.uniform(0.05, 0.2) * period, period));
    }
    rt::PartitionOptions opts;
    opts.strategy = strategy;
    const auto p = rt::partition_rt_tasks(tasks, 4, opts);
    ASSERT_TRUE(p.has_value());
    ASSERT_EQ(p->core_of.size(), tasks.size());
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_TRUE(rt::core_schedulable_rm(p->tasks_on_core(tasks, c)))
          << "strategy " << static_cast<int>(strategy) << " core " << c;
    }
  }
}

TEST(Partition, WorstFitSpreadsLoad) {
  // Four identical tasks on four cores: worst-fit puts one per core.
  const auto tasks = uniform_tasks(4, 0.4, 10.0);
  rt::PartitionOptions opts;
  opts.strategy = rt::FitStrategy::kWorstFit;
  const auto p = rt::partition_rt_tasks(tasks, 4, opts);
  ASSERT_TRUE(p.has_value());
  const auto util = p->core_utilizations(tasks);
  for (const double u : util) EXPECT_NEAR(u, 0.4, 1e-12);
}

TEST(Partition, BestFitPacksTightly) {
  // Two tasks of 0.3 plus one of 0.6 on two cores.  Best-fit (decreasing)
  // places big on core 0, then packs s1 next to it (core 0 is the most
  // loaded feasible core, 0.9 total); s2 no longer fits there and opens
  // core 1.
  std::vector<rt::RtTask> tasks{rt::make_rt_task("big", 6.0, 10.0),
                                rt::make_rt_task("s1", 3.0, 10.0),
                                rt::make_rt_task("s2", 3.0, 10.0)};
  rt::PartitionOptions opts;
  opts.strategy = rt::FitStrategy::kBestFit;
  const auto p = rt::partition_rt_tasks(tasks, 2, opts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->core_of[0], p->core_of[1]);  // big + s1 share the packed core
  EXPECT_NE(p->core_of[2], p->core_of[0]);
  const auto util = p->core_utilizations(tasks);
  EXPECT_NEAR(util[p->core_of[0]], 0.9, 1e-12);
}

TEST(Partition, InfeasibleReturnsNullopt) {
  // Three tasks of 0.8 cannot fit on two cores.
  const auto tasks = uniform_tasks(3, 0.8, 10.0);
  for (const auto strategy :
       {rt::FitStrategy::kFirstFit, rt::FitStrategy::kBestFit, rt::FitStrategy::kWorstFit,
        rt::FitStrategy::kNextFit}) {
    rt::PartitionOptions opts;
    opts.strategy = strategy;
    EXPECT_FALSE(rt::partition_rt_tasks(tasks, 2, opts).has_value());
  }
}

TEST(Partition, DecreasingUtilizationHelpsPacking) {
  // 2 cores; tasks 0.55, 0.55, 0.35, 0.35, 0.2 (harmonic periods).  In input
  // order first-fit places 0.55+0.35 on core0, 0.55+0.35 on core1, then 0.2
  // fails on both.  Decreasing order packs 0.55/0.35 pairs plus 0.2 → fits.
  std::vector<rt::RtTask> tasks{
      rt::make_rt_task("a", 5.5, 10.0), rt::make_rt_task("b", 5.5, 10.0),
      rt::make_rt_task("c", 3.5, 10.0), rt::make_rt_task("d", 3.5, 10.0),
      rt::make_rt_task("e", 2.0, 20.0)};
  rt::PartitionOptions sorted;
  sorted.strategy = rt::FitStrategy::kFirstFit;
  sorted.decreasing_utilization = true;
  EXPECT_TRUE(rt::partition_rt_tasks(tasks, 2, sorted).has_value());
}

TEST(Partition, CoreUtilizationsSumToTotal) {
  hydra::util::Xoshiro256 rng(7);
  std::vector<rt::RtTask> tasks;
  double total = 0.0;
  for (int i = 0; i < 12; ++i) {
    const double period = rng.uniform(20.0, 100.0);
    const double u = rng.uniform(0.02, 0.12);
    total += u;
    tasks.push_back(rt::make_rt_task("t" + std::to_string(i), u * period, period));
  }
  const auto p = rt::partition_rt_tasks(tasks, 3);
  ASSERT_TRUE(p.has_value());
  const auto util = p->core_utilizations(tasks);
  double sum = 0.0;
  for (const double u : util) sum += u;
  EXPECT_NEAR(sum, total, 1e-9);
}

TEST(Partition, TasksOnCoreRoundTrips) {
  const auto tasks = uniform_tasks(6, 0.1, 30.0);
  const auto p = rt::partition_rt_tasks(tasks, 2);
  ASSERT_TRUE(p.has_value());
  std::size_t covered = 0;
  for (std::size_t c = 0; c < 2; ++c) covered += p->tasks_on_core(tasks, c).size();
  EXPECT_EQ(covered, tasks.size());
  EXPECT_THROW(p->tasks_on_core(tasks, 5), std::invalid_argument);
}

TEST(Partition, ZeroCoresRejected) {
  EXPECT_THROW(rt::partition_rt_tasks({}, 0), std::invalid_argument);
}

TEST(Partition, EmptyTaskSetTrivial) {
  const auto p = rt::partition_rt_tasks({}, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->core_of.empty());
}

// Property sweep: whenever a partition is returned, it is valid; whenever the
// total utilization is <= 50% of capacity with small tasks, it must succeed.
class PartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionProperty, LowLoadAlwaysPlaceable) {
  hydra::util::Xoshiro256 rng(GetParam());
  const std::size_t cores = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  std::vector<rt::RtTask> tasks;
  double budget = 0.5 * static_cast<double>(cores);
  int i = 0;
  while (budget > 0.05) {
    const double u = std::min(budget, rng.uniform(0.02, 0.2));
    const double period = rng.uniform(10.0, 1000.0);
    tasks.push_back(rt::make_rt_task("t" + std::to_string(i++), u * period, period));
    budget -= u;
  }
  const auto p = rt::partition_rt_tasks(tasks, cores);
  ASSERT_TRUE(p.has_value());
  for (std::size_t c = 0; c < cores; ++c) {
    EXPECT_TRUE(rt::core_schedulable_rm(p->tasks_on_core(tasks, c)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));
