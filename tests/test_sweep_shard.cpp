// Differential determinism suite for sharded multi-process sweeps: running
// the same grid as N shard processes (any N, any per-shard --jobs) and
// merging the checkpoints must be byte-identical to the single-process
// --jobs 1 run — on the raw row stream, on the aggregate JSONL, and against
// the committed golden corpus.  Also pins the partition properties the
// guarantee rests on: shard cell-key sets are disjoint and exhaustive, pure
// functions of the key bytes alone.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregate.h"
#include "exp/merge.h"
#include "exp/metrics.h"
#include "exp/sweep.h"

namespace hexp = hydra::exp;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";
const std::string kGoldenPath = kCorpusDir + "/golden_cells.jsonl";

/// Same shape as test_sweep_determinism's grid (3 points × replications ×
/// 3 schemes including the uneven-cost exhaustive optimal), sized down so the
/// whole differential matrix stays in the fast label.
hexp::SweepSpec shard_grid(std::size_t replications = 3) {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra", "single-core", "optimal"};
  hydra::gen::SyntheticConfig config;
  config.num_cores = 2;
  config.min_sec_per_core = 1;
  config.max_sec_per_core = 2;
  spec.add_utilization_grid(config, {0.8, 1.4, 1.9});
  spec.replications = replications;
  spec.base_seed = 77;
  return spec;
}

/// The golden-corpus sweep, exactly as test_sweep_golden runs it.
hexp::SweepSpec corpus_spec() {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra",   "single-core",  "optimal",
                  "contego", "period-adapt", "util/worst-fit"};
  spec.add_corpus_point(kCorpusDir, "corpus");
  return spec;
}

std::string run_rows(hexp::SweepSpec spec) {
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  hexp::Sweep(std::move(spec)).run({&sink});
  return os.str();
}

/// RAII shard-checkpoint directory: runs every shard of `spec` (each with its
/// own worker count) and writes header-stamped per-shard JSONL files.
struct ShardFiles {
  std::vector<std::string> paths;

  ShardFiles(const hexp::SweepSpec& base, std::size_t shards,
             const std::string& tag) {
    for (std::size_t s = 0; s < shards; ++s) {
      auto spec = base;
      spec.shard_index = s;
      spec.shard_count = shards;
      spec.jobs = 1 + (s % 3);  // determinism must not depend on --jobs
      const hexp::Sweep sweep(std::move(spec));
      const auto path = ::testing::TempDir() + "hydra_shard_" + tag + "_" +
                        std::to_string(s) + "of" + std::to_string(shards) +
                        ".jsonl";
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << hexp::format_shard_header(sweep.shard_header()) << "\n";
      hexp::JsonlSink sink(out);
      sweep.run({&sink});
      paths.push_back(path);
    }
  }
  ~ShardFiles() {
    for (const auto& path : paths) std::remove(path.c_str());
  }
};

std::string merge_to_string(const std::vector<std::string>& paths,
                            const hexp::MergeOptions& options = {}) {
  const auto merged = hexp::merge_checkpoints(paths, options);
  std::ostringstream os;
  hexp::write_merged(merged, os);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::set<std::string> cell_keys_of(const std::string& jsonl) {
  std::set<std::string> keys;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    const auto row = hexp::parse_jsonl_row(line);
    if (row.has_value()) keys.insert(row->cell);
  }
  return keys;
}

}  // namespace

TEST(ShardSpec, ParsesAndRejectsCliSyntax) {
  EXPECT_EQ(hexp::parse_shard_spec("0/1").index, 0u);
  EXPECT_EQ(hexp::parse_shard_spec("0/1").count, 1u);
  EXPECT_EQ(hexp::parse_shard_spec("2/3").index, 2u);
  EXPECT_EQ(hexp::parse_shard_spec("2/3").count, 3u);
  for (const char* bad : {"", "3/3", "4/3", "1", "/3", "1/", "a/b", "-1/2",
                          "1/0", "1/2x", "1.5/2"}) {
    EXPECT_THROW(hexp::parse_shard_spec(bad), std::invalid_argument) << bad;
  }
}

TEST(ShardSpec, SweepValidatesShardFieldsAtConstruction) {
  auto bad_index = shard_grid();
  bad_index.shard_index = 2;
  bad_index.shard_count = 2;
  EXPECT_THROW(hexp::Sweep(std::move(bad_index)), std::invalid_argument);

  auto zero_count = shard_grid();
  zero_count.shard_count = 0;
  EXPECT_THROW(hexp::Sweep(std::move(zero_count)), std::invalid_argument);
}

TEST(ShardSpec, HeaderRoundTripsAndRejectsForeignLines) {
  hexp::SweepShardHeader header;
  header.fingerprint = "0123456789abcdef";
  header.shard = 1;
  header.shards = 3;
  header.cells = 42;
  header.schemes = {"hydra", "util/worst-fit"};
  const auto line = hexp::format_shard_header(header);
  const auto parsed = hexp::parse_shard_header(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fingerprint, header.fingerprint);
  EXPECT_EQ(parsed->shard, 1u);
  EXPECT_EQ(parsed->shards, 3u);
  EXPECT_EQ(parsed->cells, 42u);
  EXPECT_EQ(parsed->schemes, header.schemes);

  EXPECT_FALSE(hexp::parse_shard_header("").has_value());
  EXPECT_FALSE(hexp::parse_shard_header(line + "x").has_value());
  EXPECT_FALSE(hexp::parse_shard_header("{\"cell\":\"p0:x:i0\"}").has_value());
  // An ordinary row line must never be mistaken for a header...
  const auto rows = run_rows(shard_grid(1));
  const auto first_row = rows.substr(0, rows.find('\n'));
  EXPECT_FALSE(hexp::parse_shard_header(first_row).has_value());
  // ...and the resume loader must skip a header transparently (unknown key).
  EXPECT_FALSE(hexp::parse_jsonl_row(line).has_value());
}

TEST(ShardSpec, FingerprintTracksSpecIdentityButNotExecutionKnobs) {
  const hexp::Sweep base(shard_grid());
  const auto fingerprint = base.fingerprint();
  EXPECT_EQ(fingerprint.size(), 16u);

  // Execution knobs (jobs, shard position) leave the fingerprint alone: all
  // shards of one logical sweep must agree on it.
  auto knobs = shard_grid();
  knobs.jobs = 8;
  knobs.shard_index = 1;
  knobs.shard_count = 3;
  EXPECT_EQ(hexp::Sweep(std::move(knobs)).fingerprint(), fingerprint);

  // Identity changes move it.
  auto reseeded = shard_grid();
  reseeded.base_seed = 78;
  EXPECT_NE(hexp::Sweep(std::move(reseeded)).fingerprint(), fingerprint);
  auto fewer_schemes = shard_grid();
  fewer_schemes.schemes = {"hydra", "single-core"};
  EXPECT_NE(hexp::Sweep(std::move(fewer_schemes)).fingerprint(), fingerprint);
  auto other_grid = shard_grid();
  other_grid.points.pop_back();
  EXPECT_NE(hexp::Sweep(std::move(other_grid)).fingerprint(), fingerprint);
}

TEST(ShardSpec, FingerprintTracksFileContentAndPresetTaskParameters) {
  // Editing a workload file between shard runs changes the rows its cells
  // would hold — only the bytes reveal that, so the fingerprint must hash
  // content, not just paths.
  const auto path = ::testing::TempDir() + "hydra_fp_workload.txt";
  std::ofstream(path, std::ios::trunc) << "cores 2\nrt r1 10 40\nsec s1 2 500 5000\n";
  hexp::SweepSpec file_spec;
  file_spec.schemes = {"hydra"};
  hexp::SweepPoint file_point;
  file_point.files = {path};
  file_point.label = "fp";
  file_spec.points.push_back(file_point);
  const auto before = hexp::sweep_fingerprint(file_spec);
  std::ofstream(path, std::ios::trunc) << "cores 2\nrt r1 11 40\nsec s1 2 500 5000\n";
  EXPECT_NE(hexp::sweep_fingerprint(file_spec), before);
  std::remove(path.c_str());
  // A missing file is visibly different from any readable content.
  EXPECT_NE(hexp::sweep_fingerprint(file_spec), before);

  // Same for preset instances: identical task COUNTS, one WCET nudged.
  hydra::core::Instance instance;
  instance.num_cores = 2;
  instance.rt_tasks = {hydra::rt::make_rt_task("r1", 10.0, 40.0)};
  instance.security_tasks = {{"s1", 2.0, 500.0, 5000.0, 1.0}};
  hexp::SweepSpec preset_spec;
  preset_spec.schemes = {"hydra"};
  hexp::SweepPoint preset_point;
  preset_point.instance = instance;
  preset_point.label = "preset";
  preset_spec.points.push_back(preset_point);
  const auto preset_before = hexp::sweep_fingerprint(preset_spec);
  preset_spec.points[0].instance->rt_tasks[0].wcet = 11.0;
  EXPECT_NE(hexp::sweep_fingerprint(preset_spec), preset_before);
}

TEST(ShardSpec, FingerprintTracksMetricParametersNotJustNames) {
  // Two shards launched with different metric configs (e.g. fig5 --trials)
  // emit the same metric NAMES but different values; RowMetric::identity is
  // what lets the fingerprint — and therefore hydra_merge — tell them apart.
  hexp::AdaptiveMetricsConfig config;
  config.detection.trials = 120;
  auto spec = shard_grid();
  spec.metrics = hexp::adaptive_detection_metrics(config);
  const auto base = hexp::sweep_fingerprint(spec);

  config.detection.trials = 40;  // same names, different sampling
  auto retrialed = shard_grid();
  retrialed.metrics = hexp::adaptive_detection_metrics(config);
  ASSERT_EQ(retrialed.metrics.size(), spec.metrics.size());
  ASSERT_EQ(retrialed.metrics[0].name, spec.metrics[0].name);
  EXPECT_NE(hexp::sweep_fingerprint(retrialed), base);

  config.detection.trials = 120;
  config.controller.tighten_threshold = 0.5;  // controller knobs count too
  auto rethresholded = shard_grid();
  rethresholded.metrics = hexp::adaptive_detection_metrics(config);
  EXPECT_NE(hexp::sweep_fingerprint(rethresholded), base);
}

TEST(ShardPartition, IsDisjointExhaustiveAndJobsIndependent) {
  // Pure-function property on raw keys: every key lands in exactly one shard,
  // for any shard count.
  std::vector<std::string> keys;
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t i = 0; i < 11; ++i) {
      keys.push_back(hexp::sweep_cell_key(p, "m=2 u=" + std::to_string(p), i));
    }
  }
  for (std::size_t shards = 1; shards <= 6; ++shards) {
    std::size_t covered = 0;
    for (const auto& key : keys) {
      const auto shard = hexp::sweep_shard_of(key, shards);
      ASSERT_LT(shard, shards);
      ++covered;
      EXPECT_EQ(hexp::sweep_shard_of(key, shards), shard);  // stable
    }
    EXPECT_EQ(covered, keys.size());
  }

  // Run-level property: the cells each shard run EMITS are exactly the cells
  // the partition assigns to it, and the shard runs tile the full grid.
  const auto full_cells = cell_keys_of(run_rows(shard_grid()));
  ASSERT_EQ(full_cells.size(), 9u);  // 3 points × 3 replications
  std::set<std::string> unioned;
  for (std::size_t s = 0; s < 3; ++s) {
    auto spec = shard_grid();
    spec.shard_index = s;
    spec.shard_count = 3;
    const auto emitted = cell_keys_of(run_rows(std::move(spec)));
    for (const auto& cell : emitted) {
      EXPECT_EQ(hexp::sweep_shard_of(cell, 3), s) << cell;
      EXPECT_TRUE(unioned.insert(cell).second) << "cell emitted twice: " << cell;
    }
  }
  EXPECT_EQ(unioned, full_cells);
}

TEST(ShardDifferential, MergedShardsByteIdenticalToSingleProcessForAnyN) {
  auto reference_spec = shard_grid();
  reference_spec.jobs = 1;
  const auto reference = run_rows(std::move(reference_spec));
  ASSERT_FALSE(reference.empty());

  for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
    const ShardFiles files(shard_grid(), shards, "diff" + std::to_string(shards));
    const auto merged = hexp::merge_checkpoints(files.paths);
    ASSERT_TRUE(merged.header.has_value());
    EXPECT_EQ(merged.header->shards, shards);
    EXPECT_EQ(merged.torn_lines, 0u);
    std::ostringstream os;
    hexp::write_merged(merged, os);
    EXPECT_EQ(os.str(), reference) << shards << " shards";
  }
}

TEST(ShardDifferential, TinyGridLeavesSomeShardsEmptyAndStillMerges) {
  // 2 cells across 5 shards: at least three shard files are header-only.
  auto tiny = shard_grid(1);
  tiny.points.pop_back();  // 2 points × 1 replication
  auto reference_spec = tiny;
  reference_spec.jobs = 1;
  const auto reference = run_rows(std::move(reference_spec));

  const ShardFiles files(tiny, 5, "tiny");
  std::size_t empty_shards = 0;
  for (const auto& path : files.paths) {
    const auto header = hexp::read_shard_header(path);
    ASSERT_TRUE(header.has_value());
    if (header->cells == 0) ++empty_shards;
  }
  EXPECT_GE(empty_shards, 3u);
  EXPECT_EQ(merge_to_string(files.paths), reference);
}

TEST(ShardDifferential, GoldenCorpusShardedMergeMatchesUnshardedAndGolden) {
  auto reference_spec = corpus_spec();
  reference_spec.jobs = 1;
  const auto reference = run_rows(std::move(reference_spec));
  ASSERT_FALSE(reference.empty());

  const ShardFiles files(corpus_spec(), 3, "corpus");
  const auto merged_rows = merge_to_string(files.paths);
  EXPECT_EQ(merged_rows, reference);

  // Aggregating the merged stream reproduces the committed golden bytes —
  // the full chain: shard → merge → aggregate ≡ the single-process harness.
  hexp::AggregateOptions options;
  options.reference_scheme = "optimal";
  hexp::Aggregator aggregator(options);
  std::istringstream in(merged_rows);
  std::string line;
  while (std::getline(in, line)) {
    const auto row = hexp::parse_jsonl_row(line);
    ASSERT_TRUE(row.has_value()) << line;
    aggregator.row(*row);
  }
  std::ostringstream aggregate;
  aggregator.write_jsonl(aggregate);
  const auto golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << kGoldenPath;
  EXPECT_EQ(aggregate.str(), golden)
      << "sharded+merged aggregate diverged from the committed golden";
}

TEST(ShardDifferential, MergedCheckpointResumesWholeRunWithoutRecompute) {
  const ShardFiles files(shard_grid(), 3, "resume");
  const auto merged = merge_to_string(files.paths);
  const auto path = ::testing::TempDir() + "hydra_shard_merged_resume.jsonl";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << merged;
  }

  auto resumed_spec = shard_grid();
  resumed_spec.resume_path = path;
  std::ostringstream os;
  hexp::JsonlSink sink(os);
  const auto summary = hexp::Sweep(std::move(resumed_spec)).run({&sink});
  EXPECT_EQ(summary.resumed_cells, summary.cells);
  EXPECT_EQ(os.str(), merged);

  // The permissive direction: a merged (headerless) checkpoint also seeds a
  // SHARDED re-run, which splices exactly its own subset.
  auto shard_spec = shard_grid();
  shard_spec.shard_index = 1;
  shard_spec.shard_count = 3;
  shard_spec.resume_path = path;
  const auto shard_summary = hexp::Sweep(std::move(shard_spec)).run();
  EXPECT_EQ(shard_summary.resumed_cells, shard_summary.cells);
  std::remove(path.c_str());
}
