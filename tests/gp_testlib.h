// Seeded random-GP generator shared by the differential solver suite
// (test_gp_differential) and the sanitizer fuzz pass.  Every draw is a pure
// function of the Xoshiro256 stream, so a failing seed reproduces exactly.
//
// Feasible instances are feasible BY CONSTRUCTION: a strictly positive
// witness point is drawn first, box bounds are grown around it, and every
// extra posynomial constraint is rescaled so its value at the witness lands
// strictly below 1.  Infeasible variants then contradict the box with an
// explicit lower-bound constraint that no in-box point can satisfy (the
// GpProblem::add_bounds contract rejects lo > hi, so the contradiction must
// be expressed as a plain `c/x <= 1` constraint).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gp/problem.h"
#include "util/rng.h"

namespace hydra::testlib {

struct RandomGp {
  gp::GpProblem problem;
  /// Strictly feasible point used to scale the constraints; only meaningful
  /// when `feasible_by_construction` holds.
  std::vector<double> witness;
  bool feasible_by_construction = true;
};

struct RandomGpOptions {
  std::size_t max_variables = 5;     ///< >= 1
  std::size_t max_constraints = 4;   ///< extra posynomial constraints beyond the box
  std::size_t max_terms = 3;         ///< monomials per posynomial
  double exponent_span = 2.5;        ///< exponents drawn from [-span, span]
};

/// Draws one feasible-by-construction GP: compact box bounds around a random
/// witness, plus random posynomial constraints scaled to hold strictly at it.
/// The box makes the feasible set compact, so the objective is attained.
inline RandomGp make_random_gp(util::Xoshiro256& rng, const RandomGpOptions& opt = {}) {
  RandomGp out;
  gp::GpProblem& p = out.problem;

  const std::size_t n = rng.uniform_int(1, opt.max_variables);
  std::vector<std::size_t> vars;
  vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(p.add_variable("x" + std::to_string(i)));
  }

  out.witness.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.witness[i] = rng.uniform(0.2, 5.0);
    // Strictly interior box: witness / scale < witness < witness * scale.
    const double scale = rng.uniform(1.5, 20.0);
    p.add_bounds(vars[i], out.witness[i] / scale, out.witness[i] * scale);
  }

  // Random posynomial drawer over a random non-empty subset of variables.
  const auto draw_posynomial = [&](std::size_t max_terms) {
    gp::Posynomial poly = p.posynomial();
    const std::size_t terms = rng.uniform_int(1, max_terms);
    for (std::size_t t = 0; t < terms; ++t) {
      gp::Monomial mono = p.monomial(rng.uniform(0.1, 3.0));
      const std::size_t touched = rng.uniform_int(1, n);
      for (std::size_t k = 0; k < touched; ++k) {
        const std::size_t v = rng.uniform_int(0, n - 1);
        mono = mono.with(vars[v], rng.uniform(-opt.exponent_span, opt.exponent_span));
      }
      poly += mono;
    }
    return poly;
  };

  const std::size_t extra = rng.uniform_int(0, opt.max_constraints);
  for (std::size_t c = 0; c < extra; ++c) {
    gp::Posynomial poly = draw_posynomial(opt.max_terms);
    // Rescale so the witness satisfies the constraint strictly: multiplying a
    // posynomial's coefficients by target/value(x*) sets its value at x* to
    // `target` without changing its shape.
    const double at_witness = poly.eval(out.witness);
    const double target = rng.uniform(0.3, 0.9);
    gp::Posynomial rescaled = p.posynomial();
    for (const auto& mono : poly.terms()) {
      rescaled += mono.scaled(target / at_witness);
    }
    p.add_constraint_leq1(rescaled, "rand" + std::to_string(c));
  }

  p.set_objective(draw_posynomial(opt.max_terms + 1));
  return out;
}

/// Draws a GP that is infeasible by construction: a feasible base whose box
/// is then contradicted by `2*hi_0 / x_0 <= 1` (i.e. x_0 >= 2*hi_0 while the
/// box caps x_0 at hi_0).  The margin factor 2 keeps phase I's verdict far
/// from its strict-feasibility tolerance.
inline RandomGp make_infeasible_gp(util::Xoshiro256& rng, const RandomGpOptions& opt = {}) {
  RandomGp out = make_random_gp(rng, opt);
  gp::GpProblem& p = out.problem;
  // Bounds were added first, one box per variable; recover hi_0 from the
  // witness draw instead of the problem to keep this header independent of
  // constraint internals: re-derive by evaluating the box constraint is
  // brittle, so just add a constraint stronger than any in-box value.
  // x_0 <= witness_0 * 20 always (scale < 20), so require x_0 >= 40*witness_0.
  gp::Posynomial contradiction = p.posynomial();
  contradiction += p.monomial(40.0 * out.witness[0]).with(0, -1.0);
  p.add_constraint_leq1(contradiction, "contradiction");
  out.feasible_by_construction = false;
  return out;
}

}  // namespace hydra::testlib
