// Symmetric positive-definite solves for Newton systems.
//
// `solve_spd` attempts a plain Cholesky factorization; if the matrix is not
// numerically positive definite (which happens for barely-curved barrier
// Hessians), it retries with increasing diagonal regularization — the
// standard modified-Newton fallback.  The solver only needs descent
// directions, so a regularized solve is acceptable.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace hydra::linalg {

/// In-place Cholesky factorization result: L with A = L·Lᵀ (lower triangle).
/// Returns std::nullopt if A is not numerically positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves L·Lᵀ x = b given the Cholesky factor L.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Solves A x = b for symmetric A, regularizing the diagonal if needed.
/// Throws std::runtime_error if the system cannot be solved even with heavy
/// regularization (indicates non-finite input).
Vector solve_spd(const Matrix& a, const Vector& b);

}  // namespace hydra::linalg
