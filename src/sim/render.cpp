#include "sim/render.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace hydra::sim {

namespace {

char task_letter(std::size_t index) {
  return index < 26 ? static_cast<char>('a' + index) : '?';
}

}  // namespace

std::string render_gantt(const Trace& trace, const std::vector<SimTask>& tasks,
                         const GanttOptions& options) {
  HYDRA_REQUIRE(!trace.segments.empty(),
                "trace has no segments — simulate with record_segments = true");
  HYDRA_REQUIRE(options.width >= 10, "gantt needs at least 10 columns");
  const util::SimTime from = options.from;
  const util::SimTime to = options.to == 0 ? trace.horizon : options.to;
  HYDRA_REQUIRE(from < to, "empty gantt window");

  const std::size_t num_cores = trace.core_busy.size();
  const double bucket =
      static_cast<double>(to - from) / static_cast<double>(options.width);

  // busy[core][col][task] accumulation, tracked as "longest-running task".
  std::vector<std::vector<std::vector<double>>> busy(
      num_cores, std::vector<std::vector<double>>(options.width,
                                                  std::vector<double>(tasks.size(), 0.0)));
  for (const auto& seg : trace.segments) {
    if (seg.to <= from || seg.from >= to) continue;
    const util::SimTime lo = std::max(seg.from, from);
    const util::SimTime hi = std::min(seg.to, to);
    // Spread the segment across the buckets it overlaps.
    std::size_t first = static_cast<std::size_t>(static_cast<double>(lo - from) / bucket);
    std::size_t last = static_cast<std::size_t>(static_cast<double>(hi - from - 1) / bucket);
    first = std::min(first, options.width - 1);
    last = std::min(last, options.width - 1);
    for (std::size_t col = first; col <= last; ++col) {
      const double col_start = static_cast<double>(from) + bucket * static_cast<double>(col);
      const double col_end = col_start + bucket;
      const double overlap = std::min(static_cast<double>(hi), col_end) -
                             std::max(static_cast<double>(lo), col_start);
      if (overlap > 0.0) busy[seg.core][col][seg.task] += overlap;
    }
  }

  std::ostringstream os;
  os << "time " << util::to_millis(from) << "ms .. " << util::to_millis(to) << "ms, "
     << (bucket / static_cast<double>(util::kTicksPerMilli)) << "ms per column\n";
  for (std::size_t core = 0; core < num_cores; ++core) {
    os << "core " << core << " |";
    for (std::size_t col = 0; col < options.width; ++col) {
      std::size_t best_task = tasks.size();
      double best = 0.0;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (busy[core][col][t] > best) {
          best = busy[core][col][t];
          best_task = t;
        }
      }
      os << (best_task == tasks.size() ? '.' : task_letter(best_task));
    }
    os << "|\n";
  }
  os << "legend:";
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    os << " " << task_letter(t) << "=" << tasks[t].name;
  }
  os << "  .=idle\n";
  return os.str();
}

void write_segments_csv(const Trace& trace, const std::vector<SimTask>& tasks,
                        std::ostream& os) {
  os << "task,name,core,from_us,to_us\n";
  for (const auto& seg : trace.segments) {
    os << seg.task << "," << tasks[seg.task].name << "," << seg.core << "," << seg.from << ","
       << seg.to << "\n";
  }
}

void write_jobs_csv(const Trace& trace, const std::vector<SimTask>& tasks, std::ostream& os) {
  os << "task,name,job,release_us,start_us,completion_us,completed,deadline_missed\n";
  for (std::size_t t = 0; t < trace.jobs.size(); ++t) {
    for (std::size_t j = 0; j < trace.jobs[t].size(); ++j) {
      const auto& rec = trace.jobs[t][j];
      os << t << "," << tasks[t].name << "," << j << "," << rec.release << "," << rec.start
         << "," << (rec.completed ? rec.completion : 0) << "," << (rec.completed ? 1 : 0)
         << "," << (rec.deadline_missed ? 1 : 0) << "\n";
    }
  }
}

}  // namespace hydra::sim
