// Monomials and posynomials — the building blocks of geometric programs.
//
// A *monomial* over positive variables x_1..x_n is  c · Π x_i^{a_i}  with
// coefficient c > 0 and arbitrary real exponents a_i.  A *posynomial* is a sum
// of monomials.  Under the substitution x_i = exp(y_i) a monomial becomes
// exp(aᵀy + log c) and a posynomial's logarithm becomes a log-sum-exp —
// a smooth convex function.  This header provides both representations plus
// the value/gradient/Hessian evaluations the barrier solver needs.
//
// This mirrors what GPkit [20] does symbolically in Python; exponents are
// stored densely because HYDRA's programs have at most a few dozen variables.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/contracts.h"

namespace hydra::gp {

/// Index of an optimization variable within a GpProblem.
using VarId = std::size_t;

class Monomial {
 public:
  /// Creates the constant monomial `coeff` over `num_vars` variables.
  /// Requires coeff > 0 (GP coefficients are strictly positive).
  Monomial(double coeff, std::size_t num_vars);

  /// Adds `exponent` to the power of variable `v`; returns *this for chaining:
  ///   Monomial(2.0, n).with(x, 1.0).with(y, -1.0)   represents 2·x/y.
  Monomial& with(VarId v, double exponent);

  double coeff() const { return coeff_; }
  std::size_t num_vars() const { return exponents_.size(); }
  double exponent(VarId v) const;

  /// Value in the original (positive-orthant) domain.
  double eval(const std::vector<double>& x) const;

  /// log of the monomial at log-point y:  aᵀy + log c.
  double log_eval(const linalg::Vector& y) const;

  /// Product of two monomials (exponents add, coefficients multiply).
  friend Monomial operator*(const Monomial& a, const Monomial& b);

  /// Reciprocal monomial (1/m): exponents negate, coefficient inverts.
  Monomial reciprocal() const;

  /// Monomial scaled by a positive constant.
  Monomial scaled(double factor) const;

 private:
  double coeff_;
  std::vector<double> exponents_;
};

/// Evaluation bundle for the log-space image of a posynomial.
struct LogEval {
  double value = 0.0;      ///< F(y) = log Σ exp(a_kᵀ y + b_k)
  linalg::Vector grad;     ///< ∇F(y)
  linalg::Matrix hess;     ///< ∇²F(y); filled only when requested
  bool has_hess = false;
};

class Posynomial {
 public:
  explicit Posynomial(std::size_t num_vars) : num_vars_(num_vars) {}

  /// Builds a posynomial holding a single monomial.
  explicit Posynomial(Monomial m);

  Posynomial& operator+=(const Monomial& m);
  Posynomial& operator+=(const Posynomial& p);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_terms() const { return terms_.size(); }
  const std::vector<Monomial>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  /// Value in the original domain.
  double eval(const std::vector<double>& x) const;

  /// Log-space value, gradient and (optionally) Hessian at y.
  /// Uses the max-shifted softmax formulation for numerical stability.
  LogEval log_eval(const linalg::Vector& y, bool need_hess) const;

  /// Value-only fast path of log_eval — no gradient, no allocations beyond
  /// the per-term scratch.  Used by the solver's line searches, which only
  /// test feasibility and descent.
  double log_value(const linalg::Vector& y) const;

  /// Multiplies every term by a monomial (posynomial × monomial is closed).
  Posynomial times(const Monomial& m) const;

 private:
  std::size_t num_vars_;
  std::vector<Monomial> terms_;
};

}  // namespace hydra::gp
