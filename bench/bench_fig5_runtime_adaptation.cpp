// Fig. 5 (extension): detection latency UNDER runtime adaptation.
//
// The adaptive allocators commit two feasible period vectors per instance —
// minimum mode (every monitor at Tmax) and the adapted mode their slack-aware
// tightening produced.  This bench compares, across the utilization grid,
// what an attacker actually experiences under four runtime policies:
//
//   * min-mode   — the always-feasible fallback, frozen at Tmax
//                  ("min_mode_mean_detection_ms"),
//   * adaptive   — the mode-switching controller live: monitors start in
//                  minimum mode and tighten at job boundaries when the
//                  sliding-window idle slack allows (sim/mode_switch.h),
//   * static     — the design-time bound: the committed (adapted) periods
//                  frozen ("static_mean_detection_ms"),
//   * global     — the §V migration bound: same periods, security jobs run in
//                  any core's idle slack ("global_mean_detection_ms").
//
// Everything rides one exp::Sweep with exp::adaptive_detection_metrics
// attached, so every cell reports detection means with 95% CIs plus the
// controller's behaviour — committed switch counts, the adapted-mode
// residency fraction, and the decisions the dwell/budget machinery denied —
// and the whole run is byte-identical for any --jobs.
//
// `--policies` runs several registered controller policies
// (sim::ControllerRegistry; see docs/controller-catalog.md) side by side:
// each policy contributes its own adaptive metric family (names suffixed
// "/<policy>" when more than one is selected) over the SAME instances and
// attacks, so the table compares e.g. hysteresis vs boost vs never-switch
// row for row.
//
// Expected shape: min-mode >= adaptive >= static >= global on mean latency;
// adapted residency falls (and switches rise) as utilization grows and slack
// evaporates.
//
// Usage: bench_fig5_runtime_adaptation [--tasksets 12] [--seed 23] [--cores 2]
//            [--schemes contego] [--utilizations 0.6,1.0,1.4]
//            [--policies hysteresis,boost,never-switch] [--levels 2]
//            [--trials 120] [--horizon-s 200] [--det-seed 1]
//            [--window-ms 0] [--tighten 0.25] [--relax 0.05]
//            [--dwell-ms 0] [--switch-budget 0] [--boost-window-ms 0]
//            [--jobs 1] [--shard 0/1] [--out rows.jsonl] [--resume rows.jsonl]
//            [--agg-out cells.jsonl] [--csv]
//
// `--shard i/N` fans the grid out across N processes (deterministic cell-key
// partition; see exp/merge.h): merge the shard outputs with hydra_merge and
// the result is byte-identical to the unsharded run.
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <memory>
#include <vector>

#include "exp/aggregate.h"
#include "exp/metrics.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

namespace {

/// Metric mean + 95% CI as "x [lo, hi]", or "-" when the cell has no samples.
std::string metric_ci(const hexp::CellStats& cell, const std::string& name, int digits) {
  const auto it = cell.metrics.find(name);
  if (it == cell.metrics.end() || it->second.count == 0) return "-";
  return io::fmt(it->second.mean, digits) + " [" + io::fmt(it->second.ci95_lo, digits) +
         ", " + io::fmt(it->second.ci95_hi, digits) + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 23));
  const auto cores = static_cast<std::size_t>(cli.get_int("cores", 2));
  const auto scheme_names = cli.get_string_list("schemes", {"contego"});
  const bool csv = cli.get_bool("csv", false);

  hexp::AdaptiveMetricsConfig metrics_config;
  metrics_config.detection.horizon = static_cast<std::uint64_t>(
      cli.get_int("horizon-s", 200)) * 1000u * hydra::util::kTicksPerMilli;
  metrics_config.detection.trials = static_cast<std::size_t>(cli.get_int("trials", 120));
  metrics_config.detection.seed = static_cast<std::uint64_t>(cli.get_int("det-seed", 1));
  metrics_config.controller.slack_window =
      static_cast<std::uint64_t>(cli.get_int("window-ms", 0)) * hydra::util::kTicksPerMilli;
  metrics_config.controller.tighten_threshold = cli.get_double("tighten", 0.25);
  metrics_config.controller.relax_threshold = cli.get_double("relax", 0.05);
  metrics_config.controller.min_dwell =
      static_cast<std::uint64_t>(cli.get_int("dwell-ms", 0)) * hydra::util::kTicksPerMilli;
  if (cli.get_int("switch-budget", 0) > 0) {
    metrics_config.controller.switch_budget =
        static_cast<std::size_t>(cli.get_int("switch-budget", 0));
  }
  metrics_config.controller.num_levels =
      static_cast<std::size_t>(cli.get_int("levels", 2));
  metrics_config.controller.boost_window =
      static_cast<std::uint64_t>(cli.get_int("boost-window-ms", 0)) *
      hydra::util::kTicksPerMilli;
  metrics_config.include_global = true;

  const auto policy_names = cli.get_string_list("policies", {"hysteresis"});
  // One policy keeps the historical unsuffixed metric names (and stamps the
  // policy into the sweep fingerprint); several run side by side as
  // "/<policy>"-suffixed families over the same instances and attacks, with
  // the policy-free baselines attached to the first family only.
  const bool multi_policy = policy_names.size() > 1;
  const auto family_suffix = [&](const std::string& policy) {
    return multi_policy ? "/" + policy : std::string();
  };

  gen::SyntheticConfig config;
  config.num_cores = cores;

  // Default axis: low / medium / high total utilization (× M) — enough to see
  // the residency collapse without the full 39-point Fig.-2 grid.
  const double m = static_cast<double>(cores);
  const auto utilizations =
      cli.get_double_list("utilizations", {0.3 * m, 0.5 * m, 0.7 * m});

  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.replications = tasksets;
  spec.base_seed = seed;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  const auto shard = hexp::parse_shard_spec(cli.get_string("shard", "0/1"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  if (shard.count > 1 && cli.has("agg-out")) {
    std::cerr << "--agg-out is not available on a sharded run: merge the shard "
                 "outputs with hydra_merge, then rerun with --resume "
                 "merged.jsonl --agg-out\n";
    return 2;
  }
  const std::string out_path = cli.get_string("out", "");
  if (shard.count > 1 && out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    std::cerr << "--shard needs a JSONL --out (the shard header and "
                 "hydra_merge have no CSV form)\n";
    return 2;
  }
  for (std::size_t i = 0; i < policy_names.size(); ++i) {
    hexp::AdaptiveMetricsConfig family = metrics_config;
    family.controller.policy = policy_names[i];
    family.name_suffix = family_suffix(policy_names[i]);
    family.include_static = i == 0;
    family.include_min_mode = i == 0;
    family.include_global = i == 0;
    auto family_metrics = hexp::adaptive_detection_metrics(family);
    spec.metrics.insert(spec.metrics.end(),
                        std::make_move_iterator(family_metrics.begin()),
                        std::make_move_iterator(family_metrics.end()));
  }
  if (!multi_policy) spec.controller_policy = policy_names.front();
  spec.add_utilization_grid(config, utilizations);
  const hexp::Sweep sweep(std::move(spec));

  hexp::Aggregator aggregator;
  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    const std::string header =
        shard.count > 1 ? hexp::format_shard_header(sweep.shard_header()) : "";
    file_sink = hexp::make_file_sink(cli.get_string("out", ""), header);
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout,
                   "Fig. 5: detection latency under runtime adaptation (M = " +
                       std::to_string(cores) + ")");
  std::cout << tasksets << " tasksets per utilization point; "
            << metrics_config.detection.trials << " attacks per policy; horizon "
            << cli.get_int("horizon-s", 200) << " s.\n";
  if (shard.count > 1) {
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << sweep.shard_header().cells
              << " of the grid's cells run here; merge the shard outputs with "
                 "hydra_merge (tables below cover this shard only).\n";
  }

  const auto summary = sweep.run(sinks);
  const auto cells = aggregator.cells();

  io::Table table({"total utilization", "scheme", "policy", "acceptance",
                   "min-mode mean (ms)", "adaptive mean (ms) [CI]",
                   "adaptive p95 (ms)", "static mean (ms)", "global mean (ms)",
                   "adapted residency", "switches", "denied dwell/budget"});
  for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
    const auto& point = sweep.spec().points[p];
    for (const auto& name : scheme_names) {
      const auto* cell = hexp::Aggregator::find(cells, p, name);
      if (cell == nullptr || cell->total == 0) continue;
      const auto mean_of = [&](const std::string& metric) -> std::string {
        const auto it = cell->metrics.find(metric);
        if (it == cell->metrics.end() || it->second.count == 0) return "-";
        return io::fmt(it->second.mean, 1);
      };
      for (const auto& policy : policy_names) {
        const std::string suffix = family_suffix(policy);
        table.add_row({io::fmt(point.total_utilization, 3), name, policy,
                       io::fmt(cell->acceptance_ratio, 3),
                       mean_of("min_mode_mean_detection_ms"),
                       metric_ci(*cell, "adaptive_mean_detection_ms" + suffix, 1),
                       mean_of("adaptive_p95_detection_ms" + suffix),
                       mean_of("static_mean_detection_ms"),
                       mean_of("global_mean_detection_ms"),
                       metric_ci(*cell, "adapted_residency" + suffix, 3),
                       mean_of("adaptive_switches" + suffix),
                       mean_of("adaptive_denied_dwell" + suffix) + " / " +
                           mean_of("adaptive_denied_budget" + suffix)});
      }
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (cli.has("agg-out")) {
    std::ofstream agg(cli.get_string("agg-out", ""));
    aggregator.write_jsonl(agg);
  }
  if (summary.resumed_cells > 0) {
    std::cout << "\nresumed " << summary.resumed_cells << " of " << summary.cells
              << " cells from " << sweep.spec().resume_path << "\n";
  }
  std::cout << "\nShape target: min-mode >= adaptive >= static >= global on mean "
               "detection latency; adapted residency shrinks as utilization grows "
               "and the controller finds less slack to spend.\n";
  return 0;
}
