// Tests for signomial SCP (posynomial maximization via monomial condensation):
// condensation bound properties and agreement with dense grid search.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "gp/scp.h"
#include "util/rng.h"

namespace gp = hydra::gp;

TEST(Condense, BoundIsTightAtExpansionPoint) {
  gp::Posynomial f(2);
  f += gp::Monomial(2.0, 2).with(0, 1.0);
  f += gp::Monomial(3.0, 2).with(1, -1.0);
  const std::vector<double> x_bar{1.5, 0.8};
  const gp::Monomial fhat = gp::condense(f, x_bar);
  EXPECT_NEAR(fhat.eval(x_bar), f.eval(x_bar), 1e-9);
}

TEST(Condense, IsGlobalLowerBound) {
  // AM-GM: f̂(x) <= f(x) everywhere on the positive orthant.
  hydra::util::Xoshiro256 rng(5150);
  gp::Posynomial f(2);
  f += gp::Monomial(1.0, 2).with(0, 2.0);
  f += gp::Monomial(4.0, 2).with(0, -1.0).with(1, 1.0);
  f += gp::Monomial(0.5, 2).with(1, -2.0);
  const std::vector<double> x_bar{2.0, 1.0};
  const gp::Monomial fhat = gp::condense(f, x_bar);
  for (int rep = 0; rep < 200; ++rep) {
    const std::vector<double> x{rng.uniform(0.05, 20.0), rng.uniform(0.05, 20.0)};
    EXPECT_LE(fhat.eval(x), f.eval(x) * (1.0 + 1e-10));
  }
}

TEST(Condense, SingleTermIsExact) {
  gp::Posynomial f(1);
  f += gp::Monomial(7.0, 1).with(0, -2.0);
  const gp::Monomial fhat = gp::condense(f, {3.0});
  // A one-term posynomial condenses to itself.
  EXPECT_NEAR(fhat.coeff(), 7.0, 1e-9);
  EXPECT_NEAR(fhat.exponent(0), -2.0, 1e-12);
}

TEST(Scp, MaximizesInverseSumAgainstBoxOnly) {
  // max 1/x + 1/y with x, y >= 2: optimum at x = y = 2, value 1.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 2.0, 50.0);
  cons.add_bounds(y, 2.0, 50.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  const auto r = gp::maximize_posynomial_scp(cons, obj, {{10.0, 10.0}});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 1.0, 1e-4);
  EXPECT_NEAR(r.x[0], 2.0, 1e-3);
  EXPECT_NEAR(r.x[1], 2.0, 1e-3);
}

TEST(Scp, CoupledConstraintMatchesGridSearch) {
  // max 3/x + 1/y  s.t.  1/x + 1/y <= 0.8,  x,y ∈ [1.5, 30].
  // Weight favors x: the optimizer should spend the budget on 1/x.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 1.5, 30.0);
  cons.add_bounds(y, 1.5, 30.0);
  gp::Posynomial budget = cons.posynomial();
  budget += cons.monomial(1.25).with(x, -1.0);  // (1/0.8)/x
  budget += cons.monomial(1.25).with(y, -1.0);
  cons.add_constraint_leq1(budget);

  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(3.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  const auto r = gp::maximize_posynomial_scp(cons, obj, {{10.0, 10.0}, {2.0, 20.0}});
  ASSERT_TRUE(r.feasible);

  // Dense grid search reference.
  double best = 0.0;
  for (int i = 0; i <= 400; ++i) {
    for (int j = 0; j <= 400; ++j) {
      const double xv = 1.5 + (30.0 - 1.5) * i / 400.0;
      const double yv = 1.5 + (30.0 - 1.5) * j / 400.0;
      if (1.0 / xv + 1.0 / yv > 0.8) continue;
      best = std::max(best, 3.0 / xv + 1.0 / yv);
    }
  }
  EXPECT_GE(r.objective, best - 2e-3);
}

TEST(Scp, InfeasibleConstraintsGiveInfeasible) {
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_constraint_leq1(gp::Posynomial(cons.monomial(5.0).with(x, -1.0)));  // x >= 5
  cons.add_constraint_leq1(gp::Posynomial(cons.monomial(0.5).with(x, 1.0)));   // x <= 2
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  const auto r = gp::maximize_posynomial_scp(cons, obj, {{3.0}});
  EXPECT_FALSE(r.feasible);
}

TEST(Scp, MultiStartPicksBetterBasin) {
  // Even with one poor start, adding a good one must not hurt.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 1.0, 100.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  const auto r1 = gp::maximize_posynomial_scp(cons, obj, {{90.0}});
  const auto r2 = gp::maximize_posynomial_scp(cons, obj, {{90.0}, {1.2}});
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r2.feasible);
  EXPECT_GE(r2.objective, r1.objective - 1e-9);
  EXPECT_NEAR(r2.objective, 1.0, 1e-4);  // x* = 1
}

TEST(Scp, ReturnsBestSeenIterateWhenRoundsAreNonMonotone) {
  // Condensation is monotone in exact arithmetic but not under loose inner
  // tolerances.  With a crippled inner solver (3 Newton steps per stage,
  // duality gap 0.1) this problem's rounds peak at round 4 and then DECAY;
  // the fixed refine_from must return the best-seen iterate, not the last.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  const auto y = cons.add_variable("y");
  cons.add_bounds(x, 1.5, 30.0);
  cons.add_bounds(y, 1.5, 30.0);
  gp::Posynomial budget = cons.posynomial();
  budget += cons.monomial(1.25).with(x, -1.0);
  budget += cons.monomial(1.25).with(y, -1.0);
  cons.add_constraint_leq1(budget);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(3.0).with(x, -1.0);
  obj += cons.monomial(1.0).with(y, -1.0);

  gp::ScpOptions options;
  options.gp.barrier.duality_gap_tol = 1e-1;
  options.gp.barrier.max_newton_per_stage = 3;
  options.max_rounds = 12;
  std::vector<double> rounds;
  options.on_round = [&rounds](int, const std::vector<double>&, double value) {
    rounds.push_back(value);
  };

  const auto r = gp::maximize_posynomial_scp(cons, obj, {{10.0, 10.0}}, options);
  ASSERT_TRUE(r.feasible);
  ASSERT_GE(rounds.size(), 2u);

  double best_round = rounds.front();
  bool non_monotone = false;
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    if (rounds[i] < rounds[i - 1]) non_monotone = true;
    best_round = std::max(best_round, rounds[i]);
  }
  // The regression regime really occurred (otherwise this test is vacuous)...
  ASSERT_TRUE(non_monotone);
  ASSERT_LT(rounds.back(), best_round);
  // ...and the result is the best round, not the (worse) final one.
  EXPECT_DOUBLE_EQ(r.objective, best_round);
  EXPECT_NEAR(obj.eval(r.x), best_round, 1e-12);
}

TEST(ScpWarm, TiesWithinTolGoToTheColdStart) {
  // A warm point in the same basin converges to the same optimum; the tie
  // rule must keep the cold result bit-for-bit, so enabling warm starts
  // cannot perturb output through last-ulp objective noise.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 2.0, 50.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);

  const auto cold = gp::maximize_posynomial_scp(cons, obj, {{10.0}});
  const auto warm = gp::maximize_posynomial_scp_warm(cons, obj, {{10.0}}, {{7.0}, {23.0}});
  ASSERT_TRUE(cold.feasible);
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(cold.x, warm.x);  // exact, not approximate
  EXPECT_EQ(cold.objective, warm.objective);
  EXPECT_EQ(cold.rounds, warm.rounds);
}

TEST(ScpWarm, InvalidWarmPointsAreSkipped) {
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 2.0, 50.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);

  const auto cold = gp::maximize_posynomial_scp(cons, obj, {{10.0}});
  const auto warm = gp::maximize_posynomial_scp_warm(
      cons, obj, {{10.0}},
      {{},                                            // size mismatch
       {5.0, 5.0},                                    // size mismatch
       {-3.0},                                        // not positive
       {0.0},                                         // not positive
       {std::numeric_limits<double>::quiet_NaN()}});  // not finite
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(cold.x, warm.x);
  EXPECT_EQ(cold.objective, warm.objective);
}

TEST(ScpWarm, MateriallyBetterWarmBasinIsAdopted) {
  // max x + 0.5/x on [0.1, 10]: two KKT points, one per endpoint (the
  // objective is quasiconvex in x with an interior minimum).  A cold start
  // at 0.15 condenses into the poor x = 0.1 basin (value 5.1); a warm point
  // at 9 finds the x = 10 basin (value 10.05) and must win.
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 0.1, 10.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, 1.0);
  obj += cons.monomial(0.5).with(x, -1.0);

  const auto cold = gp::maximize_posynomial_scp(cons, obj, {{0.15}});
  ASSERT_TRUE(cold.feasible);
  EXPECT_NEAR(cold.objective, 5.1, 1e-2);

  const auto warm = gp::maximize_posynomial_scp_warm(cons, obj, {{0.15}}, {{9.0}});
  ASSERT_TRUE(warm.feasible);
  EXPECT_NEAR(warm.objective, 10.05, 1e-2);
  EXPECT_NEAR(warm.x[0], 10.0, 1e-2);
}

TEST(Scp, RequiresAtLeastOneStart) {
  gp::GpProblem cons;
  const auto x = cons.add_variable("x");
  cons.add_bounds(x, 1.0, 2.0);
  gp::Posynomial obj = cons.posynomial();
  obj += cons.monomial(1.0).with(x, -1.0);
  EXPECT_THROW(gp::maximize_posynomial_scp(cons, obj, {}), std::invalid_argument);
}
