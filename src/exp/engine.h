// Batch exploration engine: evaluates a set of registry schemes on every
// instance of a BatchSpec, fanning the work out across a worker-thread pool
// and streaming one BatchRow per (instance, scheme) to the attached sinks.
//
// Guarantees:
//   * Determinism — every instance is materialized from its own
//     (base_seed, index)-derived seed inside whichever worker picks it up,
//     and every scheme is a pure function of the instance, so results do not
//     depend on the thread count or the completion order.
//   * Stable output order — rows reach the sinks ordered by instance index,
//     then scheme position, via a reorder buffer.  `--jobs 8` output is
//     byte-identical to `--jobs 1`.
//   * Isolation — a scheme that throws (e.g. the exhaustive optimal tripping
//     its enumeration cap) yields an "error" row for that pair; the sweep
//     continues.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "exp/batch.h"
#include "exp/sinks.h"

namespace hydra::exp {

/// A per-row metric hook: computed for every feasible, validated (instance,
/// scheme) evaluation and appended to the row's `metrics` in declaration
/// order.  `compute` MUST be a deterministic pure function of its arguments
/// (seed any internal simulation from the instance/row data, never from a
/// clock) — it runs on worker threads and its results are covered by the
/// byte-identical-across-jobs guarantee.  A throwing metric turns the row
/// into an "error" row; it does not abort the sweep.
struct RowMetric {
  std::string name;
  std::function<double(const core::Instance&, const core::DesignPoint&)> compute;
  /// Canonical description of every parameter baked into `compute`'s closure
  /// (trials, horizons, seeds, thresholds...).  Two metrics with the same
  /// name but different parameters produce different row bytes, and this
  /// string is the only way the sweep's spec fingerprint — and therefore the
  /// shard-merge and resume safety checks — can see that.  Library metric
  /// factories (exp/metrics.h) fill it; leave "" only for parameterless
  /// hooks.
  std::string identity;
};

/// Evaluates every scheme on one batch item: the pure function both the
/// ExplorationEngine and the exp::Sweep work queue fan out to workers.
/// `preloaded` (optional) bypasses materialization for instance-backed items.
/// Never throws — any failure becomes one "error" row per scheme, which is
/// what keeps an escaped exception from terminating a worker thread.
std::vector<BatchRow> evaluate_batch_item(
    const BatchSpec& spec, const BatchItem& item, const core::Instance* preloaded,
    const std::vector<std::unique_ptr<core::Allocator>>& schemes,
    std::size_t optimal_budget, const std::vector<RowMetric>& metrics = {});

struct EngineOptions {
  /// Registry names evaluated per instance, in this order.
  std::vector<std::string> schemes = {"hydra", "single-core"};
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t jobs = 1;
  /// Schemes whose Allocator::search_space(instance) exceeds this budget are
  /// skipped on that instance (status "skipped") — for the exhaustive optimal
  /// that is the M^NS enumeration.  0 skips exhaustive schemes everywhere;
  /// polynomial schemes (search_space 1) always run.
  std::size_t optimal_budget = 4096;
};

struct RunSummary {
  std::size_t instances = 0;   ///< batch size
  std::size_t evaluated = 0;   ///< rows with status "ok"
  std::size_t feasible = 0;    ///< ok rows with a feasible, validated result
  std::size_t skipped = 0;     ///< rows with status "skipped"
  std::size_t errors = 0;      ///< rows with status "error" or "no-instance"
  double wall_ms = 0.0;        ///< end-to-end run time
  std::vector<BatchRow> rows;  ///< every row, in emission order
};

class ExplorationEngine {
 public:
  /// Validates the scheme names against the global registry up front, so a
  /// typo fails before any work is scheduled.  Throws std::invalid_argument.
  explicit ExplorationEngine(EngineOptions options = {});

  /// Runs the batch, streaming rows to every sink (begin/row.../end).  Sinks
  /// are invoked from the coordinating thread only and need no locking.
  RunSummary run(const BatchSpec& spec, const std::vector<ResultSink*>& sinks = {}) const;

  /// Single-instance convenience: wraps `instance` as a one-item batch.
  RunSummary run_instance(const core::Instance& instance,
                          const std::vector<ResultSink*>& sinks = {}) const;

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
};

}  // namespace hydra::exp
