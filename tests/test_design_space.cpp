// Tests for the design-space exploration driver.
#include <gtest/gtest.h>

#include "core/design_space.h"
#include "gen/uav.h"
#include "rt/task.h"

namespace core = hydra::core;
namespace rt = hydra::rt;

TEST(DesignSpace, EvaluatesAllSchemesOnTheCaseStudy) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto report = core::explore_design_space(inst);
  // HYDRA, HYDRA(exact-RTA), SingleCore, Optimal (2^6 = 64 <= budget).
  ASSERT_EQ(report.points.size(), 4u);
  EXPECT_EQ(report.points[0].scheme, "HYDRA");
  EXPECT_EQ(report.points[1].scheme, "HYDRA(exact-RTA)");
  EXPECT_EQ(report.points[2].scheme, "SingleCore");
  EXPECT_EQ(report.points[3].scheme, "Optimal");
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.allocation.feasible) << p.scheme;
    EXPECT_TRUE(p.validated) << p.scheme << ": " << p.validation_problem;
    EXPECT_GT(p.cumulative_tightness, 0.0);
    EXPECT_LE(p.normalized_tightness, 1.0 + 1e-9);
  }
  EXPECT_TRUE(report.any_feasible());
}

TEST(DesignSpace, BestPointDominates) {
  const auto inst = hydra::gen::uav_case_study(2);
  const auto report = core::explore_design_space(inst);
  const auto best = report.best_index();
  ASSERT_TRUE(best.has_value());
  for (const auto& p : report.points) {
    if (p.allocation.feasible && p.validated) {
      EXPECT_GE(report.points[*best].cumulative_tightness,
                p.cumulative_tightness - 1e-9);
    }
  }
  // Optimal (or exact-RTA HYDRA) must be at least as tight as plain HYDRA.
  EXPECT_GE(report.points[*best].cumulative_tightness,
            report.points[0].cumulative_tightness - 1e-9);
}

TEST(DesignSpace, SingleCoreSkippedOnUniprocessor) {
  core::Instance inst;
  inst.num_cores = 1;
  inst.rt_tasks = {rt::make_rt_task("r", 1.0, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 10.0, 500.0, 5000.0)};
  const auto report = core::explore_design_space(inst);
  for (const auto& p : report.points) EXPECT_NE(p.scheme, "SingleCore");
}

TEST(DesignSpace, OptimalSkippedWhenOverBudget) {
  auto inst = hydra::gen::uav_case_study(4);  // 4^6 = 4096 assignments
  core::ExplorationOptions opts;
  opts.optimal_budget = 100;  // too small
  const auto report = core::explore_design_space(inst, opts);
  for (const auto& p : report.points) EXPECT_NE(p.scheme, "Optimal");
  opts.optimal_budget = 0;  // disabled
  const auto none = core::explore_design_space(inst, opts);
  for (const auto& p : none.points) EXPECT_NE(p.scheme, "Optimal");
}

TEST(DesignSpace, InfeasibleInstanceReportsNoFeasiblePoint) {
  core::Instance inst;
  inst.num_cores = 2;
  inst.rt_tasks = {rt::make_rt_task("r0", 9.5, 10.0), rt::make_rt_task("r1", 9.5, 10.0)};
  inst.security_tasks = {rt::make_security_task("s", 900.0, 1000.0, 2000.0)};
  const auto report = core::explore_design_space(inst);
  EXPECT_FALSE(report.any_feasible());
  EXPECT_FALSE(report.best_index().has_value());
}

TEST(DesignSpace, RespectsCallerHydraOptions) {
  const auto inst = hydra::gen::uav_case_study(2);
  core::ExplorationOptions opts;
  opts.hydra.solver = core::PeriodSolver::kExactRta;
  const auto report = core::explore_design_space(inst, opts);
  // The duplicate exact-RTA run is suppressed.
  int hydra_points = 0;
  for (const auto& p : report.points) {
    if (p.scheme.rfind("HYDRA", 0) == 0) ++hydra_points;
  }
  EXPECT_EQ(hydra_points, 1);
  EXPECT_TRUE(report.points[0].validated) << report.points[0].validation_problem;
}
