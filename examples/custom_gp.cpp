// Using the geometric-programming substrate directly.
//
// The GP solver that powers HYDRA's period adaptation is a general-purpose
// library.  This example formulates the paper's appendix program by hand for
// a single security task — min Ts subject to Tdes ≤ Ts ≤ Tmax and
// (Cs + A)·Ts⁻¹ + B ≤ 1 — solves it, and checks it against the closed form,
// then solves a small multi-variable design problem to show the API scales
// past one variable.
//
// Usage: ./build/examples/custom_gp
#include <iostream>

#include "core/period_adaptation.h"
#include "gp/problem.h"
#include "gp/solver.h"
#include "io/table.h"
#include "rt/interference.h"

namespace gp = hydra::gp;
namespace io = hydra::io;

int main() {
  // --- The appendix program, by hand. ---
  const double wcet = 80.0, t_des = 1000.0, t_max = 10000.0;
  const double interference_const = 350.0, interference_util = 0.55;

  gp::GpProblem problem;
  const gp::VarId ts = problem.add_variable("Ts");
  problem.set_objective(gp::Posynomial(problem.monomial(1.0).with(ts, 1.0)));  // min Ts
  problem.add_bounds(ts, t_des, t_max);                                        // Eq. (4)
  gp::Posynomial sched = problem.posynomial();                                 // Eq. (6)/Ts
  sched += problem.monomial(wcet + interference_const).with(ts, -1.0);
  sched += problem.monomial(interference_util);
  problem.add_constraint_leq1(std::move(sched), "Cs + I(Ts) <= Ts");

  const auto solution = gp::GpSolver().solve(problem, std::vector<double>{t_max});
  if (!solution.ok()) {
    std::cerr << "solve failed: " << solution.message << "\n";
    return 1;
  }

  // Closed-form cross-check: (Cs + A)/(1 − B).
  const auto task = hydra::rt::make_security_task("monitor", wcet, t_des, t_max);
  hydra::rt::InterferenceBound bound;
  bound.const_part = interference_const;
  bound.util_part = interference_util;
  const auto closed = hydra::core::adapt_period(task, bound);

  io::print_banner(std::cout, "Appendix GP vs closed form");
  io::Table table({"route", "Ts (ms)", "tightness"});
  table.add_row({"interior-point GP", io::fmt(solution.x[0], 3),
                 io::fmt(t_des / solution.x[0], 4)});
  table.add_row({"closed form", io::fmt(closed.period, 3), io::fmt(closed.tightness, 4)});
  table.print(std::cout);

  // --- A coupled two-monitor program (the joint formulation's shape). ---
  // Two monitors share a core: minimize a weighted sum of periods subject to
  // each one's schedulability, with the high-priority period T0 appearing in
  // the low-priority constraint (the C0/T0 coupling term).
  gp::GpProblem joint;
  const gp::VarId t0 = joint.add_variable("T0");
  const gp::VarId t1 = joint.add_variable("T1");
  gp::Posynomial objective = joint.posynomial();
  objective += joint.monomial(2.0 / 1000.0).with(t0, 1.0);  // weight 2, Tdes 1000
  objective += joint.monomial(1.0 / 1500.0).with(t1, 1.0);  // weight 1, Tdes 1500
  joint.set_objective(objective);
  joint.add_bounds(t0, 1000.0, 10000.0);
  joint.add_bounds(t1, 1500.0, 15000.0);
  {
    gp::Posynomial c0 = joint.posynomial();  // 400/T0 + 0.3 <= 1
    c0 += joint.monomial(400.0).with(t0, -1.0);
    c0 += joint.monomial(0.3);
    joint.add_constraint_leq1(std::move(c0), "hp monitor");
    gp::Posynomial c1 = joint.posynomial();  // (600+400)/T1 + 0.3 + 400/T0 <= 1
    c1 += joint.monomial(1000.0).with(t1, -1.0);
    c1 += joint.monomial(0.3);
    c1 += joint.monomial(400.0).with(t0, -1.0);
    joint.add_constraint_leq1(std::move(c1), "lo monitor (coupled)");
  }
  const auto joint_solution =
      gp::GpSolver().solve(joint, std::vector<double>{10000.0, 15000.0});
  if (!joint_solution.ok()) {
    std::cerr << "joint solve failed: " << joint_solution.message << "\n";
    return 1;
  }

  io::print_banner(std::cout, "Coupled two-monitor GP");
  io::Table joint_table({"variable", "value (ms)"});
  joint_table.add_row({"T0 (weight 2)", io::fmt(joint_solution.x[0], 2)});
  joint_table.add_row({"T1 (weight 1)", io::fmt(joint_solution.x[1], 2)});
  joint_table.print(std::cout);
  std::cout << "objective (weighted normalized periods): "
            << io::fmt(joint_solution.objective, 4) << "\n"
            << "note how the optimizer holds T0 near its floor — shrinking T0 "
               "further would inflate the coupled 400/T0 term in T1's "
               "constraint.\n";
  return 0;
}
