// Service mode of hydra_swarm: a long-running allocation daemon.  Taskset
// in, allocation + mode table out, over a line-delimited JSON protocol
// (swarm/proto.h documents the request shapes; swarm/socket.h carries it
// over a Unix-domain socket).
//
// Three properties the tests lock down:
//
//   * batched evaluation — every drain of the connection set becomes ONE
//     pass through the existing exp engine per scheme group (a multi-point
//     preset-instance exp::Sweep), so concurrent clients share the worker
//     pool instead of serializing;
//   * fingerprint-keyed caching — the cache key is exp::sweep_fingerprint of
//     the request's canonical single-point spec, i.e. exactly the identity
//     the shard/merge machinery already trusts: schemes, the full task
//     parameters, and every engine knob that can change the result.  Two
//     requests with byte-different tasksets can never collide; two
//     semantically identical requests always do;
//   * hit == cold bytes — a cache hit returns the stored response verbatim,
//     so hot and cold responses are byte-identical.  Responses deliberately
//     carry no served-from-cache marker; hit/miss accounting is observable
//     only through the stats op.
//
// The cache is LRU over a byte budget (keys + response bytes), with
// hit/miss/eviction counters surfaced by {"op":"stats"}.
//
// With `cache_journal_path` set, the cache also survives the daemon: every
// insert appends one flat-JSON record {"fingerprint":...,"response":...} to
// an append-only journal, replayed at construction so a restarted daemon
// serves byte-identical hits with ZERO engine invocations.  Torn trailing
// records (a crash mid-append) are skipped like a torn checkpoint line;
// duplicate fingerprints replay last-record-wins; the journal is compacted
// (live entries only, tmp + atomic rename) at startup and whenever its size
// exceeds journal_compact_factor x the live cache bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <list>
#include <map>
#include <string>
#include <vector>

namespace hydra::swarm {

struct ServiceOptions {
  /// Schemes evaluated when a request does not name any.
  std::vector<std::string> default_schemes = {"hydra"};
  /// LRU budget over key + response bytes.  A single response larger than
  /// the budget is served but not cached (counted `uncacheable`).
  std::size_t cache_budget_bytes = 64u * 1024 * 1024;
  std::size_t jobs = 1;            ///< engine worker threads per batch
  std::size_t optimal_budget = 4096;
  /// Non-empty: persist the cache to this append-only journal and replay it
  /// at construction (see the header comment).  The journal only ever holds
  /// entries that fit the byte budget, so replay can never over-fill.
  std::string cache_journal_path;
  /// Compact once the journal exceeds this multiple of the live cache bytes
  /// (dead appends — evicted or superseded entries — are the difference).
  std::size_t journal_compact_factor = 4;
};

struct ServiceStats {
  std::uint64_t requests = 0;           ///< lines received (any op)
  std::uint64_t allocate_requests = 0;
  std::uint64_t hits = 0;               ///< served verbatim from the cache
  std::uint64_t misses = 0;             ///< required an engine evaluation
  std::uint64_t coalesced = 0;          ///< duplicate within one batch drain
  std::uint64_t errors = 0;             ///< malformed / failed requests
  std::uint64_t evictions = 0;          ///< LRU entries dropped for space
  std::uint64_t uncacheable = 0;        ///< responses larger than the budget
  std::uint64_t engine_batches = 0;     ///< exp engine passes run
  std::uint64_t engine_rows = 0;        ///< rows those passes produced
  std::uint64_t journal_replayed = 0;   ///< entries restored at construction
  std::uint64_t journal_compactions = 0;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
};

class AllocationService {
 public:
  /// Validates the default schemes against the registry up front.  Throws
  /// std::invalid_argument.
  explicit AllocationService(ServiceOptions options);

  /// Handles one batch of request lines (one drain of the connection set):
  /// allocate ops across the whole batch are deduplicated, grouped by scheme
  /// list, and evaluated in one exp engine pass per group; every line gets
  /// exactly one response, in order.  Responses have no trailing newline.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  /// Single-request convenience (a one-line batch).
  std::string handle_line(const std::string& line);

  /// True once an {"op":"shutdown"} request was accepted; the transport
  /// loop drains its current batch and exits.
  bool shutdown_requested() const { return shutdown_; }

  const ServiceStats& stats() const { return stats_; }

 private:
  struct CacheEntry {
    std::string response;
    std::list<std::string>::iterator lru_position;
  };

  std::string cache_lookup(const std::string& key);  ///< "" on miss; touches LRU
  void cache_insert(const std::string& key, const std::string& response);
  std::string stats_response() const;

  void journal_replay();
  void journal_append(const std::string& key, const std::string& response);
  void journal_compact();

  ServiceOptions options_;
  ServiceStats stats_;
  bool shutdown_ = false;

  std::map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  ///< most recent at front, by key

  std::ofstream journal_;            ///< open append stream when journaling
  std::size_t journal_bytes_ = 0;    ///< bytes in the journal file
  bool replaying_ = false;           ///< replay inserts must not re-append
};

}  // namespace hydra::swarm
