// Fig. 1 reproduction: empirical CDF of intrusion detection time, HYDRA vs
// SingleCore, on the UAV case study with the Table-I security catalog, for
// M ∈ {2, 4, 8} cores.  Also prints the paper's headline number: the average
// detection-time improvement per core count (paper: 19.81 %, 27.23 %,
// 29.75 % for 2/4/8 cores — shape target: HYDRA faster, improvement grows
// with M).
//
// Any two registered schemes can be compared: the first name in --schemes is
// the candidate, the second the baseline (defaults reproduce the paper).
//
// Usage: bench_fig1_detection [--cores 2,4,8] [--schemes hydra,single-core]
//                             [--trials 500] [--horizon-s 500] [--seed 1]
//                             [--cdf-points 11] [--csv]
#include <iostream>
#include <memory>
#include <vector>

#include "core/allocator.h"
#include "core/registry.h"
#include "core/validation.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "stats/ecdf.h"
#include "stats/ks.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace sim = hydra::sim;
namespace io = hydra::io;

namespace {

struct SchemeResult {
  std::string name;
  std::vector<double> detection_ms;
  double mean_ms = 0.0;
};

SchemeResult run_scheme(const core::Allocator& scheme, const core::Instance& instance,
                        const core::Allocation& allocation, const sim::DetectionConfig& config) {
  const auto report = core::validate_allocation(instance, allocation, scheme.blocking(),
                                                scheme.priority_order(),
                                                scheme.schedule_test());
  if (!report.valid) {
    throw std::runtime_error(scheme.name() + ": allocation failed validation: " +
                             report.problem);
  }
  const auto res = sim::measure_detection_times(instance, allocation, config);
  if (res.deadline_misses != 0) {
    throw std::runtime_error(scheme.name() + ": simulation missed deadlines");
  }
  SchemeResult out;
  out.name = scheme.name();
  out.detection_ms = res.detection_ms;
  out.mean_ms = hydra::stats::summarize(res.detection_ms).mean;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 500));
  const auto horizon_s = static_cast<std::uint64_t>(cli.get_int("horizon-s", 500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto cdf_points = static_cast<std::size_t>(cli.get_int("cdf-points", 26));
  const bool csv = cli.get_bool("csv", false);

  if (scheme_names.size() != 2) {
    std::cerr << "--schemes expects exactly two registered names "
                 "(candidate,baseline)\n";
    return 2;
  }
  const auto candidate = core::AllocatorRegistry::global().make(scheme_names[0]);
  const auto baseline = core::AllocatorRegistry::global().make(scheme_names[1]);

  io::print_banner(std::cout, "Fig. 1: empirical CDF of intrusion detection time (" +
                                  candidate->name() + " vs " + baseline->name() + ")");
  std::cout << "UAV control system + Table-I security tasks; " << horizon_s
            << " s schedules; " << trials << " attack trials per scheme.\n";

  io::Table summary({"cores", "mean " + candidate->name() + " (ms)",
                     "mean " + baseline->name() + " (ms)", "detection improvement"});

  for (const auto m : cores) {
    const auto instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    const auto cand_alloc = candidate->allocate(instance);
    const auto base_alloc = baseline->allocate(instance);
    if (!cand_alloc.feasible || !base_alloc.feasible) {
      std::cout << "M = " << m << ": allocation infeasible ("
                << (cand_alloc.feasible ? base_alloc.failure_reason
                                        : cand_alloc.failure_reason)
                << ")\n";
      continue;
    }

    sim::DetectionConfig config;
    config.horizon = horizon_s * 1000u * hydra::util::kTicksPerMilli;
    config.trials = trials;
    config.seed = seed;
    const auto cand_res = run_scheme(*candidate, instance, cand_alloc, config);
    const auto base_res = run_scheme(*baseline, instance, base_alloc, config);

    // CDF series over the paper's 0–50 s axis.
    const double axis_ms = 50000.0;
    const hydra::stats::EmpiricalCdf cand_cdf(cand_res.detection_ms);
    const hydra::stats::EmpiricalCdf base_cdf(base_res.detection_ms);
    io::Table cdf({"detection time (ms)", "F_" + candidate->name(),
                   "F_" + baseline->name()});
    for (const auto& [x, f] : cand_cdf.series(axis_ms, cdf_points)) {
      cdf.add_row({io::fmt(x, 0), io::fmt(f, 3), io::fmt(base_cdf(x), 3)});
    }
    io::print_banner(std::cout, "M = " + std::to_string(m) + " cores");
    if (csv) {
      cdf.print_csv(std::cout);
    } else {
      cdf.print(std::cout);
    }

    // Average improvement in detection time (faster = positive), with the
    // dominance check and distribution distance the curves only suggest.
    const double improvement =
        (base_res.mean_ms - cand_res.mean_ms) / base_res.mean_ms * 100.0;
    summary.add_row({std::to_string(m), io::fmt(cand_res.mean_ms, 1),
                     io::fmt(base_res.mean_ms, 1), io::fmt_percent(improvement, 2)});

    const auto cand_ci = hydra::stats::mean_ci95(cand_res.detection_ms);
    const auto base_ci = hydra::stats::mean_ci95(base_res.detection_ms);
    std::cout << "mean detection 95% CI: " << candidate->name() << " ["
              << io::fmt(cand_ci.lo, 0) << ", " << io::fmt(cand_ci.hi, 0) << "] ms, "
              << baseline->name() << " [" << io::fmt(base_ci.lo, 0) << ", "
              << io::fmt(base_ci.hi, 0) << "] ms; KS distance "
              << io::fmt(hydra::stats::ks_statistic(cand_cdf, base_cdf), 3) << "; "
              << candidate->name() << " stochastically dominates: "
              << (hydra::stats::dominates(cand_cdf, base_cdf, 0.02) ? "yes" : "no") << "\n";
  }

  io::print_banner(std::cout, "Average detection-time improvement (paper: 19.81% / 27.23% / 29.75%)");
  if (csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout);
  }
  std::cout << "\nShape target: " << candidate->name() << "'s CDF dominates "
            << baseline->name() << "'s and the improvement grows with the core count.\n";
  return 0;
}
