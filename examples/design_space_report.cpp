// The paper's end-to-end workflow in one command: evaluate every integration
// strategy on a workload and print the designer-facing comparison — which
// scheme to pick, what it costs, and where each monitor lands.
//
// Usage: ./build/examples/design_space_report [--cores 2]
//        ./build/examples/design_space_report --file taskset.txt
#include <iostream>

#include "core/design_space.h"
#include "gen/uav.h"
#include "io/table.h"
#include "io/taskset_io.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  core::Instance instance;
  if (cli.has("file")) {
    instance = io::load_instance(cli.get_string("file", ""));
  } else {
    instance = hydra::gen::uav_case_study(static_cast<std::size_t>(cli.get_int("cores", 2)));
  }

  const auto report = core::explore_design_space(instance);

  io::print_banner(std::cout, "design-space comparison");
  io::Table table({"scheme", "feasible", "validated", "cumulative tightness",
                   "normalized", "security cores used"});
  for (const auto& p : report.points) {
    std::size_t cores_used = 0;
    if (p.allocation.feasible) {
      std::vector<bool> used(instance.num_cores, false);
      for (const auto& place : p.allocation.placements) used[place.core] = true;
      for (const bool u : used) cores_used += u ? 1u : 0u;
    }
    table.add_row({p.scheme, p.allocation.feasible ? "yes" : "no",
                   p.allocation.feasible ? (p.validated ? "yes" : p.validation_problem) : "-",
                   p.allocation.feasible ? io::fmt(p.cumulative_tightness, 3) : "-",
                   p.allocation.feasible ? io::fmt(p.normalized_tightness, 3) : "-",
                   p.allocation.feasible ? std::to_string(cores_used) : "-"});
  }
  table.print(std::cout);

  const auto best = report.best_index();
  if (!best.has_value()) {
    std::cout << "\nno scheme produced a feasible integration — relax the "
                 "monitors' Tmax or desired periods.\n";
    return 1;
  }
  const auto& winner = report.points[*best];
  std::cout << "\nrecommended: " << winner.scheme << "\n\n";

  io::Table placement({"monitor", "core", "period (ms)", "tightness"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& p = winner.allocation.placements[s];
    placement.add_row({instance.security_tasks[s].name, std::to_string(p.core),
                       io::fmt(p.period, 1), io::fmt(p.tightness, 3)});
  }
  placement.print(std::cout);
  return 0;
}
