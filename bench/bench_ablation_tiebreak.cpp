// Ablation: tightness-tie resolution in Algorithm 1 (line 11 leaves ties
// unspecified).  At low utilization every core offers η = 1, so the tie rule
// decides the whole placement: least-loaded spreads monitors (parallel
// scanning, shorter queues), lowest-index piles them onto one core (a de
// facto SingleCore).  The effect shows up in detection latency, not in
// tightness — which is exactly why Fig. 1 needs a simulator.
//
// Usage: bench_ablation_tiebreak [--cores 4,8] [--trials 300] [--seed 17] [--csv]
#include <iostream>
#include <set>

#include "core/hydra.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "stats/ecdf.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;
namespace sim = hydra::sim;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {4, 8});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 300));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout, "Ablation: eta-tie break rule (UAV case study)");
  io::Table table({"cores", "tie-break", "cumulative tightness", "cores used",
                   "mean detection (ms)"});

  for (const auto m : cores) {
    const auto instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    for (const auto tie : {core::TieBreak::kLeastLoaded, core::TieBreak::kLowestIndex}) {
      core::HydraOptions opts;
      opts.tie_break = tie;
      const auto allocation = core::HydraAllocator(opts).allocate(instance);
      const std::string name =
          tie == core::TieBreak::kLeastLoaded ? "least-loaded (default)" : "lowest-index";
      if (!allocation.feasible) {
        table.add_row({std::to_string(m), name, "infeasible", "-", "-"});
        continue;
      }
      std::set<std::size_t> used;
      for (const auto& p : allocation.placements) used.insert(p.core);

      sim::DetectionConfig config;
      config.horizon = 300u * 1000u * hydra::util::kTicksPerMilli;
      config.trials = trials;
      config.seed = seed;
      const auto res = sim::measure_detection_times(instance, allocation, config);
      table.add_row({std::to_string(m), name,
                     io::fmt(allocation.cumulative_tightness(instance.security_tasks), 3),
                     std::to_string(used.size()),
                     io::fmt(hydra::stats::summarize(res.detection_ms).mean, 1)});
    }
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading: identical tightness, different detection latency — "
               "spreading monitors pays off even when the analysis metric "
               "cannot see it.\n";
  return 0;
}
