#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/contracts.h"
#include "util/rng.h"

namespace hydra::sim {

namespace {

constexpr util::SimTime kNever = std::numeric_limits<util::SimTime>::max();

/// A released-but-unfinished job on a core.
struct LiveJob {
  std::size_t task = 0;      ///< index into the task vector
  std::size_t job_index = 0; ///< index into trace.jobs[task]
  util::SimTime remaining = 0;
  bool started = false;
};

/// Simulates one core's timeline in place, filling `trace`.
void simulate_core(const std::vector<SimTask>& tasks, const std::vector<std::size_t>& members,
                   const SimOptions& options, Trace& trace, std::size_t core,
                   util::Xoshiro256 rng) {
  // Distinct priorities per core — scheduling would be ambiguous otherwise.
  {
    std::set<int> prios;
    for (const std::size_t ti : members) {
      HYDRA_REQUIRE(prios.insert(tasks[ti].priority).second,
                    "duplicate priority on core " + std::to_string(core));
    }
  }

  std::vector<util::SimTime> next_release(tasks.size(), kNever);
  for (const std::size_t ti : members) {
    if (tasks[ti].release_offset < options.horizon) {
      next_release[ti] = tasks[ti].release_offset;
    }
  }

  std::vector<LiveJob> ready;  // all released, unfinished jobs
  const util::SimTime hard_stop = options.horizon + options.grace;
  util::SimTime now = 0;
  util::SimTime busy = 0;
  // Index (into `ready`) of a started non-preemptive job that must keep the
  // CPU; reset when it completes.
  std::optional<std::size_t> locked;

  const auto earliest_release = [&]() {
    util::SimTime t = kNever;
    for (const std::size_t ti : members) t = std::min(t, next_release[ti]);
    return t;
  };

  const auto draw_exec = [&](const SimTask& task) -> util::SimTime {
    if (task.exec_fraction_min >= 1.0) return task.wcet;
    const double fraction = rng.uniform(task.exec_fraction_min, 1.0);
    const double ticks = std::ceil(fraction * static_cast<double>(task.wcet));
    return std::max<util::SimTime>(1, static_cast<util::SimTime>(ticks));
  };

  const auto admit_releases = [&](util::SimTime up_to) {
    for (const std::size_t ti : members) {
      while (next_release[ti] <= up_to) {
        JobRecord rec;
        rec.release = next_release[ti];
        trace.jobs[ti].push_back(rec);
        ready.push_back(LiveJob{ti, trace.jobs[ti].size() - 1, draw_exec(tasks[ti]), false});
        util::SimTime gap = tasks[ti].period;
        if (tasks[ti].release_jitter > 0) {
          gap += rng.uniform_int(1, tasks[ti].release_jitter);
        }
        const util::SimTime nxt = next_release[ti] + gap;
        next_release[ti] = (nxt < options.horizon) ? nxt : kNever;
      }
    }
  };

  const auto pick = [&]() -> std::optional<std::size_t> {
    if (locked.has_value()) return locked;
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      if (!best.has_value() ||
          tasks[ready[i].task].priority < tasks[ready[*best].task].priority) {
        best = i;
      }
    }
    return best;
  };

  while (now < hard_stop) {
    admit_releases(now);
    const auto chosen = pick();
    if (!chosen.has_value()) {
      const util::SimTime nxt = earliest_release();
      if (nxt == kNever) break;  // nothing left to do on this core
      now = nxt;
      continue;
    }

    LiveJob& job = ready[*chosen];
    const SimTask& task = tasks[job.task];
    JobRecord& rec = trace.jobs[job.task][job.job_index];
    if (!job.started) {
      rec.start = now;
      job.started = true;
      if (!task.preemptive) locked = *chosen;
    }

    const util::SimTime completion_at = now + job.remaining;
    // A preemptive job runs until it completes or the next release arrives;
    // a non-preemptive job always runs to completion.
    util::SimTime run_until = completion_at;
    if (task.preemptive) run_until = std::min(run_until, earliest_release());
    run_until = std::min(run_until, hard_stop);

    if (options.record_segments && run_until > now) {
      // Merge with the previous segment when the same job continues.
      if (!trace.segments.empty() && trace.segments.back().core == core &&
          trace.segments.back().task == job.task && trace.segments.back().to == now) {
        trace.segments.back().to = run_until;
      } else {
        trace.segments.push_back(ExecutionSegment{job.task, core, now, run_until});
      }
    }
    busy += run_until - now;
    job.remaining -= run_until - now;
    now = run_until;

    if (job.remaining == 0) {
      rec.completed = true;
      rec.completion = now;
      rec.deadline_missed = now > rec.release + task.deadline;
      if (locked.has_value() && *locked == *chosen) locked = std::nullopt;
      // Swap-remove; fix the locked index if the tail job was the locked one.
      const std::size_t last = ready.size() - 1;
      if (*chosen != last) {
        ready[*chosen] = ready[last];
        if (locked.has_value() && *locked == last) locked = *chosen;
      }
      ready.pop_back();
    }
  }

  // Anything still unfinished at the hard stop is an incomplete job.
  for (const LiveJob& job : ready) {
    trace.jobs[job.task][job.job_index].deadline_missed = true;
  }
  trace.core_busy[core] = busy;
}

}  // namespace

Trace simulate(const std::vector<SimTask>& tasks, const SimOptions& options) {
  HYDRA_REQUIRE(options.horizon > 0, "simulation horizon must be positive");
  std::size_t num_cores = 0;
  for (const auto& t : tasks) {
    HYDRA_REQUIRE(t.wcet > 0 && t.period > 0 && t.deadline > 0,
                  "task '" + t.name + "' needs positive WCET/period/deadline");
    HYDRA_REQUIRE(t.wcet <= t.deadline, "task '" + t.name + "' has WCET > deadline");
    num_cores = std::max(num_cores, t.core + 1);
  }

  // Auto-grace: give end-of-horizon jobs room to finish so a feasible system
  // shows zero misses (callers can still force a hard cut with grace > 0).
  SimOptions effective = options;
  if (effective.grace == 0) {
    util::SimTime max_deadline = 0;
    for (const auto& t : tasks) max_deadline = std::max(max_deadline, t.deadline);
    effective.grace = max_deadline;
  }

  Trace trace;
  trace.horizon = options.horizon;
  trace.jobs.assign(tasks.size(), {});
  trace.core_busy.assign(num_cores, 0);

  util::Xoshiro256 root_rng(options.seed);
  for (std::size_t core = 0; core < num_cores; ++core) {
    // Each core gets an independent stream so one core's draws never shift
    // another's schedule.
    util::Xoshiro256 core_rng = root_rng.fork();
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].core == core) members.push_back(i);
    }
    if (!members.empty()) {
      simulate_core(tasks, members, effective, trace, core, std::move(core_rng));
    }
  }
  return trace;
}

}  // namespace hydra::sim
