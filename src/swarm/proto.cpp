#include "swarm/proto.h"

#include <cctype>
#include <charconv>

namespace hydra::swarm {

namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool literal(const char* word) {
    skip_ws();
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos + i >= text.size() || text[pos + i] != word[i]) return false;
      ++i;
    }
    pos += i;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out) {
  cur.skip_ws();
  if (cur.pos >= cur.text.size() || cur.text[cur.pos] != '"') return false;
  ++cur.pos;
  out.clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (cur.pos >= cur.text.size()) return false;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cur.text[cur.pos++];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (value > 0x7F) return false;  // taskset text is ASCII; keep it simple
        out.push_back(static_cast<char>(value));
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& cur, double& out) {
  cur.skip_ws();
  std::size_t end = cur.pos;
  while (end < cur.text.size() &&
         (std::isdigit(static_cast<unsigned char>(cur.text[end])) ||
          cur.text[end] == '-' || cur.text[end] == '+' || cur.text[end] == '.' ||
          cur.text[end] == 'e' || cur.text[end] == 'E')) {
    ++end;
  }
  if (end == cur.pos) return false;
  const auto result =
      std::from_chars(cur.text.data() + cur.pos, cur.text.data() + end, out);
  if (result.ec != std::errc() || result.ptr != cur.text.data() + end) return false;
  cur.pos = end;
  return true;
}

bool parse_value(Cursor& cur, JsonField& out) {
  cur.skip_ws();
  if (cur.pos >= cur.text.size()) return false;
  const char c = cur.text[cur.pos];
  if (c == '"') {
    std::string value;
    if (!parse_string(cur, value)) return false;
    out.string_value = std::move(value);
    return true;
  }
  if (c == '[') {
    ++cur.pos;
    std::vector<std::string> values;
    if (!cur.eat(']')) {
      do {
        std::string value;
        if (!parse_string(cur, value)) return false;
        values.push_back(std::move(value));
      } while (cur.eat(','));
      if (!cur.eat(']')) return false;
    }
    out.string_array = std::move(values);
    return true;
  }
  if (cur.literal("true")) {
    out.bool_value = true;
    return true;
  }
  if (cur.literal("false")) {
    out.bool_value = false;
    return true;
  }
  if (cur.literal("null")) return true;  // all optionals stay empty
  double number = 0.0;
  if (!parse_number(cur, number)) return false;
  out.number_value = number;
  return true;
}

}  // namespace

std::optional<std::map<std::string, JsonField>> parse_flat_json(
    const std::string& line) {
  Cursor cur{line};
  if (!cur.eat('{')) return std::nullopt;
  std::map<std::string, JsonField> fields;
  if (!cur.eat('}')) {
    do {
      std::string key;
      JsonField value;
      if (!parse_string(cur, key) || !cur.eat(':') || !parse_value(cur, value)) {
        return std::nullopt;
      }
      fields[std::move(key)] = std::move(value);
    } while (cur.eat(','));
    if (!cur.eat('}')) return std::nullopt;
  }
  cur.skip_ws();
  if (cur.pos != line.size()) return std::nullopt;  // trailing garbage
  return fields;
}

}  // namespace hydra::swarm
