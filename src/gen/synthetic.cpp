#include "gen/synthetic.h"

#include <cmath>
#include <string>

#include "gen/randfixedsum.h"
#include "gen/uunifast.h"
#include "rt/analysis.h"
#include "util/contracts.h"

namespace hydra::gen {

namespace {

/// Log-uniform draw in [lo, hi] — the period convention of Emberson et
/// al. [23], which spreads periods evenly across magnitudes.
double log_uniform(util::Xoshiro256& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

/// Dispatches to the configured utilization generator.  UUniFast-Discard may
/// fail on cap-tight draws; that surfaces as a redraw (nullopt upstream).
std::optional<std::vector<double>> draw_utilizations(const SyntheticConfig& config,
                                                     std::size_t n, double sum, double lo,
                                                     util::Xoshiro256& rng) {
  switch (config.util_generator) {
    case UtilGenerator::kRandfixedsum:
      return randfixedsum(n, sum, lo, config.max_task_utilization, rng);
    case UtilGenerator::kUunifastDiscard:
      try {
        return uunifast_discard(n, sum, config.max_task_utilization, rng, 200);
      } catch (const std::runtime_error&) {
        return std::nullopt;
      }
  }
  HYDRA_ASSERT(false, "unknown UtilGenerator");
}

}  // namespace

std::optional<SyntheticInstance> generate_instance(const SyntheticConfig& config,
                                                   double total_utilization,
                                                   util::Xoshiro256& rng) {
  HYDRA_REQUIRE(config.num_cores >= 1, "config needs at least one core");
  HYDRA_REQUIRE(total_utilization > 0.0, "total utilization must be positive");
  HYDRA_REQUIRE(config.sec_util_ratio > 0.0, "security utilization ratio must be positive");

  const std::size_t m = config.num_cores;
  const std::size_t n_rt = static_cast<std::size_t>(
      rng.uniform_int(config.min_rt_per_core * m, config.max_rt_per_core * m));
  const std::size_t n_sec = static_cast<std::size_t>(
      rng.uniform_int(config.min_sec_per_core * m, config.max_sec_per_core * m));

  // Deterministic split: U = U_rt·(1 + ratio) with U_sec = ratio·U_rt.
  const double u_rt = total_utilization / (1.0 + config.sec_util_ratio);
  const double u_sec = total_utilization - u_rt;

  // Structurally impossible draws (sum outside [n·lo, n·hi]) are a redraw.
  const double u_floor = 1e-5;
  if (u_rt <= static_cast<double>(n_rt) * u_floor ||
      u_rt >= static_cast<double>(n_rt) * config.max_task_utilization) {
    return std::nullopt;
  }
  if (u_sec <= static_cast<double>(n_sec) * u_floor ||
      u_sec >= static_cast<double>(n_sec) * config.max_task_utilization) {
    return std::nullopt;
  }

  const auto rt_utils_opt = draw_utilizations(config, n_rt, u_rt, u_floor, rng);
  const auto sec_utils_opt = draw_utilizations(config, n_sec, u_sec, u_floor, rng);
  if (!rt_utils_opt.has_value() || !sec_utils_opt.has_value()) return std::nullopt;
  const auto& rt_utils = *rt_utils_opt;
  const auto& sec_utils = *sec_utils_opt;

  SyntheticInstance out;
  out.instance.num_cores = m;
  out.instance.rt_tasks.reserve(n_rt);
  for (std::size_t i = 0; i < n_rt; ++i) {
    const double period = log_uniform(rng, config.rt_period_lo, config.rt_period_hi);
    const double wcet = rt_utils[i] * period;
    out.instance.rt_tasks.push_back(
        rt::make_rt_task("rt" + std::to_string(i), wcet, period));
    out.rt_utilization += rt_utils[i];
  }
  out.instance.security_tasks.reserve(n_sec);
  for (std::size_t i = 0; i < n_sec; ++i) {
    const double t_des = rng.uniform(config.sec_period_des_lo, config.sec_period_des_hi);
    const double t_max = config.sec_period_max_factor * t_des;
    const double wcet = sec_utils[i] * t_des;
    out.instance.security_tasks.push_back(
        rt::make_security_task("sec" + std::to_string(i), wcet, t_des, t_max));
    out.sec_utilization += sec_utils[i];
  }
  out.instance.validate();
  return out;
}

bool satisfies_necessary_condition(const core::Instance& instance) {
  return rt::dbf_necessary_condition(instance.rt_tasks, instance.num_cores);
}

std::optional<SyntheticInstance> generate_filtered_instance(const SyntheticConfig& config,
                                                            double total_utilization,
                                                            util::Xoshiro256& rng,
                                                            int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto candidate = generate_instance(config, total_utilization, rng);
    if (candidate.has_value() && satisfies_necessary_condition(candidate->instance)) {
      return candidate;
    }
  }
  return std::nullopt;
}

}  // namespace hydra::gen
