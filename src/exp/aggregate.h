// Result aggregation for sweeps: an Aggregator is a ResultSink that folds the
// row stream into per-(point, scheme) cell statistics — acceptance ratio,
// mean/percentile tightness, gap against a reference scheme, and summaries of
// any RowMetric values — so benches declare *what* they plot instead of
// hand-rolling accumulation loops.
//
// The per-cell statistics are exactly the quantities the paper's evaluation
// reports: Fig. 2's acceptance ratio δ per (utilization, scheme), Fig. 3's
// mean/max optimality gap Δη against the exhaustive reference, and Fig. 1's
// per-scheme detection-latency summaries (via metrics).
//
// Aggregation is deterministic: cells appear in row-arrival order (the
// sweep's stable point-major order) and every statistic is a pure function of
// the row stream, so aggregated JSONL is as byte-stable as the row JSONL —
// the property the golden-corpus regression test pins down.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "exp/sinks.h"
#include "stats/summary.h"

namespace hydra::exp {

struct AggregateOptions {
  /// Scheme whose accepted results serve as the per-instance reference for
  /// the gap statistics (Fig. 3's exhaustive optimal).  "" disables gaps.
  std::string reference_scheme;
  /// Percentile levels computed for the tightness and metric distributions.
  std::vector<double> percentiles = {0.5, 0.95};
};

/// Distribution summary of one quantity inside one cell: stats::summary
/// moments, the stats::mean_ci95 normal-approximation confidence interval of
/// the mean, and the requested percentile levels (parallel to
/// AggregateOptions::percentiles).  `count == 0` means no samples — emitted
/// as JSON nulls, never fake zeros.
struct CellDistribution {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_lo = 0.0;  ///< mean − 1.96·s/√n (== mean when n == 1)
  double ci95_hi = 0.0;  ///< mean + 1.96·s/√n
  double min = 0.0;
  double max = 0.0;
  std::vector<double> percentiles;
};

/// Statistics of one (point, scheme) cell.
struct CellStats {
  std::size_t point_index = 0;
  std::string point_label;
  double target_utilization = 0.0;
  std::string scheme;

  // Row accounting.  `total` counts every row of the cell; "accepted" means
  // status "ok" with a feasible result that passed independent validation —
  // the paper's schedulability-acceptance criterion.
  std::size_t total = 0;
  std::size_t accepted = 0;
  std::size_t skipped = 0;
  std::size_t errors = 0;       ///< status "error"
  std::size_t no_instance = 0;  ///< status "no-instance"
  double acceptance_ratio = 0.0;  ///< accepted / total (0 when total is 0)
  /// 95 % CI of the acceptance ratio (binomial normal approximation, the
  /// closed form of stats::mean_ci95 over the per-row accept indicator,
  /// clamped to [0, 1]) — how much of an acceptance-ratio difference between
  /// two schemes is replication noise.  Degenerate [ratio, ratio] when
  /// total ≤ 1; zeros when the cell is empty.
  double acceptance_ci95_lo = 0.0;
  double acceptance_ci95_hi = 0.0;

  /// Normalized tightness over the accepted rows.
  CellDistribution tightness;

  /// Cumulative-tightness gap against the reference scheme, in percent
  /// (Fig. 3's Δη = (η_ref − η_this)/η_ref · 100), joined per instance over
  /// the instances both schemes accepted.  Zero samples when no reference is
  /// configured, this cell IS the reference, or the accepted sets are
  /// disjoint.  The join is keyed by (point, instance) index, so absorbing
  /// UNRELATED runs whose indices collide into one Aggregator keeps only the
  /// first tightness sample per key — clear() between unrelated sweeps.
  std::size_t gap_samples = 0;
  double gap_mean_percent = 0.0;
  double gap_max_percent = 0.0;
  double gap_ci95_lo_percent = 0.0;  ///< mean_ci95 over the joined gap samples
  double gap_ci95_hi_percent = 0.0;

  /// One distribution per RowMetric name, over the accepted rows.
  std::map<std::string, CellDistribution> metrics;
};

class Aggregator : public ResultSink {
 public:
  explicit Aggregator(AggregateOptions options = {});
  ~Aggregator() override;  // out-of-line: CellAccum is incomplete here

  /// ResultSink contract: begin() is idempotent and end() keeps the sink
  /// usable, so one Aggregator can absorb several engine/sweep runs.  Use
  /// clear() to start a fresh aggregation.
  void row(const BatchRow& row) override;
  void clear();

  /// Computes the cell statistics for everything absorbed so far, in
  /// first-row-arrival order (= the sweep's stable point-major order).
  std::vector<CellStats> cells() const;

  /// Lookup helpers over a cells() snapshot (nullptr when absent).
  static const CellStats* find(const std::vector<CellStats>& cells,
                               std::size_t point_index, const std::string& scheme);
  static const CellStats* find(const std::vector<CellStats>& cells,
                               const std::string& point_label,
                               const std::string& scheme);

  /// Writes one JSON object per cell — the aggregated counterpart of the row
  /// JSONL, and the format the golden-corpus regression files are stored in.
  void write_jsonl(std::ostream& os) const;

  const AggregateOptions& options() const { return options_; }

 private:
  struct CellAccum;

  CellAccum& accum_for(const BatchRow& row);
  CellStats finalize(const CellAccum& accum) const;

  AggregateOptions options_;
  std::vector<CellAccum> accums_;
  std::map<std::pair<std::size_t, std::string>, std::size_t> index_;
};

}  // namespace hydra::exp
