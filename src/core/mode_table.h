// Runtime monitoring-mode tables (the Contego two-mode model, arXiv:1705.00138).
//
// An adaptive allocator commits, at design time, TWO analysis-feasible period
// vectors for the security tasks on their assigned cores:
//
//   * the *minimum mode* — every monitor at its loosest acceptable period
//     Tmax (always-on baseline coverage, the fallback when the system is
//     loaded), and
//   * the *adapted mode* — the tightened periods the allocator's slack-aware
//     pass produced (Ts ∈ [Tdes, Tmax], best-effort toward Tdes).
//
// The runtime mode-switching simulator (sim/mode_switch.h) flips each monitor
// between the two vectors at job boundaries, driven by observed slack.  A
// ModeTable is the design-time artifact handed across that seam: it is a pure
// function of (instance, allocation), so ANY registered scheme — not just
// `contego` — yields a mode table (schemes that do not adapt simply commit
// adapted == placement period, possibly == Tmax).
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"

namespace hydra::core {

/// The two committed periods of one security task on its assigned core.
/// Invariant: Tdes <= adapted_period <= min_period == Tmax (validated).
struct SecurityMode {
  std::size_t core = 0;               ///< the placement core (fixed at runtime)
  util::Millis min_period = 0.0;      ///< minimum mode: the task's Tmax
  util::Millis adapted_period = 0.0;  ///< adapted mode: the allocation's period
};

/// Per-security-task mode table, parallel to Instance::security_tasks.
struct ModeTable {
  std::vector<SecurityMode> modes;

  /// True when task `s` has strictly tighter adapted than minimum mode, i.e.
  /// runtime switching can actually change its rate.
  bool has_headroom(std::size_t s) const;

  /// Number of tasks with headroom.
  std::size_t switchable_tasks() const;
};

/// Builds the mode table of a feasible allocation: minimum mode is each
/// task's Tmax, adapted mode is the period the allocator committed.  Throws
/// std::invalid_argument on infeasible allocations or placements outside the
/// [Tdes, Tmax] box — an out-of-box period is an allocator bug, not a mode.
ModeTable build_mode_table(const Instance& instance, const Allocation& allocation);

/// The minimum-mode projection of a feasible allocation: identical cores,
/// every monitor at its Tmax (tightness = Tdes/Tmax).  Loosening a feasible
/// allocation's periods keeps it feasible, so the result needs no re-check.
/// This is the always-feasible fallback baseline the adaptive metrics, the
/// latency-dominance property test, and the walkthrough all compare against.
Allocation min_mode_allocation(const Instance& instance, const Allocation& allocation);

}  // namespace hydra::core
