// Design-space exploration on synthetic workloads: sweep total utilization on
// a chosen platform and chart how each integration strategy's acceptance
// ratio and achieved tightness degrade — the workflow a system designer would
// run before committing to a security-integration architecture.
//
// Built on exp::Sweep + exp::Aggregator: the whole utilization axis is ONE
// declarative spec evaluated as a single work-stealing queue (--jobs), every
// chart column reads straight off the aggregated cells, --out captures the
// per-(instance, scheme) rows, and --resume picks a killed run back up from
// its JSONL checkpoint without recomputing finished cells.
//
// Usage: ./build/synthetic_exploration [--cores 4] [--tasksets 50] [--seed 21]
//                                      [--schemes hydra,single-core] [--jobs 4]
//                                      [--out sweep.jsonl] [--resume sweep.jsonl]
//                                      [--agg-out cells.jsonl]
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "exp/aggregate.h"
#include "exp/sweep.h"
#include "gen/synthetic.h"
#include "io/table.h"
#include "util/cli.h"

namespace hexp = hydra::exp;
namespace gen = hydra::gen;
namespace io = hydra::io;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 4));
  const auto tasksets = static_cast<std::size_t>(cli.get_int("tasksets", 50));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const auto scheme_names = cli.get_string_list("schemes", {"hydra", "single-core"});

  gen::SyntheticConfig config;
  config.num_cores = m;

  // Nine points from 0.1·M to 0.9·M — coarser than Fig. 2's 39-point axis,
  // adjustable with --utilizations.
  hexp::SweepSpec spec;
  spec.schemes = scheme_names;
  spec.replications = tasksets;
  spec.base_seed = seed;
  spec.jobs = static_cast<std::size_t>(cli.get_int("jobs", 1));
  spec.resume_path = cli.get_string("resume", "");
  spec.add_utilization_grid(
      config, cli.get_double_list("utilizations", hexp::utilization_axis(m, 9, 0.1)));
  const hexp::Sweep sweep(std::move(spec));

  hexp::Aggregator aggregator;
  std::unique_ptr<hexp::ResultSink> file_sink;
  std::vector<hexp::ResultSink*> sinks = {&aggregator};
  if (cli.has("out")) {
    file_sink = hexp::make_file_sink(cli.get_string("out", ""));
    sinks.push_back(file_sink.get());
  }

  io::print_banner(std::cout, "Design-space sweep on M = " + std::to_string(m) +
                                  " cores (" + std::to_string(tasksets) +
                                  " tasksets per point, " +
                                  std::to_string(scheme_names.size()) + " schemes)");

  const auto summary = sweep.run(sinks);
  const auto cells = aggregator.cells();

  std::vector<std::string> headers = {"utilization"};
  for (const auto& name : scheme_names) {
    headers.push_back(name + " accept");
    headers.push_back(name + " tightness");
  }
  io::Table table(headers);
  for (std::size_t p = 0; p < sweep.spec().points.size(); ++p) {
    std::vector<std::string> cells_row = {
        io::fmt(sweep.spec().points[p].total_utilization, 2)};
    for (const auto& name : scheme_names) {
      const auto* cell = hexp::Aggregator::find(cells, p, name);
      cells_row.push_back(cell == nullptr ? "-" : io::fmt(cell->acceptance_ratio, 2));
      cells_row.push_back(cell == nullptr || cell->tightness.count == 0
                              ? std::string("-")
                              : io::fmt(cell->tightness.mean, 3));
    }
    table.add_row(std::move(cells_row));
  }
  table.print(std::cout);

  std::cout << "\ntightness columns are normalized by the upper bound (every "
               "monitor at its desired rate = 1.0).\n";
  if (cli.has("out")) {
    std::cout << "per-(instance, scheme) rows written to " << cli.get_string("out", "")
              << ".\n";
  }
  if (cli.has("agg-out")) {
    std::ofstream agg(cli.get_string("agg-out", ""));
    aggregator.write_jsonl(agg);
    std::cout << "aggregated cells written to " << cli.get_string("agg-out", "") << ".\n";
  }
  if (summary.resumed_cells > 0) {
    std::cout << "resumed " << summary.resumed_cells << " of " << summary.cells
              << " cells from " << sweep.spec().resume_path << ".\n";
  }
  return 0;
}
