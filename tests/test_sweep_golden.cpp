// Golden-corpus regression tests: a tiny sweep over the committed workload
// corpus, with its aggregated results diffed against a committed golden
// JSONL.  Any change to the analysis core, an allocator, the aggregation
// statistics, or the serialization shows up as a one-line diff here.
//
// After an INTENTIONAL behaviour change, regenerate the golden file with
//
//     HYDRA_UPDATE_GOLDEN=1 ./build/test_sweep_golden
//
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/aggregate.h"
#include "exp/sweep.h"

namespace hexp = hydra::exp;

namespace {

const std::string kCorpusDir = std::string(HYDRA_SOURCE_DIR) + "/tests/corpus";
const std::string kGoldenPath = kCorpusDir + "/golden_cells.jsonl";

/// The paper's three schemes plus one representative of each new family, so
/// the golden file pins the adaptive allocators' numerics too.
hexp::SweepSpec corpus_spec() {
  hexp::SweepSpec spec;
  spec.schemes = {"hydra",   "single-core",  "optimal",
                  "contego", "period-adapt", "util/worst-fit"};
  spec.add_corpus_point(kCorpusDir, "corpus");
  spec.jobs = 2;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(WorkloadCorpus, DirectoryLoaderFindsEveryWorkloadSorted) {
  const auto files = hexp::expand_workload_files(kCorpusDir);
  ASSERT_EQ(files.size(), 10u);  // README.md and the golden JSONL are not workloads
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_NE(files[0].find("boundary_eq1_2core_i.txt"), std::string::npos);
  // All three workload extensions are picked up alongside .txt.
  bool has_taskset = false, has_workload = false;
  for (const auto& f : files) {
    has_taskset |= f.find(".taskset") != std::string::npos;
    has_workload |= f.find(".workload") != std::string::npos;
  }
  EXPECT_TRUE(has_taskset);
  EXPECT_TRUE(has_workload);
}

TEST(WorkloadCorpus, GlobPatternSelectsSubset) {
  const auto files = hexp::expand_workload_files(kCorpusDir + "/*_2core_*.txt");
  ASSERT_EQ(files.size(), 7u);
  for (const auto& f : files) {
    EXPECT_NE(f.find("_2core_"), std::string::npos);
    EXPECT_EQ(f.find(".taskset"), std::string::npos);  // extension-filtered
  }
}

TEST(WorkloadCorpus, EmptyMatchesThrowInsteadOfSweepingNothing) {
  EXPECT_THROW(hexp::expand_workload_files(kCorpusDir + "/*.nope"), std::runtime_error);
  // A plain (non-glob) path passes through for per-item error reporting.
  const auto passthrough = hexp::expand_workload_files(kCorpusDir + "/absent.txt");
  ASSERT_EQ(passthrough.size(), 1u);
}

TEST(WorkloadCorpus, GlobInMissingDirectoryThrows) {
  // A pattern whose parent directory does not exist can never match, and an
  // empty regression sweep is a misconfiguration — it must throw, not yield
  // a zero-instance batch.
  try {
    hexp::expand_workload_files("/no/such/directory/*.txt");
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/directory"), std::string::npos);
  }
}

TEST(WorkloadCorpus, DirectoryWithoutWorkloadFilesThrows) {
  const auto dir =
      std::filesystem::temp_directory_path() / "hydra_empty_corpus_test";
  std::filesystem::create_directories(dir);
  // A stray non-workload file must not count.
  std::ofstream(dir / "notes.md") << "not a workload\n";
  EXPECT_THROW(hexp::expand_workload_files(dir.string()), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCorpus, MalformedWorkloadLineBecomesPerItemError) {
  // A file that exists but fails to parse is NOT a sweep-level failure: the
  // materializer reports it per item, and the sweep turns it into
  // "no-instance" rows so the rest of the corpus still runs.
  const auto dir = std::filesystem::temp_directory_path() / "hydra_malformed_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "broken.txt";
  std::ofstream(path) << "cores 2\nrt r1 10 40\nsec s1 not-a-number 500 5000\n";

  hexp::BatchSpec spec;
  spec.files = {path.string()};
  hexp::BatchItem item;
  item.index = 0;
  item.file = path.string();
  const auto materialized = hexp::materialize(spec, item);
  EXPECT_FALSE(materialized.instance.has_value());
  EXPECT_FALSE(materialized.error.empty());
  EXPECT_NE(materialized.error.find("line"), std::string::npos)
      << "error should carry the offending line: " << materialized.error;

  hexp::SweepSpec sweep_spec;
  sweep_spec.schemes = {"hydra"};
  hexp::SweepPoint point;
  point.files = {path.string()};
  point.label = "malformed";
  sweep_spec.points.push_back(point);
  hexp::Aggregator aggregator;
  const auto summary = hexp::Sweep(sweep_spec).run({&aggregator});
  ASSERT_EQ(summary.rows.size(), 1u);
  EXPECT_EQ(summary.rows[0].status, "no-instance");
  EXPECT_FALSE(summary.rows[0].note.empty());
  const auto cells = aggregator.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].no_instance, 1u);
  EXPECT_EQ(cells[0].accepted, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SweepGolden, CorpusSemanticsHoldRegardlessOfGoldenBytes) {
  // Semantic anchors that must survive a golden regeneration: HYDRA accepts
  // at least what SingleCore does, the overload instance is rejected by
  // every scheme, and nothing errors — including on the adversarial
  // GP-edge-case and near-boundary Eq. (1) instances.
  const hexp::Sweep sweep(corpus_spec());
  hexp::Aggregator aggregator;
  sweep.run({&aggregator});
  const auto cells = aggregator.cells();
  ASSERT_EQ(cells.size(), 6u);

  const auto* hydra_cell = hexp::Aggregator::find(cells, 0, "hydra");
  const auto* single_cell = hexp::Aggregator::find(cells, 0, "single-core");
  const auto* optimal_cell = hexp::Aggregator::find(cells, 0, "optimal");
  const auto* contego_cell = hexp::Aggregator::find(cells, 0, "contego");
  const auto* period_cell = hexp::Aggregator::find(cells, 0, "period-adapt");
  const auto* worst_fit_cell = hexp::Aggregator::find(cells, 0, "util/worst-fit");
  ASSERT_NE(hydra_cell, nullptr);
  ASSERT_NE(single_cell, nullptr);
  ASSERT_NE(optimal_cell, nullptr);
  ASSERT_NE(contego_cell, nullptr);
  ASSERT_NE(period_cell, nullptr);
  ASSERT_NE(worst_fit_cell, nullptr);

  EXPECT_EQ(hydra_cell->total, 10u);
  EXPECT_EQ(hydra_cell->errors, 0u);
  EXPECT_EQ(hydra_cell->no_instance, 0u);
  EXPECT_GE(hydra_cell->accepted, single_cell->accepted);
  EXPECT_LT(hydra_cell->accepted, 10u);  // the overload instance must fail
  EXPECT_GT(hydra_cell->accepted, 0u);
  // split_2core_d and boundary_eq1_2core_i are the designed separators:
  // HYDRA's partitioned placement fits, SingleCore's dedicated-core split
  // cannot fold the RT load onto M-1 cores.
  EXPECT_GT(hydra_cell->accepted, single_cell->accepted);
  // The exhaustive optimal never accepts less than the heuristic.
  EXPECT_GE(optimal_cell->accepted, hydra_cell->accepted);
  // The adaptive families run clean on the corpus — the near-singular GP
  // boxes and the huge-span periods must not error anywhere — and nobody
  // swallows the overload instance.
  for (const auto* cell : {contego_cell, period_cell, worst_fit_cell}) {
    EXPECT_EQ(cell->total, 10u);
    EXPECT_EQ(cell->errors, 0u);
    EXPECT_LT(cell->accepted, 10u);
    EXPECT_GT(cell->accepted, 0u);
  }
  // Binomial acceptance CI straddles the ratio on every cell.
  for (const auto& cell : cells) {
    EXPECT_LE(cell.acceptance_ci95_lo, cell.acceptance_ratio + 1e-12);
    EXPECT_GE(cell.acceptance_ci95_hi, cell.acceptance_ratio - 1e-12);
  }
}

TEST(SweepGolden, AggregatedResultsMatchCommittedGolden) {
  const hexp::Sweep sweep(corpus_spec());
  hexp::AggregateOptions options;
  options.reference_scheme = "optimal";
  hexp::Aggregator aggregator(options);
  sweep.run({&aggregator});

  std::ostringstream actual;
  aggregator.write_jsonl(actual);
  ASSERT_FALSE(actual.str().empty());

  if (std::getenv("HYDRA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    out << actual.str();
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  const std::string expected = read_file(kGoldenPath);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << kGoldenPath
                                 << " — run with HYDRA_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(actual.str(), expected)
      << "aggregated corpus sweep diverged from the committed golden JSONL; "
         "if the change is intentional, regenerate with HYDRA_UPDATE_GOLDEN=1 "
         "and review the diff";
}

TEST(SweepGolden, RowStreamIsIndependentOfJobCount) {
  // The corpus sweep's raw row stream — not just the aggregate — must be
  // byte-identical for any worker count.
  auto serial_spec = corpus_spec();
  serial_spec.jobs = 1;
  auto parallel_spec = corpus_spec();
  parallel_spec.jobs = 8;

  std::ostringstream serial, parallel;
  hexp::JsonlSink serial_sink(serial), parallel_sink(parallel);
  hexp::Sweep(serial_spec).run({&serial_sink});
  hexp::Sweep(parallel_spec).run({&parallel_sink});
  EXPECT_FALSE(serial.str().empty());
  EXPECT_EQ(serial.str(), parallel.str());
}
