// Tests for workload generation: Randfixedsum guarantees, §IV-B synthetic
// instances, and the UAV case study.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/randfixedsum.h"
#include "gen/synthetic.h"
#include "gen/uav.h"
#include "gen/uunifast.h"
#include "rt/analysis.h"

namespace gen = hydra::gen;
namespace rt = hydra::rt;

TEST(Randfixedsum, SingleValue) {
  hydra::util::Xoshiro256 rng(1);
  const auto v = gen::randfixedsum(1, 0.7, 0.0, 1.0, rng);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 0.7);
}

TEST(Randfixedsum, RejectsUnreachableSum) {
  hydra::util::Xoshiro256 rng(1);
  EXPECT_THROW(gen::randfixedsum(3, 4.0, 0.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(gen::randfixedsum(3, -0.5, 0.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(gen::randfixedsum(3, 1.0, 1.0, 0.5, rng), std::invalid_argument);
}

// Property sweep over (n, sum): every draw sums exactly and stays in bounds.
struct RfsCase {
  std::size_t n;
  double sum;
};

class RandfixedsumProperty : public ::testing::TestWithParam<RfsCase> {};

TEST_P(RandfixedsumProperty, SumAndBoundsHold) {
  hydra::util::Xoshiro256 rng(GetParam().n * 1000 + 7);
  for (int rep = 0; rep < 200; ++rep) {
    const auto v = gen::randfixedsum(GetParam().n, GetParam().sum, 0.0, 1.0, rng);
    ASSERT_EQ(v.size(), GetParam().n);
    double sum = 0.0;
    for (const double x : v) {
      EXPECT_GE(x, -1e-12);
      EXPECT_LE(x, 1.0 + 1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, GetParam().sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RandfixedsumProperty,
                         ::testing::Values(RfsCase{2, 0.3}, RfsCase{2, 1.7}, RfsCase{5, 0.1},
                                           RfsCase{5, 2.5}, RfsCase{5, 4.9}, RfsCase{10, 3.0},
                                           RfsCase{20, 0.5}, RfsCase{40, 20.0}));

TEST(Randfixedsum, ComponentsAreExchangeable) {
  // After shuffling, each coordinate should have (approximately) the same
  // mean — a symmetry check on the distribution.
  hydra::util::Xoshiro256 rng(77);
  const std::size_t n = 4;
  std::vector<double> mean(n, 0.0);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    const auto v = gen::randfixedsum(n, 1.2, 0.0, 1.0, rng);
    for (std::size_t i = 0; i < n; ++i) mean[i] += v[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mean[i] / reps, 1.2 / static_cast<double>(n), 0.02);
  }
}

TEST(Randfixedsum, CustomBounds) {
  hydra::util::Xoshiro256 rng(5);
  const auto v = gen::randfixedsum(4, 2.0, 0.2, 0.8, rng);
  double sum = 0.0;
  for (const double x : v) {
    EXPECT_GE(x, 0.2 - 1e-12);
    EXPECT_LE(x, 0.8 + 1e-12);
    sum += x;
  }
  EXPECT_NEAR(sum, 2.0, 1e-9);
}

TEST(Uunifast, SumsExactly) {
  hydra::util::Xoshiro256 rng(8);
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const double target = rng.uniform(0.1, 0.95);
    const auto u = gen::uunifast(n, target, rng);
    ASSERT_EQ(u.size(), n);
    double sum = 0.0;
    for (const double v : u) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, target, 1e-12);
  }
}

TEST(Uunifast, SingleValueIsTheSum) {
  hydra::util::Xoshiro256 rng(9);
  const auto u = gen::uunifast(1, 0.42, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.42);
}

TEST(Uunifast, MarginalsAreExchangeable) {
  hydra::util::Xoshiro256 rng(10);
  const std::size_t n = 5;
  std::vector<double> mean(n, 0.0);
  const int reps = 5000;
  for (int rep = 0; rep < reps; ++rep) {
    const auto u = gen::uunifast(n, 0.8, rng);
    for (std::size_t i = 0; i < n; ++i) mean[i] += u[i];
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(mean[i] / reps, 0.16, 0.01);
}

TEST(Uunifast, DiscardEnforcesCap) {
  hydra::util::Xoshiro256 rng(11);
  for (int rep = 0; rep < 50; ++rep) {
    const auto u = gen::uunifast_discard(4, 1.6, 0.7, rng);
    double sum = 0.0;
    for (const double v : u) {
      EXPECT_LE(v, 0.7);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.6, 1e-12);
  }
}

TEST(Uunifast, ImpossibleCapRejected) {
  hydra::util::Xoshiro256 rng(12);
  // sum 3.0 over 4 values with cap 0.5 (max reachable 2.0) fails fast.
  EXPECT_THROW(gen::uunifast_discard(4, 3.0, 0.5, rng), std::invalid_argument);
  // cap 0.76 is reachable (3.04) but nearly tight: most draws rejected —
  // small attempt budget makes the discard loop give up.
  EXPECT_THROW(gen::uunifast_discard(4, 3.0, 0.76, rng, 2), std::runtime_error);
}

TEST(Uunifast, PlainCanExceedCapRandfixedsumRespects) {
  // The documented difference between the generators: UUniFast has no
  // per-value bound, Randfixedsum does.
  hydra::util::Xoshiro256 rng(13);
  bool uunifast_exceeded = false;
  for (int rep = 0; rep < 2000 && !uunifast_exceeded; ++rep) {
    for (const double v : gen::uunifast(4, 0.9, rng)) {
      if (v > 0.5) uunifast_exceeded = true;
    }
  }
  EXPECT_TRUE(uunifast_exceeded);
  for (int rep = 0; rep < 200; ++rep) {
    for (const double v : gen::randfixedsum(4, 0.9, 0.0, 0.5, rng)) {
      EXPECT_LE(v, 0.5 + 1e-12);
    }
  }
}

TEST(Synthetic, RespectsSectionIvbRanges) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng(42);
  const auto drawn = gen::generate_instance(config, 1.0, rng);
  ASSERT_TRUE(drawn.has_value());
  const auto& inst = drawn->instance;

  EXPECT_GE(inst.rt_tasks.size(), 6u);    // 3M
  EXPECT_LE(inst.rt_tasks.size(), 20u);   // 10M
  EXPECT_GE(inst.security_tasks.size(), 4u);   // 2M
  EXPECT_LE(inst.security_tasks.size(), 10u);  // 5M

  for (const auto& t : inst.rt_tasks) {
    EXPECT_GE(t.period, 10.0);
    EXPECT_LE(t.period, 1000.0);
    EXPECT_DOUBLE_EQ(t.deadline, t.period);  // implicit deadlines
  }
  for (const auto& s : inst.security_tasks) {
    EXPECT_GE(s.period_des, 1000.0);
    EXPECT_LE(s.period_des, 3000.0);
    EXPECT_DOUBLE_EQ(s.period_max, 10.0 * s.period_des);
  }
}

TEST(Synthetic, UtilizationSplitIsThirtyPercent) {
  gen::SyntheticConfig config;
  config.num_cores = 4;
  hydra::util::Xoshiro256 rng(43);
  const auto drawn = gen::generate_instance(config, 2.6, rng);
  ASSERT_TRUE(drawn.has_value());
  EXPECT_NEAR(drawn->rt_utilization + drawn->sec_utilization, 2.6, 1e-6);
  EXPECT_NEAR(drawn->sec_utilization / drawn->rt_utilization, 0.3, 1e-6);
  // Cross-check against the task parameters themselves.
  EXPECT_NEAR(rt::total_utilization(drawn->instance.rt_tasks), drawn->rt_utilization, 1e-9);
  EXPECT_NEAR(rt::total_max_utilization(drawn->instance.security_tasks),
              drawn->sec_utilization, 1e-9);
}

TEST(Synthetic, ExtremeUtilizationReturnsNullopt) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng(44);
  // 25 > max tasks × cap: structurally impossible.
  EXPECT_FALSE(gen::generate_instance(config, 25.0, rng).has_value());
}

TEST(Synthetic, FilteredInstancePassesNecessaryCondition) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng(45);
  for (const double u : {0.5, 1.0, 1.5}) {
    const auto drawn = gen::generate_filtered_instance(config, u, rng);
    ASSERT_TRUE(drawn.has_value()) << "U = " << u;
    EXPECT_TRUE(gen::satisfies_necessary_condition(drawn->instance));
  }
}

TEST(Synthetic, DeterministicGivenSeed) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  hydra::util::Xoshiro256 rng_a(46), rng_b(46);
  const auto a = gen::generate_instance(config, 1.2, rng_a);
  const auto b = gen::generate_instance(config, 1.2, rng_b);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->instance.rt_tasks.size(), b->instance.rt_tasks.size());
  for (std::size_t i = 0; i < a->instance.rt_tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->instance.rt_tasks[i].wcet, b->instance.rt_tasks[i].wcet);
    EXPECT_DOUBLE_EQ(a->instance.rt_tasks[i].period, b->instance.rt_tasks[i].period);
  }
}

TEST(Synthetic, UunifastGeneratorOptionWorks) {
  gen::SyntheticConfig config;
  config.num_cores = 2;
  config.util_generator = gen::UtilGenerator::kUunifastDiscard;
  hydra::util::Xoshiro256 rng(314);
  const auto drawn = gen::generate_instance(config, 1.0, rng);
  ASSERT_TRUE(drawn.has_value());
  EXPECT_NEAR(drawn->rt_utilization + drawn->sec_utilization, 1.0, 1e-6);
  for (const auto& t : drawn->instance.rt_tasks) {
    EXPECT_LE(t.utilization(), config.max_task_utilization + 1e-9);
  }
  drawn->instance.validate();
}

TEST(Synthetic, GeneratorsProduceDifferentDraws) {
  gen::SyntheticConfig rfs_config, uuf_config;
  rfs_config.num_cores = uuf_config.num_cores = 2;
  uuf_config.util_generator = gen::UtilGenerator::kUunifastDiscard;
  hydra::util::Xoshiro256 rng_a(42), rng_b(42);
  const auto a = gen::generate_instance(rfs_config, 1.0, rng_a);
  const auto b = gen::generate_instance(uuf_config, 1.0, rng_b);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Same seed, same counts, different utilization vectors (the generators
  // consume the stream differently).
  bool differs = a->instance.rt_tasks.size() != b->instance.rt_tasks.size();
  for (std::size_t i = 0; !differs && i < a->instance.rt_tasks.size(); ++i) {
    differs = !hydra::util::approx_equal(a->instance.rt_tasks[i].wcet,
                                         b->instance.rt_tasks[i].wcet);
  }
  EXPECT_TRUE(differs);
}

TEST(Uav, SixValidControlTasks) {
  const auto tasks = gen::uav_taskset();
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_NO_THROW(rt::validate(tasks));
  // Representative mid-load avionics profile (DESIGN.md §6): U ≈ 0.6.
  EXPECT_NEAR(rt::total_utilization(tasks), 0.615, 0.01);
}

TEST(Uav, CaseStudyBundlesCatalog) {
  const auto inst = gen::uav_case_study(4);
  EXPECT_EQ(inst.num_cores, 4u);
  EXPECT_EQ(inst.rt_tasks.size(), 6u);
  EXPECT_EQ(inst.security_tasks.size(), 6u);
  EXPECT_NO_THROW(inst.validate());
}

TEST(Uav, ScheduleableOnOneCore) {
  // The whole control workload fits a single core under RM.
  EXPECT_TRUE(rt::core_schedulable_rm(gen::uav_taskset()));
}
