// The discrete-event scheduling engine.
//
// Cores are independent under partitioned scheduling with independent tasks,
// so the engine simulates each core's timeline separately: releases are
// strictly periodic; at every scheduling point (release or completion) the
// highest-priority ready job runs; non-preemptive jobs, once started, run to
// completion regardless of later higher-priority releases (paper §V
// extension).
#pragma once

#include <vector>

#include "sim/task.h"

namespace hydra::sim {

struct SimOptions {
  util::SimTime horizon = 0;  ///< jobs are released strictly before this time
  /// Completion grace: jobs released before the horizon may finish up to
  /// horizon + grace; anything still unfinished is recorded as incomplete
  /// (and counted as a deadline miss).  Keeps overloaded inputs terminating.
  /// 0 = auto (the largest task deadline).
  util::SimTime grace = 0;
  /// Seed for release jitter and execution-time variation.  Tasks with
  /// jitter 0 and exec_fraction_min 1.0 are unaffected — the schedule is
  /// fully deterministic then.
  std::uint64_t seed = 0x5eed;
  /// Record per-core execution intervals in Trace::segments (for Gantt
  /// rendering and CSV export).  Costs memory proportional to preemptions;
  /// keep off for long experiment horizons.
  bool record_segments = false;
};

/// Runs the schedule.  Task priorities must be distinct per core (throws
/// std::invalid_argument otherwise).  Returns the full trace.
Trace simulate(const std::vector<SimTask>& tasks, const SimOptions& options);

}  // namespace hydra::sim
