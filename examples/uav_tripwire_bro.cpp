// The paper's case study end to end: a UAV flight-control workload retrofit
// with the Table-I Tripwire/Bro monitors, compared across all three
// allocation schemes (HYDRA, SingleCore, Optimal) on a chosen core count.
//
// Usage: ./build/examples/uav_tripwire_bro [--cores 2]
#include <iostream>

#include "core/hydra.h"
#include "core/optimal.h"
#include "core/single_core.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sec/catalog.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;

namespace {

void print_allocation(const std::string& scheme, const core::Instance& instance,
                      const core::Allocation& allocation) {
  io::print_banner(std::cout, scheme);
  if (!allocation.feasible) {
    std::cout << "unschedulable: " << allocation.failure_reason << "\n";
    return;
  }
  io::Table table({"security task", "core", "period (ms)", "tightness"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& p = allocation.placements[s];
    table.add_row({instance.security_tasks[s].name, std::to_string(p.core),
                   io::fmt(p.period, 1), io::fmt(p.tightness, 3)});
  }
  table.print(std::cout);
  std::cout << "cumulative tightness: "
            << io::fmt(allocation.cumulative_tightness(instance.security_tasks), 3) << " / "
            << io::fmt(static_cast<double>(instance.security_tasks.size()), 0) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("cores", 2));

  const auto instance = hydra::gen::uav_case_study(m);

  io::print_banner(std::cout, "UAV real-time workload (M = " + std::to_string(m) + ")");
  io::Table rt_table({"task", "C (ms)", "T (ms)", "U"});
  for (const auto& t : instance.rt_tasks) {
    rt_table.add_row({t.name, io::fmt(t.wcet, 0), io::fmt(t.period, 0),
                      io::fmt(t.utilization(), 3)});
  }
  rt_table.print(std::cout);

  print_allocation("HYDRA (Algorithm 1)", instance,
                   core::HydraAllocator().allocate(instance));
  print_allocation("SingleCore (dedicated security core)", instance,
                   core::SingleCoreAllocator().allocate(instance));

  // The exhaustive comparator is exponential in NS; with the 6-task catalog
  // and small M it is still comfortable.
  print_allocation("Optimal (exhaustive + joint periods)", instance,
                   core::OptimalAllocator().allocate(instance));
  return 0;
}
