#include "core/validation.h"

#include <cmath>

#include "rt/analysis.h"
#include "rt/priority.h"
#include "util/units.h"

namespace hydra::core {

namespace {

ValidationReport fail(std::string why) { return ValidationReport{false, std::move(why)}; }

}  // namespace

ValidationReport validate_allocation(
    const Instance& instance, const Allocation& allocation, util::Millis blocking,
    const std::optional<std::vector<std::size_t>>& priority_order, ScheduleTest test) {
  if (!allocation.feasible) return fail("allocation is marked infeasible");
  if (allocation.placements.size() != instance.security_tasks.size()) {
    return fail("placements do not cover the security task set");
  }
  if (allocation.rt_partition.num_cores != instance.num_cores ||
      allocation.rt_partition.core_of.size() != instance.rt_tasks.size()) {
    return fail("RT partition shape mismatch");
  }

  // Premise: the RT partition itself must be schedulable on every core.
  for (std::size_t c = 0; c < instance.num_cores; ++c) {
    const auto on_core = allocation.rt_partition.tasks_on_core(instance.rt_tasks, c);
    if (!rt::core_schedulable_rm(on_core)) {
      return fail("RT tasks on core " + std::to_string(c) + " are not RM-schedulable");
    }
  }

  const auto& sec = instance.security_tasks;
  const auto rank = rt::rank_of(rt::resolve_security_order(sec, priority_order));

  for (std::size_t s = 0; s < sec.size(); ++s) {
    const auto& task = sec[s];
    const auto& place = allocation.placements[s];
    if (place.core >= instance.num_cores) {
      return fail("task '" + task.name + "' placed on nonexistent core");
    }
    // Eq. (4): period within [Tdes, Tmax].
    if (!util::leq_tol(task.period_des, place.period) ||
        !util::leq_tol(place.period, task.period_max)) {
      return fail("task '" + task.name + "' period outside [Tdes, Tmax]");
    }
    // Reported tightness must match the period.
    if (!util::approx_equal(place.tightness, task.period_des / place.period, 1e-9, 1e-9)) {
      return fail("task '" + task.name + "' reports inconsistent tightness");
    }

    // Gather this task's interferers: local RT tasks and local higher-
    // priority security tasks at their assigned periods.
    std::vector<rt::RtTask> local_rt;
    for (std::size_t r = 0; r < instance.rt_tasks.size(); ++r) {
      if (allocation.rt_partition.core_of[r] == place.core) {
        local_rt.push_back(instance.rt_tasks[r]);
      }
    }
    std::vector<rt::PlacedSecurityTask> local_hp;
    for (std::size_t h = 0; h < sec.size(); ++h) {
      if (h == s || allocation.placements[h].core != place.core) continue;
      if (rank[h] >= rank[s]) continue;
      local_hp.push_back(
          rt::PlacedSecurityTask{sec[h].wcet, allocation.placements[h].period});
    }

    if (test == ScheduleTest::kLinearBound) {
      // Eq. (6), recomputed from scratch: Cs + Σ_RT (1 + Ts/Tr)·Cr
      //   + Σ_hp-sec-local (1 + Ts/Th)·Ch (+ blocking) ≤ Ts.
      double demand = task.wcet + blocking;
      for (const auto& rt_task : local_rt) {
        demand += (1.0 + place.period / rt_task.period) * rt_task.wcet;
      }
      for (const auto& hp : local_hp) {
        demand += (1.0 + place.period / hp.period) * hp.wcet;
      }
      if (!util::leq_tol(demand, place.period, 1e-4)) {
        return fail("task '" + task.name + "' violates Eq. (6): demand " +
                    std::to_string(demand) + " > period " + std::to_string(place.period));
      }
    } else {
      const auto response =
          rt::security_response_time(task, place.period, local_rt, local_hp, blocking);
      if (!response.has_value()) {
        return fail("task '" + task.name + "' misses its deadline under exact RTA");
      }
    }
  }
  return ValidationReport{true, {}};
}

}  // namespace hydra::core
