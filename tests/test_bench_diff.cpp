// Tests for the benchmark comparison/gate library behind hydra_bench_diff:
// zero/missing baselines must surface as incomparable/new rows (never a fake
// 0.0% that slides past the gate), and throughput collapses must gate even
// when wall time looks flat.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/bench_diff.h"

namespace io = hydra::io;

namespace {

/// Minimal google-benchmark JSON with the fields the parser reads.
std::string bench_json(const std::string& rows) {
  return "{\n"
         "  \"context\": {\n"
         "    \"date\": \"2026-08-08T00:00:00\",\n"
         "    \"num_cpus\": 8\n"
         "  },\n"
         "  \"benchmarks\": [\n" +
         rows +
         "  ]\n"
         "}\n";
}

std::string bench_row(const std::string& name, double real_time, double items,
                      bool last = false) {
  std::ostringstream out;
  out << "    {\n"
      << "      \"name\": \"" << name << "\",\n"
      << "      \"real_time\": " << real_time << ",\n"
      << "      \"cpu_time\": " << real_time << ",\n"
      << "      \"time_unit\": \"ns\"";
  if (items > 0.0) out << ",\n      \"items_per_second\": " << items;
  out << "\n    }" << (last ? "" : ",") << "\n";
  return out.str();
}

std::map<std::string, io::BenchResult> parse(const std::string& json) {
  std::istringstream in(json);
  return io::parse_bench_results(in, "test");
}

const io::BenchDelta* find(const std::vector<io::BenchDelta>& deltas,
                           const std::string& name) {
  for (const auto& delta : deltas) {
    if (delta.name == name) return &delta;
  }
  return nullptr;
}

}  // namespace

TEST(BenchDiffParse, ReadsNameTimeUnitAndItems) {
  const auto rows = parse(bench_json(bench_row("BM_A", 1500.0, 2.0e6) +
                                     bench_row("BM_B", 42.5, -1.0, /*last=*/true)));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows.at("BM_A").real_time, 1500.0);
  EXPECT_EQ(rows.at("BM_A").time_unit, "ns");
  EXPECT_DOUBLE_EQ(rows.at("BM_A").items_per_second, 2.0e6);
  EXPECT_DOUBLE_EQ(rows.at("BM_B").real_time, 42.5);
  EXPECT_LT(rows.at("BM_B").items_per_second, 0.0);  // absent stays sentinel
}

TEST(BenchDiffParse, ThrowsOnEmptyInput) {
  std::istringstream in("{\"context\": {}}");
  EXPECT_THROW(io::parse_bench_results(in, "test"), std::runtime_error);
}

TEST(BenchDiff, ZeroBaselineIsIncomparableNotZeroPercent) {
  // The original bug: a 0 baseline time produced a 0.0% delta, which both
  // looked like "no change" and silently passed any --fail-over gate.
  const auto baseline = parse(bench_json(bench_row("BM_A", 0.0, -1.0, true)));
  const auto current = parse(bench_json(bench_row("BM_A", 1000.0, -1.0, true)));
  const auto deltas = io::diff_bench_results(baseline, current);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, io::BenchDelta::Kind::kIncomparable);
  // It never enters the gate, even at a 0% threshold...
  EXPECT_TRUE(io::bench_gate_violations(deltas, 0.0).empty());
  // ...and renders as flagged, not as +0.0%.
  EXPECT_NE(io::render_bench_diff_markdown(deltas).find("_incomparable_"),
            std::string::npos);
  EXPECT_NE(io::render_bench_diff_text(deltas).find("(incomparable)"),
            std::string::npos);
  EXPECT_EQ(io::render_bench_diff_markdown(deltas).find("0.0%"), std::string::npos);
}

TEST(BenchDiff, NewAndMissingRowsNeverGate) {
  const auto baseline = parse(bench_json(bench_row("BM_Old", 100.0, -1.0, true)));
  const auto current = parse(bench_json(bench_row("BM_New", 9000.0, -1.0, true)));
  const auto deltas = io::diff_bench_results(baseline, current);
  ASSERT_EQ(deltas.size(), 2u);
  const auto* added = find(deltas, "BM_New");
  const auto* dropped = find(deltas, "BM_Old");
  ASSERT_NE(added, nullptr);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(added->kind, io::BenchDelta::Kind::kNew);
  EXPECT_EQ(dropped->kind, io::BenchDelta::Kind::kMissing);
  EXPECT_TRUE(io::bench_gate_violations(deltas, 0.0).empty());
  const std::string md = io::render_bench_diff_markdown(deltas);
  EXPECT_NE(md.find("_new_"), std::string::npos);
  EXPECT_NE(md.find("_missing_"), std::string::npos);
}

TEST(BenchDiff, GatesOnRealTimeGrowth) {
  const auto baseline = parse(bench_json(bench_row("BM_A", 100.0, -1.0, true)));
  const auto current = parse(bench_json(bench_row("BM_A", 180.0, -1.0, true)));
  const auto deltas = io::diff_bench_results(baseline, current);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, io::BenchDelta::Kind::kCompared);
  EXPECT_NEAR(deltas[0].time_pct, 80.0, 1e-9);
  EXPECT_TRUE(io::bench_gate_violations(deltas, 90.0).empty());
  const auto violations = io::bench_gate_violations(deltas, 50.0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("real_time"), std::string::npos);
}

TEST(BenchDiff, GatesOnItemsPerSecondCollapse) {
  // Wall time flat (per-iteration time unchanged) but throughput collapsed:
  // the gate must still fire on the items/s drop.
  const auto baseline = parse(bench_json(bench_row("BM_A", 100.0, 4000.0, true)));
  const auto current = parse(bench_json(bench_row("BM_A", 100.0, 1000.0, true)));
  const auto deltas = io::diff_bench_results(baseline, current);
  ASSERT_EQ(deltas.size(), 1u);
  ASSERT_TRUE(deltas[0].has_items);
  EXPECT_NEAR(deltas[0].items_pct, -75.0, 1e-9);
  const auto violations = io::bench_gate_violations(deltas, 50.0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("items/s"), std::string::npos);
}

TEST(BenchDiff, ItemsGrowthAndNegativeThresholdDoNotGate) {
  const auto baseline = parse(bench_json(bench_row("BM_A", 100.0, 1000.0, true)));
  const auto current = parse(bench_json(bench_row("BM_A", 40.0, 4000.0, true)));
  const auto deltas = io::diff_bench_results(baseline, current);
  ASSERT_EQ(deltas.size(), 1u);
  ASSERT_TRUE(deltas[0].has_items);
  EXPECT_NEAR(deltas[0].items_pct, 300.0, 1e-9);  // improvement, not a drop
  EXPECT_TRUE(io::bench_gate_violations(deltas, 50.0).empty());
  // fail_over < 0 means "report only": nothing gates, however bad.
  const auto worse = io::diff_bench_results(current, baseline);
  EXPECT_TRUE(io::bench_gate_violations(worse, -1.0).empty());
}

TEST(BenchDiff, MarkdownRendersComparedRowWithBothDeltas) {
  const auto baseline = parse(bench_json(bench_row("BM_A", 200.0, 1000.0, true)));
  const auto current = parse(bench_json(bench_row("BM_A", 100.0, 2000.0, true)));
  const std::string md =
      io::render_bench_diff_markdown(io::diff_bench_results(baseline, current));
  EXPECT_NE(md.find("| BM_A |"), std::string::npos);
  EXPECT_NE(md.find("-50.0%"), std::string::npos);
  EXPECT_NE(md.find("+100.0%"), std::string::npos);
}
