#include "core/scp_warm.h"

#include <utility>

namespace hydra::core {

namespace {
thread_local const ScpWarmStartHooks* g_current = nullptr;
}  // namespace

ScpWarmStartScope::ScpWarmStartScope(ScpWarmStartHooks hooks)
    : hooks_(std::move(hooks)), previous_(g_current) {
  g_current = &hooks_;
}

ScpWarmStartScope::~ScpWarmStartScope() { g_current = previous_; }

const ScpWarmStartHooks* ScpWarmStartScope::current() { return g_current; }

}  // namespace hydra::core
