// Quickstart: integrate two security monitors into a 2-core legacy system.
//
// Demonstrates the minimal HYDRA workflow:
//   1. describe the legacy real-time tasks (they will not be modified),
//   2. describe the security tasks by (WCET, desired period, maximum period),
//   3. run the HYDRA allocator,
//   4. read back each monitor's core, period and tightness.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/hydra.h"
#include "core/validation.h"
#include "io/table.h"

int main() {
  namespace core = hydra::core;
  namespace rt = hydra::rt;

  // 1. The legacy system: a 2-core platform running three control tasks.
  core::Instance instance;
  instance.num_cores = 2;
  instance.rt_tasks = {
      rt::make_rt_task("sensor_poll", 2.0, 10.0),    // 2 ms every 10 ms
      rt::make_rt_task("control_loop", 8.0, 40.0),   // 8 ms every 40 ms
      rt::make_rt_task("telemetry", 10.0, 100.0),    // 10 ms every 100 ms
  };

  // 2. The monitors to retrofit: a file-integrity check that would ideally
  //    run every 2 s (and is useless beyond 20 s), and a network scan.
  instance.security_tasks = {
      rt::make_security_task("integrity_check", 150.0, 2000.0, 20000.0),
      rt::make_security_task("network_scan", 300.0, 5000.0, 50000.0),
  };

  // 3. Allocate.  HYDRA partitions the RT tasks (best-fit), then assigns each
  //    security task a core and the tightest feasible period, highest
  //    priority first.
  const auto allocation = core::HydraAllocator().allocate(instance);
  if (!allocation.feasible) {
    std::cerr << "unschedulable: " << allocation.failure_reason << "\n";
    return 1;
  }

  // 4. Inspect the result.
  hydra::io::Table table({"monitor", "core", "period (ms)", "tightness"});
  for (std::size_t s = 0; s < instance.security_tasks.size(); ++s) {
    const auto& p = allocation.placements[s];
    table.add_row({instance.security_tasks[s].name, std::to_string(p.core),
                   hydra::io::fmt(p.period, 1), hydra::io::fmt(p.tightness, 3)});
  }
  table.print(std::cout);

  // Belt and braces: re-check Eq. (4)+(6) with the independent validator.
  const auto report = core::validate_allocation(instance, allocation);
  std::cout << "\nindependent validation: " << (report.valid ? "OK" : report.problem) << "\n";
  return report.valid ? 0 : 1;
}
