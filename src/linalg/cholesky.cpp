#include "linalg/cholesky.h"

#include <cmath>
#include <stdexcept>

namespace hydra::linalg {

bool cholesky_factorize(const Matrix& a, Matrix& l) {
  HYDRA_REQUIRE(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l.assign(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return true;
}

std::optional<Matrix> cholesky(const Matrix& a) {
  Matrix l;
  if (!cholesky_factorize(a, l)) return std::nullopt;
  return l;
}

void cholesky_solve_into(const Matrix& l, const Vector& b, Vector& y, Vector& x) {
  HYDRA_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(), "cholesky_solve: size mismatch");
  const std::size_t n = b.size();
  // Forward substitution: L y = b.
  y.assign(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Back substitution: Lᵀ x = y.
  x.assign(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  Vector y;
  Vector x;
  cholesky_solve_into(l, b, y, x);
  return x;
}

const Vector& solve_spd_into(const Matrix& a, const Vector& b, SpdWorkspace& ws) {
  HYDRA_REQUIRE(a.rows() == a.cols() && a.rows() == b.size(), "solve_spd: size mismatch");
  const std::size_t n = a.rows();
  // Scale regularization to the matrix magnitude so it is meaningful for both
  // tiny and large Hessians.
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) max_abs = std::fmax(max_abs, std::fabs(a(i, j)));
  }
  if (max_abs == 0.0) max_abs = 1.0;

  double reg = 0.0;
  for (int attempt = 0; attempt < 40; ++attempt) {
    ws.work = a;
    if (reg > 0.0) {
      for (std::size_t i = 0; i < n; ++i) ws.work(i, i) += reg;
    }
    if (cholesky_factorize(ws.work, ws.l)) {
      cholesky_solve_into(ws.l, b, ws.y, ws.x);
      if (ws.x.all_finite()) return ws.x;
    }
    reg = (reg == 0.0) ? 1e-12 * max_abs : reg * 10.0;
  }
  throw std::runtime_error("solve_spd: matrix not factorizable even with regularization");
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  SpdWorkspace ws;
  return solve_spd_into(a, b, ws);
}

}  // namespace hydra::linalg
