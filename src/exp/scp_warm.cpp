#include "exp/scp_warm.h"

#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "core/joint_period.h"
#include "core/period_adapt.h"
#include "core/scp_warm.h"
#include "gp/solver_registry.h"
#include "io/taskset_io.h"

namespace hydra::exp {

namespace {

std::optional<std::vector<double>> compute_warm_periods(const core::Instance& instance) {
  // Shadow any installed warm-start scope: the canonical solve is the memo
  // VALUE, so it must run cold — consulting the sweep's own source here
  // would recurse into this memo.
  core::ScpWarmStartScope cold{core::ScpWarmStartHooks{}};
  // Likewise pin the DEFAULT GP backend, shadowing the sweep's
  // GpBackendScope: the memo is keyed by instance bytes alone, so its value
  // must not depend on which backend the enclosing spec happens to run —
  // warm seeds only ever ADD start points, so a default-backend seed is
  // valid under any spec backend.
  const gp::GpBackendScope default_backend{std::string{}};

  try {
    const core::PeriodAdaptAllocator first_fit;
    const core::Allocation alloc = first_fit.allocate(instance);
    if (!alloc.feasible) return std::nullopt;

    std::vector<std::size_t> core_of(alloc.placements.size());
    for (std::size_t s = 0; s < core_of.size(); ++s) {
      core_of[s] = alloc.placements[s].core;
    }
    const core::JointPeriodResult joint = core::optimize_joint_periods(
        instance, alloc.rt_partition, core_of, core::JointPeriodOptions{});
    if (!joint.feasible || joint.periods.empty()) return std::nullopt;
    return joint.periods;
  } catch (const std::exception&) {
    // A cell whose canonical solve trips a contract simply seeds nothing —
    // the deterministic outcome for that key, not an error.
    return std::nullopt;
  }
}

}  // namespace

std::optional<std::vector<double>> sweep_warm_periods(const BatchSpec& spec,
                                                      const BatchItem& item) {
  const MaterializedItem materialized = materialize(spec, item);
  if (!materialized.instance.has_value()) return std::nullopt;

  // Key = the full instance text: collisions are impossible (the key IS the
  // solve input), so the memo can only skip recomputation, never change a
  // value.
  std::string key = io::to_text(*materialized.instance);

  static std::mutex mutex;
  static std::map<std::string, std::optional<std::vector<double>>> memo;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto found = memo.find(key);
    if (found != memo.end()) return found->second;
  }
  // Compute outside the lock — the canonical solve is the slow part, and the
  // value is a pure function of the key, so racing computers agree and
  // first-writer-wins is safe.
  std::optional<std::vector<double>> value = compute_warm_periods(*materialized.instance);
  std::lock_guard<std::mutex> lock(mutex);
  return memo.emplace(std::move(key), std::move(value)).first->second;
}

}  // namespace hydra::exp
