// Ablation: static partitioning (HYDRA) vs global slack scheduling of the
// security jobs (paper §V future work).
//
// Both runs use HYDRA's periods; the global run lets security jobs migrate to
// any core with idle slack (job-level migration, zero migration cost — the
// optimistic bound on what migration can buy).  Reported: mean/p95 detection
// time and the migration count per simulated minute.
//
// Usage: bench_ablation_global_slack [--cores 2,4,8] [--trials 300]
//                                    [--horizon-s 300] [--seed 29] [--csv]
#include <iostream>

#include "core/hydra.h"
#include "gen/uav.h"
#include "io/table.h"
#include "sim/attack.h"
#include "stats/ecdf.h"
#include "stats/summary.h"
#include "util/cli.h"

namespace core = hydra::core;
namespace io = hydra::io;
namespace sim = hydra::sim;

int main(int argc, char** argv) {
  const hydra::util::CliParser cli(argc, argv);
  const auto cores = cli.get_int_list("cores", {2, 4, 8});
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 300));
  const auto horizon_s = static_cast<std::uint64_t>(cli.get_int("horizon-s", 300));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 29));
  const bool csv = cli.get_bool("csv", false);

  io::print_banner(std::cout,
                   "Ablation: static HYDRA placement vs global slack migration (UAV case study)");
  io::Table table({"cores", "scheduler", "mean detection (ms)", "p95 (ms)",
                   "improvement vs static"});

  for (const auto m : cores) {
    const auto instance = hydra::gen::uav_case_study(static_cast<std::size_t>(m));
    const auto allocation = core::HydraAllocator().allocate(instance);
    if (!allocation.feasible) {
      std::cout << "M = " << m << ": infeasible (" << allocation.failure_reason << ")\n";
      continue;
    }
    sim::DetectionConfig config;
    config.horizon = horizon_s * 1000u * hydra::util::kTicksPerMilli;
    config.trials = trials;
    config.seed = seed;

    const auto fixed = sim::measure_detection_times(instance, allocation, config);
    const auto global = sim::measure_detection_times_global(instance, allocation, config);
    const double fixed_mean = hydra::stats::summarize(fixed.detection_ms).mean;
    const double global_mean = hydra::stats::summarize(global.detection_ms).mean;
    const hydra::stats::EmpiricalCdf fixed_cdf(fixed.detection_ms);
    const hydra::stats::EmpiricalCdf global_cdf(global.detection_ms);

    table.add_row({std::to_string(m), "static (HYDRA)", io::fmt(fixed_mean, 1),
                   io::fmt(fixed_cdf.quantile(0.95), 1), "-"});
    table.add_row({std::to_string(m), "global slack", io::fmt(global_mean, 1),
                   io::fmt(global_cdf.quantile(0.95), 1),
                   io::fmt_percent((fixed_mean - global_mean) / fixed_mean * 100.0, 2)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading: migration can only help with identical periods; "
               "the margin bounds what a runtime (rather than design-time) "
               "mechanism could add over HYDRA's static placement.\n";
  return 0;
}
