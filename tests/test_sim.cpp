// Tests for the discrete-event scheduler: hand-checkable schedules,
// preemption semantics, non-preemptive jobs, deadline misses, execution
// conservation, and trace queries.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/task.h"

namespace sim = hydra::sim;
using hydra::util::SimTime;

namespace {

sim::SimTask make(const std::string& name, SimTime wcet, SimTime period, std::size_t core,
                  int priority, bool preemptive = true, SimTime offset = 0) {
  sim::SimTask t;
  t.name = name;
  t.wcet = wcet;
  t.period = period;
  t.deadline = period;
  t.core = core;
  t.priority = priority;
  t.preemptive = preemptive;
  t.release_offset = offset;
  return t;
}

}  // namespace

TEST(Engine, SingleTaskRunsBackToBack) {
  const auto trace = sim::simulate({make("a", 30, 100, 0, 0)}, {1000});
  ASSERT_EQ(trace.jobs.size(), 1u);
  ASSERT_EQ(trace.jobs[0].size(), 10u);  // releases at 0, 100, ..., 900
  for (std::size_t k = 0; k < 10; ++k) {
    const auto& job = trace.jobs[0][k];
    EXPECT_EQ(job.release, k * 100);
    EXPECT_EQ(job.start, job.release);
    EXPECT_EQ(job.completion, job.release + 30);
    EXPECT_TRUE(job.completed);
    EXPECT_FALSE(job.deadline_missed);
  }
  EXPECT_EQ(trace.core_busy[0], 300u);
}

TEST(Engine, PreemptionByHigherPriority) {
  // lo releases at 0 (wcet 50), hi at 10 (wcet 20): lo runs [0,10) with 40
  // remaining, is preempted [10,30), resumes [30,70) and completes at 70.
  const auto lo = make("lo", 50, 1000, 0, 5);
  const auto hi = make("hi", 20, 1000, 0, 1, true, 10);
  const auto trace = sim::simulate({lo, hi}, {1000});
  EXPECT_EQ(trace.jobs[1][0].start, 10u);
  EXPECT_EQ(trace.jobs[1][0].completion, 30u);
  EXPECT_EQ(trace.jobs[0][0].start, 0u);
  EXPECT_EQ(trace.jobs[0][0].completion, 70u);
}

TEST(Engine, NonPreemptiveJobBlocksHigherPriority) {
  // Non-preemptive lo starts at 0 and holds the CPU to 50; hi (release 10)
  // must wait: starts 50, completes 70.
  const auto lo = make("lo", 50, 1000, 0, 5, /*preemptive=*/false);
  const auto hi = make("hi", 20, 1000, 0, 1, true, 10);
  const auto trace = sim::simulate({lo, hi}, {1000});
  EXPECT_EQ(trace.jobs[0][0].completion, 50u);
  EXPECT_EQ(trace.jobs[1][0].start, 50u);
  EXPECT_EQ(trace.jobs[1][0].completion, 70u);
}

TEST(Engine, CoresAreIndependent) {
  const auto a = make("a", 60, 100, 0, 0);
  const auto b = make("b", 60, 100, 1, 0);
  const auto trace = sim::simulate({a, b}, {1000});
  // Same-priority tasks on different cores never interfere.
  for (const auto& job : trace.jobs[0]) EXPECT_EQ(job.completion - job.release, 60u);
  for (const auto& job : trace.jobs[1]) EXPECT_EQ(job.completion - job.release, 60u);
}

TEST(Engine, DuplicatePriorityOnSameCoreRejected) {
  const auto a = make("a", 10, 100, 0, 3);
  const auto b = make("b", 10, 100, 0, 3);
  EXPECT_THROW(sim::simulate({a, b}, {1000}), std::invalid_argument);
}

TEST(Engine, OverloadedCoreMissesDeadlines) {
  // Demand 1.5 on one core: misses must be reported.
  const auto a = make("a", 75, 100, 0, 0);
  const auto b = make("b", 75, 100, 0, 1);
  const auto trace = sim::simulate({a, b}, {2000});
  EXPECT_GT(trace.deadline_misses(), 0u);
}

TEST(Engine, RmFeasibleSetHasNoMisses) {
  // Classic RM-schedulable trio (see RTA test): zero misses in simulation.
  const auto t1 = make("t1", 1000, 4000, 0, 0);
  const auto t2 = make("t2", 2000, 6000, 0, 1);
  const auto t3 = make("t3", 3000, 12000, 0, 2);
  const auto trace = sim::simulate({t1, t2, t3}, {120000});
  EXPECT_EQ(trace.deadline_misses(), 0u);
  // Worst-case response of t3 (synchronous release) is 10000 — the simulator
  // must reproduce it at the critical instant (first job).
  EXPECT_EQ(trace.jobs[2][0].completion, 10000u);
}

TEST(Engine, ExecutionTimeIsConserved) {
  // Busy time per core equals the summed WCET of completed jobs there.
  const auto a = make("a", 20, 70, 0, 0);
  const auto b = make("b", 30, 110, 0, 1);
  const auto trace = sim::simulate({a, b}, {10000});
  SimTime executed = 0;
  for (std::size_t t = 0; t < 2; ++t) {
    for (const auto& job : trace.jobs[t]) {
      if (job.completed) executed += (t == 0 ? 20u : 30u);
    }
  }
  EXPECT_EQ(trace.core_busy[0], executed);
}

TEST(Engine, ReleaseOffsetsHonoured) {
  const auto a = make("a", 10, 100, 0, 0, true, 55);
  const auto trace = sim::simulate({a}, {300});
  ASSERT_EQ(trace.jobs[0].size(), 3u);  // releases at 55, 155, 255
  EXPECT_EQ(trace.jobs[0][0].release, 55u);
  EXPECT_EQ(trace.jobs[0][2].release, 255u);
}

TEST(Engine, JobsReleasedBeforeHorizonFinishInGracePeriod) {
  // Release at 90 (horizon 100), wcet 50: auto-grace lets it complete.
  const auto a = make("a", 50, 100, 0, 0, true, 90);
  const auto trace = sim::simulate({a}, {100});
  ASSERT_EQ(trace.jobs[0].size(), 1u);
  EXPECT_TRUE(trace.jobs[0][0].completed);
  EXPECT_EQ(trace.jobs[0][0].completion, 140u);
}

TEST(Engine, InvalidTasksRejected) {
  auto bad = make("bad", 0, 100, 0, 0);
  EXPECT_THROW(sim::simulate({bad}, {1000}), std::invalid_argument);
  bad = make("bad", 200, 100, 0, 0);  // wcet > deadline
  EXPECT_THROW(sim::simulate({bad}, {1000}), std::invalid_argument);
  EXPECT_THROW(sim::simulate({make("a", 1, 10, 0, 0)}, {0}), std::invalid_argument);
}

TEST(Trace, FirstCompletionReleasedAfterQuery) {
  const auto a = make("a", 30, 100, 0, 0);
  const auto trace = sim::simulate({a}, {1000});
  // Attack at t = 150: the first job released after is at 200, done at 230.
  const auto hit = trace.first_completion_released_after(0, 150);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 230u);
  // Attack exactly at a release boundary counts that release.
  const auto boundary = trace.first_completion_released_after(0, 200);
  ASSERT_TRUE(boundary.has_value());
  EXPECT_EQ(*boundary, 230u);
  // Attack beyond the last release: no detection.
  EXPECT_FALSE(trace.first_completion_released_after(0, 950).has_value());
  EXPECT_THROW(trace.first_completion_released_after(7, 0), std::invalid_argument);
}

TEST(Trace, CountsTotals) {
  const auto a = make("a", 10, 100, 0, 0);
  const auto b = make("b", 10, 200, 0, 1);
  const auto trace = sim::simulate({a, b}, {1000});
  EXPECT_EQ(trace.total_jobs(), 10u + 5u);
  EXPECT_EQ(trace.deadline_misses(), 0u);
}

TEST(Engine, JitterPreservesMinimumSeparation) {
  auto t = make("sporadic", 10, 100, 0, 0);
  t.release_jitter = 50;
  sim::SimOptions opts;
  opts.horizon = 20000;
  opts.seed = 99;
  const auto trace = sim::simulate({t}, opts);
  ASSERT_GT(trace.jobs[0].size(), 10u);
  for (std::size_t k = 1; k < trace.jobs[0].size(); ++k) {
    const auto gap = trace.jobs[0][k].release - trace.jobs[0][k - 1].release;
    EXPECT_GE(gap, 100u);        // sporadic: separation >= period
    EXPECT_LE(gap, 150u);        // and <= period + jitter
  }
}

TEST(Engine, JitterZeroIsStrictlyPeriodic) {
  const auto t = make("periodic", 10, 100, 0, 0);
  sim::SimOptions a, b;
  a.horizon = b.horizon = 5000;
  a.seed = 1;
  b.seed = 2;  // different seeds must not matter without jitter
  const auto ta = sim::simulate({t}, a);
  const auto tb = sim::simulate({t}, b);
  ASSERT_EQ(ta.jobs[0].size(), tb.jobs[0].size());
  for (std::size_t k = 0; k < ta.jobs[0].size(); ++k) {
    EXPECT_EQ(ta.jobs[0][k].release, tb.jobs[0][k].release);
    EXPECT_EQ(ta.jobs[0][k].completion, tb.jobs[0][k].completion);
  }
}

TEST(Engine, ExecVariationShortensJobs) {
  auto t = make("varying", 100, 1000, 0, 0);
  t.exec_fraction_min = 0.3;
  sim::SimOptions opts;
  opts.horizon = 100000;
  opts.seed = 7;
  const auto trace = sim::simulate({t}, opts);
  bool saw_short = false;
  for (const auto& job : trace.jobs[0]) {
    const auto exec = job.completion - job.start;  // no preemption here
    EXPECT_GE(exec, 30u);   // >= fraction_min · wcet
    EXPECT_LE(exec, 100u);  // <= wcet
    if (exec < 100u) saw_short = true;
  }
  EXPECT_TRUE(saw_short);
}

TEST(Engine, ExecVariationReproducibleBySeed) {
  auto t = make("varying", 100, 1000, 0, 0);
  t.exec_fraction_min = 0.5;
  sim::SimOptions opts;
  opts.horizon = 50000;
  opts.seed = 31;
  const auto a = sim::simulate({t}, opts);
  const auto b = sim::simulate({t}, opts);
  ASSERT_EQ(a.jobs[0].size(), b.jobs[0].size());
  for (std::size_t k = 0; k < a.jobs[0].size(); ++k) {
    EXPECT_EQ(a.jobs[0][k].completion, b.jobs[0][k].completion);
  }
}

TEST(Engine, JitteredFeasibleSetStillMeetsDeadlines) {
  // Sporadic arrivals only reduce load versus the synchronous periodic
  // worst case; an RM-feasible set must stay miss-free under jitter.
  auto t1 = make("t1", 1000, 4000, 0, 0);
  auto t2 = make("t2", 2000, 6000, 0, 1);
  auto t3 = make("t3", 3000, 12000, 0, 2);
  t1.release_jitter = 2000;
  t2.release_jitter = 3000;
  t3.release_jitter = 6000;
  sim::SimOptions opts;
  opts.horizon = 240000;
  opts.seed = 17;
  const auto trace = sim::simulate({t1, t2, t3}, opts);
  EXPECT_EQ(trace.deadline_misses(), 0u);
}

TEST(Engine, HeavyInterleavingMatchesHandSchedule) {
  // Two tasks, harmonic: hi (20/50), lo (40/100).  Timeline:
  //   hi [0,20); lo [20,50) with 10 left; hi's second job [50,70);
  //   lo resumes [70,80) and completes at 80.
  const auto hi = make("hi", 20, 50, 0, 0);
  const auto lo = make("lo", 40, 100, 0, 1);
  const auto trace = sim::simulate({hi, lo}, {100});
  EXPECT_EQ(trace.jobs[0][0].completion, 20u);
  EXPECT_EQ(trace.jobs[0][1].start, 50u);
  EXPECT_EQ(trace.jobs[0][1].completion, 70u);
  EXPECT_EQ(trace.jobs[1][0].start, 20u);
  EXPECT_EQ(trace.jobs[1][0].completion, 80u);
  EXPECT_FALSE(trace.jobs[1][0].deadline_missed);
}
